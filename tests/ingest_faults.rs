//! Acceptance test for the fault-tolerant ingestion path: a shuffled,
//! duplicated, lossy frame stream must coarsen to exactly the windows
//! the surviving in-horizon frames would produce in clean time order,
//! with every injected fault accounted for in the health counters and
//! zero panics anywhere in the telemetry crate.
//!
//! The expected counters are derived by replaying the delivered stream
//! through the documented admission rule (watermark, strict lateness
//! horizon, key-level dedup) independently of the aggregator.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::BTreeSet;
use summit_repro::telemetry::catalog;
use summit_repro::telemetry::ids::NodeId;
use summit_repro::telemetry::records::NodeFrame;
use summit_repro::telemetry::stream::{FaultConfig, FaultInjector};
use summit_repro::telemetry::window::{NodeWindow, WindowAggregator};

const HORIZON_S: f64 = 5.0; // default IngestPolicy lateness horizon

fn frames_for(node: NodeId, seconds: usize) -> Vec<NodeFrame> {
    (0..seconds)
        .map(|i| {
            let mut f = NodeFrame::empty(node, i as f64);
            f.set(catalog::input_power(), 1500.0 + (i % 37) as f64);
            f.set(
                catalog::gpu_core_temp(summit_repro::telemetry::ids::GpuSlot(0)),
                40.0 + (i % 11) as f64,
            );
            f
        })
        .collect()
}

/// Replays the delivered stream through the admission rule the
/// aggregator documents, returning (accepted frames, dup count,
/// late count, reorder count).
fn classify(delivered: &[NodeFrame]) -> (Vec<NodeFrame>, u64, u64, u64) {
    let mut watermark = f64::NEG_INFINITY;
    let mut seen: BTreeSet<i64> = BTreeSet::new();
    let mut accepted = Vec::new();
    let (mut dups, mut late, mut reordered) = (0u64, 0u64, 0u64);
    for f in delivered {
        let t = f.t_sample;
        let wm = if watermark.is_finite() { watermark } else { t };
        if t < wm - HORIZON_S {
            late += 1;
        } else if !seen.insert((t * 1000.0).round() as i64) {
            dups += 1;
        } else {
            if t < wm {
                reordered += 1;
            }
            accepted.push(f.clone());
            watermark = wm.max(t);
        }
    }
    (accepted, dups, late, reordered)
}

/// Bitwise window equality: derived `PartialEq` is useless here because
/// empty metrics and gap windows carry NaN stats, and `NaN != NaN`.
fn windows_bitwise_eq(a: &[NodeWindow], b: &[NodeWindow]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.node == y.node
                && x.window_start.to_bits() == y.window_start.to_bits()
                && x.stats.len() == y.stats.len()
                && x.stats.iter().zip(&y.stats).all(|(s, t)| {
                    s.count == t.count
                        && s.min.to_bits() == t.min.to_bits()
                        && s.max.to_bits() == t.max.to_bits()
                        && s.mean.to_bits() == t.mean.to_bits()
                        && s.std.to_bits() == t.std.to_bits()
                })
        })
}

fn coarsen(node: NodeId, frames: &[NodeFrame]) -> (Vec<NodeWindow>, u64) {
    let mut agg = WindowAggregator::paper(node);
    for f in frames {
        let _ = agg.push(f);
    }
    let (windows, health) = agg.finish_with_health();
    (windows, health.accepted)
}

#[test]
fn faulty_stream_matches_clean_reference_exactly() {
    let node = NodeId(0);
    let base = frames_for(node, 600);
    for (case, config) in [
        FaultConfig::light(1),
        FaultConfig::light(0xFEE1),
        FaultConfig {
            drop_p: 0.10,
            duplicate_p: 0.10,
            delay_p: 0.15,
            reorder_p: 0.05,
            seed: 42,
            ..FaultConfig::default()
        },
        FaultConfig {
            drop_p: 0.0,
            duplicate_p: 0.30,
            delay_p: 0.0,
            reorder_p: 0.25,
            seed: 7,
            ..FaultConfig::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let mut injector = FaultInjector::new(config);
        let delivered = injector.deliver(base.clone());
        let injected = injector.injected();

        // Delivery conservation: every generated frame is delivered,
        // dropped, or delivered twice.
        assert_eq!(
            delivered.len() as u64,
            base.len() as u64 - injected.dropped + injected.duplicated,
            "case {case}: delivery conservation"
        );

        // The aggregator must agree with the documented admission rule
        // frame for frame.
        let (accepted, dups, late, reordered) = classify(&delivered);
        let mut agg = WindowAggregator::paper(node);
        for f in &delivered {
            let _ = agg.push(f);
        }
        let (faulty_windows, health) = agg.finish_with_health();
        assert_eq!(health.accepted, accepted.len() as u64, "case {case}");
        assert_eq!(health.duplicates, dups, "case {case}");
        assert_eq!(health.late_dropped, late, "case {case}");
        assert_eq!(health.reordered, reordered, "case {case}");
        assert_eq!(health.wrong_node + health.invalid, 0, "case {case}");
        assert_eq!(
            health.offered(),
            delivered.len() as u64,
            "case {case}: every delivered frame is counted exactly once"
        );

        // Every injected fault lands in a counter: drops never reach the
        // aggregator, duplicates dedup unless their copy outran the
        // horizon (then it is late), extra delays are late only if the
        // watermark moved past them.
        assert!(health.duplicates <= injected.duplicated, "case {case}");
        assert!(
            injected.duplicated - health.duplicates <= health.late_dropped,
            "case {case}"
        );

        // Identical windows to the clean, ordered replay of exactly the
        // accepted frames — including any NaN gap windows.
        let mut ordered = accepted;
        ordered.sort_by(|a, b| a.t_sample.total_cmp(&b.t_sample));
        let (clean_windows, clean_accepted) = coarsen(node, &ordered);
        assert_eq!(clean_accepted, health.accepted, "case {case}");
        assert!(
            windows_bitwise_eq(&faulty_windows, &clean_windows),
            "case {case}: faulty and clean coarsenings diverge"
        );
    }
}

#[test]
fn clean_stream_is_untouched_by_zero_probability_injector() {
    let node = NodeId(3);
    let base = frames_for(node, 120);
    let mut injector = FaultInjector::new(FaultConfig::default());
    let delivered = injector.deliver(base.clone());
    assert_eq!(injector.injected().total(), 0);
    assert_eq!(delivered.len(), base.len());
    let (windows, accepted) = coarsen(node, &delivered);
    assert_eq!(accepted, 120);
    assert_eq!(windows.len(), 12);
    assert!(windows
        .iter()
        .all(|w| w.metric(catalog::input_power()).count == 10));
}

#[test]
fn hostile_stream_never_panics() {
    // Wrong nodes, NaN timestamps, deep reversals, duplicates of
    // duplicates: the aggregator must classify everything and survive.
    let node = NodeId(1);
    let mut agg = WindowAggregator::paper(node);
    let mut frames = frames_for(node, 100);
    frames.reverse();
    let mut offered = 0u64;
    for f in &frames {
        let _ = agg.push(f);
        let _ = agg.push(f); // immediate duplicate
        offered += 2;
    }
    let _ = agg.push(&NodeFrame::empty(NodeId(99), 5.0));
    let _ = agg.push(&NodeFrame::empty(node, f64::NAN));
    let _ = agg.push(&NodeFrame::empty(node, f64::INFINITY));
    let _ = agg.push(&NodeFrame::empty(node, -1e12));
    offered += 4;
    let (windows, health) = agg.finish_with_health();
    assert_eq!(health.offered(), offered);
    assert_eq!(health.wrong_node, 1);
    assert_eq!(health.invalid, 2);
    // A fully reversed 1 Hz stream admits only the 5 s horizon's worth.
    assert!(health.accepted >= 6 && health.late_dropped > 0);
    assert!(!windows.is_empty());
}
