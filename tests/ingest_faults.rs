//! Acceptance test for the fault-tolerant ingestion path: a shuffled,
//! duplicated, lossy frame stream must coarsen to exactly the windows
//! the surviving in-horizon frames would produce in clean time order,
//! with every injected fault accounted for in the health counters and
//! zero panics anywhere in the telemetry crate.
//!
//! The expected counters are derived by replaying the delivered stream
//! through the documented admission rule (watermark, strict lateness
//! horizon, key-level dedup) independently of the aggregator.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::BTreeSet;
use summit_repro::core::pipeline::{run_detailed, run_streaming, StreamConfig};
use summit_repro::sim::engine::{EngineConfig, StepOptions};
use summit_repro::sim::failures::CabinetOutage;
use summit_repro::telemetry::catalog;
use summit_repro::telemetry::ids::{CabinetId, NodeId};
use summit_repro::telemetry::ingest::IngestError;
use summit_repro::telemetry::records::NodeFrame;
use summit_repro::telemetry::stream::{FaultConfig, FaultInjector, IngestStats};
use summit_repro::telemetry::window::{
    coarsen_parallel_with_health, NodeWindow, WindowAggregator, PAPER_WINDOW_S,
};

const HORIZON_S: f64 = 5.0; // default IngestPolicy lateness horizon

fn frames_for(node: NodeId, seconds: usize) -> Vec<NodeFrame> {
    (0..seconds)
        .map(|i| {
            let mut f = NodeFrame::empty(node, i as f64);
            f.set(catalog::input_power(), 1500.0 + (i % 37) as f64);
            f.set(
                catalog::gpu_core_temp(summit_repro::telemetry::ids::GpuSlot(0)),
                40.0 + (i % 11) as f64,
            );
            f
        })
        .collect()
}

/// Replays the delivered stream through the admission rule the
/// aggregator documents, returning (accepted frames, dup count,
/// late count, reorder count).
fn classify(delivered: &[NodeFrame]) -> (Vec<NodeFrame>, u64, u64, u64) {
    let mut watermark = f64::NEG_INFINITY;
    let mut seen: BTreeSet<i64> = BTreeSet::new();
    let mut accepted = Vec::new();
    let (mut dups, mut late, mut reordered) = (0u64, 0u64, 0u64);
    for f in delivered {
        let t = f.t_sample;
        let wm = if watermark.is_finite() { watermark } else { t };
        if t < wm - HORIZON_S {
            late += 1;
        } else if !seen.insert((t * 1000.0).round() as i64) {
            dups += 1;
        } else {
            if t < wm {
                reordered += 1;
            }
            accepted.push(f.clone());
            watermark = wm.max(t);
        }
    }
    (accepted, dups, late, reordered)
}

/// Bitwise window equality: derived `PartialEq` is useless here because
/// empty metrics and gap windows carry NaN stats, and `NaN != NaN`.
fn windows_bitwise_eq(a: &[NodeWindow], b: &[NodeWindow]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(x, y)| {
            x.node == y.node
                && x.window_start.to_bits() == y.window_start.to_bits()
                && x.stats.len() == y.stats.len()
                && x.stats.iter().zip(&y.stats).all(|(s, t)| {
                    s.count == t.count
                        && s.min.to_bits() == t.min.to_bits()
                        && s.max.to_bits() == t.max.to_bits()
                        && s.mean.to_bits() == t.mean.to_bits()
                        && s.std.to_bits() == t.std.to_bits()
                })
        })
}

fn coarsen(node: NodeId, frames: &[NodeFrame]) -> (Vec<NodeWindow>, u64) {
    let mut agg = WindowAggregator::paper(node);
    for f in frames {
        let _ = agg.push(f);
    }
    let (windows, health) = agg.finish_with_health();
    (windows, health.accepted)
}

#[test]
fn faulty_stream_matches_clean_reference_exactly() {
    let node = NodeId(0);
    let base = frames_for(node, 600);
    for (case, config) in [
        FaultConfig::light(1),
        FaultConfig::light(0xFEE1),
        FaultConfig {
            drop_p: 0.10,
            duplicate_p: 0.10,
            delay_p: 0.15,
            reorder_p: 0.05,
            seed: 42,
            ..FaultConfig::default()
        },
        FaultConfig {
            drop_p: 0.0,
            duplicate_p: 0.30,
            delay_p: 0.0,
            reorder_p: 0.25,
            seed: 7,
            ..FaultConfig::default()
        },
    ]
    .into_iter()
    .enumerate()
    {
        let mut injector = FaultInjector::new(config);
        let delivered = injector.deliver(base.clone());
        let injected = injector.injected();

        // Delivery conservation: every generated frame is delivered,
        // dropped, or delivered twice.
        assert_eq!(
            delivered.len() as u64,
            base.len() as u64 - injected.dropped + injected.duplicated,
            "case {case}: delivery conservation"
        );

        // The aggregator must agree with the documented admission rule
        // frame for frame.
        let (accepted, dups, late, reordered) = classify(&delivered);
        let mut agg = WindowAggregator::paper(node);
        for f in &delivered {
            let _ = agg.push(f);
        }
        let (faulty_windows, health) = agg.finish_with_health();
        assert_eq!(health.accepted, accepted.len() as u64, "case {case}");
        assert_eq!(health.duplicates, dups, "case {case}");
        assert_eq!(health.late_dropped, late, "case {case}");
        assert_eq!(health.reordered, reordered, "case {case}");
        assert_eq!(health.wrong_node + health.invalid, 0, "case {case}");
        assert_eq!(
            health.offered(),
            delivered.len() as u64,
            "case {case}: every delivered frame is counted exactly once"
        );

        // Every injected fault lands in a counter: drops never reach the
        // aggregator, duplicates dedup unless their copy outran the
        // horizon (then it is late), extra delays are late only if the
        // watermark moved past them.
        assert!(health.duplicates <= injected.duplicated, "case {case}");
        assert!(
            injected.duplicated - health.duplicates <= health.late_dropped,
            "case {case}"
        );

        // Identical windows to the clean, ordered replay of exactly the
        // accepted frames — including any NaN gap windows.
        let mut ordered = accepted;
        ordered.sort_by(|a, b| a.t_sample.total_cmp(&b.t_sample));
        let (clean_windows, clean_accepted) = coarsen(node, &ordered);
        assert_eq!(clean_accepted, health.accepted, "case {case}");
        assert!(
            windows_bitwise_eq(&faulty_windows, &clean_windows),
            "case {case}: faulty and clean coarsenings diverge"
        );
    }
}

#[test]
fn clean_stream_is_untouched_by_zero_probability_injector() {
    let node = NodeId(3);
    let base = frames_for(node, 120);
    let mut injector = FaultInjector::new(FaultConfig::default());
    let delivered = injector.deliver(base.clone());
    assert_eq!(injector.injected().total(), 0);
    assert_eq!(delivered.len(), base.len());
    let (windows, accepted) = coarsen(node, &delivered);
    assert_eq!(accepted, 120);
    assert_eq!(windows.len(), 12);
    assert!(windows
        .iter()
        .all(|w| w.metric(catalog::input_power()).count == 10));
}

/// The streaming pipeline under whole-cabinet outage bursts must match
/// a batch reference built from the same public primitives: generate
/// the tick stream once ([`run_detailed`]), inject the same fault
/// profile per node, coarsen in parallel — windows, ingest statistics
/// and injected-fault counts all agree to the bit.
#[test]
fn streaming_with_cabinet_outage_bursts_matches_batch_reference() {
    let outages = vec![
        CabinetOutage {
            cabinet: CabinetId(0),
            start_s: 30.0,
            end_s: 70.0,
        },
        CabinetOutage {
            cabinet: CabinetId(1),
            start_s: 100.0,
            end_s: 140.0,
        },
    ];
    let faults = FaultConfig::light(11);
    let duration_s = 240.0;

    // Batch reference, mirroring run_telemetry's association exactly.
    let mut config = EngineConfig::small(2);
    config.cabinet_outages = outages.clone();
    let dt = config.dt_s;
    let n_ticks = (duration_s / dt).ceil() as usize;
    let (ticks, _) = run_detailed(
        config,
        0.0,
        n_ticks,
        StepOptions {
            frames: true,
            ..Default::default()
        },
    );
    let mut frames_by_node: Vec<Vec<NodeFrame>> = Vec::new();
    for tick in ticks {
        if let Some(frames) = tick.frames {
            for f in frames {
                let idx = f.node.index();
                if frames_by_node.len() <= idx {
                    frames_by_node.resize_with(idx + 1, Vec::new);
                }
                frames_by_node[idx].push(f);
            }
        }
    }
    // The bursts took effect: a cabinet-0 node reports NaN during its
    // outage window and real power outside it.
    let in_outage = |f: &&NodeFrame| f.t_sample >= 30.0 && f.t_sample < 70.0;
    assert!(frames_by_node[0]
        .iter()
        .filter(in_outage)
        .all(|f| f.get(catalog::input_power()).is_nan()));
    assert!(frames_by_node[0]
        .iter()
        .filter(|f| !in_outage(f))
        .all(|f| !f.get(catalog::input_power()).is_nan()));

    let mut injector = FaultInjector::new(faults);
    let delivered: Vec<Vec<NodeFrame>> = frames_by_node
        .into_iter()
        .map(|batch| injector.deliver(batch))
        .collect();
    let mut ref_stats = IngestStats::default();
    for batch in &delivered {
        let mut node_stats = IngestStats::default();
        for f in batch {
            node_stats.observe(f);
        }
        ref_stats.merge(&node_stats);
    }
    let (ref_windows, ref_health) = coarsen_parallel_with_health(&delivered, PAPER_WINDOW_S);

    // The online pipeline over the same outage schedule.
    let mut cfg = StreamConfig::new(2, duration_s, Some(faults));
    cfg.cabinet_outages = outages;
    let run = run_streaming(cfg);

    // Exact fault accounting: injected counts and the coarsener's
    // health ledger agree with the reference integer for integer.
    assert_eq!(run.injected, injector.injected());
    assert_eq!(run.stats.health, ref_health);
    assert_eq!(run.stats.frames, ref_stats.frames);
    assert_eq!(run.stats.metrics, ref_stats.metrics);
    assert_eq!(
        run.stats.total_delay_s.to_bits(),
        ref_stats.total_delay_s.to_bits()
    );
    assert_eq!(
        run.stats.max_delay_s.to_bits(),
        ref_stats.max_delay_s.to_bits()
    );

    // Bit-identical coarsening, node by node (either side may omit
    // trailing all-silent nodes; absent means no windows).
    let nodes = run.windows_by_node.len().max(ref_windows.len());
    for i in 0..nodes {
        let stream_windows = run.windows_by_node.get(i).map_or(&[][..], Vec::as_slice);
        let batch_windows = ref_windows.get(i).map_or(&[][..], Vec::as_slice);
        assert!(
            windows_bitwise_eq(stream_windows, batch_windows),
            "node {i}: streaming and batch coarsenings diverge under outage bursts"
        );
    }
}

/// A duplicate arriving after its window has already closed (watermark
/// beyond the lateness horizon) must classify as `Late` — the pending
/// dedup set no longer remembers the key, and re-admitting the frame
/// would corrupt an already-emitted window.
#[test]
fn duplicate_after_window_close_is_late_never_a_wrong_window() {
    let node = NodeId(5);
    let mut agg = WindowAggregator::paper(node);
    let base = frames_for(node, 30);
    for f in &base {
        agg.push(f).unwrap();
    }
    // t=2 s: its 0-10 s window closed when the watermark hit 29 s.
    let err = agg.push(&base[2]).unwrap_err();
    assert!(matches!(err, IngestError::Late { .. }), "got {err}");
    let (windows, health) = agg.finish_with_health();
    assert_eq!(health.accepted, 30);
    assert_eq!(health.late_dropped, 1);
    assert_eq!(health.duplicates, 0);
    assert_eq!(windows.len(), 3);
    // The closed window the duplicate aimed at is untouched.
    assert!(windows
        .iter()
        .all(|w| w.metric(catalog::input_power()).count == 10));
}

/// A rogue first frame far in the future seeds the watermark; every
/// honest frame afterwards is beyond the horizon and must drop as
/// `Late` with exact accounting — never panic, never a wrong window.
#[test]
fn all_late_node_after_rogue_watermark_seed_accounts_exactly() {
    let node = NodeId(6);
    let mut agg = WindowAggregator::paper(node);
    let mut rogue = NodeFrame::empty(node, 1e6);
    rogue.set(catalog::input_power(), 1500.0);
    agg.push(&rogue).unwrap();
    for f in &frames_for(node, 50) {
        assert!(
            matches!(agg.push(f), Err(IngestError::Late { .. })),
            "frame at t={} admitted past a 1e6 s watermark",
            f.t_sample
        );
    }
    let (windows, health) = agg.finish_with_health();
    assert_eq!(health.accepted, 1);
    assert_eq!(health.late_dropped, 50);
    assert_eq!(health.duplicates + health.reordered, 0);
    assert_eq!(windows.len(), 1);
    assert_eq!(windows[0].window_start, 1e6);
}

/// The lateness boundary is inclusive: a frame at exactly
/// `watermark - horizon` is admitted (and counted reordered), one
/// strictly below it drops as late.
#[test]
fn frame_exactly_at_horizon_boundary_is_admitted() {
    let node = NodeId(7);
    let mut agg = WindowAggregator::paper(node);
    let at = |t: f64| {
        let mut f = NodeFrame::empty(node, t);
        f.set(catalog::input_power(), 1500.0);
        f
    };
    agg.push(&at(10.0)).unwrap();
    // Exactly watermark - horizon: inclusive accept, counted reordered.
    agg.push(&at(10.0 - HORIZON_S)).unwrap();
    // Strictly beyond the horizon: late.
    assert!(matches!(
        agg.push(&at(10.0 - HORIZON_S - 1.0)),
        Err(IngestError::Late { .. })
    ));
    let (_, health) = agg.finish_with_health();
    assert_eq!(health.accepted, 2);
    assert_eq!(health.reordered, 1);
    assert_eq!(health.late_dropped, 1);
}

#[test]
fn hostile_stream_never_panics() {
    // Wrong nodes, NaN timestamps, deep reversals, duplicates of
    // duplicates: the aggregator must classify everything and survive.
    let node = NodeId(1);
    let mut agg = WindowAggregator::paper(node);
    let mut frames = frames_for(node, 100);
    frames.reverse();
    let mut offered = 0u64;
    for f in &frames {
        let _ = agg.push(f);
        let _ = agg.push(f); // immediate duplicate
        offered += 2;
    }
    let _ = agg.push(&NodeFrame::empty(NodeId(99), 5.0));
    let _ = agg.push(&NodeFrame::empty(node, f64::NAN));
    let _ = agg.push(&NodeFrame::empty(node, f64::INFINITY));
    let _ = agg.push(&NodeFrame::empty(node, -1e12));
    offered += 4;
    let (windows, health) = agg.finish_with_health();
    assert_eq!(health.offered(), offered);
    assert_eq!(health.wrong_node, 1);
    assert_eq!(health.invalid, 2);
    // A fully reversed 1 Hz stream admits only the 5 s horizon's worth.
    assert!(health.accepted >= 6 && health.late_dropped > 0);
    assert!(!windows.is_empty());
}
