//! Trace-layer integration: the full fault-injected telemetry pipeline,
//! run under a virtual-clock [`TraceCollector`] and the deterministic
//! worker pool, must emit byte-identical Chrome traces across same-seed
//! runs, and those traces must round-trip through the repo's own
//! `core::json` parser with balanced B/E spans, named worker tracks,
//! synthesized pool epochs and the latency counter tracks present.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::core::json::Json;
use summit_repro::core::pipeline::run_telemetry;
use summit_repro::obs::registry::Registry;
use summit_repro::obs::trace::{
    write_chrome_json, write_folded, TraceClock, TraceCollector, TRACE_SCHEMA,
};
use summit_repro::telemetry::stream::FaultConfig;

/// Runs the default fault-injected scenario on a 2-thread pool under a
/// fresh registry + virtual-clock collector; returns both exports.
fn traced_run() -> (String, String) {
    rayon::with_thread_count(2, || {
        let registry = Registry::new();
        let collector = TraceCollector::new(TraceClock::Virtual);
        {
            let _scope = registry.install();
            let _trace = collector.install();
            let _run = run_telemetry(2, 120.0, Some(FaultConfig::light(7)));
        }
        let snapshot = collector.snapshot();
        let mut chrome = Vec::new();
        write_chrome_json(&mut chrome, &snapshot).unwrap();
        let mut folded = Vec::new();
        write_folded(&mut folded, &snapshot).unwrap();
        (
            String::from_utf8(chrome).unwrap(),
            String::from_utf8(folded).unwrap(),
        )
    })
}

/// The determinism contract extends to the trace itself: with the
/// virtual clock, two same-seed runs must serialize byte-for-byte
/// identically in both export formats.
#[test]
fn same_seed_traces_are_byte_identical() {
    let (chrome_a, folded_a) = traced_run();
    let (chrome_b, folded_b) = traced_run();
    assert_eq!(chrome_a, chrome_b, "chrome export must be reproducible");
    assert_eq!(folded_a, folded_b, "folded export must be reproducible");
    assert!(folded_a.contains("summit_core_run_telemetry"));
}

/// The Chrome export must parse with the repo's own JSON reader and be
/// structurally sound: schema-tagged, every `B` closed by a same-name
/// `E` on its tid, worker tracks named, at least one synthesized pool
/// epoch and at least one counter track.
#[test]
fn chrome_trace_round_trips_through_core_json() {
    let (chrome, _) = traced_run();
    let root = Json::parse(&chrome).expect("trace must be valid JSON");

    assert_eq!(
        root.get("schema").and_then(Json::as_str),
        Some(TRACE_SCHEMA)
    );
    assert_eq!(root.get("clock").and_then(Json::as_str), Some("virtual"));
    let events = root
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> =
        std::collections::BTreeMap::new();
    let mut tracks: Vec<String> = Vec::new();
    let mut pool_epochs = 0usize;
    let mut counters = 0usize;
    for event in events {
        let ph = event.get("ph").and_then(Json::as_str).expect("ph");
        let name = event.get("name").and_then(Json::as_str).expect("name");
        let tid = match event.get("tid") {
            Some(Json::Num(v)) => v.to_bits(),
            other => panic!("tid must be numeric, got {other:?}"),
        };
        match ph {
            "B" => stacks.entry(tid).or_default().push(name.to_owned()),
            "E" => {
                let open = stacks.entry(tid).or_default().pop();
                assert_eq!(open.as_deref(), Some(name), "E must close matching B");
            }
            "M" if name == "thread_name" => {
                let label = event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .expect("thread_name args.name");
                tracks.push(label.to_owned());
            }
            "C" => counters += 1,
            _ => {}
        }
        if name.starts_with("par_epoch") {
            pool_epochs += 1;
        }
    }
    for (tid, stack) in &stacks {
        assert!(
            stack.is_empty(),
            "unclosed B events on tid {tid}: {stack:?}"
        );
    }
    // Under `cargo test` the dispatching thread carries the test's
    // name (the driver names it `main`); either way it must have a
    // track distinct from the workers'.
    assert!(
        tracks.iter().any(|t| !t.starts_with("summit-par-")),
        "dispatcher track named, got {tracks:?}"
    );
    assert!(
        tracks.iter().any(|t| t == "summit-par-0"),
        "every pool worker gets a named track, got {tracks:?}"
    );
    assert!(
        pool_epochs > 0,
        "pool dispatch must synthesize epoch events"
    );
    assert!(counters > 0, "latency/throughput counter tracks expected");
    assert!(
        events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("summit_core_frame_to_alert_p99_seconds")
        }),
        "frame-to-alert latency counter track expected"
    );
}

/// A tiny ring drops the overflow with exact accounting, and the drop
/// total survives into the export header.
#[test]
fn ring_overflow_is_reported_in_the_export() {
    let collector = TraceCollector::with_capacity(TraceClock::Virtual, 8);
    {
        let _trace = collector.install();
        for _ in 0..20 {
            let _g = summit_repro::obs::span("summit_trace_layer_overflow");
        }
    }
    let snapshot = collector.snapshot();
    assert!(snapshot.dropped_total > 0);
    let mut out = Vec::new();
    write_chrome_json(&mut out, &snapshot).unwrap();
    let root = Json::parse(&String::from_utf8(out).unwrap()).unwrap();
    assert_eq!(
        root.get("dropped_events").and_then(Json::as_f64),
        Some(snapshot.dropped_total as f64)
    );
}

/// With no collector installed the span layer still records metrics —
/// tracing is strictly opt-in and must not perturb the default path.
#[test]
fn spans_record_metrics_without_an_installed_collector() {
    let registry = Registry::new();
    {
        let _scope = registry.install();
        let _g = summit_repro::obs::span("summit_trace_layer_untraced");
    }
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("summit_trace_layer_untraced_calls_total"),
        Some(1)
    );
}
