//! Cross-validation of the closed-form job statistics (the population
//! fast path) against a true 1 Hz engine replay of the same job — the
//! reproduction's equivalent of validating derived datasets against the
//! raw stream.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use rand::rngs::StdRng;
use rand::SeedableRng;
use summit_repro::sim::engine::{Engine, EngineConfig};
use summit_repro::sim::jobs::JobGenerator;
use summit_repro::sim::jobstats::{job_power_series, job_stats, mean_envelope};
use summit_repro::sim::power::PowerModel;

#[test]
fn closed_form_matches_engine_replay() {
    let cabinets = 5; // 90 nodes
    let mut rng = StdRng::seed_from_u64(7);
    let mut gen = JobGenerator::new();
    let mut job = gen.generate_with_class(&mut rng, 30.0, 5);
    job.record.node_count = 45;
    job.record.end_time = job.record.begin_time + 600.0;
    job.profile.gpu_intensity = 0.8;
    job.profile.cpu_intensity = 0.3;
    job.profile.oscillation_depth = 0.3;
    job.profile.oscillation_period_s = 200.0;
    job.profile.checkpoint_interval_s = 0.0;
    job.profile.ramp_s = 20.0;

    // Closed form.
    let pm = PowerModel::new(2020);
    let stats = job_stats(&job, &pm);

    // Engine replay at 1 Hz.
    let mut engine_cfg = EngineConfig::small(cabinets);
    engine_cfg.seed = 2020;
    let mut engine = Engine::new(engine_cfg, 0.0);
    let idle_per_node = {
        let out = engine.step();
        out.true_compute_power_w / (cabinets as f64 * 18.0)
    };
    engine.scheduler().submit(job.clone());
    let mut job_power = Vec::new();
    for _ in 0..700 {
        let out = engine.step();
        // Busy nodes carry the job; subtract the idle remainder to get
        // the job's own power footprint.
        if out.busy_nodes > 0 {
            let idle_nodes = (cabinets * 18 - out.busy_nodes) as f64;
            job_power.push(out.true_compute_power_w - idle_nodes * idle_per_node);
        }
    }
    assert!(
        job_power.len() >= 590,
        "job should run for its walltime, saw {} busy ticks",
        job_power.len()
    );
    let replay_mean: f64 = job_power.iter().sum::<f64>() / job_power.len() as f64;
    let replay_max: f64 = job_power.iter().cloned().fold(f64::MIN, f64::max);

    let mean_rel = (stats.mean_power_w - replay_mean).abs() / replay_mean;
    assert!(
        mean_rel < 0.08,
        "closed-form mean {} vs replay {} ({mean_rel})",
        stats.mean_power_w,
        replay_mean
    );
    let max_rel = (stats.max_power_w - replay_max).abs() / replay_max;
    assert!(
        max_rel < 0.08,
        "closed-form max {} vs replay {} ({max_rel})",
        stats.max_power_w,
        replay_max
    );
}

#[test]
fn synthetic_series_consistent_with_stats() {
    let mut rng = StdRng::seed_from_u64(9);
    let mut gen = JobGenerator::new();
    let pm = PowerModel::new(2020);
    for _ in 0..30 {
        let job = gen.generate(&mut rng, 0.0);
        let stats = job_stats(&job, &pm);
        let series = job_power_series(&job, &pm, 10.0);
        let series_mean = series.values().iter().sum::<f64>() / series.len().max(1) as f64;
        let series_max = series.values().iter().cloned().fold(f64::MIN, f64::max);
        // The series samples the same model the stats integrate: means
        // agree within a few percent (discretization + rep-node averaging),
        // maxima within the peak-jitter band.
        let mean_rel = (stats.mean_power_w - series_mean).abs() / series_mean.max(1.0);
        assert!(
            mean_rel < 0.10,
            "job {:?}: stats mean {} vs series mean {}",
            job.record.allocation_id,
            stats.mean_power_w,
            series_mean
        );
        assert!(
            series_max <= stats.max_power_w * 1.10 + 1.0,
            "series max {} exceeds stats max {}",
            series_max,
            stats.max_power_w
        );
    }
}

#[test]
fn mean_envelope_matches_numeric_integration() {
    let mut rng = StdRng::seed_from_u64(11);
    let mut gen = JobGenerator::new();
    for _ in 0..50 {
        let job = gen.generate(&mut rng, 0.0);
        let closed = mean_envelope(&job);
        // Numeric average of the envelope at 1 s resolution.
        let sig = summit_repro::sim::workload::WorkloadSignal::new(
            job.profile,
            job.record.walltime_s(),
            job.seed,
        );
        let n = job.record.walltime_s() as usize;
        let num: f64 = (0..n).map(|i| sig.envelope(i as f64)).sum::<f64>() / n.max(1) as f64;
        assert!(
            (closed - num).abs() < 0.06,
            "closed {closed} vs numeric {num} for {:?}",
            job.profile
        );
    }
}
