//! Paper-fidelity smoke tests (full floor / year populations).
//!
//! These take minutes each, so they are `#[ignore]`d by default; run
//! them with `cargo test --release --test full_fidelity -- --ignored`.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::core::experiments::*;

#[test]
#[ignore = "paper-scale: full 840k-job year (~30 s)"]
fn full_year_trend_hits_paper_anchors() {
    let r = fig05::run(&fig05::Config::default());
    assert!(
        (1.08..1.16).contains(&r.annual_avg_pue),
        "PUE {}",
        r.annual_avg_pue
    );
    assert!(r.summer_avg_pue > r.annual_avg_pue);
    assert!(r.maintenance_peak_pue > 1.25);
    assert!(
        (4.5e6..7.5e6).contains(&r.mean_power_w),
        "mean {}",
        r.mean_power_w
    );
    assert!(r.max_power_w > 9.0e6, "peak {}", r.max_power_w);
    assert!(r.min_power_w >= 2.4e6);
}

#[test]
#[ignore = "paper-scale: full floor, 1-7 MW edges (~1 min)"]
fn full_floor_edge_snapshots() {
    let r = fig11::run(&fig11::Config::default());
    assert!(r.classes.len() >= 5, "most MW classes detected");
    let biggest = r.classes.last().unwrap();
    assert!(biggest.amplitude_mw >= 6.0);
    assert!(biggest.rise_in_60s_w > 5.0e6, "7 MW swing rises fast");
    for c in &r.classes {
        assert!(c.power_pue_r < -0.5, "inverse PUE at {} MW", c.amplitude_mw);
    }
    assert!(r.pue_at_peak < r.pue_at_baseline);
}

#[test]
#[ignore = "paper-scale: full floor thermal response (~1 min)"]
fn full_floor_thermal_response() {
    let r = fig12::run(&fig12::Config::default());
    assert!(r.gpu_swing_c > 10.0, "GPU swing {}", r.gpu_swing_c);
    assert!(r.gpu_swing_c > 3.0 * r.cpu_swing_c.abs());
    assert!(
        (30.0..200.0).contains(&r.cooling_half_response_s),
        "cooling response {}",
        r.cooling_half_response_s
    );
}

#[test]
#[ignore = "paper-scale: 4,608-node exemplar job (~2 min)"]
fn full_floor_job_variability() {
    let r = fig17::run(&fig17::Config::default());
    assert_eq!(r.job_nodes, summit_repro::sim::spec::MAX_JOB_NODES);
    assert!(
        (30.0..90.0).contains(&r.peak_power_spread_w),
        "62 W anchor, got {}",
        r.peak_power_spread_w
    );
    assert!(
        (8.0..25.0).contains(&r.peak_temp_spread_c),
        "15.8 C anchor, got {}",
        r.peak_temp_spread_c
    );
    assert!(r.frac_over_60c < 0.02);
    assert!(r.transition_s < 30.0, "under half a minute");
}

#[test]
#[ignore = "paper-scale: full failure year (~30 s)"]
fn full_year_failure_composition() {
    let r = table4::run(&table4::Config::default());
    assert!(
        (r.total_annual / r.paper_total as f64 - 1.0).abs() < 0.2,
        "annual total {} vs paper {}",
        r.total_annual,
        r.paper_total
    );
    let nvlink = r
        .rows
        .iter()
        .find(|row| row.kind == summit_repro::telemetry::records::XidErrorKind::NvlinkError)
        .unwrap();
    assert!(nvlink.max_node_share > 0.9);
}
