//! Property-based invariants spanning crates (proptest).

use proptest::prelude::*;
use summit_repro::analysis::cdf::Ecdf;
use summit_repro::analysis::edges::detect_edges;
use summit_repro::analysis::fft::{fft_padded, ifft_in_place};
use summit_repro::analysis::pue::integrate_energy;
use summit_repro::analysis::series::Series;
use summit_repro::analysis::stats::{quantile, BoxStats, Welford};
use summit_repro::telemetry::codec::{decode_column, encode_column, zigzag_decode, zigzag_encode};
use summit_repro::telemetry::ids::NodeId;
use summit_repro::telemetry::records::NodeFrame;
use summit_repro::telemetry::window::WindowAggregator;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn zigzag_roundtrip(v in any::<i64>()) {
        prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }

    #[test]
    fn codec_roundtrip(col in prop::collection::vec(-1_000_000i64..1_000_000, 0..500)) {
        let mut buf = bytes::BytesMut::new();
        encode_column(&col, &mut buf);
        let mut bytes = buf.freeze();
        prop_assert_eq!(decode_column(&mut bytes), Some(col));
    }

    #[test]
    fn welford_matches_two_pass(data in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((w.variance() - var).abs() < 1e-5 * (1.0 + var.abs()));
        prop_assert!(w.min() <= w.mean() + 1e-9 && w.mean() <= w.max() + 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(data in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let q25 = quantile(&data, 0.25);
        let q50 = quantile(&data, 0.5);
        let q75 = quantile(&data, 0.75);
        prop_assert!(q25 <= q50 && q50 <= q75);
    }

    #[test]
    fn boxstats_ordering(data in prop::collection::vec(-1e3f64..1e3, 1..100)) {
        let b = BoxStats::compute(&data).unwrap();
        prop_assert!(b.min <= b.whisker_lo + 1e-9);
        prop_assert!(b.whisker_lo <= b.q1 + 1e-9);
        prop_assert!(b.q1 <= b.median && b.median <= b.q3);
        prop_assert!(b.q3 <= b.whisker_hi + 1e-9);
        prop_assert!(b.whisker_hi <= b.max + 1e-9);
        prop_assert_eq!(b.count, data.len());
    }

    #[test]
    fn ecdf_monotone_and_bounded(data in prop::collection::vec(-1e3f64..1e3, 1..100), probe in -2e3f64..2e3) {
        let e = Ecdf::new(&data).unwrap();
        let f = e.eval(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        prop_assert!(e.eval(e.max()) == 1.0);
        prop_assert!(e.eval(e.min() - 1.0) == 0.0);
    }

    #[test]
    fn fft_roundtrip_random(data in prop::collection::vec(-1e3f64..1e3, 1..129)) {
        let mut spec = fft_padded(&data);
        ifft_in_place(&mut spec);
        for (z, &x) in spec.iter().zip(&data) {
            prop_assert!((z.re - x).abs() < 1e-6);
            prop_assert!(z.im.abs() < 1e-6);
        }
    }

    #[test]
    fn energy_integration_additive(
        data in prop::collection::vec(0.0f64..1e6, 2..200),
        split in 1usize..100,
    ) {
        let s = Series::new(0.0, 1.0, data.clone());
        let k = split.min(data.len() - 1);
        let whole = integrate_energy(&s).energy_j;
        let a = integrate_energy(&s.window(0.0, k as f64)).energy_j;
        let b = integrate_energy(&s.window(k as f64, data.len() as f64)).energy_j;
        prop_assert!((whole - (a + b)).abs() < 1e-6 * (1.0 + whole.abs()));
    }

    #[test]
    fn edges_have_consistent_geometry(
        values in prop::collection::vec(0.0f64..1e7, 4..200),
        threshold in 1e4f64..1e6,
    ) {
        let s = Series::new(0.0, 10.0, values);
        for e in detect_edges(&s, threshold) {
            prop_assert!(e.start_index < s.len());
            prop_assert!(e.peak_index < s.len());
            prop_assert!(e.peak_index >= e.start_index);
            prop_assert!(e.step.abs() >= threshold * 0.999);
            if let Some(d) = e.duration_s {
                prop_assert!(d >= 0.0);
                prop_assert!(d <= s.len() as f64 * s.dt());
            }
        }
    }

    #[test]
    fn window_stats_bound_samples(
        samples in prop::collection::vec(0.0f64..5000.0, 1..50),
    ) {
        let mut agg = WindowAggregator::paper(NodeId(0));
        for (i, &v) in samples.iter().enumerate() {
            let mut f = NodeFrame::empty(NodeId(0), i as f64);
            f.set(summit_repro::telemetry::catalog::input_power(), v);
            agg.push(&f);
        }
        for w in agg.finish() {
            let s = w.metric(summit_repro::telemetry::catalog::input_power());
            if s.count > 0 {
                prop_assert!(s.min <= s.mean + 1e-6);
                prop_assert!(s.mean <= s.max + 1e-6);
                prop_assert!(s.std >= 0.0);
                prop_assert!(s.count <= 10);
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn power_model_monotone_everywhere(
        node in 0u32..4626,
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
    ) {
        use summit_repro::sim::power::{NodeUtilization, PowerModel};
        let pm = PowerModel::new(1);
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let p_lo = pm.node_power(NodeId(node), &NodeUtilization::uniform(lo, lo)).input_w;
        let p_hi = pm.node_power(NodeId(node), &NodeUtilization::uniform(hi, hi)).input_w;
        prop_assert!(p_lo <= p_hi + 1e-9);
        prop_assert!(p_lo > 0.0);
        prop_assert!(p_hi <= summit_repro::sim::spec::NODE_MAX_POWER_W + 1e-9);
    }

    #[test]
    fn scheduler_churn_conserves_nodes(
        seed in 0u64..1000,
        submissions in 1usize..40,
    ) {
        use rand::{Rng, SeedableRng};
        use summit_repro::sim::jobs::JobGenerator;
        use summit_repro::sim::scheduler::Scheduler;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut gen = JobGenerator::new();
        let total = 200usize;
        let mut sched = Scheduler::new(total);
        let mut t = 0.0;
        for _ in 0..submissions {
            t += rng.gen::<f64>() * 400.0;
            let mut job = gen.generate_with_class(&mut rng, t, 5);
            job.record.end_time = job.record.begin_time + 60.0 + rng.gen::<f64>() * 600.0;
            sched.submit(job);
            sched.advance(t);
            // Invariant: free + allocated == total, no node double-booked.
            let allocated: usize = sched.running().iter().map(|p| p.nodes.len()).sum();
            prop_assert_eq!(sched.free_nodes() + allocated, total);
            let mut seen = std::collections::HashSet::new();
            for p in sched.running() {
                for n in &p.nodes {
                    prop_assert!(seen.insert(n.0), "node {} double-allocated", n);
                }
            }
        }
        // Drain: everything eventually completes and all nodes free.
        sched.advance(t + 30.0 * 86400.0);
        prop_assert_eq!(sched.free_nodes(), total);
        prop_assert!(sched.running().is_empty());
    }

    #[test]
    fn facility_records_are_physical(
        it_mw in 0.5f64..12.0,
        wet_bulb in -5.0f64..25.0,
    ) {
        use summit_repro::sim::facility::{Facility, FacilityConfig};
        let mut fac = Facility::new(FacilityConfig::default(), it_mw * 1e6);
        let mut rec = fac.step(0.0, it_mw * 1e6, wet_bulb, 10.0);
        for i in 1..200 {
            rec = fac.step(i as f64 * 10.0, it_mw * 1e6, wet_bulb, 10.0);
        }
        prop_assert!(rec.facility_power_w >= rec.it_power_w, "facility < IT");
        prop_assert!(rec.pue() >= 1.0 && rec.pue() < 1.6, "PUE {}", rec.pue());
        prop_assert!(rec.tower_tons >= 0.0 && rec.chiller_tons >= 0.0);
        prop_assert!(rec.mtw_return_c > rec.mtw_supply_c - 1.0);
    }

    #[test]
    fn thermal_steady_state_above_water(
        node in 0u32..4626,
        util in 0.0f64..1.0,
        water in 15.0f64..25.0,
    ) {
        use summit_repro::sim::power::{NodeUtilization, PowerModel};
        use summit_repro::sim::thermal::ThermalModel;
        let pm = PowerModel::new(1);
        let tm = ThermalModel::new(1);
        let p = pm.node_power(NodeId(node), &NodeUtilization::uniform(util, util));
        let t = tm.steady_state(NodeId(node), &p, water);
        for g in t.gpu_core_c {
            prop_assert!(g >= water, "GPU below water temp");
            prop_assert!(g < 90.0, "GPU unphysically hot");
        }
        for c in t.cpu_c {
            prop_assert!(c >= water && c < 90.0);
        }
    }
}
