//! Property-based invariants spanning crates.
//!
//! Originally written with `proptest`; rewritten as deterministic
//! seeded-random sweeps (the offline toolchain has no proptest). Every
//! case derives from a fixed-seed [`StdRng`], so failures reproduce
//! exactly — print the `case` index from the assertion message and
//! re-run.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use summit_repro::analysis::cdf::Ecdf;
use summit_repro::analysis::edges::detect_edges;
use summit_repro::analysis::fft::{fft_padded, ifft_in_place};
use summit_repro::analysis::pue::integrate_energy;
use summit_repro::analysis::series::Series;
use summit_repro::analysis::stats::{quantile, BoxStats, Welford};
use summit_repro::telemetry::codec::{decode_column, encode_column, zigzag_decode, zigzag_encode};
use summit_repro::telemetry::ids::NodeId;
use summit_repro::telemetry::records::NodeFrame;
use summit_repro::telemetry::window::WindowAggregator;

const CASES: usize = 64;

fn vec_f64(rng: &mut StdRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let n = rng.gen_range(min_len..max_len);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

#[test]
fn zigzag_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xA11CE);
    for case in 0..CASES {
        let v: i64 = rng.gen();
        assert_eq!(zigzag_decode(zigzag_encode(v)), v, "case {case}: v={v}");
    }
    for v in [i64::MIN, i64::MAX, 0, -1, 1] {
        assert_eq!(zigzag_decode(zigzag_encode(v)), v);
    }
}

#[test]
fn codec_roundtrip() {
    let mut rng = StdRng::seed_from_u64(0xC0DEC);
    for case in 0..CASES {
        let n = rng.gen_range(0usize..500);
        let col: Vec<i64> = (0..n)
            .map(|_| rng.gen_range(-1_000_000i64..1_000_000))
            .collect();
        let mut buf = bytes::BytesMut::new();
        encode_column(&col, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_column(&mut bytes), Some(col), "case {case}");
    }
}

#[test]
fn welford_matches_two_pass() {
    let mut rng = StdRng::seed_from_u64(0x3E1F0);
    for case in 0..CASES {
        let data = vec_f64(&mut rng, -1e6, 1e6, 2, 200);
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        assert!(
            (w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()),
            "case {case}: mean {} vs {mean}",
            w.mean()
        );
        assert!(
            (w.variance() - var).abs() < 1e-5 * (1.0 + var.abs()),
            "case {case}: var {} vs {var}",
            w.variance()
        );
        assert!(
            w.min() <= w.mean() + 1e-9 && w.mean() <= w.max() + 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn quantiles_are_monotone() {
    let mut rng = StdRng::seed_from_u64(0x9A117);
    for case in 0..CASES {
        let data = vec_f64(&mut rng, -1e3, 1e3, 1, 100);
        let q25 = quantile(&data, 0.25);
        let q50 = quantile(&data, 0.5);
        let q75 = quantile(&data, 0.75);
        assert!(q25 <= q50 && q50 <= q75, "case {case}: {q25} {q50} {q75}");
    }
}

#[test]
fn boxstats_ordering() {
    let mut rng = StdRng::seed_from_u64(0xB0857);
    for case in 0..CASES {
        let data = vec_f64(&mut rng, -1e3, 1e3, 1, 100);
        let b = BoxStats::compute(&data).expect("non-empty data");
        assert!(b.min <= b.whisker_lo + 1e-9, "case {case}");
        assert!(b.whisker_lo <= b.q1 + 1e-9, "case {case}");
        assert!(b.q1 <= b.median && b.median <= b.q3, "case {case}");
        assert!(b.q3 <= b.whisker_hi + 1e-9, "case {case}");
        assert!(b.whisker_hi <= b.max + 1e-9, "case {case}");
        assert_eq!(b.count, data.len(), "case {case}");
    }
}

#[test]
fn ecdf_monotone_and_bounded() {
    let mut rng = StdRng::seed_from_u64(0xECDF);
    for case in 0..CASES {
        let data = vec_f64(&mut rng, -1e3, 1e3, 1, 100);
        let probe = rng.gen_range(-2e3f64..2e3);
        let e = Ecdf::new(&data).expect("non-empty data");
        let f = e.eval(probe);
        assert!((0.0..=1.0).contains(&f), "case {case}: F={f}");
        assert!(e.eval(e.max()) == 1.0, "case {case}");
        assert!(e.eval(e.min() - 1.0) == 0.0, "case {case}");
    }
}

#[test]
fn fft_roundtrip_random() {
    let mut rng = StdRng::seed_from_u64(0xFF7);
    for case in 0..CASES {
        let data = vec_f64(&mut rng, -1e3, 1e3, 1, 129);
        let mut spec = fft_padded(&data);
        ifft_in_place(&mut spec);
        for (z, &x) in spec.iter().zip(&data) {
            assert!((z.re - x).abs() < 1e-6, "case {case}");
            assert!(z.im.abs() < 1e-6, "case {case}");
        }
    }
}

#[test]
fn energy_integration_additive() {
    let mut rng = StdRng::seed_from_u64(0xE6E);
    for case in 0..CASES {
        let data = vec_f64(&mut rng, 0.0, 1e6, 2, 200);
        let split = rng.gen_range(1usize..100);
        let s = Series::new(0.0, 1.0, data.clone());
        let k = split.min(data.len() - 1);
        let whole = integrate_energy(&s).energy_j;
        let a = integrate_energy(&s.window(0.0, k as f64)).energy_j;
        let b = integrate_energy(&s.window(k as f64, data.len() as f64)).energy_j;
        assert!(
            (whole - (a + b)).abs() < 1e-6 * (1.0 + whole.abs()),
            "case {case}: {whole} vs {a}+{b}"
        );
    }
}

#[test]
fn edges_have_consistent_geometry() {
    let mut rng = StdRng::seed_from_u64(0xED6E);
    for case in 0..CASES {
        let values = vec_f64(&mut rng, 0.0, 1e7, 4, 200);
        let threshold = rng.gen_range(1e4f64..1e6);
        let s = Series::new(0.0, 10.0, values);
        for e in detect_edges(&s, threshold) {
            assert!(e.start_index < s.len(), "case {case}");
            assert!(e.peak_index < s.len(), "case {case}");
            assert!(e.peak_index >= e.start_index, "case {case}");
            assert!(e.step.abs() >= threshold * 0.999, "case {case}");
            if let Some(d) = e.duration_s {
                assert!(d >= 0.0, "case {case}");
                assert!(d <= s.len() as f64 * s.dt(), "case {case}");
            }
        }
    }
}

#[test]
fn window_stats_bound_samples() {
    let mut rng = StdRng::seed_from_u64(0x3B00);
    for case in 0..CASES {
        let samples = vec_f64(&mut rng, 0.0, 5000.0, 1, 50);
        let mut agg = WindowAggregator::paper(NodeId(0));
        for (i, &v) in samples.iter().enumerate() {
            let mut f = NodeFrame::empty(NodeId(0), i as f64);
            f.set(summit_repro::telemetry::catalog::input_power(), v);
            agg.push(&f).unwrap();
        }
        for w in agg.finish() {
            let s = w.metric(summit_repro::telemetry::catalog::input_power());
            if s.count > 0 {
                assert!(s.min <= s.mean + 1e-6, "case {case}");
                assert!(s.mean <= s.max + 1e-6, "case {case}");
                assert!(s.std >= 0.0, "case {case}");
                assert!(s.count <= 10, "case {case}");
            }
        }
    }
}

#[test]
fn power_model_monotone_everywhere() {
    use summit_repro::sim::power::{NodeUtilization, PowerModel};
    let mut rng = StdRng::seed_from_u64(0x90E3);
    let pm = PowerModel::new(1);
    for case in 0..16 {
        let node = rng.gen_range(0..summit_repro::sim::spec::TOTAL_NODES as u32);
        let u1 = rng.gen_range(0.0f64..1.0);
        let u2 = rng.gen_range(0.0f64..1.0);
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let p_lo = pm
            .node_power(NodeId(node), &NodeUtilization::uniform(lo, lo))
            .input_w;
        let p_hi = pm
            .node_power(NodeId(node), &NodeUtilization::uniform(hi, hi))
            .input_w;
        assert!(p_lo <= p_hi + 1e-9, "case {case}: {p_lo} > {p_hi}");
        assert!(p_lo > 0.0, "case {case}");
        assert!(
            p_hi <= summit_repro::sim::spec::NODE_MAX_POWER_W + 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn scheduler_churn_conserves_nodes() {
    use summit_repro::sim::jobs::JobGenerator;
    use summit_repro::sim::scheduler::Scheduler;
    let mut meta = StdRng::seed_from_u64(0x5C3D);
    for case in 0..16 {
        let seed = meta.gen_range(0u64..1000);
        let submissions = meta.gen_range(1usize..40);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = JobGenerator::new();
        let total = 200usize;
        let mut sched = Scheduler::new(total);
        let mut t = 0.0;
        for _ in 0..submissions {
            t += rng.gen::<f64>() * 400.0;
            let mut job = gen.generate_with_class(&mut rng, t, 5);
            job.record.end_time = job.record.begin_time + 60.0 + rng.gen::<f64>() * 600.0;
            sched.submit(job);
            sched.advance(t);
            // Invariant: free + allocated == total, no node double-booked.
            let allocated: usize = sched.running().iter().map(|p| p.nodes.len()).sum();
            assert_eq!(sched.free_nodes() + allocated, total, "case {case}");
            let mut seen = std::collections::HashSet::new();
            for p in sched.running() {
                for n in &p.nodes {
                    assert!(seen.insert(n.0), "case {case}: node {n} double-allocated");
                }
            }
        }
        // Drain: everything eventually completes and all nodes free.
        sched.advance(t + 30.0 * 86400.0);
        assert_eq!(sched.free_nodes(), total, "case {case}");
        assert!(sched.running().is_empty(), "case {case}");
    }
}

#[test]
fn facility_records_are_physical() {
    use summit_repro::sim::facility::{Facility, FacilityConfig};
    let mut rng = StdRng::seed_from_u64(0xFAC);
    for case in 0..16 {
        let it_mw = rng.gen_range(0.5f64..12.0);
        let wet_bulb = rng.gen_range(-5.0f64..25.0);
        let mut fac = Facility::new(FacilityConfig::default(), it_mw * 1e6);
        let mut rec = fac.step(0.0, it_mw * 1e6, wet_bulb, 10.0);
        for i in 1..200 {
            rec = fac.step(i as f64 * 10.0, it_mw * 1e6, wet_bulb, 10.0);
        }
        assert!(
            rec.facility_power_w >= rec.it_power_w,
            "case {case}: facility < IT"
        );
        assert!(
            rec.pue() >= 1.0 && rec.pue() < 1.6,
            "case {case}: PUE {}",
            rec.pue()
        );
        assert!(
            rec.tower_tons >= 0.0 && rec.chiller_tons >= 0.0,
            "case {case}"
        );
        assert!(rec.mtw_return_c > rec.mtw_supply_c - 1.0, "case {case}");
    }
}

#[test]
fn thermal_steady_state_above_water() {
    use summit_repro::sim::power::{NodeUtilization, PowerModel};
    use summit_repro::sim::thermal::ThermalModel;
    let mut rng = StdRng::seed_from_u64(0x7E3);
    let pm = PowerModel::new(1);
    let tm = ThermalModel::new(1);
    for case in 0..16 {
        let node = rng.gen_range(0..summit_repro::sim::spec::TOTAL_NODES as u32);
        let util = rng.gen_range(0.0f64..1.0);
        let water = rng.gen_range(15.0f64..25.0);
        let p = pm.node_power(NodeId(node), &NodeUtilization::uniform(util, util));
        let t = tm.steady_state(NodeId(node), &p, water);
        for g in t.gpu_core_c {
            assert!(g >= water, "case {case}: GPU below water temp");
            assert!(g < 90.0, "case {case}: GPU unphysically hot");
        }
        for c in t.cpu_c {
            assert!(c >= water && c < 90.0, "case {case}");
        }
    }
}
