//! End-to-end pipeline integration: engine -> frames -> fan-in -> archive
//! -> coarsening -> cluster/job aggregation, mirroring the paper's Figure 3
//! data path.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::sim::engine::{Engine, EngineConfig, StepOptions};
use summit_repro::sim::jobs::JobGenerator;
use summit_repro::telemetry::catalog;
use summit_repro::telemetry::cluster::{cluster_power, cluster_power_series};
use summit_repro::telemetry::ids::NodeId;
use summit_repro::telemetry::jobjoin::{job_level_power, join_jobs, AllocationIndex};
use summit_repro::telemetry::store::TelemetryStore;
use summit_repro::telemetry::window::WindowAggregator;

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Runs a small engine with one job and returns (frames per node, job
/// allocations, true power per tick).
fn simulate(
    cabinets: usize,
    seconds: usize,
) -> (
    Vec<Vec<summit_repro::telemetry::records::NodeFrame>>,
    Vec<summit_repro::telemetry::records::NodeAllocation>,
    Vec<f64>,
) {
    let mut engine = Engine::new(EngineConfig::small(cabinets), 0.0);
    let mut rng = StdRng::seed_from_u64(42);
    let mut gen = JobGenerator::new();
    let mut job = gen.generate_with_class(&mut rng, 10.0, 5);
    job.record.node_count = (cabinets as u32 * 18) / 2;
    job.record.end_time = job.record.begin_time + seconds as f64;
    job.profile.gpu_intensity = 0.85;
    job.profile.checkpoint_interval_s = 0.0;
    engine.scheduler().submit(job);

    let nodes = engine.topology().node_count();
    let mut frames_by_node = vec![Vec::with_capacity(seconds); nodes];
    let mut true_power = Vec::with_capacity(seconds);
    for _ in 0..seconds {
        let out = engine.step_opts(&StepOptions {
            frames: true,
            ..Default::default()
        });
        true_power.push(out.true_compute_power_w);
        for f in out.frames.unwrap() {
            frames_by_node[f.node.index()].push(f);
        }
    }
    let allocs = engine.scheduler_ref().all_node_allocations();
    (frames_by_node, allocs, true_power)
}

#[test]
fn cluster_aggregation_matches_truth_within_sensor_error() {
    let (frames, _, true_power) = simulate(4, 60);
    let windows: Vec<_> = frames
        .iter()
        .enumerate()
        .map(|(n, fs)| {
            let mut agg = WindowAggregator::paper(NodeId(n as u32));
            for f in fs {
                agg.push(f).unwrap();
            }
            agg.finish()
        })
        .collect();
    let rows = cluster_power(&windows);
    assert_eq!(rows.len(), 6, "60 s at 10 s windows");
    // Every node reports in every window.
    for r in &rows {
        assert_eq!(r.count_inp as usize, frames.len());
    }
    // Cluster sums should track the true power within the ~1-2 % sensor
    // bias + noise.
    let true_mean: f64 = true_power.iter().sum::<f64>() / true_power.len() as f64;
    let est_mean: f64 = rows.iter().map(|r| r.sum_inp).sum::<f64>() / rows.len() as f64;
    let rel = (est_mean - true_mean).abs() / true_mean;
    assert!(rel < 0.03, "cluster estimate off by {rel}");
    // And the series fills without gaps.
    let series = cluster_power_series(&rows, 10.0).unwrap();
    assert_eq!(series.missing_fraction(), 0.0);
}

#[test]
fn job_join_attributes_only_job_windows() {
    let (frames, allocs, _) = simulate(4, 60);
    let windows: Vec<_> = frames
        .iter()
        .enumerate()
        .map(|(n, fs)| {
            let mut agg = WindowAggregator::paper(NodeId(n as u32));
            for f in fs {
                agg.push(f).unwrap();
            }
            agg.finish()
        })
        .collect();
    let index = AllocationIndex::build(&allocs);
    let (rows, comp) = join_jobs(&windows, &index);
    assert!(!rows.is_empty(), "the job must appear in the join");
    let job_nodes = allocs.len();
    for r in &rows {
        assert!(r.count_hostname as usize <= job_nodes);
        assert!(r.sum_inp > 0.0);
    }
    // Job-level collapse is consistent with its windows.
    let jobs = job_level_power(&rows, 10.0);
    assert_eq!(jobs.len(), 1);
    let j = &jobs[0];
    let max_row = rows.iter().map(|r| r.sum_inp).fold(f64::MIN, f64::max);
    assert!((j.max_sum_inp - max_row).abs() < 1e-9);
    assert!(j.mean_sum_inp <= j.max_sum_inp);
    assert!(j.energy_j > 0.0);
    // Component rows align with power rows.
    assert_eq!(comp.len(), rows.len());
    for c in &comp {
        assert!(c.mean_gpu_power > 0.0, "GPU-heavy job must show GPU power");
    }
}

#[test]
fn archive_roundtrip_through_store() {
    let (frames, _, _) = simulate(2, 60);
    let store = TelemetryStore::new();
    for (n, fs) in frames.iter().enumerate() {
        store.archive_partition(NodeId(n as u32), fs);
    }
    assert_eq!(store.partition_count(), 36);
    let restored = store.load_partition(NodeId(0), 0.0).unwrap();
    assert_eq!(restored.len(), 60);
    for (orig, rest) in frames[0].iter().zip(&restored) {
        let a = orig.get(catalog::input_power());
        let b = rest.get(catalog::input_power());
        assert!(
            (a - b).abs() <= 0.5,
            "lossless to integer watts: {a} vs {b}"
        );
    }
    let stats = store.compression_stats();
    assert!(stats.ratio() > 2.0, "compression ratio {}", stats.ratio());
}

#[test]
fn deterministic_under_fixed_seed() {
    let (f1, _, p1) = simulate(2, 30);
    let (f2, _, p2) = simulate(2, 30);
    assert_eq!(p1, p2, "true power must be reproducible");
    for (a, b) in f1.iter().flatten().zip(f2.iter().flatten()) {
        // Compare bit patterns: unset metrics are NaN, and NaN != NaN.
        let bits = |f: &summit_repro::telemetry::records::NodeFrame| -> Vec<u32> {
            f.values.iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(bits(a), bits(b), "frames must be bit-identical");
    }
}

#[test]
fn missing_cabinet_flows_through_aggregation() {
    let mut cfg = EngineConfig::small(3);
    cfg.missing_cabinet = Some(summit_repro::telemetry::ids::CabinetId(1));
    let mut engine = Engine::new(cfg, 0.0);
    let nodes = engine.topology().node_count();
    let mut frames_by_node = vec![Vec::new(); nodes];
    for _ in 0..20 {
        let out = engine.step_opts(&StepOptions {
            frames: true,
            ..Default::default()
        });
        for f in out.frames.unwrap() {
            frames_by_node[f.node.index()].push(f);
        }
    }
    let windows: Vec<_> = frames_by_node
        .iter()
        .enumerate()
        .map(|(n, fs)| {
            let mut agg = WindowAggregator::paper(NodeId(n as u32));
            for f in fs {
                agg.push(f).unwrap();
            }
            agg.finish()
        })
        .collect();
    let rows = cluster_power(&windows);
    // 18 of 54 nodes are dark: counts reflect only reporting nodes.
    for r in &rows {
        assert_eq!(r.count_inp, 36, "only two cabinets report");
    }
}
