//! Thread-count bit-identity: the deterministic pool behind
//! `compat/rayon` must make every parallel stage — engine tick map,
//! window coarsening, cluster reduction, KDE grid, correlation — yield
//! byte-identical results and identical obs counters whether it runs
//! on 1, 2 or the machine's default number of threads. This is the
//! regression gate for the determinism contract in DESIGN.md
//! "Parallel execution model".

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::analysis::correlation::pearson;
use summit_repro::analysis::kde::{Bandwidth, Kde2d};
use summit_repro::core::pipeline::run_telemetry;
use summit_repro::obs::registry::Registry;
use summit_repro::telemetry::cluster::cluster_power;
use summit_repro::telemetry::stream::FaultConfig;

/// Renders one full pipeline pass — smoke-scale fault-injected
/// telemetry run, cluster power reduction, KDE grid, correlation — as
/// raw bytes (floats via `to_bits`, so "equal" means bit-identical),
/// plus the counters the pass recorded.
fn pipeline_fingerprint() -> (Vec<u8>, Vec<(String, u64)>) {
    let registry = Registry::new();
    let scope = registry.install();

    let run = run_telemetry(1, 120.0, Some(FaultConfig::light(7)));
    let rows = cluster_power(&run.windows_by_node);

    let mut bytes = Vec::new();
    for windows in &run.windows_by_node {
        bytes.extend_from_slice(&(windows.len() as u64).to_le_bytes());
    }
    let mut xs = Vec::with_capacity(rows.len());
    let mut ys = Vec::with_capacity(rows.len());
    for r in &rows {
        bytes.extend_from_slice(&r.window_start.to_bits().to_le_bytes());
        bytes.extend_from_slice(&u64::from(r.count_inp).to_le_bytes());
        bytes.extend_from_slice(&r.sum_inp.to_bits().to_le_bytes());
        bytes.extend_from_slice(&r.mean_inp.to_bits().to_le_bytes());
        bytes.extend_from_slice(&r.max_inp.to_bits().to_le_bytes());
        xs.push(r.window_start);
        ys.push(r.sum_inp);
    }
    let kde = Kde2d::fit(&xs, &ys, Bandwidth::Scott).expect("enough windows to fit a KDE");
    for &d in &kde.grid(16, 16).density {
        bytes.extend_from_slice(&d.to_bits().to_le_bytes());
    }
    bytes.extend_from_slice(&pearson(&xs, &ys).to_bits().to_le_bytes());

    drop(scope);
    (bytes, registry.snapshot().counters)
}

/// One pipeline pass per thread count; every pass must produce the
/// same report bytes and the same counter values (timing gauges and
/// `_seconds` histograms are outside the comparison by construction).
#[test]
fn pipeline_is_bit_identical_across_thread_counts() {
    let (baseline_bytes, baseline_counters) = rayon::with_thread_count(1, pipeline_fingerprint);
    assert!(!baseline_bytes.is_empty());
    assert!(baseline_counters
        .iter()
        .any(|(name, v)| name == "summit_par_tasks_total" && *v > 0));

    let default_threads = rayon::current_num_threads().max(3);
    for threads in [2, default_threads] {
        let (bytes, counters) = rayon::with_thread_count(threads, pipeline_fingerprint);
        assert_eq!(
            bytes, baseline_bytes,
            "report bytes differ at threads={threads}"
        );
        assert_eq!(
            counters, baseline_counters,
            "obs counters differ at threads={threads}"
        );
    }
}

/// The pool is spawn-once: after a first parallel pass has grown the
/// worker set, repeated passes at the same thread count must not spawn
/// again (the generation counter only moves when workers are added).
#[test]
fn repeated_runs_reuse_the_persistent_pool() {
    // Matches the widest request the bit-identity test can make, so a
    // concurrently running test can never grow the pool under us.
    let threads = rayon::current_num_threads().max(3);
    rayon::with_thread_count(threads, pipeline_fingerprint);
    let generation = rayon::pool_generation();
    for _ in 0..3 {
        rayon::with_thread_count(threads, pipeline_fingerprint);
        assert_eq!(
            rayon::pool_generation(),
            generation,
            "a warm pool must not respawn workers"
        );
    }
}
