//! Smoke tests over the unified experiment registry: every registered
//! study runs at smoke scale through one shared scenario cache and
//! renders a non-trivial report mentioning its paper anchors, cached
//! artifacts are bit-identical to fresh ones, and config validation
//! returns typed errors instead of panicking.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use std::collections::BTreeMap;
use summit_repro::core::cache::{ScenarioCache, HITS_COUNTER, MISSES_COUNTER};
use summit_repro::core::experiments::registry::run_by_name;
use summit_repro::core::experiments::{fig08, table2, ExperimentError, REGISTRY};
use summit_repro::core::json::Json;
use summit_repro::obs::registry::Registry;

/// Small enough for CI seconds, large enough that every study produces
/// populated reports.
const SMOKE_SCALE: f64 = 0.01;

#[test]
fn registry_runs_every_study_at_smoke_scale() {
    let obs = Registry::new();
    let guard = obs.install();
    let cache = ScenarioCache::new();
    let mut reports: BTreeMap<&str, String> = BTreeMap::new();
    for study in REGISTRY {
        let report = run_by_name(&cache, study.name(), SMOKE_SCALE, None)
            .unwrap_or_else(|e| panic!("{} failed at smoke scale: {e}", study.name()));
        assert!(
            report.trim().len() > 40,
            "{} rendered a trivial report",
            study.name()
        );
        assert!(!study.summary().is_empty());
        assert!(
            reports.insert(study.name(), report).is_none(),
            "duplicate registry name {}",
            study.name()
        );
    }
    assert_eq!(reports.len(), REGISTRY.len());

    // One shared cache across the suite must produce actual reuse: the
    // year population, the burst sweep and the failure log are shared.
    let snap = obs.snapshot();
    drop(guard);
    let hits = snap.counter(HITS_COUNTER).unwrap_or(0);
    let misses = snap.counter(MISSES_COUNTER).unwrap_or(0);
    assert!(misses >= 1, "shared artifacts were never built");
    assert!(
        hits >= 3,
        "expected cross-study cache reuse, got {hits} hits"
    );

    // Paper anchors survive the registry path.
    assert!(reports["tables"].contains("4626"));
    assert!(reports["tables"].contains("2765 - 4608"));
    assert!(reports["table2"].contains("8.5 TB"));
    assert!(reports["fig04"].contains("128.83 kW"));
    assert!(reports["fig05"].contains("PUE"));
    assert!(reports["fig07"].contains("80% under 1500"));
    assert!(reports["fig10"].contains("96.9%"));
    assert!(reports["fig12"].contains("MTW return"));
    assert!(reports["table4"].contains("NVLINK"));
    assert!(reports["fig13"].contains("Bonferroni"));
    assert!(reports["fig15"].contains("46.1"));
    assert!(reports["fig16"].contains("GPU slot"));
    assert!(reports["fig17"].contains("heatmap"));
    assert!(reports["early_warning"].contains("lead time"));
    assert!(reports["titan_contrast"].contains("Titan"));
    assert!(reports["power_aware"].contains("paper conclusion"));
}

#[test]
fn shared_cache_is_bit_identical_to_fresh_runs() {
    // fig07 and fig09 resolve the identical population scenario at this
    // scale (fig07's floor is 0.01), so one cache serves both.
    const SCALE: f64 = 0.02;
    let fresh07 = run_by_name(&ScenarioCache::new(), "fig07", SCALE, None).unwrap();
    let fresh09 = run_by_name(&ScenarioCache::new(), "fig09", SCALE, None).unwrap();

    let obs = Registry::new();
    let guard = obs.install();
    let cache = ScenarioCache::new();
    let shared07 = run_by_name(&cache, "fig07", SCALE, None).unwrap();
    let shared09 = run_by_name(&cache, "fig09", SCALE, None).unwrap();
    let snap = obs.snapshot();
    drop(guard);

    // Reuse must not perturb results: byte-for-byte identical reports.
    assert_eq!(fresh07, shared07);
    assert_eq!(fresh09, shared09);
    // Exactly one population build, one reuse.
    assert_eq!(snap.counter(MISSES_COUNTER), Some(1));
    assert_eq!(snap.counter(HITS_COUNTER), Some(1));
    assert_eq!(cache.stats().total(), 1);
}

#[test]
fn config_validation_returns_typed_errors() {
    // Direct typed API: the paper's Figure 8 has class-1 and class-2
    // panels only.
    let err = fig08::run(&fig08::Config {
        population_scale: 0.01,
        class: 3,
    })
    .unwrap_err();
    assert!(matches!(err, ExperimentError::InvalidConfig(_)));
    assert!(err.to_string().contains("class"));

    let err = table2::run(&table2::Config {
        cabinets: 2,
        duration_s: 0,
        producers: 2,
        stream: false,
    })
    .unwrap_err();
    assert!(matches!(err, ExperimentError::InvalidConfig(_)));

    // Registry path: overrides are validated the same way.
    let cache = ScenarioCache::new();
    let overrides = Json::obj([("class", Json::Num(3.0))]);
    let err = run_by_name(&cache, "fig08", 0.01, Some(&overrides)).unwrap_err();
    assert!(matches!(err, ExperimentError::InvalidConfig(_)));

    let err = run_by_name(&cache, "fig99", 1.0, None).unwrap_err();
    assert!(matches!(err, ExperimentError::UnknownExperiment(_)));
}
