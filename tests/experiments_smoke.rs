//! Smoke tests: every experiment runs at reduced scale and renders a
//! non-trivial report mentioning its paper anchors.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::core::experiments::*;

#[test]
fn tables_1_and_3_render() {
    assert!(tables::render_table1().contains("4626"));
    assert!(tables::render_table3().contains("2765 - 4608"));
}

#[test]
fn table2_renders() {
    let r = table2::run(&table2::Config {
        cabinets: 2,
        duration_s: 60,
        producers: 2,
    });
    let s = r.render();
    assert!(s.contains("8.5 TB"));
    assert!(s.contains("compression ratio"));
}

#[test]
fn fig04_renders() {
    let r = fig04::run(&fig04::Config {
        cabinets: 5,
        duration_s: 120,
        busy_fraction: 1.0,
    });
    let s = r.render();
    assert!(s.contains("MSB A"));
    assert!(s.contains("128.83 kW"));
}

#[test]
fn fig05_renders() {
    let r = fig05::run(&fig05::Config {
        population_scale: 0.002,
        dt_s: 7200.0,
        maintenance_days: Some((34.0, 41.0)),
    });
    let s = r.render();
    assert!(s.contains("PUE"));
    assert!(r.weeks.len() >= 52);
}

#[test]
fn fig06_fig07_render() {
    let r6 = fig06::run(&fig06::Config {
        population_scale: 0.002,
        grid: 32,
        max_samples: 1000,
    });
    assert!(r6.render().contains("class"));
    let r7 = fig07::run(&fig07::Config {
        population_scale: 0.01,
    });
    assert!(r7.render().contains("80% under 1500"));
}

#[test]
fn fig08_fig09_render() {
    let r8 = fig08::run(&fig08::Config {
        population_scale: 0.02,
        class: 2,
    });
    assert!(r8.render().contains("class 2"));
    let r9 = fig09::run(&fig09::Config {
        population_scale: 0.002,
        max_samples: 800,
    });
    assert!(r9.render().contains("GPU-focused"));
}

#[test]
fn fig10_renders() {
    let r = fig10::run(&fig10::Config {
        population_scale: 0.001,
        dt_s: 10.0,
    });
    let s = r.render();
    assert!(s.contains("96.9%"));
    assert!(s.contains("edge-free"));
}

#[test]
fn fig11_fig12_render() {
    let cfg = fig11::Config {
        cabinets: 12,
        amplitudes_mw: vec![0.15, 0.3],
        repeats: 2,
        burst_duration_s: 120.0,
        spacing_s: 420.0,
    };
    let r11 = fig11::run(&cfg);
    assert!(r11.render().contains("MW"));
    let r12 = fig12::run(&fig12::Config { burst: cfg });
    let s = r12.render();
    assert!(s.contains("MTW return"));
    assert!(s.contains("half-response"));
}

#[test]
fn failure_experiments_render() {
    let weeks = 6.0;
    let t4 = table4::run(&table4::Config { weeks, seed: 1 });
    assert!(t4.render().contains("NVLINK"));
    let f13 = fig13::run(&fig13::Config {
        weeks,
        alpha: 0.05,
        seed: 1,
    });
    assert!(f13.render().contains("Bonferroni"));
    let f14 = fig14::run(&fig14::Config {
        weeks,
        top: 10,
        min_node_hours: 500.0,
        seed: 1,
    });
    assert!(f14.render().contains("node-hour"));
    let f15 = fig15::run(&fig15::Config { weeks, seed: 1 });
    assert!(f15.render().contains("46.1"));
    let f16 = fig16::run(&fig16::Config { weeks, seed: 1 });
    assert!(f16.render().contains("GPU slot"));
}

#[test]
fn fig17_renders_with_heatmap() {
    let r = fig17::run(&fig17::Config {
        cabinets: 12,
        job_duration_s: 300.0,
        stride_s: 10.0,
        missing_cabinet: Some(5),
        seed: 2,
    });
    let s = r.render();
    assert!(s.contains("62 W"));
    assert!(s.contains("heatmap"));
    assert!(
        s.contains("·"),
        "missing cabinet must appear in the heatmap"
    );
}

#[test]
fn early_warning_renders() {
    let r = early_warning::run(&early_warning::Config {
        weeks: 8.0,
        horizon_s: 3600.0,
        seed: 7,
    });
    let s = r.render();
    assert!(s.contains("uC warnings"));
    assert!(s.contains("lead time"));
}

#[test]
fn titan_contrast_renders() {
    let r = titan_contrast::run(&titan_contrast::Config {
        weeks: 6.0,
        seed: 7,
    });
    let s = r.render();
    assert!(s.contains("Summit"));
    assert!(s.contains("Titan"));
}

#[test]
fn power_aware_renders() {
    let r = power_aware::run(&power_aware::Config {
        population_scale: 0.005,
        caps_w: vec![f64::INFINITY, 8.0e6],
        dt_s: 3600.0,
    });
    let s = r.render();
    assert!(s.contains("Power-aware admission"));
    assert!(s.contains("paper conclusion"));
}
