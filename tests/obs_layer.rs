//! Observability-layer integration: the real telemetry pipeline must
//! record bit-identical counters across same-seed runs, and the
//! Prometheus exposition it produces must survive a full round trip
//! through the vendored parser.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_repro::core::pipeline::run_telemetry;
use summit_repro::obs::expose::{parse_prometheus, write_prometheus};
use summit_repro::obs::registry::Registry;
use summit_repro::telemetry::stream::FaultConfig;

/// Counters are the determinism contract: for a fixed seed, two runs of
/// the full fault-injected pipeline must record the exact same values.
/// (`_seconds` histograms and wall-clock gauges are timing-dependent by
/// design and are deliberately outside this comparison.)
#[test]
fn same_seed_runs_record_identical_counters() {
    let faults = FaultConfig::light(7);
    let a = run_telemetry(2, 120.0, Some(faults));
    let b = run_telemetry(2, 120.0, Some(faults));

    assert!(!a.obs.counters.is_empty());
    assert_eq!(a.obs.counters, b.obs.counters);
    // The summary's count fields are deterministic; only the trailing
    // `wall=` segment is timing-dependent.
    let counts = |s: &str| s.split(" wall=").next().unwrap_or(s).to_string();
    assert_eq!(counts(&a.summary), counts(&b.summary));

    // The per-run snapshot covers every stage of this path.
    for stage in [
        "summit_core_run_telemetry_calls_total",
        "summit_core_frame_generation_calls_total",
        "summit_core_fault_injection_calls_total",
        "summit_telemetry_coarsen_calls_total",
        "summit_core_frames_offered_total",
        "summit_telemetry_windows_total",
    ] {
        assert!(
            a.obs.counter(stage).unwrap_or(0) > 0,
            "expected counter {stage} > 0"
        );
    }
}

/// A clean and a faulty run must diverge in the fault counters — the
/// registry actually measures the pipeline rather than replaying
/// constants.
#[test]
fn fault_injection_shows_up_in_counters() {
    let clean = run_telemetry(2, 120.0, None);
    let faulty = run_telemetry(2, 120.0, Some(FaultConfig::light(7)));

    let dropped = |r: &summit_repro::core::pipeline::TelemetryRun| {
        r.obs
            .counter("summit_telemetry_frames_dropped_total")
            .unwrap_or(0)
    };
    assert_eq!(dropped(&clean), 0);
    assert!(dropped(&faulty) > 0);
    assert_ne!(clean.obs.counters, faulty.obs.counters);
}

/// Worker-thread span attribution: when the parallel coarsen stage
/// dispatches to pool workers, their busy time must land in the
/// stage-labelled histogram — not in the `unstaged` bucket a worker
/// with no propagated span context would fall into.
#[test]
fn parallel_coarsen_attributes_busy_time_to_the_coarsen_stage() {
    let run = rayon::with_thread_count(2, || run_telemetry(2, 120.0, None));

    let coarsen = run
        .obs
        .histogram("summit_par_busy_telemetry_coarsen_seconds")
        .expect("parallel coarsen must record stage-labelled busy time");
    assert!(coarsen.count > 0);
    assert!(
        run.obs
            .histogram("summit_par_busy_unstaged_seconds")
            .is_none(),
        "no pool dispatch in this pipeline should lose its stage label"
    );
}

/// Exposition produced from a real pipeline run must parse back as
/// valid Prometheus text, with every counter surviving the round trip
/// and histogram bucket counts cumulative and capped by `_count`.
#[test]
fn prometheus_exposition_round_trips() {
    let run = run_telemetry(2, 120.0, None);

    // Rehydrate the per-run snapshot into a fresh registry so the text
    // covers exactly this run, then write and re-parse it.
    let registry = Registry::new();
    registry.absorb(&run.obs);
    let snapshot = registry.snapshot();

    let mut text = Vec::new();
    write_prometheus(&mut text, &snapshot).unwrap();
    let text = String::from_utf8(text).unwrap();
    let samples = parse_prometheus(&text).expect("exposition must be valid");

    for (name, value) in &snapshot.counters {
        let sample = samples
            .iter()
            .find(|s| &s.name == name)
            .unwrap_or_else(|| panic!("counter {name} missing from exposition"));
        assert_eq!(sample.value, *value as f64);
    }
    for (name, hist) in &snapshot.histograms {
        let count_name = format!("{name}_count");
        let count = samples.iter().find(|s| s.name == count_name).unwrap();
        assert_eq!(count.value, hist.count as f64);
        let mut last = 0.0;
        for s in samples
            .iter()
            .filter(|s| s.name == format!("{name}_bucket"))
        {
            assert!(s.le.is_some(), "bucket sample must carry an le label");
            assert!(s.value >= last, "bucket counts must be cumulative");
            last = s.value;
        }
        assert!(last <= hist.count as f64);
    }
}
