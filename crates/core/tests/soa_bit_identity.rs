//! Cross-layer bit-identity for the columnar (SoA) hot path.
//!
//! The columnar refactor promises that layout changes memory and
//! instruction scheduling only, never results: the SoA coarsener must
//! match the row-structured reference to the bit, on the same frames,
//! for every thread count, in both the batch replay and the streaming
//! pipeline. These tests drive the full pipeline (engine → delivery →
//! coarsening) rather than unit inputs, so a divergence anywhere along
//! the hot path fails here even if each layer's own tests still pass.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use summit_core::pipeline::{run_streaming, run_telemetry, StreamConfig};
use summit_sim::engine::{Engine, EngineConfig, StepOptions};
use summit_telemetry::batch::FrameBatch;
use summit_telemetry::records::NodeFrame;
use summit_telemetry::stream::FaultConfig;
use summit_telemetry::window::{
    coarsen_parallel_layout, CoarsenLayout, NodeWindow, PAPER_WINDOW_S,
};

fn assert_windows_bitwise_eq(a: &[Vec<NodeWindow>], b: &[Vec<NodeWindow>], context: &str) {
    assert_eq!(a.len(), b.len(), "{context}: node count differs");
    for (node, (wa, wb)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            wa.len(),
            wb.len(),
            "{context}: window count differs at node {node}"
        );
        for (x, y) in wa.iter().zip(wb) {
            assert_eq!(x.node, y.node, "{context}");
            assert_eq!(
                x.window_start.to_bits(),
                y.window_start.to_bits(),
                "{context}: window start diverged at node {node}"
            );
            assert_eq!(x.stats.len(), y.stats.len(), "{context}");
            for (m, (sx, sy)) in x.stats.iter().zip(&y.stats).enumerate() {
                assert_eq!(sx.count, sy.count, "{context}: node {node} metric {m}");
                for (fx, fy) in [
                    (sx.min, sy.min),
                    (sx.max, sy.max),
                    (sx.mean, sy.mean),
                    (sx.std, sy.std),
                ] {
                    assert_eq!(
                        fx.to_bits(),
                        fy.to_bits(),
                        "{context}: node {node} metric {m}: {fx} != {fy}"
                    );
                }
            }
        }
    }
}

/// A fault-free capture generated through the engine's columnar tick
/// batches, grouped per node — the same shape the pipeline feeds the
/// coarsener.
fn engine_frames(cabinets: usize, duration_s: f64) -> Vec<Vec<NodeFrame>> {
    let config = EngineConfig::small(cabinets);
    let dt = config.dt_s;
    let mut engine = Engine::new(config, 0.0);
    let node_count = engine.topology().node_count();
    let n_ticks = (duration_s / dt).ceil() as usize;
    let mut frames_by_node: Vec<Vec<NodeFrame>> = vec![Vec::with_capacity(n_ticks); node_count];
    let opts = StepOptions {
        frames: true,
        ..StepOptions::default()
    };
    let mut tick = FrameBatch::with_capacity(node_count);
    for _ in 0..n_ticks {
        let _ = engine.step_batch(&opts, &mut tick);
        for row in 0..tick.len() {
            let f = tick.read_frame(row);
            frames_by_node[f.node.index()].push(f);
        }
    }
    frames_by_node
}

#[test]
fn columnar_coarsening_matches_rows_reference_across_thread_counts() {
    let frames = engine_frames(2, 120.0);
    let (rows_ref, rows_health) =
        coarsen_parallel_layout(&frames, PAPER_WINDOW_S, CoarsenLayout::Rows);
    for threads in [1usize, 2, 4] {
        let (cols, cols_health) = rayon::with_thread_count(threads, || {
            coarsen_parallel_layout(&frames, PAPER_WINDOW_S, CoarsenLayout::Columns)
        });
        assert_eq!(cols_health, rows_health, "threads={threads}");
        assert_windows_bitwise_eq(
            &rows_ref,
            &cols,
            &format!("columns vs rows, threads={threads}"),
        );
    }
}

#[test]
fn faulty_telemetry_run_is_thread_count_invariant_to_the_bit() {
    // The full batch pipeline — tick batches, fault injection, SoA
    // coarsening, health merge — must not see the thread count at all.
    let faults = Some(FaultConfig::light(7));
    let base = run_telemetry(2, 120.0, faults);
    for threads in [1usize, 2] {
        let got = rayon::with_thread_count(threads, || run_telemetry(2, 120.0, faults));
        assert_eq!(got.stats.frames, base.stats.frames, "threads={threads}");
        assert_eq!(
            got.stats.total_delay_s.to_bits(),
            base.stats.total_delay_s.to_bits(),
            "threads={threads}"
        );
        assert_eq!(got.stats.health, base.stats.health, "threads={threads}");
        assert_windows_bitwise_eq(
            &base.windows_by_node,
            &got.windows_by_node,
            &format!("batch run, threads={threads}"),
        );
    }
}

#[test]
fn streaming_windows_match_batch_to_the_bit() {
    // Same capture online (producer thread, bounded channel, columnar
    // tick batches crossing it) and as a batch replay.
    let faults = Some(FaultConfig::light(7));
    let stream = run_streaming(StreamConfig::new(2, 120.0, faults));
    let batch = run_telemetry(2, 120.0, faults);
    assert_eq!(stream.stats.health, batch.stats.health);
    assert_windows_bitwise_eq(
        &batch.windows_by_node,
        &stream.windows_by_node,
        "streaming vs batch",
    );
}
