//! A minimal, dependency-free JSON value used for experiment configs.
//!
//! The unified experiment driver feeds every study a JSON object (the
//! study's scaled defaults merged with user overrides) and can emit a
//! JSON result envelope. No JSON crate is vendored in this offline
//! workspace, so this module provides the small subset the experiment
//! layer needs: a [`Json`] value, a strict parser, a compact writer,
//! and object helpers.
//!
//! Deliberate deviations from full JSON, documented here once:
//!
//! - numbers are `f64` (the configs carry no integers beyond 2^53);
//! - non-finite numbers serialize as `null`, and config readers that
//!   accept "unbounded" values (e.g. power caps) read `null` back as
//!   `f64::INFINITY`;
//! - object key order is preserved as written, so rendering is
//!   deterministic.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parses a complete JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Self, JsonError> {
        let bytes = text.as_bytes();
        let mut p = Parser { bytes, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }

    /// Looks a key up in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite or infinite number, if it is one.
    /// `null` reads as `f64::INFINITY` (the "unbounded" encoding).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Null => Some(f64::INFINITY),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object's key/value pairs, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Replaces or inserts a key in an object (no-op on non-objects).
    pub fn set(&mut self, key: &str, value: Json) {
        if let Json::Obj(pairs) = self {
            match pairs.iter_mut().find(|(k, _)| k == key) {
                Some((_, v)) => *v = value,
                None => pairs.push((key.to_string(), value)),
            }
        }
    }

    /// Merges `overrides` into `self`: object keys are replaced (nested
    /// objects merge recursively); any other value overwrites wholesale.
    pub fn merge(&mut self, overrides: &Json) {
        match (self, overrides) {
            (Json::Obj(base), Json::Obj(over)) => {
                for (k, v) in over {
                    match base.iter_mut().find(|(bk, _)| bk == k) {
                        Some((_, bv)) => bv.merge(v),
                        None => base.push((k.clone(), v.clone())),
                    }
                }
            }
            (slot, other) => *slot = other.clone(),
        }
    }

    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds an array of numbers.
    pub fn nums(values: impl IntoIterator<Item = f64>) -> Json {
        Json::Arr(values.into_iter().map(Json::Num).collect())
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Num(v as f64)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(v) if v.is_finite() => write!(f, "{v}"),
            Json::Num(_) => f.write_str("null"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ": {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn consume(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid utf-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty char"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.consume(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.consume(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn parses_the_config_shapes() {
        let v = Json::parse(r#"{"population_scale": 0.05, "class": 2, "caps_w": [null, 8e6], "maintenance_days": [34.0, 41.0], "on": true, "tag": "a\nb"}"#).unwrap();
        assert_eq!(v.get("population_scale").and_then(Json::as_f64), Some(0.05));
        assert_eq!(v.get("class").and_then(Json::as_f64), Some(2.0));
        let caps = v.get("caps_w").and_then(Json::as_arr).unwrap();
        assert_eq!(caps[0].as_f64(), Some(f64::INFINITY));
        assert_eq!(caps[1].as_f64(), Some(8e6));
        assert_eq!(v.get("on").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("tag").and_then(Json::as_str), Some("a\nb"));
    }

    #[test]
    fn roundtrips_through_display() {
        let v = Json::obj([
            ("scale", Json::Num(0.25)),
            ("caps", Json::nums([f64::INFINITY, 8e6])),
            ("name", Json::from("fig08")),
            ("none", Json::Null),
        ]);
        let text = v.to_string();
        let back = Json::parse(&text).unwrap();
        // INFINITY serializes as null and reads back as INFINITY via as_f64.
        assert_eq!(
            back.get("caps").and_then(Json::as_arr).unwrap()[0],
            Json::Null
        );
        assert_eq!(back.get("scale"), Some(&Json::Num(0.25)));
        assert_eq!(back.get("name").and_then(Json::as_str), Some("fig08"));
    }

    #[test]
    fn merge_replaces_and_recurses() {
        let mut base = Json::parse(r#"{"a": 1, "nest": {"x": 1, "y": 2}}"#).unwrap();
        let over = Json::parse(r#"{"nest": {"y": 3}, "b": 4}"#).unwrap();
        base.merge(&over);
        assert_eq!(base.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(base.get("b").and_then(Json::as_f64), Some(4.0));
        let nest = base.get("nest").unwrap();
        assert_eq!(nest.get("x").and_then(Json::as_f64), Some(1.0));
        assert_eq!(nest.get("y").and_then(Json::as_f64), Some(3.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "1 2", "\"\\q\""] {
            assert!(Json::parse(bad).is_err(), "{bad} should fail");
        }
    }
}
