//! Near-real-time operations console.
//!
//! The paper's telemetry system exists to support MTW operations: data is
//! "processed, summarized, and rendered to engineers in near real-time",
//! cross-checking MTW supply/return and flow against component-wise
//! temperature histograms (Section 2). This module is that product for
//! the digital twin: feed it engine ticks, get a live dashboard and an
//! alert stream.

use crate::report::{pct, sparkline, watts, Table};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use summit_analysis::edges::{OnlineEdgeDetector, EDGE_THRESHOLD_W_PER_NODE};
use summit_analysis::rolling::{RollingSketch, RollingStats};
use summit_analysis::stats::Welford;
use summit_sim::engine::TickOutput;
use summit_telemetry::stream::IngestStats;
use summit_telemetry::window::{NodeWindow, PAPER_WINDOW_S};

/// Alert kinds the console raises.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AlertKind {
    /// A GPU crossed the hot threshold.
    GpuOverTemp,
    /// PUE exceeded the alarm level.
    PueHigh,
    /// Cluster power ramped faster than the swing threshold (the violent
    /// MW-scale transitions of Section 4.2).
    PowerSwing,
    /// Sensor summation diverged from true power beyond tolerance
    /// (telemetry path degradation).
    TelemetryDivergence,
    /// MTW return temperature left the design band.
    MtwReturnOutOfBand,
    /// The ingest path dropped more than the allowed fraction of frames
    /// (late arrivals, wrong-node routing, invalid timestamps).
    IngestDegraded,
}

/// One raised alert. Consecutive alerts of the same kind within the
/// cool-down window coalesce into a single entry with a repeat count,
/// so a sustained condition (a GPU hot for ten minutes at 1 Hz) shows
/// as one alert x600 instead of flooding the console.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Alert {
    /// Event/error kind.
    pub kind: AlertKind,
    /// Simulation time of the most recent coalesced occurrence (s).
    pub t: f64,
    /// Human-readable detail (of the most recent occurrence).
    pub detail: String,
    /// Occurrences coalesced into this alert (1 = no repeats).
    pub repeat: u32,
}

/// Alert thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Thresholds {
    /// Hot-GPU threshold (°C).
    pub gpu_hot_c: f64,
    /// PUE alarm level.
    pub pue_alarm: f64,
    /// Power swing alarm (W per minute).
    pub swing_w_per_min: f64,
    /// Allowed relative gap between sensor summation and expectation.
    pub telemetry_gap: f64,
    /// MTW return band (°C).
    pub mtw_return_band_c: (f64, f64),
    /// Allowed fraction of offered frames the ingest path may drop
    /// before the console flags telemetry degradation.
    pub ingest_fault_fraction: f64,
    /// Cool-down window (s): a new alert of the same kind arriving
    /// within this long of the previous one coalesces into it instead
    /// of appending a fresh entry.
    pub alert_cooldown_s: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Self {
            gpu_hot_c: 63.0,
            pue_alarm: 1.35,
            swing_w_per_min: 2.0e6,
            telemetry_gap: 0.08,
            mtw_return_band_c: (
                summit_sim::spec::MTW_RETURN_MIN_C - 4.0,
                summit_sim::spec::MTW_RETURN_MAX_C,
            ),
            ingest_fault_fraction: 0.05,
            alert_cooldown_s: 60.0,
        }
    }
}

/// The console state.
pub struct OpsConsole {
    thresholds: Thresholds,
    history: usize,
    power: VecDeque<f64>,
    pue: VecDeque<f64>,
    gpu_max: VecDeque<f64>,
    mtw_return: VecDeque<f64>,
    last: Option<TickOutput>,
    last_minute_power: VecDeque<(f64, f64)>,
    alerts: Vec<Alert>,
    ticks_seen: u64,
    // Live view over the closed-window stream (streaming pipeline).
    win_open: BTreeMap<i64, Welford>,
    win_watermark: f64,
    win_folded_through: Option<i64>,
    win_next_start: f64,
    win_edges: Option<OnlineEdgeDetector>,
    win_power: RollingStats,
    win_sketch: RollingSketch,
    win_spark: VecDeque<f64>,
    win_last: Option<(f64, f64)>,
    windows_seen: u64,
    win_late_folds: u64,
}

impl OpsConsole {
    /// Creates a console keeping `history` samples of each signal.
    /// Histories shorter than two samples cannot express a trend, so
    /// the depth is clamped up to 2 instead of rejected.
    pub fn new(thresholds: Thresholds, history: usize) -> Self {
        let history = history.max(2);
        Self {
            thresholds,
            history,
            power: VecDeque::with_capacity(history),
            pue: VecDeque::with_capacity(history),
            gpu_max: VecDeque::with_capacity(history),
            mtw_return: VecDeque::with_capacity(history),
            last: None,
            last_minute_power: VecDeque::new(),
            alerts: Vec::new(),
            ticks_seen: 0,
            win_open: BTreeMap::new(),
            win_watermark: f64::NEG_INFINITY,
            win_folded_through: None,
            win_next_start: 0.0,
            win_edges: None,
            win_power: RollingStats::new(history),
            win_sketch: RollingSketch::new(history),
            win_spark: VecDeque::new(),
            win_last: None,
            windows_seen: 0,
            win_late_folds: 0,
        }
    }

    /// Creates a console with default thresholds and a 5-minute history
    /// at 1 Hz.
    pub fn with_defaults() -> Self {
        Self::new(Thresholds::default(), 300)
    }

    fn push_capped(dq: &mut VecDeque<f64>, cap: usize, v: f64) {
        dq.push_back(v);
        if dq.len() > cap {
            dq.pop_front();
        }
    }

    /// Raises an alert, coalescing with the previous one when it has
    /// the same kind and falls within the cool-down window. The window
    /// slides: each coalesced occurrence refreshes the alert's time, so
    /// a sustained condition stays a single entry however long it lasts.
    fn raise(&mut self, kind: AlertKind, t: f64, detail: String) {
        summit_obs::counter("summit_core_alerts_total").inc();
        if let Some(last) = self.alerts.last_mut() {
            if last.kind == kind && (t - last.t).abs() <= self.thresholds.alert_cooldown_s {
                last.repeat += 1;
                last.t = t;
                last.detail = detail;
                summit_obs::counter("summit_core_alerts_coalesced_total").inc();
                return;
            }
        }
        self.alerts.push(Alert {
            kind,
            t,
            detail,
            repeat: 1,
        });
    }

    /// Feeds one engine tick; raises any alerts it implies.
    pub fn observe(&mut self, tick: &TickOutput) {
        self.ticks_seen += 1;
        let th = self.thresholds;
        Self::push_capped(&mut self.power, self.history, tick.true_compute_power_w);
        Self::push_capped(&mut self.pue, self.history, tick.cep.pue());
        Self::push_capped(&mut self.gpu_max, self.history, tick.gpu_temp_max_c);
        Self::push_capped(&mut self.mtw_return, self.history, tick.cep.mtw_return_c);

        if tick.gpu_temp_max_c.is_finite() && tick.gpu_temp_max_c > th.gpu_hot_c {
            self.raise(
                AlertKind::GpuOverTemp,
                tick.t,
                format!(
                    "max GPU core {:.1} C > {:.1} C",
                    tick.gpu_temp_max_c, th.gpu_hot_c
                ),
            );
        }
        let pue = tick.cep.pue();
        if pue.is_finite() && pue > th.pue_alarm {
            self.raise(
                AlertKind::PueHigh,
                tick.t,
                format!("PUE {pue:.3} > {:.2}", th.pue_alarm),
            );
        }
        // Swing detection over a one-minute window.
        self.last_minute_power
            .push_back((tick.t, tick.true_compute_power_w));
        while let Some(&(t0, _)) = self.last_minute_power.front() {
            if tick.t - t0 > 60.0 {
                self.last_minute_power.pop_front();
            } else {
                break;
            }
        }
        if let (Some(&(t0, p0)), Some(&(t1, p1))) = (
            self.last_minute_power.front(),
            self.last_minute_power.back(),
        ) {
            if t1 > t0 {
                let rate = (p1 - p0).abs() / (t1 - t0) * 60.0;
                if rate > th.swing_w_per_min {
                    self.raise(
                        AlertKind::PowerSwing,
                        tick.t,
                        format!("{} per minute", watts(rate)),
                    );
                    self.last_minute_power.clear(); // one alert per swing
                }
            }
        }
        // Telemetry divergence: sensors read low by design (~2.7 %); a
        // larger gap means dropped cabinets or path failures.
        if tick.true_compute_power_w > 0.0 {
            let gap = (tick.true_compute_power_w - tick.sensor_compute_power_w)
                / tick.true_compute_power_w;
            if gap.abs() > th.telemetry_gap {
                self.raise(
                    AlertKind::TelemetryDivergence,
                    tick.t,
                    format!("sensor summation {} off truth", pct(gap)),
                );
            }
        }
        let ret = tick.cep.mtw_return_c;
        if ret < th.mtw_return_band_c.0 || ret > th.mtw_return_band_c.1 {
            self.raise(
                AlertKind::MtwReturnOutOfBand,
                tick.t,
                format!("MTW return {ret:.1} C outside band"),
            );
        }
        self.last = Some(tick.clone());
    }

    /// Feeds an end-of-run ingest report; raises [`AlertKind::IngestDegraded`]
    /// when the drop fraction exceeds the threshold.
    pub fn observe_ingest(&mut self, stats: &IngestStats) {
        let frac = stats.health.drop_fraction();
        if frac.is_finite() && frac > self.thresholds.ingest_fault_fraction {
            self.raise(
                AlertKind::IngestDegraded,
                stats.t_last,
                format!(
                    "ingest dropped {} of {} frames ({})",
                    stats.health.dropped(),
                    stats.health.offered(),
                    pct(frac)
                ),
            );
        }
    }

    /// Finalizes one cluster window row into the live rolling view:
    /// rolling stats, distribution sketch, sparkline and the online
    /// power-edge detector (NaN-padded over window gaps so edge times
    /// stay aligned).
    fn fold_row(&mut self, key: i64, acc: &Welford) {
        let sum = acc.sum();
        if self.win_edges.is_none() {
            // Paper threshold scaled by the nodes reporting in the
            // first folded window (868 W per node per interval).
            let threshold = (EDGE_THRESHOLD_W_PER_NODE * acc.count() as f64).max(1.0);
            self.win_edges = Some(OnlineEdgeDetector::new(
                key as f64,
                PAPER_WINDOW_S,
                threshold,
            ));
            self.win_next_start = key as f64;
        }
        if let Some(det) = &mut self.win_edges {
            while self.win_next_start + PAPER_WINDOW_S / 2.0 < key as f64 {
                det.push(f64::NAN);
                self.win_next_start += PAPER_WINDOW_S;
            }
            det.push(sum);
            self.win_next_start += PAPER_WINDOW_S;
        }
        self.win_folded_through = Some(key);
        self.win_power.push(sum);
        self.win_sketch.push(sum);
        Self::push_capped(&mut self.win_spark, self.history, sum);
        self.win_last = Some((key as f64, sum));
    }

    fn publish_window_gauges(&self) {
        if self.win_watermark.is_finite() {
            summit_obs::gauge("summit_core_live_window_watermark_s").set(self.win_watermark);
        }
        if let Some((_, p)) = self.win_last {
            summit_obs::gauge("summit_core_live_cluster_power_w").set(p);
        }
        if !self.win_sketch.is_empty() {
            summit_obs::gauge("summit_core_live_cluster_power_p99_w")
                .set(self.win_sketch.percentile(0.99));
        }
        if let Some(det) = &self.win_edges {
            summit_obs::gauge("summit_core_live_power_edges").set(det.detected() as f64);
        }
    }

    /// Feeds a batch of closed coarsened windows (the streaming
    /// pipeline's per-drain output). Rows collapse per window start
    /// across nodes; a row folds into the rolling view once the
    /// observed watermark is two windows past it, so slow nodes still
    /// land in the right row. Stragglers arriving after their row
    /// folded are counted, not retrofitted — the authoritative datasets
    /// come from the pipeline output, this view is the live console.
    pub fn observe_windows(&mut self, windows: &[NodeWindow]) {
        for w in windows {
            self.windows_seen += 1;
            summit_obs::counter("summit_core_live_windows_total").inc();
            let start = w.window_start;
            if start > self.win_watermark {
                self.win_watermark = start;
            }
            let s = w.metric(summit_telemetry::catalog::input_power());
            if s.count == 0 {
                continue;
            }
            let key = start.round() as i64;
            if self.win_folded_through.is_some_and(|b| key <= b) {
                self.win_late_folds += 1;
                summit_obs::counter("summit_core_live_window_late_folds_total").inc();
                continue;
            }
            self.win_open.entry(key).or_default().push(s.mean);
        }
        let cutoff = self.win_watermark - 2.0 * PAPER_WINDOW_S;
        while let Some((&key, _)) = self.win_open.first_key_value() {
            if key as f64 > cutoff {
                break;
            }
            if let Some(acc) = self.win_open.remove(&key) {
                self.fold_row(key, &acc);
            }
        }
        self.publish_window_gauges();
    }

    /// Folds every still-open cluster row at end of stream, exactly as
    /// the batch view would close its trailing windows.
    pub fn finish_windows(&mut self) {
        let open = std::mem::take(&mut self.win_open);
        for (key, acc) in open {
            self.fold_row(key, &acc);
        }
        self.publish_window_gauges();
    }

    /// Closed coarsened windows observed so far.
    pub fn windows_seen(&self) -> u64 {
        self.windows_seen
    }

    /// Latest closed-window start observed, if any.
    pub fn window_watermark(&self) -> Option<f64> {
        self.win_watermark.is_finite().then_some(self.win_watermark)
    }

    /// Cluster-power edges detected by the live view so far.
    pub fn live_edges(&self) -> usize {
        self.win_edges.as_ref().map_or(0, |d| d.detected())
    }

    /// Windows that arrived after their cluster row had already folded.
    pub fn window_late_folds(&self) -> u64 {
        self.win_late_folds
    }

    /// Alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// Drains the alert queue.
    pub fn drain_alerts(&mut self) -> Vec<Alert> {
        std::mem::take(&mut self.alerts)
    }

    /// Ticks observed.
    pub fn ticks_seen(&self) -> u64 {
        self.ticks_seen
    }

    /// Renders the dashboard.
    pub fn render(&self) -> String {
        let Some(last) = &self.last else {
            return "no telemetry yet".into();
        };
        let mut t = Table::new(
            format!("operations console @ t={:.0}s", last.t),
            &["signal", "now", "trend"],
        );
        let spark = |dq: &VecDeque<f64>| {
            let v: Vec<f64> = dq.iter().copied().collect();
            // Thin to at most 40 chars.
            let step = (v.len() / 40).max(1);
            sparkline(&v.iter().step_by(step).copied().collect::<Vec<_>>())
        };
        t.row(vec![
            "compute power".into(),
            watts(last.true_compute_power_w),
            spark(&self.power),
        ]);
        t.row(vec![
            "PUE".into(),
            format!("{:.3}", last.cep.pue()),
            spark(&self.pue),
        ]);
        t.row(vec![
            "max GPU temp".into(),
            format!("{:.1} C", last.gpu_temp_max_c),
            spark(&self.gpu_max),
        ]);
        t.row(vec![
            "MTW return".into(),
            format!("{:.1} C", last.cep.mtw_return_c),
            spark(&self.mtw_return),
        ]);
        t.row(vec![
            "cooling".into(),
            format!(
                "{:.0} tons tower / {:.0} tons chiller",
                last.cep.tower_tons, last.cep.chiller_tons
            ),
            String::new(),
        ]);
        t.row(vec![
            "jobs".into(),
            format!(
                "{} running / {} busy nodes",
                last.running_jobs, last.busy_nodes
            ),
            String::new(),
        ]);
        if self.windows_seen > 0 {
            let now = self.win_last.map_or_else(|| "-".into(), |(_, p)| watts(p));
            t.row(vec!["cluster power (10 s windows)".into(), now, {
                let v: Vec<f64> = self.win_spark.iter().copied().collect();
                let step = (v.len() / 40).max(1);
                sparkline(&v.iter().step_by(step).copied().collect::<Vec<_>>())
            }]);
            let roll = self.win_power.stats();
            t.row(vec![
                "window power (rolling)".into(),
                format!(
                    "mean {} / p99 {}",
                    watts(roll.mean),
                    watts(self.win_sketch.percentile(0.99))
                ),
                String::new(),
            ]);
            let wm = if self.win_watermark.is_finite() {
                format!("watermark t={:.0}s", self.win_watermark)
            } else {
                "no watermark".into()
            };
            t.row(vec![
                "windows".into(),
                format!("{} closed / {wm}", self.windows_seen),
                String::new(),
            ]);
            if let Some(det) = &self.win_edges {
                t.row(vec![
                    "power edges".into(),
                    format!("{} detected / {} tracking", det.detected(), det.tracking()),
                    String::new(),
                ]);
            }
        }
        let mut s = t.render();
        if self.alerts.is_empty() {
            s.push_str("\nno active alerts\n");
        } else {
            s.push_str(&format!("\n{} alerts (latest 5):\n", self.alerts.len()));
            for a in self.alerts.iter().rev().take(5) {
                let rep = if a.repeat > 1 {
                    format!(" (x{})", a.repeat)
                } else {
                    String::new()
                };
                s.push_str(&format!(
                    "  [{:?}] t={:.0}s {}{}\n",
                    a.kind, a.t, a.detail, rep
                ));
            }
        }
        s
    }

    /// Renders the dashboard plus the per-stage timing table from an
    /// observability snapshot (typically `summit_obs::global().snapshot()`
    /// or a [`crate::pipeline::TelemetryRun::obs`]).
    pub fn render_with_obs(&self, snap: &summit_obs::Snapshot) -> String {
        let mut s = self.render();
        s.push('\n');
        s.push_str(&render_stage_timings(snap));
        s
    }
}

/// Formats a duration in seconds with an auto-scaled unit.
fn dur(v: f64) -> String {
    if !v.is_finite() {
        "-".into()
    } else if v >= 1.0 {
        format!("{v:.2} s")
    } else if v >= 1e-3 {
        format!("{:.2} ms", v * 1e3)
    } else {
        format!("{:.1} us", v * 1e6)
    }
}

/// Renders the per-stage timing table (every `<stage>_seconds` span
/// histogram in the snapshot: calls, p50/p99/max, cumulative total)
/// followed by the hot-path throughput gauges when present.
pub fn render_stage_timings(snap: &summit_obs::Snapshot) -> String {
    let mut t = Table::new(
        "pipeline stage timings",
        &["stage", "calls", "p50", "p99", "max", "total"],
    );
    let mut rows = 0;
    for (name, h) in &snap.histograms {
        let Some(stage) = name.strip_suffix("_seconds") else {
            continue;
        };
        let calls = snap
            .counter(&format!("{stage}_calls_total"))
            .unwrap_or(h.count);
        t.row(vec![
            stage.to_string(),
            calls.to_string(),
            dur(h.p50),
            dur(h.p99),
            dur(h.max),
            dur(h.sum),
        ]);
        rows += 1;
    }
    if rows == 0 {
        return "no stage timings recorded\n".into();
    }
    let mut s = t.render();
    for (gauge, label) in [
        ("summit_core_frames_per_wall_second", "frames/s"),
        ("summit_core_windows_per_wall_second", "windows/s"),
        (
            "summit_telemetry_ingest_metrics_per_second",
            "metrics/s (sample time)",
        ),
    ] {
        if let Some(v) = snap.gauge(gauge) {
            if v.is_finite() {
                s.push_str(&format!("  throughput: {v:.0} {label}\n"));
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use summit_sim::engine::{Engine, EngineConfig};

    fn tick_with(t: f64, power: f64, sensor: f64, gpu_max: f64, pue_fac: f64) -> TickOutput {
        let mut engine = Engine::new(EngineConfig::small(1), t);
        let mut tick = engine.step();
        tick.t = t;
        tick.true_compute_power_w = power;
        tick.sensor_compute_power_w = sensor;
        tick.gpu_temp_max_c = gpu_max;
        tick.cep.facility_power_w = power * pue_fac;
        tick.cep.it_power_w = power;
        tick
    }

    #[test]
    fn quiet_stream_raises_nothing() {
        let mut console = OpsConsole::with_defaults();
        for i in 0..30 {
            console.observe(&tick_with(i as f64, 1.0e5, 0.973e5, 45.0, 1.1));
        }
        assert!(console.alerts().is_empty(), "{:?}", console.alerts());
        assert_eq!(console.ticks_seen(), 30);
        assert!(console.render().contains("operations console"));
    }

    #[test]
    fn hot_gpu_alert() {
        let mut console = OpsConsole::with_defaults();
        console.observe(&tick_with(0.0, 1e5, 0.97e5, 70.0, 1.1));
        assert!(console
            .alerts()
            .iter()
            .any(|a| a.kind == AlertKind::GpuOverTemp));
    }

    #[test]
    fn pue_alert() {
        let mut console = OpsConsole::with_defaults();
        console.observe(&tick_with(0.0, 1e5, 0.97e5, 40.0, 1.5));
        assert!(console
            .alerts()
            .iter()
            .any(|a| a.kind == AlertKind::PueHigh));
    }

    #[test]
    fn swing_alert_fires_on_fast_ramp() {
        let mut console = OpsConsole::with_defaults();
        for i in 0..10 {
            console.observe(&tick_with(i as f64, 1.0e6, 0.97e6, 40.0, 1.1));
        }
        // +3 MW in ten seconds => 18 MW/min rate.
        for i in 10..20 {
            console.observe(&tick_with(i as f64, 4.0e6, 3.88e6, 40.0, 1.1));
        }
        assert!(console
            .alerts()
            .iter()
            .any(|a| a.kind == AlertKind::PowerSwing));
    }

    #[test]
    fn telemetry_divergence_alert() {
        let mut console = OpsConsole::with_defaults();
        // Sensor reads 20 % low: a dark cabinet.
        console.observe(&tick_with(0.0, 1.0e6, 0.8e6, 40.0, 1.1));
        assert!(console
            .alerts()
            .iter()
            .any(|a| a.kind == AlertKind::TelemetryDivergence));
    }

    #[test]
    fn degraded_ingest_raises_alert() {
        use summit_telemetry::ingest::IngestHealth;
        let mut console = OpsConsole::with_defaults();
        let healthy = IngestStats {
            frames: 100,
            health: IngestHealth {
                accepted: 99,
                late_dropped: 1,
                ..IngestHealth::default()
            },
            ..IngestStats::default()
        };
        console.observe_ingest(&healthy);
        assert!(console.alerts().is_empty(), "{:?}", console.alerts());
        let degraded = IngestStats {
            frames: 100,
            t_last: 600.0,
            health: IngestHealth {
                accepted: 80,
                late_dropped: 15,
                wrong_node: 5,
                ..IngestHealth::default()
            },
            ..IngestStats::default()
        };
        console.observe_ingest(&degraded);
        let alert = console
            .alerts()
            .iter()
            .find(|a| a.kind == AlertKind::IngestDegraded)
            .expect("degraded ingest must alert");
        assert_eq!(alert.t, 600.0);
        assert!(alert.detail.contains("20 of 100"), "{}", alert.detail);
    }

    #[test]
    fn repeated_alerts_coalesce_within_cooldown() {
        let mut console = OpsConsole::with_defaults();
        // A GPU hot for 30 consecutive seconds: one alert, not 30.
        for i in 0..30 {
            console.observe(&tick_with(i as f64, 1.0e5, 0.973e5, 70.0, 1.1));
        }
        let hot: Vec<&Alert> = console
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::GpuOverTemp)
            .collect();
        assert_eq!(hot.len(), 1, "{:?}", console.alerts());
        assert_eq!(hot[0].repeat, 30);
        assert_eq!(hot[0].t, 29.0, "time tracks the latest occurrence");
        assert!(console.render().contains("(x30)"), "{}", console.render());
    }

    #[test]
    fn alerts_past_cooldown_start_fresh() {
        let mut console = OpsConsole::with_defaults();
        console.observe(&tick_with(0.0, 1.0e5, 0.973e5, 70.0, 1.1));
        // Default cool-down is 60 s; 300 s later is a new incident.
        console.observe(&tick_with(300.0, 1.0e5, 0.973e5, 70.0, 1.1));
        let hot: Vec<&Alert> = console
            .alerts()
            .iter()
            .filter(|a| a.kind == AlertKind::GpuOverTemp)
            .collect();
        assert_eq!(hot.len(), 2, "{:?}", console.alerts());
        assert!(hot.iter().all(|a| a.repeat == 1));
    }

    #[test]
    fn stage_timing_table_renders_spans() {
        let r = summit_obs::registry::Registry::new();
        let _scope = r.install();
        drop(summit_obs::span("summit_core_demo_stage"));
        let s = render_stage_timings(&r.snapshot());
        assert!(s.contains("pipeline stage timings"), "{s}");
        assert!(s.contains("summit_core_demo_stage"), "{s}");
        let empty = render_stage_timings(&summit_obs::Snapshot::default());
        assert!(empty.contains("no stage timings"));
    }

    fn power_window(node: u32, start: f64, mean_w: f64) -> NodeWindow {
        use summit_analysis::stats::WindowStats;
        use summit_telemetry::catalog::{input_power, METRIC_COUNT};
        use summit_telemetry::ids::NodeId;
        let mut stats = vec![WindowStats::empty(); METRIC_COUNT];
        stats[input_power().index()] = WindowStats {
            count: 10,
            min: mean_w,
            max: mean_w,
            mean: mean_w,
            std: 0.0,
        };
        NodeWindow {
            node: NodeId(node),
            window_start: start,
            stats,
        }
    }

    #[test]
    fn window_stream_view_folds_and_renders() {
        let mut console = OpsConsole::with_defaults();
        assert_eq!(console.windows_seen(), 0);
        assert!(console.window_watermark().is_none());
        // Two nodes, ten windows each, arriving per window start.
        for k in 0..10 {
            let start = k as f64 * 10.0;
            console
                .observe_windows(&[power_window(0, start, 300.0), power_window(1, start, 320.0)]);
        }
        console.finish_windows();
        assert_eq!(console.windows_seen(), 20);
        assert_eq!(console.window_watermark(), Some(90.0));
        assert_eq!(console.window_late_folds(), 0);
        // Ten folded cluster rows of 620 W each.
        let roll = console.win_power.stats();
        assert_eq!(roll.count, 10);
        assert!((roll.mean - 620.0).abs() < 1e-9, "mean {}", roll.mean);
        // Render needs at least one tick for the header.
        console.observe(&tick_with(95.0, 1.0e5, 0.973e5, 45.0, 1.1));
        let s = console.render();
        assert!(s.contains("windows"), "{s}");
        assert!(s.contains("watermark t=90s"), "{s}");
    }

    #[test]
    fn window_stream_view_detects_cluster_power_edges() {
        let mut console = OpsConsole::with_defaults();
        // 2 nodes -> edge threshold 2 x 868 W. Step the cluster from
        // 600 W to 20 kW and back: a rise and a fall.
        for k in 0..20 {
            let start = k as f64 * 10.0;
            let mean = if (8..12).contains(&k) {
                10_000.0
            } else {
                300.0
            };
            console.observe_windows(&[power_window(0, start, mean), power_window(1, start, mean)]);
        }
        console.finish_windows();
        assert!(console.live_edges() >= 2, "edges {}", console.live_edges());
    }

    #[test]
    fn straggler_after_fold_is_counted_not_retrofitted() {
        let mut console = OpsConsole::with_defaults();
        for k in 0..6 {
            console.observe_windows(&[power_window(0, k as f64 * 10.0, 300.0)]);
        }
        // Watermark 50: rows through start 30 have folded.
        assert!(console.window_late_folds() == 0);
        console.observe_windows(&[power_window(1, 0.0, 900.0)]);
        assert_eq!(console.window_late_folds(), 1);
        console.finish_windows();
        // The straggler did not distort the folded history.
        let roll = console.win_power.stats();
        assert!((roll.max - 300.0).abs() < 1e-9, "max {}", roll.max);
    }

    #[test]
    fn live_engine_stream_renders() {
        let mut engine = Engine::new(EngineConfig::small(2), 0.0);
        let mut console = OpsConsole::with_defaults();
        for _ in 0..60 {
            let tick = engine.step();
            console.observe(&tick);
        }
        let s = console.render();
        assert!(s.contains("compute power"));
        assert!(s.contains("MTW return"));
    }
}
