//! Scenario presets and shared experiment plumbing.
//!
//! Three reusable paths feed the experiments, mirroring how the paper's
//! analyses divide:
//!
//! 1. **Population path** — the scaled 840k-job statistical year plus
//!    closed-form job statistics (Figures 5-10, 14; Table 4).
//! 2. **Dynamics path** — full time-domain engine runs at 1 Hz/10 s for
//!    edge, snapshot and thermal-response studies (Figures 4, 11, 12, 17).
//! 3. **Telemetry path** — frame generation, fan-in, compression and
//!    coarsening measurements (Table 2).

use crate::monitoring::{Alert, OpsConsole};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use summit_analysis::series::Series;
use summit_sim::engine::{Engine, EngineConfig, StepOptions, TickOutput};
use summit_sim::failures::{CabinetOutage, FailureModel};
use summit_sim::jobs::{JobGenerator, SyntheticJob};
use summit_sim::jobstats::{population_stats, JobStatsRow};
use summit_sim::power::PowerModel;
use summit_sim::spec;
use summit_telemetry::batch::FrameBatch;
use summit_telemetry::delivery::NodeDelivery;
use summit_telemetry::records::{NodeFrame, XidEvent};
use summit_telemetry::stream::{FaultConfig, FaultInjector, IngestStats, InjectedFaults};
use summit_telemetry::window::{
    coarsen_parallel_with_health, NodeWindow, StreamingCoarsener, PAPER_WINDOW_S,
};

/// The scaled statistical-year scenario.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PopulationScenario {
    /// Number of jobs to draw (paper year = 840,000).
    pub job_count: usize,
    /// Span of arrivals (paper year = 366 days).
    pub span_s: f64,
    /// Seed.
    pub seed: u64,
}

impl PopulationScenario {
    /// The paper year scaled by `scale` (job count scales, span stays a
    /// full year so seasonal structure is preserved).
    pub fn paper_year(scale: f64) -> Self {
        assert!(scale > 0.0 && scale <= 1.0, "scale must be in (0, 1]");
        Self {
            job_count: (840_000.0 * scale) as usize,
            span_s: spec::YEAR_S,
            seed: 2020,
        }
    }

    /// Generates the population.
    pub fn generate(&self) -> Vec<SyntheticJob> {
        let _obs = summit_obs::span("summit_core_population_generate");
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut g = JobGenerator::new();
        let jobs = g.generate_population(&mut rng, self.job_count, 0.0, self.span_s);
        summit_obs::counter("summit_core_jobs_generated_total").inc_by(jobs.len() as u64);
        jobs
    }

    /// Generates the population together with its closed-form stats.
    pub fn generate_with_stats(&self) -> (Vec<JobStatsRow>, PowerModel) {
        let _obs = summit_obs::span("summit_core_population_stats");
        let pm = PowerModel::new(self.seed);
        let jobs = self.generate();
        (population_stats(&jobs, &pm), pm)
    }

    /// Generates the population artifact the scenario cache memoizes —
    /// the same rows as [`Self::generate_with_stats`], packaged with
    /// the power model.
    pub fn artifact(&self) -> PopulationArtifact {
        let (rows, power_model) = self.generate_with_stats();
        PopulationArtifact { rows, power_model }
    }
}

/// The cached form of a generated population: per-job stats rows (each
/// row carries its [`SyntheticJob`]) plus the power model they were
/// derived with.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PopulationArtifact {
    /// Per-job statistics in generation order.
    pub rows: Vec<JobStatsRow>,
    /// The (seeded) power model the stats were computed with.
    pub power_model: PowerModel,
}

/// The scaled failure-year scenario: paper-rate job traffic plus the
/// paper's XID failure model over `weeks` of observation. Shared by
/// Table 4, Figures 13-16 and the early-warning study, which is why the
/// scenario cache treats it as a first-class artifact.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FailureScenario {
    /// Observation span (weeks); 52+ reproduces the paper year.
    pub weeks: f64,
    /// Seed for both the job population and the failure draws.
    pub seed: u64,
}

impl FailureScenario {
    /// Observation span in seconds.
    pub fn span_s(&self) -> f64 {
        self.weeks * 7.0 * 86_400.0
    }

    /// Generates the job population and its failure log. The RNG
    /// sequence (jobs first, then failures, one seeded stream) matches
    /// the historical per-study generation exactly, so cached and
    /// fresh artifacts are bit-identical.
    pub fn generate(&self) -> FailureArtifact {
        let _obs = summit_obs::span("summit_core_failure_scenario");
        let span = self.span_s();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut gen = JobGenerator::new();
        let n_jobs = (840_000.0 * span / spec::YEAR_S) as usize;
        let jobs = gen.generate_population(&mut rng, n_jobs, 0.0, span);
        summit_obs::counter("summit_core_jobs_generated_total").inc_by(jobs.len() as u64);
        let model = FailureModel::paper();
        let events = model.generate(&mut rng, &jobs, spec::TOTAL_NODES, 0.0, span);
        FailureArtifact { jobs, events }
    }
}

/// The cached form of a generated failure year.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailureArtifact {
    /// The job population the failures were drawn over.
    pub jobs: Vec<SyntheticJob>,
    /// XID events in generation order.
    pub events: Vec<XidEvent>,
}

/// Builds the cluster power series over a window from a job population by
/// event sweep: each active job contributes its mean power above idle;
/// the total is floored at system idle and capped at compute capacity.
/// This is the coarse path behind the Figure 5 yearly trend.
pub fn cluster_power_sweep(rows: &[JobStatsRow], t0: f64, t1: f64, dt: f64) -> Series {
    assert!(t1 > t0 && dt > 0.0);
    let _obs = summit_obs::span("summit_core_cluster_power_sweep");
    let idle_w = spec::SYSTEM_IDLE_POWER_W;
    let cap_w = spec::TOTAL_NODES as f64 * spec::NODE_MAX_POWER_W;
    let n = ((t1 - t0) / dt).ceil() as usize;

    // Event sweep: delta at job begin/end.
    let mut events: Vec<(f64, f64)> = Vec::with_capacity(rows.len() * 2);
    for r in rows {
        let above_idle = (r.stats.mean_power_w
            - r.job.record.node_count as f64 * spec::NODE_IDLE_POWER_W)
            .max(0.0);
        events.push((r.job.record.begin_time, above_idle));
        events.push((r.job.record.end_time, -above_idle));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0));

    let mut values = vec![0.0f64; n];
    let mut level = 0.0;
    let mut e = 0;
    for (i, v) in values.iter_mut().enumerate() {
        let t = t0 + i as f64 * dt;
        while e < events.len() && events[e].0 <= t {
            level += events[e].1;
            e += 1;
        }
        *v = (idle_w + level).min(cap_w);
    }
    Series::new(t0, dt, values)
}

/// A completed time-domain engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DynamicsRun {
    /// Per-tick outputs (summary level).
    pub ticks: Vec<TickOutput>,
    /// Tick interval (s).
    pub dt_s: f64,
}

impl DynamicsRun {
    fn series_of(&self, f: impl Fn(&TickOutput) -> f64) -> Series {
        let t0 = self.ticks.first().map_or(0.0, |o| o.t);
        Series::new(t0, self.dt_s, self.ticks.iter().map(f).collect())
    }

    /// Sensor-summed compute power series (W) — what the telemetry sees.
    pub fn power_series(&self) -> Series {
        self.series_of(|o| o.sensor_compute_power_w)
    }

    /// True compute power series (W).
    pub fn true_power_series(&self) -> Series {
        self.series_of(|o| o.true_compute_power_w)
    }

    /// PUE series.
    pub fn pue_series(&self) -> Series {
        self.series_of(|o| o.cep.pue())
    }

    /// Cluster GPU mean/max temperature series (°C).
    pub fn gpu_temp_mean_series(&self) -> Series {
        self.series_of(|o| o.gpu_temp_mean_c)
    }

    /// Max-GPU temperature series (°C).
    pub fn gpu_temp_max_series(&self) -> Series {
        self.series_of(|o| o.gpu_temp_max_c)
    }

    /// Cluster CPU mean temperature series (°C).
    pub fn cpu_temp_mean_series(&self) -> Series {
        self.series_of(|o| o.cpu_temp_mean_c)
    }

    /// Max-CPU temperature series (°C).
    pub fn cpu_temp_max_series(&self) -> Series {
        self.series_of(|o| o.cpu_temp_max_c)
    }

    /// MTW return temperature series (°C).
    pub fn mtw_return_series(&self) -> Series {
        self.series_of(|o| o.cep.mtw_return_c)
    }

    /// MTW supply temperature series (°C).
    pub fn mtw_supply_series(&self) -> Series {
        self.series_of(|o| o.cep.mtw_supply_c)
    }

    /// Tower cooling series (tons of refrigeration).
    pub fn tower_tons_series(&self) -> Series {
        self.series_of(|o| o.cep.tower_tons)
    }

    /// Chiller cooling series (tons of refrigeration).
    pub fn chiller_tons_series(&self) -> Series {
        self.series_of(|o| o.cep.chiller_tons)
    }
}

/// A staged burst: one job sized to produce a clean power edge.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Burst {
    /// Start offset from the run start (s).
    pub at_s: f64,
    /// Node count of the burst job.
    pub nodes: u32,
    /// Duration (s).
    pub duration_s: f64,
    /// Peak GPU utilization of the burst job.
    pub gpu_intensity: f64,
}

/// Runs the engine over `duration_s` with a staged burst schedule —
/// the controlled-workload path behind the Figure 11/12 edge snapshots.
/// `t0` positions the run in the year (e.g. summer for chiller activity).
pub fn run_burst_schedule(
    config: EngineConfig,
    t0: f64,
    duration_s: f64,
    bursts: &[Burst],
) -> DynamicsRun {
    let _obs = summit_obs::span("summit_core_run_burst_schedule");
    let dt = config.dt_s;
    let seed = config.seed;
    let mut engine = Engine::new(config, t0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB0057);
    let mut gen = JobGenerator::new();
    // Jobs cannot exceed the largest schedulable size (Table 3).
    let max_nodes = (engine.topology().node_count() as u32).min(spec::MAX_JOB_NODES);
    for b in bursts {
        let mut job = gen.generate_with_class(&mut rng, t0 + b.at_s, 5);
        job.record.node_count = b.nodes.min(max_nodes);
        // Re-derive class from the actual node count for consistency.
        job.record.class = spec::class_of_node_count(job.record.node_count);
        job.record.end_time = job.record.begin_time + b.duration_s;
        job.profile.gpu_intensity = b.gpu_intensity;
        job.profile.cpu_intensity = 0.35;
        job.profile.oscillation_depth = 0.05;
        job.profile.ramp_s = 15.0;
        job.profile.checkpoint_interval_s = 0.0;
        engine.scheduler().submit(job);
    }
    summit_obs::counter("summit_core_jobs_generated_total").inc_by(bursts.len() as u64);
    let n_ticks = (duration_s / dt).ceil() as usize;
    let ticks = engine.run(n_ticks);
    summit_obs::counter("summit_core_engine_ticks_total").inc_by(ticks.len() as u64);
    DynamicsRun { ticks, dt_s: dt }
}

/// Mid-summer timestamp (Jul 24, the start of the paper's summer
/// snapshot window).
pub fn summer_t0() -> f64 {
    // Jul 24 2020 = day-of-year 205 (leap year).
    205.0 * 86_400.0
}

/// Runs a small standard dynamics scenario (used by tests and the
/// quickstart example): a few bursts on a scaled floor at 1 Hz.
pub fn quick_dynamics(cabinets: usize, duration_s: f64) -> DynamicsRun {
    let _obs = summit_obs::span("summit_core_quick_dynamics");
    let config = EngineConfig::small(cabinets);
    let nodes = (cabinets * 18) as u32;
    let bursts = vec![
        Burst {
            at_s: 120.0,
            nodes: nodes / 2,
            duration_s: 300.0,
            gpu_intensity: 0.95,
        },
        Burst {
            at_s: 600.0,
            nodes,
            duration_s: 300.0,
            gpu_intensity: 0.95,
        },
    ];
    run_burst_schedule(config, summer_t0(), duration_s, &bursts)
}

/// A completed telemetry-path run: frames generated by the engine,
/// delivered through the (optionally faulty) simulated fabric in
/// arrival order, and coarsened fault-tolerantly.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TelemetryRun {
    /// Coarsened 10 s windows per node.
    pub windows_by_node: Vec<Vec<NodeWindow>>,
    /// Ingest statistics, including the fault-tolerance health counters.
    pub stats: IngestStats,
    /// Faults the injector introduced (all zero for a clean run).
    pub injected: InjectedFaults,
    /// Per-run observability snapshot: every counter, gauge and stage
    /// timing the run recorded, isolated from other concurrent runs.
    pub obs: summit_obs::Snapshot,
    /// One-line run summary built from the registry (also printed).
    pub summary: String,
}

/// Builds the end-of-run summary line from registry counters. All
/// values except wall time are deterministic for a fixed seed.
fn telemetry_summary(snap: &summit_obs::Snapshot, wall_s: f64) -> String {
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    format!(
        "[obs] run_telemetry: jobs={} frames offered={} admitted={} dropped={} windows={} wall={:.3}s",
        c("summit_core_jobs_generated_total"),
        c("summit_core_frames_offered_total"),
        c("summit_telemetry_frames_accepted_total"),
        c("summit_telemetry_frames_dropped_total"),
        c("summit_telemetry_windows_total"),
        wall_s,
    )
}

/// Frame→window→alert latencies (seconds) of a delivered frame stream.
///
/// An alert can fire no earlier than the moment its 10 s window closes,
/// and the coarsener closes a window once the per-node watermark (max
/// `t_sample` seen) has advanced `horizon_s` past the window's end. This
/// replays each node's batch in delivery order and, for every window,
/// records `t_close - window_start`, where `t_close` is the ingest time
/// of the frame whose arrival closed the window (windows still open at
/// end of stream close at the node's last ingest time). Deterministic
/// for a fixed seed: only simulated timestamps enter the computation.
fn frame_to_alert_latencies(
    delivered: &[Vec<NodeFrame>],
    window_s: f64,
    horizon_s: f64,
) -> Vec<f64> {
    let mut out = Vec::new();
    for batch in delivered {
        let mut tracker = AlertLatencyTracker::new(window_s, horizon_s);
        for f in batch {
            tracker.observe(f);
        }
        out.extend(tracker.finish());
    }
    out
}

/// Incremental per-node frame→alert latency accounting: the exact loop
/// body of [`frame_to_alert_latencies`], fed one delivered frame at a
/// time so the streaming pipeline records the same latency multiset the
/// batch replay would, live.
struct AlertLatencyTracker {
    window_s: f64,
    horizon_s: f64,
    open: std::collections::BTreeSet<i64>,
    wm: f64,
    last_ingest: f64,
    closed: Vec<f64>,
}

impl AlertLatencyTracker {
    fn new(window_s: f64, horizon_s: f64) -> Self {
        Self {
            window_s,
            horizon_s,
            open: std::collections::BTreeSet::new(),
            wm: f64::NEG_INFINITY,
            last_ingest: f64::NEG_INFINITY,
            closed: Vec::new(),
        }
    }

    /// Latencies closed so far (delivery order within the node).
    fn closed(&self) -> &[f64] {
        &self.closed
    }

    fn observe(&mut self, f: &NodeFrame) {
        self.wm = self.wm.max(f.t_sample);
        self.last_ingest = self.last_ingest.max(f.t_ingest);
        let cutoff = self.wm - self.horizon_s;
        while let Some(&k) = self.open.first() {
            let start = k as f64 * self.window_s;
            if start + self.window_s <= cutoff {
                self.open.remove(&k);
                self.closed.push((f.t_ingest - start).max(0.0));
            } else {
                break;
            }
        }
        let key = (f.t_sample / self.window_s).floor() as i64;
        // A frame past the horizon would be dropped as late by the
        // ingester; don't let it re-open a closed window.
        if key as f64 * self.window_s + self.window_s > cutoff {
            self.open.insert(key);
        }
    }

    /// Closes every still-open window at the node's last ingest time.
    fn finish(mut self) -> Vec<f64> {
        if self.last_ingest.is_finite() {
            let open = std::mem::take(&mut self.open);
            for k in open {
                let start = k as f64 * self.window_s;
                self.closed.push((self.last_ingest - start).max(0.0));
            }
        }
        self.closed
    }
}

/// Runs the telemetry path end to end on a scaled floor: engine frames
/// at 1 Hz, per-node delivery through the propagation-delay model (plus
/// the given fault profile, if any), then fault-tolerant 10 s
/// coarsening. Even a clean run delivers frames in arrival order, so
/// the coarsener's reorder buffer is always exercised.
///
/// The run installs a private [`summit_obs`] registry so its metrics
/// are isolated per run; the resulting [`TelemetryRun::obs`] snapshot
/// is also absorbed into whatever registry was current at the call
/// site (the process-global one by default), and a one-line summary is
/// printed.
pub fn run_telemetry(
    cabinets: usize,
    duration_s: f64,
    faults: Option<FaultConfig>,
) -> TelemetryRun {
    let parent = summit_obs::current();
    let registry = summit_obs::registry::Registry::new();
    let (windows_by_node, stats, injected, wall_s) = {
        let _scope = registry.install();
        let run_span = summit_obs::span("summit_core_run_telemetry");

        let config = EngineConfig::small(cabinets);
        let dt = config.dt_s;
        let mut engine = Engine::new(config, 0.0);
        let node_count = engine.topology().node_count();
        let n_ticks = (duration_s / dt).ceil() as usize;
        let mut frames_by_node: Vec<Vec<NodeFrame>> = vec![Vec::with_capacity(n_ticks); node_count];
        {
            let _obs = summit_obs::span("summit_core_frame_generation");
            let opts = StepOptions {
                frames: true,
                ..StepOptions::default()
            };
            // One columnar tick batch, reset (never reallocated) every
            // tick: the engine writes metric columns in place and the
            // router reads back the exact row frames the old path
            // built — the steady-state tick loop touches no allocator.
            let mut tick_batch = FrameBatch::with_capacity(node_count);
            for _ in 0..n_ticks {
                {
                    let _tick_obs = summit_obs::span("summit_core_engine_tick");
                    let _ = engine.step_batch(&opts, &mut tick_batch);
                }
                for row in 0..tick_batch.len() {
                    let f = tick_batch.read_frame(row);
                    if let Some(batch) = frames_by_node.get_mut(f.node.index()) {
                        batch.push(f);
                    }
                }
            }
        }
        summit_obs::counter("summit_core_engine_ticks_total").inc_by(n_ticks as u64);
        let sched = engine.scheduler_ref();
        let jobs = sched.running().len() + sched.completed().len();
        summit_obs::counter("summit_core_jobs_generated_total").inc_by(jobs as u64);
        let offered: usize = frames_by_node.iter().map(Vec::len).sum();
        summit_obs::counter("summit_core_frames_offered_total").inc_by(offered as u64);

        let mut injector = FaultInjector::new(faults.unwrap_or_default());
        let delivered: Vec<Vec<NodeFrame>> = {
            let _obs = summit_obs::span("summit_core_fault_injection");
            frames_by_node
                .into_iter()
                .map(|batch| injector.deliver(batch))
                .collect()
        };
        // Canonical stats association: accumulate per node, merge in
        // node-index order. The streaming pipeline uses the same
        // grouping, so the float delay sums agree to the bit.
        let mut stats = IngestStats::default();
        for batch in &delivered {
            let mut node_stats = IngestStats::default();
            for f in batch {
                node_stats.observe(f);
            }
            stats.merge(&node_stats);
        }
        let (windows_by_node, health) = coarsen_parallel_with_health(&delivered, PAPER_WINDOW_S);
        stats.health = health;
        stats.publish_obs();

        {
            // ROADMAP item 2: SLO-style frame→alert latency, recorded as
            // both a histogram and (when a trace is live) counter tracks.
            let _obs = summit_obs::span("summit_core_alert_latency");
            let horizon_s = summit_telemetry::ingest::IngestPolicy::default().lateness_horizon_s;
            let mut latencies = frame_to_alert_latencies(&delivered, PAPER_WINDOW_S, horizon_s);
            let histogram = summit_obs::histogram("summit_core_frame_to_alert_latency_seconds");
            for &v in &latencies {
                histogram.observe(v);
            }
            latencies.sort_by(f64::total_cmp);
            let pct = |q: f64| {
                if latencies.is_empty() {
                    f64::NAN
                } else {
                    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
                    latencies.get(idx).copied().unwrap_or(f64::NAN)
                }
            };
            let (p50, p99) = (pct(0.50), pct(0.99));
            summit_obs::gauge("summit_core_frame_to_alert_p50_seconds").set(p50);
            summit_obs::gauge("summit_core_frame_to_alert_p99_seconds").set(p99);
            if let Some(tc) = summit_obs::trace::current() {
                // Simulated-time values: deterministic under any clock.
                tc.counter("summit_core_frame_to_alert_p50_seconds", p50);
                tc.counter("summit_core_frame_to_alert_p99_seconds", p99);
                tc.counter(
                    "summit_telemetry_ingest_mean_delay_seconds",
                    stats.mean_delay_s(),
                );
            }
        }

        let wall_s = run_span.elapsed_s();
        let windows: usize = windows_by_node.iter().map(Vec::len).sum();
        if wall_s > 0.0 {
            summit_obs::gauge("summit_core_frames_per_wall_second").set(offered as f64 / wall_s);
            summit_obs::gauge("summit_core_windows_per_wall_second").set(windows as f64 / wall_s);
            if let Some(tc) = summit_obs::trace::current() {
                // Wall-derived rate: only meaningful (and only allowed —
                // byte-identity would break) under the wall clock.
                if tc.clock() == summit_obs::trace::TraceClock::Wall {
                    tc.counter(
                        "summit_core_frames_per_wall_second",
                        offered as f64 / wall_s,
                    );
                }
            }
        }
        (windows_by_node, stats, injector.injected(), wall_s)
    };
    let obs = registry.snapshot();
    parent.absorb(&obs);
    let summary = telemetry_summary(&obs, wall_s);
    println!("{summary}");
    TelemetryRun {
        windows_by_node,
        stats,
        injected,
        obs,
        summary,
    }
}

/// Configuration of the streaming telemetry pipeline.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamConfig {
    /// Scaled floor size (18 nodes per cabinet).
    pub cabinets: usize,
    /// Simulated run length (s).
    pub duration_s: f64,
    /// Fault profile for the simulated fabric (`None` = clean).
    pub faults: Option<FaultConfig>,
    /// Scheduled whole-cabinet outage bursts (simulated seconds).
    pub cabinet_outages: Vec<CabinetOutage>,
    /// Bounded channel capacity (tick batches) between the producer and
    /// the consumer; the producer blocks when the consumer lags.
    pub channel_capacity: usize,
    /// Engine ticks per channel batch.
    pub ticks_per_batch: usize,
}

impl StreamConfig {
    /// Streaming run with the default channel shape (8 batches of 16
    /// ticks in flight at most).
    pub fn new(cabinets: usize, duration_s: f64, faults: Option<FaultConfig>) -> Self {
        Self {
            cabinets,
            duration_s,
            faults,
            cabinet_outages: Vec::new(),
            channel_capacity: 8,
            ticks_per_batch: 16,
        }
    }
}

/// A completed streaming telemetry run. The data outputs
/// (`windows_by_node`, `stats`, `injected`) are bit-identical to the
/// [`run_telemetry`] batch replay at the same seed; the streaming-only
/// fields report live behaviour (alerts as they fired, backpressure,
/// peak residency).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StreamingRun {
    /// Coarsened 10 s windows per node (bit-identical to batch).
    pub windows_by_node: Vec<Vec<NodeWindow>>,
    /// Ingest statistics (bit-identical to batch).
    pub stats: IngestStats,
    /// Faults injected by the simulated fabric (identical to batch).
    pub injected: InjectedFaults,
    /// Operations-console alerts in the order they fired.
    pub alerts: Vec<Alert>,
    /// Closed windows the live console view observed.
    pub live_windows: u64,
    /// Peak frames resident in the pipeline (reorder heaps, swap holds
    /// and coarsener buffers) — bounded by the fabric delay and the
    /// lateness horizon, not the run length.
    pub peak_resident_frames: usize,
    /// Peak tick batches in the channel (≤ capacity).
    pub peak_channel_depth: usize,
    /// Producer stalls on a full channel (blocking backpressure).
    pub backpressure_stalls: u64,
    /// Per-run observability snapshot.
    pub obs: summit_obs::Snapshot,
    /// One-line run summary (also printed).
    pub summary: String,
}

/// Builds the end-of-run summary line for a streaming run.
fn streaming_summary(snap: &summit_obs::Snapshot, stalls: u64, wall_s: f64) -> String {
    let c = |name: &str| snap.counter(name).unwrap_or(0);
    format!(
        "[obs] run_streaming: jobs={} frames offered={} admitted={} dropped={} windows={} stalls={stalls} wall={:.3}s",
        c("summit_core_jobs_generated_total"),
        c("summit_core_frames_offered_total"),
        c("summit_telemetry_frames_accepted_total"),
        c("summit_telemetry_frames_dropped_total"),
        c("summit_telemetry_windows_total"),
        wall_s,
    )
}

/// Runs `produce` on a dedicated producer thread shipping batches over
/// a bounded channel to the inline `consume` closure. The producer's
/// `send` callback returns `false` once the consumer is gone; a full
/// channel counts a `summit_core_stream_backpressure_stalls_total`
/// stall, then blocks until a slot frees — backpressure, never loss.
/// `consume` receives each batch with the channel depth observed right
/// after the receive. The producer thread inherits the caller's
/// observability registry; under a wall-clock trace it also joins the
/// trace as a worker (virtual-clock traces decline workers so traces
/// stay byte-stable).
pub fn stream_batches<T, R, P, C>(capacity: usize, produce: P, mut consume: C) -> R
where
    T: Send,
    R: Send + Default,
    P: FnOnce(&dyn Fn(T) -> bool) -> R + Send,
    C: FnMut(T, usize),
{
    let registry = summit_obs::current();
    let trace = summit_obs::trace::current();
    let (tx, rx) = crossbeam::channel::bounded::<T>(capacity.max(1));
    std::thread::scope(|s| {
        let producer = s.spawn(move || {
            let _install = registry.install();
            let _worker = trace.as_ref().and_then(|t| t.install_worker());
            let send = |batch: T| -> bool {
                match tx.try_send(batch) {
                    Ok(()) => true,
                    Err(crossbeam::channel::TrySendError::Full(batch)) => {
                        summit_obs::counter("summit_core_stream_backpressure_stalls_total").inc();
                        tx.send(batch).is_ok()
                    }
                    Err(crossbeam::channel::TrySendError::Disconnected(_)) => false,
                }
            };
            produce(&send)
        });
        while let Ok(batch) = rx.recv() {
            let depth = rx.len();
            consume(batch, depth);
        }
        producer.join().unwrap_or_default()
    })
}

/// Runs the telemetry path as a long-running online pipeline: a
/// producer thread steps the engine and ships tick batches over a
/// bounded channel (blocking when the consumer lags — backpressure,
/// not loss), while the consumer routes each node's frames through the
/// incremental fault fabric ([`NodeDelivery`]), the incremental
/// coarsener ([`StreamingCoarsener`]), live frame→alert latency
/// accounting and the continuously-updating [`OpsConsole`].
///
/// **Determinism:** every data output is computed from simulated
/// timestamps in a fixed per-node order, so the run is bit-identical
/// to [`run_telemetry`] at the same seed — windows, ingest stats,
/// injected-fault counts and the p50/p99 alert-latency gauges all
/// match to the bit (asserted in tests). Under a virtual-clock trace
/// the producer records no trace events (worker installation is
/// declined), keeping traces byte-stable; under a wall clock the
/// producer joins the trace and wall-rate counters appear.
///
/// **Bounded memory:** resident state is the reorder heaps (bounded by
/// the fabric's maximum delay), one held frame per node, the
/// coarsener's in-horizon pending buffers and at most
/// `channel_capacity` tick batches — independent of `duration_s`.
pub fn run_streaming(config: StreamConfig) -> StreamingRun {
    let parent = summit_obs::current();
    let registry = summit_obs::registry::Registry::new();
    let (mut run, stalls, wall_s) = {
        let _scope = registry.install();
        let run_span = summit_obs::span("summit_core_run_streaming");

        let mut engine_config = EngineConfig::small(config.cabinets);
        engine_config.cabinet_outages = config.cabinet_outages.clone();
        let dt = engine_config.dt_s;
        let n_ticks = (config.duration_s / dt).ceil() as usize;
        let ticks_per_batch = config.ticks_per_batch.max(1);

        let fault_cfg = config.faults.unwrap_or_default();
        let horizon_s = summit_telemetry::ingest::IngestPolicy::default().lateness_horizon_s;

        let mut deliveries: Vec<NodeDelivery> = Vec::new();
        let mut trackers: Vec<AlertLatencyTracker> = Vec::new();
        let mut node_stats: Vec<IngestStats> = Vec::new();
        let mut coarsener = StreamingCoarsener::new(0, PAPER_WINDOW_S);
        let mut console = OpsConsole::with_defaults();
        let mut windows_by_node: Vec<Vec<NodeWindow>> = Vec::new();
        let mut scratch: Vec<NodeFrame> = Vec::new();
        let histogram = summit_obs::histogram("summit_core_frame_to_alert_latency_seconds");
        let mut offered = 0u64;
        let mut live_windows = 0u64;
        let mut peak_resident = 0usize;
        let mut peak_depth = 0usize;

        let jobs = stream_batches(
            config.channel_capacity,
            move |send: &dyn Fn(Vec<(TickOutput, FrameBatch)>) -> bool| {
                let _gen = summit_obs::span("summit_core_frame_generation");
                let opts = StepOptions {
                    frames: true,
                    ..StepOptions::default()
                };
                let mut engine = Engine::new(engine_config, 0.0);
                let node_count = engine.topology().node_count();
                let mut sent = 0usize;
                while sent < n_ticks {
                    let n = ticks_per_batch.min(n_ticks - sent);
                    let mut batch = Vec::with_capacity(n);
                    for _ in 0..n {
                        let _tick_obs = summit_obs::span("summit_core_engine_tick");
                        // Ownership of each tick's columns crosses the
                        // channel, so the buffer is per tick here; the
                        // engine still writes columns, not row frames.
                        let mut frames = FrameBatch::with_capacity(node_count);
                        let tick = engine.step_batch(&opts, &mut frames);
                        batch.push((tick, frames));
                    }
                    sent += n;
                    if !send(batch) {
                        break;
                    }
                }
                let sched = engine.scheduler_ref();
                sched.running().len() + sched.completed().len()
            },
            |batch, depth| {
                // `depth + 1` counts the just-received batch back in,
                // but the producer may already have refilled its slot
                // by the time `depth` was read; the channel itself
                // never holds more than its capacity, so clamp.
                peak_depth = peak_depth.max((depth + 1).min(config.channel_capacity.max(1)));
                summit_obs::gauge("summit_core_stream_channel_depth").set(depth as f64);
                let _obs = summit_obs::span("summit_core_stream_consume");
                for (tick, frames) in batch {
                    console.observe(&tick);
                    for row in 0..frames.len() {
                        let f = frames.read_frame(row);
                        offered += 1;
                        let idx = f.node.index();
                        if deliveries.len() <= idx {
                            deliveries.resize_with(idx + 1, || NodeDelivery::new(fault_cfg));
                            trackers.resize_with(idx + 1, || {
                                AlertLatencyTracker::new(PAPER_WINDOW_S, horizon_s)
                            });
                            node_stats.resize_with(idx + 1, IngestStats::default);
                        }
                        scratch.clear();
                        deliveries[idx].offer(f, &mut scratch);
                        for df in scratch.drain(..) {
                            let before = trackers[idx].closed().len();
                            trackers[idx].observe(&df);
                            for &lat in &trackers[idx].closed()[before..] {
                                histogram.observe(lat);
                            }
                            node_stats[idx].observe(&df);
                            if coarsener.push(idx, &df).is_err() {
                                summit_obs::counter("summit_core_stream_frames_rejected_total")
                                    .inc();
                            }
                        }
                    }
                }
                let closed = coarsener.drain_completed();
                if !closed.is_empty() {
                    live_windows += closed.len() as u64;
                    console.observe_windows(&closed);
                    for w in closed {
                        let idx = w.node.index();
                        if windows_by_node.len() <= idx {
                            windows_by_node.resize_with(idx + 1, Vec::new);
                        }
                        windows_by_node[idx].push(w);
                    }
                }
                let resident = coarsener.resident_frames()
                    + deliveries.iter().map(NodeDelivery::resident).sum::<usize>();
                peak_resident = peak_resident.max(resident);
            },
        );
        summit_obs::counter("summit_core_engine_ticks_total").inc_by(n_ticks as u64);
        summit_obs::counter("summit_core_jobs_generated_total").inc_by(jobs as u64);
        summit_obs::counter("summit_core_frames_offered_total").inc_by(offered);

        // Tail: drain the reorder heaps and swap holds, then close the
        // remaining windows — per node, in node-index order, exactly
        // the batch association.
        let mut injected = InjectedFaults::default();
        let mut stats = IngestStats::default();
        let mut latencies: Vec<f64> = Vec::new();
        {
            let _obs = summit_obs::span("summit_core_stream_finish");
            let trackers_tail = trackers;
            for (idx, (delivery, (mut tracker, nstats))) in deliveries
                .into_iter()
                .zip(trackers_tail.into_iter().zip(node_stats))
                .enumerate()
            {
                let mut nstats = nstats;
                scratch.clear();
                let counts = delivery.finish(&mut scratch);
                injected.merge(&counts);
                for df in scratch.drain(..) {
                    let before = tracker.closed().len();
                    tracker.observe(&df);
                    for &lat in &tracker.closed()[before..] {
                        histogram.observe(lat);
                    }
                    nstats.observe(&df);
                    if coarsener.push(idx, &df).is_err() {
                        summit_obs::counter("summit_core_stream_frames_rejected_total").inc();
                    }
                }
                let before = tracker.closed().len();
                let node_latencies = tracker.finish();
                for &lat in &node_latencies[before..] {
                    histogram.observe(lat);
                }
                latencies.extend(node_latencies);
                stats.merge(&nstats);
            }
            let (tail_windows, health) = coarsener.finish_with_health();
            for (idx, ws) in tail_windows.into_iter().enumerate() {
                if ws.is_empty() {
                    continue;
                }
                live_windows += ws.len() as u64;
                console.observe_windows(&ws);
                if windows_by_node.len() <= idx {
                    windows_by_node.resize_with(idx + 1, Vec::new);
                }
                windows_by_node[idx].extend(ws);
            }
            console.finish_windows();
            stats.health = health;
        }
        stats.publish_obs();
        let windows: usize = windows_by_node.iter().map(Vec::len).sum();
        summit_obs::counter("summit_telemetry_windows_total").inc_by(windows as u64);
        summit_obs::counter("summit_telemetry_frames_accepted_total").inc_by(stats.health.accepted);
        summit_obs::counter("summit_telemetry_frames_dropped_total").inc_by(stats.health.dropped());
        console.observe_ingest(&stats);

        {
            // Live SLO gauges from the actual streaming path: the
            // latency multiset equals the batch one, so the sorted
            // percentiles agree to the bit.
            let _obs = summit_obs::span("summit_core_alert_latency");
            latencies.sort_by(f64::total_cmp);
            let pct = |q: f64| {
                if latencies.is_empty() {
                    f64::NAN
                } else {
                    let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
                    latencies.get(idx).copied().unwrap_or(f64::NAN)
                }
            };
            let (p50, p99) = (pct(0.50), pct(0.99));
            summit_obs::gauge("summit_core_frame_to_alert_p50_seconds").set(p50);
            summit_obs::gauge("summit_core_frame_to_alert_p99_seconds").set(p99);
            if let Some(tc) = summit_obs::trace::current() {
                tc.counter("summit_core_frame_to_alert_p50_seconds", p50);
                tc.counter("summit_core_frame_to_alert_p99_seconds", p99);
                tc.counter(
                    "summit_telemetry_ingest_mean_delay_seconds",
                    stats.mean_delay_s(),
                );
            }
        }

        summit_obs::gauge("summit_core_stream_peak_channel_depth").set(peak_depth as f64);
        summit_obs::gauge("summit_core_stream_peak_resident_frames").set(peak_resident as f64);
        let wall_s = run_span.elapsed_s();
        if wall_s > 0.0 {
            summit_obs::gauge("summit_core_frames_per_wall_second").set(offered as f64 / wall_s);
            summit_obs::gauge("summit_core_windows_per_wall_second").set(windows as f64 / wall_s);
            if let Some(tc) = summit_obs::trace::current() {
                if tc.clock() == summit_obs::trace::TraceClock::Wall {
                    tc.counter(
                        "summit_core_frames_per_wall_second",
                        offered as f64 / wall_s,
                    );
                }
            }
        }
        let stalls = registry
            .snapshot()
            .counter("summit_core_stream_backpressure_stalls_total")
            .unwrap_or(0);
        let run = StreamingRun {
            windows_by_node,
            stats,
            injected,
            alerts: console.drain_alerts(),
            live_windows,
            peak_resident_frames: peak_resident,
            peak_channel_depth: peak_depth,
            backpressure_stalls: stalls,
            obs: summit_obs::Snapshot::default(),
            summary: String::new(),
        };
        (run, stalls, wall_s)
    };
    let obs = registry.snapshot();
    parent.absorb(&obs);
    let summary = streaming_summary(&obs, stalls, wall_s);
    println!("{summary}");
    run.obs = obs;
    run.summary = summary;
    run
}

/// Collects per-step detailed outputs for one engine run with options.
pub fn run_detailed(
    config: EngineConfig,
    t0: f64,
    n_ticks: usize,
    opts: StepOptions,
) -> (Vec<TickOutput>, f64) {
    let _obs = summit_obs::span("summit_core_run_detailed");
    let dt = config.dt_s;
    let mut engine = Engine::new(config, t0);
    let ticks = (0..n_ticks).map(|_| engine.step_opts(&opts)).collect();
    summit_obs::counter("summit_core_engine_ticks_total").inc_by(n_ticks as u64);
    (ticks, dt)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn population_scenario_scales() {
        let s = PopulationScenario::paper_year(0.001);
        assert_eq!(s.job_count, 840);
        let jobs = s.generate();
        assert_eq!(jobs.len(), 840);
        assert!(jobs.iter().all(|j| j.record.begin_time < spec::YEAR_S));
    }

    #[test]
    fn sweep_power_within_physical_bounds() {
        let s = PopulationScenario::paper_year(0.002);
        let (rows, _) = s.generate_with_stats();
        let series = cluster_power_sweep(&rows, 0.0, 30.0 * 86400.0, 3600.0);
        for &v in series.values() {
            assert!(v >= spec::SYSTEM_IDLE_POWER_W - 1.0);
            assert!(v <= spec::TOTAL_NODES as f64 * spec::NODE_MAX_POWER_W + 1.0);
        }
        // With jobs running, power must exceed idle somewhere.
        assert!(series
            .values()
            .iter()
            .any(|&v| v > spec::SYSTEM_IDLE_POWER_W * 1.05));
    }

    #[test]
    fn burst_schedule_creates_power_swing() {
        let run = quick_dynamics(6, 1000.0);
        let p = run.power_series();
        let lo = p.values()[..100]
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        let hi = p.values().iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        // 108 nodes swinging to near-peak: amplitude should exceed 80 kW.
        assert!(
            hi - lo > 80_000.0,
            "burst amplitude too small: {} -> {}",
            lo,
            hi
        );
        // Thermal and facility series come along.
        assert_eq!(run.pue_series().len(), p.len());
        assert!(run
            .gpu_temp_max_series()
            .values()
            .iter()
            .any(|v| v.is_finite()));
    }

    #[test]
    fn telemetry_run_clean_path_reorders_without_loss() {
        let run = run_telemetry(2, 60.0, None);
        assert_eq!(run.injected, InjectedFaults::default());
        let h = run.stats.health;
        assert_eq!(h.dropped(), 0, "clean fabric loses nothing");
        assert!(
            h.reordered > 0,
            "propagation delay must reorder some frames"
        );
        assert_eq!(h.offered(), run.stats.frames);
        assert_eq!(run.windows_by_node.len(), 36);
        assert!(run.windows_by_node.iter().all(|w| !w.is_empty()));
        assert!(run.stats.mean_delay_s() > 0.0 && run.stats.max_delay_s < 5.0);
    }

    #[test]
    fn telemetry_run_surfaces_injected_faults() {
        let faults = FaultConfig {
            drop_p: 0.05,
            duplicate_p: 0.05,
            delay_p: 0.10,
            reorder_p: 0.02,
            ..FaultConfig::default()
        };
        let run = run_telemetry(2, 120.0, Some(faults));
        let h = run.stats.health;
        // A duplicated delivery is deduped on arrival unless its copy
        // lands past the lateness horizon, in which case it is counted
        // late instead — either way every injected duplicate is accounted.
        assert!(h.duplicates > 0 && h.duplicates <= run.injected.duplicated);
        assert!(run.injected.duplicated - h.duplicates <= h.late_dropped);
        assert!(run.injected.dropped > 0);
        assert!(h.late_dropped > 0, "10 s extra delays exceed the horizon");
        assert_eq!(h.offered(), run.stats.frames);
        assert_eq!(h.wrong_node, 0);
        // The pipeline still produces a full window grid per node.
        assert!(run.windows_by_node.iter().all(|w| !w.is_empty()));
    }

    #[test]
    fn frame_to_alert_latency_closes_windows_at_the_horizon() {
        use summit_telemetry::ids::NodeId;
        // One node, 1 Hz frames with a constant 1 s propagation delay.
        let frames: Vec<NodeFrame> = (0..40)
            .map(|i| {
                let mut f = NodeFrame::empty(NodeId(0), i as f64);
                f.t_ingest = i as f64 + 1.0;
                f
            })
            .collect();
        let lat = frame_to_alert_latencies(&[frames], 10.0, 5.0);
        // Windows [0,10), [10,20), [20,30) close when the watermark
        // clears start + window + horizon: at t_sample = start + 15,
        // ingested one second later => latency = 16 s each. The last
        // window is still open at end of stream and closes at the final
        // ingest time (40 s) => latency = 10 s.
        assert_eq!(lat, vec![16.0, 16.0, 16.0, 10.0]);
    }

    #[test]
    fn frame_to_alert_gauges_are_recorded() {
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let run = run_telemetry(2, 120.0, None);
        let h = run
            .obs
            .histogram("summit_core_frame_to_alert_latency_seconds")
            .expect("latency histogram present");
        assert!(h.count > 0);
        let p50 = run
            .obs
            .gauge("summit_core_frame_to_alert_p50_seconds")
            .expect("p50 gauge present");
        let p99 = run
            .obs
            .gauge("summit_core_frame_to_alert_p99_seconds")
            .expect("p99 gauge present");
        // The alert path cannot beat the window length, and the p-order
        // must hold.
        assert!(p50 >= PAPER_WINDOW_S, "p50 {p50} below window length");
        assert!(p99 >= p50);
        assert!(p99.is_finite());
    }

    fn assert_windows_bitwise_eq(a: &[Vec<NodeWindow>], b: &[Vec<NodeWindow>]) {
        assert_eq!(a.len(), b.len(), "node count");
        for (node, (wa, wb)) in a.iter().zip(b).enumerate() {
            assert_eq!(wa.len(), wb.len(), "window count for node {node}");
            for (x, y) in wa.iter().zip(wb) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.window_start.to_bits(), y.window_start.to_bits());
                assert_eq!(x.stats.len(), y.stats.len());
                for (s, t) in x.stats.iter().zip(&y.stats) {
                    assert_eq!(s.count, t.count);
                    if s.count > 0 {
                        assert_eq!(s.min.to_bits(), t.min.to_bits());
                        assert_eq!(s.max.to_bits(), t.max.to_bits());
                        assert_eq!(s.mean.to_bits(), t.mean.to_bits());
                        assert_eq!(s.std.to_bits(), t.std.to_bits());
                    }
                }
            }
        }
    }

    fn assert_stream_matches_batch(cabinets: usize, duration_s: f64, faults: Option<FaultConfig>) {
        let batch = run_telemetry(cabinets, duration_s, faults);
        let stream = run_streaming(StreamConfig::new(cabinets, duration_s, faults));
        assert_windows_bitwise_eq(&stream.windows_by_node, &batch.windows_by_node);
        assert_eq!(stream.injected, batch.injected, "fault accounting");
        let (s, b) = (&stream.stats, &batch.stats);
        assert_eq!(s.frames, b.frames);
        assert_eq!(s.metrics, b.metrics);
        assert_eq!(s.t_first.to_bits(), b.t_first.to_bits());
        assert_eq!(s.t_last.to_bits(), b.t_last.to_bits());
        assert_eq!(s.total_delay_s.to_bits(), b.total_delay_s.to_bits());
        assert_eq!(s.max_delay_s.to_bits(), b.max_delay_s.to_bits());
        assert_eq!(s.health, b.health);
        for gauge in [
            "summit_core_frame_to_alert_p50_seconds",
            "summit_core_frame_to_alert_p99_seconds",
        ] {
            let sv = stream.obs.gauge(gauge).expect("stream gauge");
            let bv = batch.obs.gauge(gauge).expect("batch gauge");
            assert_eq!(sv.to_bits(), bv.to_bits(), "{gauge}");
        }
        // Deterministic counters agree too.
        for counter in [
            "summit_core_frames_offered_total",
            "summit_telemetry_windows_total",
            "summit_telemetry_frames_accepted_total",
            "summit_telemetry_frames_dropped_total",
        ] {
            assert_eq!(
                stream.obs.counter(counter),
                batch.obs.counter(counter),
                "{counter}"
            );
        }
    }

    #[test]
    fn streaming_clean_run_is_bit_identical_to_batch() {
        assert_stream_matches_batch(2, 120.0, None);
    }

    #[test]
    fn streaming_faulty_run_is_bit_identical_to_batch() {
        let faults = FaultConfig {
            drop_p: 0.05,
            duplicate_p: 0.05,
            delay_p: 0.10,
            reorder_p: 0.02,
            ..FaultConfig::default()
        };
        assert_stream_matches_batch(2, 120.0, Some(faults));
    }

    #[test]
    fn streaming_memory_is_bounded_by_horizon_not_run_length() {
        let short = run_streaming(StreamConfig::new(1, 120.0, None));
        let long = run_streaming(StreamConfig::new(1, 480.0, None));
        assert!(short.peak_resident_frames > 0);
        // Peak residency is set by the fabric delay + lateness horizon,
        // so a 4x longer replay must not grow it meaningfully.
        assert!(
            long.peak_resident_frames <= short.peak_resident_frames + 64,
            "resident grew with run length: {} -> {}",
            short.peak_resident_frames,
            long.peak_resident_frames
        );
        let cfg = StreamConfig::new(1, 480.0, None);
        assert!(long.peak_channel_depth <= cfg.channel_capacity);
        // The live console saw every closed window.
        let total: usize = long.windows_by_node.iter().map(Vec::len).sum();
        assert_eq!(long.live_windows, total as u64);
    }

    #[test]
    fn streaming_run_records_live_console_and_channel_metrics() {
        let run = run_streaming(StreamConfig::new(2, 120.0, None));
        assert!(run
            .obs
            .gauge("summit_core_stream_peak_channel_depth")
            .is_some());
        assert!(run
            .obs
            .gauge("summit_core_stream_peak_resident_frames")
            .is_some());
        assert!(
            run.obs
                .counter("summit_core_live_windows_total")
                .unwrap_or(0)
                > 0
        );
        assert!(run.summary.contains("run_streaming"), "{}", run.summary);
    }

    #[test]
    fn dynamics_series_share_time_axis() {
        let run = quick_dynamics(3, 200.0);
        let p = run.power_series();
        let q = run.mtw_return_series();
        assert_eq!(p.t0(), q.t0());
        assert_eq!(p.dt(), q.dt());
        assert_eq!(p.len(), q.len());
        assert_eq!(p.t0(), summer_t0());
    }
}
