//! Tables 1 and 3: system specification and scheduling classes.
//!
//! These are configuration tables; the reproduction prints the constants
//! the simulator is built from so they can be diffed against the paper.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{Cfg, Experiment, ExperimentError};
use crate::json::Json;
use crate::report::Table;
use summit_sim::spec;

/// Registry adapter for the specification tables (Tables 1 and 3).
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "tables"
    }

    fn summary(&self) -> &'static str {
        "Tables 1 and 3: system specification and scheduling classes"
    }

    fn default_config(&self, _scale: f64) -> Json {
        // Constants — nothing to scale.
        Json::obj([])
    }

    fn run(&self, _cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        Cfg::new("tables", config)?;
        Ok(format!("{}\n{}", render_table1(), render_table3()))
    }
}

/// Renders Table 1 (Summit system specification).
pub fn render_table1() -> String {
    let _obs = summit_obs::span("summit_core_table1");
    let mut t = Table::new("Table 1: Summit system specification", &["item", "value"]);
    let rows: Vec<(&str, String)> = vec![
        (
            "Nodes",
            format!("{} IBM AC922 8335-GTX nodes", spec::TOTAL_NODES),
        ),
        (
            "Cabinets",
            format!(
                "{} watercooled cabinets, {} nodes each",
                spec::TOTAL_CABINETS,
                spec::NODES_PER_CABINET
            ),
        ),
        (
            "Power consumption",
            format!("{:.0} Megawatts peak", spec::SYSTEM_PEAK_POWER_W / 1e6),
        ),
        (
            "Secondary loop",
            format!(
                "supply {:.1}-{:.1} C, return {:.1}-{:.1} C",
                spec::MTW_SUPPLY_MIN_C,
                spec::MTW_SUPPLY_MAX_C,
                spec::MTW_RETURN_MIN_C,
                spec::MTW_RETURN_MAX_C
            ),
        ),
        (
            "Processor",
            "2 x IBM Power9 22C, direct water-cooled".into(),
        ),
        ("GPU", "6 x NVIDIA Volta V100, direct water-cooled".into()),
        (
            "Node max power",
            format!("{:.0} Watts", spec::NODE_MAX_POWER_W),
        ),
        ("CPU TDP", format!("{:.0} Watts", spec::CPU_TDP_W)),
        ("GPU TDP", format!("{:.0} Watts", spec::GPU_TDP_W)),
        ("Total GPUs", format!("{}", spec::TOTAL_GPUS)),
        ("Total CPUs", format!("{}", spec::TOTAL_CPUS)),
        (
            "System idle power",
            format!("{:.1} MW", spec::SYSTEM_IDLE_POWER_W / 1e6),
        ),
        (
            "Facility capacity",
            format!("{:.0} MW", spec::FACILITY_CAPACITY_W / 1e6),
        ),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    t.render()
}

/// Renders Table 3 (scheduling classes).
pub fn render_table3() -> String {
    let _obs = summit_obs::span("summit_core_table3");
    let mut t = Table::new(
        "Table 3: Summit scheduling classes by job node count",
        &["class", "node range", "max walltime (h)"],
    );
    for c in spec::SCHEDULING_CLASSES {
        t.row(vec![
            c.class.to_string(),
            format!("{} - {}", c.node_range.0, c.node_range.1),
            format!("{:.0}", c.max_walltime_h),
        ]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn table1_contains_paper_anchors() {
        let s = render_table1();
        assert!(s.contains("4626"));
        assert!(s.contains("257"));
        assert!(s.contains("13 Megawatts"));
        assert!(s.contains("2300 Watts"));
        assert!(s.contains("27756"));
    }

    #[test]
    fn table3_lists_all_classes() {
        let s = render_table3();
        assert!(s.contains("2765 - 4608"));
        assert!(s.contains("1 - 45"));
        for line in ["24", "12", "6", "2"] {
            assert!(s.contains(line));
        }
    }
}
