//! Figure 7: cumulative distribution functions of leadership-job features.
//!
//! For classes 1 and 2 the paper reports CDFs of node count, walltime,
//! mean input power, max input power, and the max-mean power difference,
//! with the 80 % red line at: class 1 — >60 % of jobs above 4,000 nodes
//! (mode at 4,096), P80 walltime ~43 min, P80 max power 6.6 MW (max
//! 10.7 MW); class 2 — 80 % under 1,500 nodes (modes at 1,000/1,024),
//! P80 walltime ~3 h, P80 max power 1.6 MW (max 5.6 MW); class 1 shows
//! much larger max-mean variation.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{
    clamp_scale, ensure_population_scale, Cfg, Experiment, ExperimentError,
};
use crate::json::Json;
use crate::pipeline::PopulationScenario;
use crate::report::{watts, Table};
use serde::{Deserialize, Serialize};
use summit_analysis::cdf::Ecdf;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Fraction of the paper's 840k jobs (leadership classes are rare, so
    /// this should not be too small).
    pub population_scale: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            population_scale: 0.05,
        }
    }
}

/// CDF summary of one feature.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeatureCdf {
    /// 20th percentile.
    pub p20: f64,
    /// Median (50th percentile).
    pub p50: f64,
    /// 80th percentile (the paper's red line).
    pub p80: f64,
    /// Maximum.
    pub max: f64,
}

impl FeatureCdf {
    /// All-NaN placeholder used when a class selects no jobs.
    const EMPTY: Self = Self {
        p20: f64::NAN,
        p50: f64::NAN,
        p80: f64::NAN,
        max: f64::NAN,
    };

    fn from(values: &[f64]) -> Self {
        let Some(e) = Ecdf::new(values) else {
            return Self::EMPTY;
        };
        Self {
            p20: e.percentile(0.2),
            p50: e.percentile(0.5),
            p80: e.percentile(0.8),
            max: e.max(),
        }
    }
}

/// Per-class feature CDFs.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ClassCdfs {
    /// Scheduling class 1..=5 (paper Table 3).
    pub class: u8,
    /// Number of jobs in this group.
    pub jobs: usize,
    /// Node-count feature CDF.
    pub nodes: FeatureCdf,
    /// Walltime feature CDF (s).
    pub walltime_s: FeatureCdf,
    /// Mean power (W).
    pub mean_power_w: FeatureCdf,
    /// Maximum power (W).
    pub max_power_w: FeatureCdf,
    /// Max-mean power difference CDF (W).
    pub power_diff_w: FeatureCdf,
    /// Fraction of jobs above 4,000 nodes (class-1 anchor).
    pub frac_over_4000_nodes: f64,
    /// Fraction of jobs below 1,500 nodes (class-2 anchor).
    pub frac_under_1500_nodes: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig07Result {
    /// Class-1 feature CDFs.
    pub class1: ClassCdfs,
    /// Class-2 feature CDFs.
    pub class2: ClassCdfs,
}

fn class_cdfs(rows: &[summit_sim::jobstats::JobStatsRow], class: u8) -> ClassCdfs {
    let sel: Vec<&summit_sim::jobstats::JobStatsRow> =
        rows.iter().filter(|r| r.job.class() == class).collect();
    let nodes: Vec<f64> = sel.iter().map(|r| r.job.record.node_count as f64).collect();
    let wall: Vec<f64> = sel.iter().map(|r| r.job.record.walltime_s()).collect();
    let mean_p: Vec<f64> = sel.iter().map(|r| r.stats.mean_power_w).collect();
    let max_p: Vec<f64> = sel.iter().map(|r| r.stats.max_power_w).collect();
    let diff: Vec<f64> = sel
        .iter()
        .map(|r| r.stats.max_power_w - r.stats.mean_power_w)
        .collect();
    let over4000 = nodes.iter().filter(|&&n| n > 4000.0).count() as f64 / nodes.len() as f64;
    let under1500 = nodes.iter().filter(|&&n| n < 1500.0).count() as f64 / nodes.len() as f64;
    ClassCdfs {
        class,
        jobs: sel.len(),
        nodes: FeatureCdf::from(&nodes),
        walltime_s: FeatureCdf::from(&wall),
        mean_power_w: FeatureCdf::from(&mean_p),
        max_power_w: FeatureCdf::from(&max_p),
        power_diff_w: FeatureCdf::from(&diff),
        frac_over_4000_nodes: over4000,
        frac_under_1500_nodes: under1500,
    }
}

/// Runs the Figure 7 study against a private cache.
pub fn run(config: &Config) -> Fig07Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 7 study, acquiring the population through `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig07Result {
    let _obs = summit_obs::span("summit_core_fig07");
    let pop = cache.population(&PopulationScenario::paper_year(config.population_scale));
    Fig07Result {
        class1: class_cdfs(&pop.rows, 1),
        class2: class_cdfs(&pop.rows, 2),
    }
}

/// Registry adapter for the Figure 7 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig07"
    }

    fn summary(&self) -> &'static str {
        "Leadership-job CDFs: node count, duration, mean/max power"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([("population_scale", Json::Num(s.max(0.01)))])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig07", config)?;
        let config = Config {
            population_scale: cfg.f64("population_scale")?,
        };
        ensure_population_scale("fig07", config.population_scale)?;
        Ok(run_with(cache, &config).render())
    }
}

impl Fig07Result {
    /// Renders both class rows.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 7: leadership job feature CDFs (P80 red line)",
            &["class", "feature", "P20", "P50", "P80", "max", "paper P80"],
        );
        let mut add = |c: &ClassCdfs, paper: [&str; 5]| {
            let f = |v: f64| format!("{v:.0}");
            let h = |v: f64| format!("{:.2}", v / 3600.0);
            t.row(vec![
                c.class.to_string(),
                "nodes".into(),
                f(c.nodes.p20),
                f(c.nodes.p50),
                f(c.nodes.p80),
                f(c.nodes.max),
                paper[0].into(),
            ]);
            t.row(vec![
                c.class.to_string(),
                "walltime (h)".into(),
                h(c.walltime_s.p20),
                h(c.walltime_s.p50),
                h(c.walltime_s.p80),
                h(c.walltime_s.max),
                paper[1].into(),
            ]);
            t.row(vec![
                c.class.to_string(),
                "mean power".into(),
                watts(c.mean_power_w.p20),
                watts(c.mean_power_w.p50),
                watts(c.mean_power_w.p80),
                watts(c.mean_power_w.max),
                paper[2].into(),
            ]);
            t.row(vec![
                c.class.to_string(),
                "max power".into(),
                watts(c.max_power_w.p20),
                watts(c.max_power_w.p50),
                watts(c.max_power_w.p80),
                watts(c.max_power_w.max),
                paper[3].into(),
            ]);
            t.row(vec![
                c.class.to_string(),
                "max-mean diff".into(),
                watts(c.power_diff_w.p20),
                watts(c.power_diff_w.p50),
                watts(c.power_diff_w.p80),
                watts(c.power_diff_w.max),
                paper[4].into(),
            ]);
        };
        add(
            &self.class1,
            [
                ">60% over 4000",
                "~0.72 h",
                "-",
                "6.6 MW (max 10.7)",
                "large variation",
            ],
        );
        add(
            &self.class2,
            [
                "80% under 1500",
                "~3 h",
                "-",
                "1.6 MW (max 5.6)",
                "smaller variation",
            ],
        );
        let mut s = t.render();
        s.push_str(&format!(
            "\nclass 1: {:.0}% of jobs above 4,000 nodes (paper >60%)\n\
             class 2: {:.0}% of jobs below 1,500 nodes (paper ~80%)\n",
            self.class1.frac_over_4000_nodes * 100.0,
            self.class2.frac_under_1500_nodes * 100.0
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig07Result {
        run(&Config {
            population_scale: 0.02,
        })
    }

    #[test]
    fn class1_anchors() {
        let r = result();
        assert!(r.class1.jobs > 10);
        assert!(
            r.class1.frac_over_4000_nodes > 0.6,
            "paper: >60 % of class-1 jobs above 4,000 nodes, got {}",
            r.class1.frac_over_4000_nodes
        );
        let p80_min = r.class1.walltime_s.p80 / 60.0;
        assert!(
            (25.0..70.0).contains(&p80_min),
            "class-1 P80 walltime {p80_min} min vs paper ~43"
        );
        assert!(
            r.class1.max_power_w.max > 8.0e6,
            "class-1 peak should approach 10.7 MW"
        );
    }

    #[test]
    fn class2_anchors() {
        let r = result();
        assert!(
            r.class2.frac_under_1500_nodes > 0.7,
            "paper: ~80 % of class-2 jobs under 1,500 nodes"
        );
        let p80_h = r.class2.walltime_s.p80 / 3600.0;
        assert!(
            (1.5..4.5).contains(&p80_h),
            "class-2 P80 walltime {p80_h} h vs paper ~3"
        );
        assert!(
            r.class2.max_power_w.p80 < r.class1.max_power_w.p80,
            "class-2 power sits below class 1"
        );
    }

    #[test]
    fn class1_variation_exceeds_class2() {
        let r = result();
        // Normalize the max-mean diff by class scale to compare shapes.
        assert!(
            r.class1.power_diff_w.p80 > r.class2.power_diff_w.p80,
            "paper: significantly more variation in class 1"
        );
    }

    #[test]
    fn cdf_percentiles_ordered() {
        let r = result();
        for c in [&r.class1, &r.class2] {
            for f in [&c.nodes, &c.walltime_s, &c.mean_power_w, &c.max_power_w] {
                assert!(f.p20 <= f.p50 && f.p50 <= f.p80 && f.p80 <= f.max);
            }
        }
    }
}
