//! Figure 17: GPU power/temperature variability during a full-machine
//! compute-intense job (the BerkeleyGW-like exemplar), with floor
//! heatmaps.
//!
//! Paper anchors: a 4,608-node, ~21.5-minute job at near-full GPU
//! utilization; the system transitions between near-idle and maximum
//! capacity in under half a minute; temperature follows power within
//! seconds; GPU core temperature depends on power monotonically and
//! near-linearly, but at near-identical power the non-outlier temperature
//! spread is 15.8 °C against a 62 W power spread (manufacturing +
//! cooling-position variation); the vast majority of GPUs stay under
//! 60 °C; heat spreads evenly across the floor with slight spatial
//! locality; one cabinet has no telemetry (bright green).

use crate::cache::ScenarioCache;
use crate::experiments::registry::{clamp_scale, Cfg, Experiment, ExperimentError};
use crate::json::Json;
use crate::report::{heatmap, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use summit_analysis::correlation::pearson;
use summit_analysis::stats::BoxStats;
use summit_sim::engine::{Engine, EngineConfig, StepOptions};
use summit_sim::jobs::JobGenerator;
use summit_sim::topology::CABINETS_PER_ROW;
use summit_sim::workload::AppProfile;
use summit_telemetry::ids::CabinetId;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Cabinets simulated (257 = full floor, 4,608-node job).
    pub cabinets: usize,
    /// Job duration (s); the paper's exemplar ran ~21.5 minutes.
    pub job_duration_s: f64,
    /// Sampling stride for GPU state (s).
    pub stride_s: f64,
    /// Cabinet with missing telemetry (the bright-green cell), if any.
    pub missing_cabinet: Option<u16>,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cabinets: 257,
            job_duration_s: 21.5 * 60.0,
            stride_s: 10.0,
            missing_cabinet: Some(140),
            seed: 2020,
        }
    }
}

/// One 10-second sample of the job's GPU population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuSample {
    /// T.
    pub t: f64,
    /// Power distribution statistics.
    pub power: BoxStats,
    /// Temp.
    pub temp: BoxStats,
    /// Pearson r between per-GPU power and temperature.
    pub power_temp_r: f64,
}

/// Cabinet heatmap at one instant.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FloorSnapshot {
    /// T.
    pub t: f64,
    /// Per-cabinet mean GPU temperature (NaN = missing/not involved).
    pub mean_grid: Vec<Vec<f64>>,
    /// Per-cabinet max GPU temperature.
    pub max_grid: Vec<Vec<f64>>,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig17Result {
    /// Per-GPU (power W, core temp C) pairs at the peak-load instant —
    /// the figure's second-row scatter.
    pub peak_scatter: Vec<(f32, f32)>,
    /// Nodes the exemplar job ran on.
    pub job_nodes: u32,
    /// Per-sample results.
    pub samples: Vec<GpuSample>,
    /// Floor snapshots at the selected instants.
    pub snapshots: Vec<FloorSnapshot>,
    /// Non-outlier spreads at the peak-load instant.
    pub peak_power_spread_w: f64,
    /// Non-outlier per-GPU temperature spread at peak (C).
    pub peak_temp_spread_c: f64,
    /// Fraction of GPUs over 60 °C at peak.
    pub frac_over_60c: f64,
    /// Seconds from job start until cluster power reached 90 % of its
    /// plateau (paper: "less than half a minute").
    pub transition_s: f64,
    /// Count of cabinets with no telemetry during the job.
    pub missing_cabinets: usize,
}

/// Runs the Figure 17 study.
pub fn run(config: &Config) -> Fig17Result {
    let _obs = summit_obs::span("summit_core_fig17");
    let mut engine_cfg = if config.cabinets == 257 {
        EngineConfig::default()
    } else {
        EngineConfig::small(config.cabinets)
    };
    engine_cfg.seed = config.seed;
    engine_cfg.missing_cabinet = config.missing_cabinet.map(CabinetId);
    let mut engine = Engine::new(engine_cfg, 0.0);
    let node_count = engine.topology().node_count();
    let job_nodes = (node_count as u32).min(summit_sim::spec::MAX_JOB_NODES);

    // The exemplar job: near-full GPU utilization, tiny variability.
    let job_start = 120.0;
    {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut gen = JobGenerator::new();
        let mut job = gen.generate_with_class(&mut rng, job_start, 5);
        job.record.node_count = job_nodes;
        job.record.class = summit_sim::spec::class_of_node_count(job_nodes);
        job.record.end_time = job_start + config.job_duration_s;
        job.profile = AppProfile::gpu_steady();
        engine.scheduler().submit(job);
    }

    let run_s = job_start + config.job_duration_s + 180.0;
    let n_ticks = run_s as usize;
    let stride = config.stride_s as usize;
    let topo = engine.topology().clone();

    let mut samples = Vec::new();
    let mut raw_samples: Vec<(f64, Vec<f32>, Vec<f32>)> = Vec::new();
    let mut power_series = Vec::with_capacity(n_ticks);
    for tick in 0..n_ticks {
        let want_gpu = tick % stride == 0;
        let out = engine.step_opts(&StepOptions {
            gpu_state: want_gpu,
            ..Default::default()
        });
        power_series.push(out.true_compute_power_w);
        if let (Some(pw), Some(tc)) = (out.gpu_power_w, out.gpu_temp_c) {
            // Restrict to the job's nodes (the first `job_nodes` ids are
            // allocated first by the free-list scheduler).
            let upto = (job_nodes as usize) * 6;
            let p: Vec<f64> = pw[..upto].iter().map(|&v| v as f64).collect();
            let t: Vec<f64> = tc[..upto].iter().map(|&v| v as f64).collect();
            if let (Some(pb), Some(tb)) = (BoxStats::compute(&p), BoxStats::compute(&t)) {
                let pairs: Vec<(f64, f64)> = p
                    .iter()
                    .zip(&t)
                    .filter(|(a, b)| a.is_finite() && b.is_finite())
                    .map(|(&a, &b)| (a, b))
                    .collect();
                let r = pearson(
                    &pairs.iter().map(|v| v.0).collect::<Vec<_>>(),
                    &pairs.iter().map(|v| v.1).collect::<Vec<_>>(),
                );
                samples.push(GpuSample {
                    t: out.t,
                    power: pb,
                    temp: tb,
                    power_temp_r: r,
                });
                raw_samples.push((out.t, pw[..upto].to_vec(), tc[..upto].to_vec()));
            }
        }
    }

    // Six representative instants across idle -> ramp -> plateau -> end.
    let plateau_t = job_start + config.job_duration_s * 0.5;
    let instants = [
        60.0,
        job_start + 15.0,
        job_start + 60.0,
        plateau_t,
        job_start + config.job_duration_s - 30.0,
        job_start + config.job_duration_s + 120.0,
    ];
    let (rows, cols) = topo.grid_dims();
    let mut snapshots = Vec::new();
    for &ti in &instants {
        let Some((_, pw, tc)) = raw_samples
            .iter()
            .min_by(|a, b| (a.0 - ti).abs().total_cmp(&(b.0 - ti).abs()))
            .cloned()
        else {
            continue;
        };
        let _ = pw;
        let mut mean_grid = vec![vec![f64::NAN; cols]; rows];
        let mut max_grid = vec![vec![f64::NAN; cols]; rows];
        for cab in 0..topo.cabinet_count() {
            let row = cab / CABINETS_PER_ROW;
            let col = cab % CABINETS_PER_ROW;
            let mut w = summit_analysis::stats::Welford::new();
            for node in topo.nodes_in_cabinet(CabinetId(cab as u16)) {
                if node.index() >= job_nodes as usize {
                    continue; // not part of the job: grey cell
                }
                for s in 0..6 {
                    w.push(tc[node.index() * 6 + s] as f64);
                }
            }
            if w.count() > 0 {
                mean_grid[row][col] = w.mean();
                max_grid[row][col] = w.max();
            }
        }
        snapshots.push(FloorSnapshot {
            t: ti,
            mean_grid,
            max_grid,
        });
    }

    // Peak-instant spreads (NaN/empty if no samples were collected).
    let (peak_power_spread, peak_temp_spread) = samples
        .iter()
        .min_by(|a, b| (a.t - plateau_t).abs().total_cmp(&(b.t - plateau_t).abs()))
        .map_or((f64::NAN, f64::NAN), |s| {
            (s.power.non_outlier_spread(), s.temp.non_outlier_spread())
        });
    let peak_raw = raw_samples
        .iter()
        .min_by(|a, b| (a.0 - plateau_t).abs().total_cmp(&(b.0 - plateau_t).abs()));
    let temps: Vec<f64> = peak_raw
        .map(|raw| {
            raw.2
                .iter()
                .map(|&v| v as f64)
                .filter(|v| v.is_finite())
                .collect()
        })
        .unwrap_or_default();
    let frac_over_60 =
        temps.iter().filter(|&&t| t > 60.0).count() as f64 / temps.len().max(1) as f64;

    // Transition time: from job start to 90 % of the plateau power.
    let idle_p = power_series[60];
    let plateau_p = power_series[plateau_t as usize];
    let target = idle_p + 0.9 * (plateau_p - idle_p);
    let mut transition_s = f64::NAN;
    for (i, &p) in power_series.iter().enumerate().skip(job_start as usize) {
        if p >= target {
            transition_s = i as f64 - job_start;
            break;
        }
    }

    // Missing-cabinet accounting (within the job's floor span).
    let missing = match config.missing_cabinet {
        Some(c) if (c as usize) < topo.cabinet_count() => {
            let first_node = c as usize * 18;
            usize::from(first_node < job_nodes as usize)
        }
        _ => 0,
    };

    let peak_scatter: Vec<(f32, f32)> = peak_raw
        .map(|raw| {
            raw.1
                .iter()
                .zip(&raw.2)
                .filter(|(p, t)| p.is_finite() && t.is_finite())
                .map(|(&p, &t)| (p, t))
                .collect()
        })
        .unwrap_or_default();

    Fig17Result {
        peak_scatter,
        job_nodes,
        samples,
        snapshots,
        peak_power_spread_w: peak_power_spread,
        peak_temp_spread_c: peak_temp_spread,
        frac_over_60c: frac_over_60,
        transition_s,
        missing_cabinets: missing,
    }
}

/// Registry adapter for the Figure 17 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig17"
    }

    fn summary(&self) -> &'static str {
        "GPU power/thermal variability during one large compute-intense job"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        if s < 0.5 {
            Json::obj([
                ("cabinets", Json::Num(12.0)),
                ("job_duration_s", Json::Num(300.0)),
                ("stride_s", Json::Num(10.0)),
                ("missing_cabinet", Json::Num(5.0)),
                ("seed", Json::Num(2020.0)),
            ])
        } else {
            let d = Config::default();
            Json::obj([
                ("cabinets", Json::from(d.cabinets)),
                ("job_duration_s", Json::Num(d.job_duration_s)),
                ("stride_s", Json::Num(d.stride_s)),
                (
                    "missing_cabinet",
                    d.missing_cabinet
                        .map_or(Json::Null, |c| Json::Num(f64::from(c))),
                ),
                ("seed", Json::Num(d.seed as f64)),
            ])
        }
    }

    fn run(&self, _cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig17", config)?;
        let config = Config {
            cabinets: cfg.usize("cabinets")?,
            job_duration_s: cfg.f64("job_duration_s")?,
            stride_s: cfg.f64("stride_s")?,
            missing_cabinet: cfg.opt_u16("missing_cabinet")?,
            seed: cfg.u64("seed")?,
        };
        if config.cabinets == 0 {
            return Err(ExperimentError::invalid(
                "fig17",
                "cabinets must be positive",
            ));
        }
        for (key, v) in [
            ("job_duration_s", config.job_duration_s),
            ("stride_s", config.stride_s),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(ExperimentError::invalid(
                    "fig17",
                    format!("`{key}` must be a positive duration, got {v}"),
                ));
            }
        }
        Ok(run(&config).render())
    }
}

impl Fig17Result {
    /// Renders the boxplot play-by-play plus the floor heatmaps.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Figure 17: GPU variability during a {}-node compute-intense job",
                self.job_nodes
            ),
            &[
                "t (s)",
                "P med (W)",
                "P q1-q3",
                "T med (C)",
                "T q1-q3",
                "P-T r",
            ],
        );
        // Thin the play-by-play to ~12 rows.
        let step = (self.samples.len() / 12).max(1);
        for s in self.samples.iter().step_by(step) {
            t.row(vec![
                format!("{:.0}", s.t),
                format!("{:.0}", s.power.median),
                format!("{:.0}-{:.0}", s.power.q1, s.power.q3),
                format!("{:.1}", s.temp.median),
                format!("{:.1}-{:.1}", s.temp.q1, s.temp.q3),
                format!("{:.3}", s.power_temp_r),
            ]);
        }
        let mut out = t.render();
        out.push_str(&format!(
            "\npeak non-outlier spreads: power {:.1} W (paper 62 W), temp {:.1} C (paper 15.8 C)\n\
             GPUs over 60 C at peak: {:.2}% (paper: vast majority below 60 C)\n\
             idle->plateau transition: {:.0} s (paper: under half a minute)\n\
             cabinets missing telemetry: {}\n",
            self.peak_power_spread_w,
            self.peak_temp_spread_c,
            self.frac_over_60c * 100.0,
            self.transition_s,
            self.missing_cabinets
        ));
        // Power-temp relation at the peak instant (figure row 2): a 2-D
        // histogram rendered as a density map.
        if self.peak_scatter.len() > 10 {
            let px: Vec<f64> = self.peak_scatter.iter().map(|p| p.0 as f64).collect();
            let py: Vec<f64> = self.peak_scatter.iter().map(|p| p.1 as f64).collect();
            let (x_lo, x_hi) = (
                px.iter().cloned().fold(f64::INFINITY, f64::min),
                px.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-6,
            );
            let (y_lo, y_hi) = (
                py.iter().cloned().fold(f64::INFINITY, f64::min),
                py.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + 1e-6,
            );
            let mut h2 =
                summit_analysis::histogram::Histogram2d::new((x_lo, x_hi), (y_lo, y_hi), 40, 16);
            for (&x, &y) in px.iter().zip(&py) {
                h2.push(x, y);
            }
            out.push_str(&format!(
                "
per-GPU power ({x_lo:.0}-{x_hi:.0} W) vs core temp ({y_lo:.1}-{y_hi:.1} C) at peak:
"
            ));
            let rows: Vec<Vec<f64>> = (0..16)
                .rev()
                .map(|yi| (0..40).map(|xi| h2.cell(xi, yi) as f64).collect())
                .collect();
            out.push_str(&crate::report::heatmap(&rows));
        }
        if let Some(snap) = self.snapshots.iter().find(|s| {
            s.mean_grid
                .iter()
                .flatten()
                .any(|v| v.is_finite() && *v > 30.0)
        }) {
            out.push_str(&format!(
                "\nfloor mean-GPU-temp heatmap at t={:.0}s ('·' = no data):\n",
                snap.t
            ));
            out.push_str(&heatmap(&snap.mean_grid));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig17Result {
        run(&Config {
            cabinets: 20,
            job_duration_s: 420.0,
            stride_s: 10.0,
            missing_cabinet: Some(7),
            seed: 9,
        })
    }

    #[test]
    fn power_temp_relation_near_linear() {
        // The paper's own nuance: the relation is monotonic/near-linear
        // across load levels, but at a single peak instant the power
        // spread is only ~62 W while temperature spreads 15.8 C from
        // manufacturing variation — so the instantaneous correlation is
        // positive yet modest.
        let r = result();
        let plateau: Vec<&GpuSample> = r
            .samples
            .iter()
            .filter(|s| s.power.median > 150.0 && s.t > 240.0)
            .collect();
        assert!(!plateau.is_empty());
        for s in &plateau {
            assert!(
                s.power_temp_r > 0.05,
                "power-temp r {} at t={} should stay positive",
                s.power_temp_r,
                s.t
            );
        }
        let mean_r: f64 =
            plateau.iter().map(|s| s.power_temp_r).sum::<f64>() / plateau.len() as f64;
        assert!(mean_r > 0.15, "mean plateau r {mean_r}");
    }

    #[test]
    fn spreads_match_paper_scale() {
        let r = result();
        assert!(
            (20.0..120.0).contains(&r.peak_power_spread_w),
            "power spread {} vs paper 62 W",
            r.peak_power_spread_w
        );
        assert!(
            (5.0..25.0).contains(&r.peak_temp_spread_c),
            "temp spread {} vs paper 15.8 C",
            r.peak_temp_spread_c
        );
    }

    #[test]
    fn fast_transition_and_cool_gpus() {
        let r = result();
        assert!(
            r.transition_s < 45.0,
            "idle->plateau in under half a minute, got {}",
            r.transition_s
        );
        assert!(
            r.frac_over_60c < 0.05,
            "vast majority under 60 C, got {}",
            r.frac_over_60c
        );
    }

    #[test]
    fn heatmaps_have_missing_cell() {
        let r = result();
        assert_eq!(r.missing_cabinets, 1);
        let snap = r.snapshots.iter().find(|s| s.t > 200.0).unwrap();
        let nan_cells = snap
            .mean_grid
            .iter()
            .flatten()
            .filter(|v| !v.is_finite())
            .count();
        assert!(nan_cells >= 1, "the missing cabinet must render as no-data");
        let finite_cells = snap
            .mean_grid
            .iter()
            .flatten()
            .filter(|v| v.is_finite())
            .count();
        assert!(finite_cells >= 10, "most cabinets report");
    }

    #[test]
    fn temperature_follows_power_in_time() {
        let r = result();
        let med_p: Vec<f64> = r.samples.iter().map(|s| s.power.median).collect();
        let med_t: Vec<f64> = r.samples.iter().map(|s| s.temp.median).collect();
        let rr = pearson(&med_p, &med_t);
        assert!(
            rr > 0.8,
            "median temp must track median power over time, r={rr}"
        );
    }
}
