//! Figure 14: GPU failures per node-hour by project — all failures (a)
//! and hardware-only failures (b), top-15 projects.
//!
//! Paper anchor: "GPU failure frequency per node-hour of computation in a
//! job depends significantly on the application domain and project it
//! belongs to" — the top projects reach ~0.2 failures/node-hour while the
//! long tail sits orders of magnitude lower.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{Cfg, Experiment, ExperimentError};
use crate::experiments::table4;
use crate::json::Json;
use crate::pipeline::FailureScenario;
use crate::report::{bar, Table};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use summit_telemetry::records::XidErrorKind;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Observation span (weeks).
    pub weeks: f64,
    /// Projects listed (paper: top-15).
    pub top: usize,
    /// Minimum node-hours for a project to be ranked (noise floor).
    pub min_node_hours: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weeks: 26.0,
            top: 15,
            min_node_hours: 2000.0,
            seed: 2020,
        }
    }
}

/// One project row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectRow {
    /// Project identifier (e.g. `MAT003`).
    pub project: String,
    /// Node-hours.
    pub node_hours: f64,
    /// Failure count.
    pub failures: u64,
    /// Failure rate per node-hour.
    pub failures_per_node_hour: f64,
    /// Breakdown by kind index (16 entries).
    pub by_kind: Vec<u64>,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig14Result {
    /// Panel (a): all failure types.
    pub all_failures: Vec<ProjectRow>,
    /// Panel (b): hardware (non-user-associated) failures only.
    pub hardware_failures: Vec<ProjectRow>,
    /// Ratio between the top-ranked and median project rates.
    pub top_to_median_ratio: f64,
}

/// Runs the Figure 14 analysis against a private cache.
pub fn run(config: &Config) -> Fig14Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 14 analysis, acquiring the failure log (jobs plus
/// events) through `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig14Result {
    let _obs = summit_obs::span("summit_core_fig14");
    let art = cache.failures(&FailureScenario {
        weeks: config.weeks,
        seed: config.seed,
    });

    // Project node-hours and allocation -> project lookup.
    let mut node_hours: HashMap<String, f64> = HashMap::new();
    let mut by_alloc: HashMap<u64, String> = HashMap::new();
    for j in &art.jobs {
        *node_hours.entry(j.record.project.clone()).or_default() += j.record.node_hours();
        by_alloc.insert(j.record.allocation_id.0, j.record.project.clone());
    }

    let mut all_counts: HashMap<String, Vec<u64>> = HashMap::new();
    for e in &art.events {
        let Some(alloc) = e.allocation_id else {
            continue;
        };
        let Some(project) = by_alloc.get(&alloc.0) else {
            continue;
        };
        all_counts
            .entry(project.clone())
            .or_insert_with(|| vec![0u64; 16])[e.kind.index()] += 1;
    }

    let build = |hardware_only: bool| -> Vec<ProjectRow> {
        let mut rows: Vec<ProjectRow> = all_counts
            .iter()
            .filter_map(|(project, by_kind)| {
                let nh = node_hours.get(project).copied().unwrap_or(0.0);
                if nh < config.min_node_hours {
                    return None;
                }
                let kinds: Vec<u64> = XidErrorKind::ALL
                    .iter()
                    .map(|k| {
                        if hardware_only && k.user_associated() {
                            0
                        } else {
                            by_kind[k.index()]
                        }
                    })
                    .collect();
                let failures: u64 = kinds.iter().sum();
                if failures == 0 {
                    return None;
                }
                Some(ProjectRow {
                    project: project.clone(),
                    node_hours: nh,
                    failures,
                    failures_per_node_hour: failures as f64 / nh,
                    by_kind: kinds,
                })
            })
            .collect();
        rows.sort_by(|a, b| {
            b.failures_per_node_hour
                .total_cmp(&a.failures_per_node_hour)
        });
        rows.truncate(config.top);
        rows
    };

    let all_failures = build(false);
    let hardware_failures = build(true);

    // Rate dispersion over all qualifying projects.
    let mut rates: Vec<f64> = all_counts
        .iter()
        .filter_map(|(p, ks)| {
            let nh = node_hours.get(p).copied().unwrap_or(0.0);
            (nh >= config.min_node_hours).then(|| ks.iter().sum::<u64>() as f64 / nh)
        })
        .collect();
    rates.sort_by(|a, b| a.total_cmp(b));
    let top_to_median_ratio = if rates.len() >= 3 {
        rates[rates.len() - 1] / summit_analysis::stats::median(&rates).max(1e-12)
    } else {
        f64::NAN
    };

    Fig14Result {
        all_failures,
        hardware_failures,
        top_to_median_ratio,
    }
}

/// Registry adapter for the Figure 14 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig14"
    }

    fn summary(&self) -> &'static str {
        "GPU failures per node-hour by project (all vs hardware-only)"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = crate::experiments::registry::clamp_scale(scale);
        Json::obj([
            ("weeks", Json::Num(table4::default_weeks(scale))),
            ("top", Json::Num(15.0)),
            (
                "min_node_hours",
                Json::Num(if s < 0.5 { 500.0 } else { 2000.0 }),
            ),
            ("seed", Json::Num(2020.0)),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig14", config)?;
        let scenario = table4::scenario_from(&cfg)?;
        let min_node_hours = cfg.f64("min_node_hours")?;
        if !(min_node_hours.is_finite() && min_node_hours >= 0.0) {
            return Err(ExperimentError::invalid(
                "fig14",
                format!("min_node_hours must be a non-negative floor, got {min_node_hours}"),
            ));
        }
        let config = Config {
            weeks: scenario.weeks,
            top: cfg.usize("top")?,
            min_node_hours,
            seed: scenario.seed,
        };
        Ok(run_with(cache, &config).render())
    }
}

impl Fig14Result {
    /// Renders both panels.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for (title, rows) in [
            (
                "Figure 14a: all failures per node-hour, top projects",
                &self.all_failures,
            ),
            (
                "Figure 14b: hardware failures per node-hour, top projects",
                &self.hardware_failures,
            ),
        ] {
            let max_rate = rows
                .first()
                .map(|r| r.failures_per_node_hour)
                .unwrap_or(1.0);
            let mut t = Table::new(title, &["project", "node-hours", "failures", "rate", ""]);
            for r in rows {
                t.row(vec![
                    r.project.clone(),
                    format!("{:.0}", r.node_hours),
                    r.failures.to_string(),
                    format!("{:.2e}", r.failures_per_node_hour),
                    bar(r.failures_per_node_hour, max_rate, 30),
                ]);
            }
            s.push_str(&t.render());
            s.push('\n');
        }
        s.push_str(&format!(
            "top-project rate is {:.0}x the median project\n\
             paper: rates vary by orders of magnitude across projects; distinct workload \
             patterns are a major reliability factor\n",
            self.top_to_median_ratio
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig14Result {
        run(&Config {
            weeks: 6.0,
            top: 15,
            min_node_hours: 1000.0,
            seed: 3,
        })
    }

    #[test]
    fn top_lists_populated_and_sorted() {
        let r = result();
        assert!(r.all_failures.len() >= 10);
        for w in r.all_failures.windows(2) {
            assert!(w[0].failures_per_node_hour >= w[1].failures_per_node_hour);
        }
        assert!(!r.hardware_failures.is_empty());
    }

    #[test]
    fn rates_vary_widely() {
        let r = result();
        assert!(
            r.top_to_median_ratio > 3.0,
            "project rates must vary widely, ratio {}",
            r.top_to_median_ratio
        );
    }

    #[test]
    fn hardware_panel_excludes_user_kinds() {
        let r = result();
        for row in &r.hardware_failures {
            for k in XidErrorKind::ALL {
                if k.user_associated() {
                    assert_eq!(row.by_kind[k.index()], 0);
                }
            }
        }
    }

    #[test]
    fn hardware_rates_much_lower() {
        let r = result();
        let top_all = r.all_failures[0].failures_per_node_hour;
        let top_hw = r.hardware_failures[0].failures_per_node_hour;
        assert!(
            top_hw < top_all * 0.3,
            "hardware failures are orders rarer: {top_hw} vs {top_all}"
        );
    }
}
