//! Figure 6: joint distribution of total job energy vs maximum input
//! power per scheduling class (Gaussian KDE).
//!
//! The paper's findings: classes 1-2 concentrate into few density peaks;
//! classes 3-5 are multi-modal with several high-density regions; the
//! maximum-power ranges barely overlap across classes (max power is
//! strongly correlated with class) while the energy ranges overlap
//! broadly.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{
    clamp_scale, ensure_population_scale, Cfg, Experiment, ExperimentError,
};
use crate::json::Json;
use crate::pipeline::PopulationScenario;
use crate::report::{joules, watts, Table};
use serde::{Deserialize, Serialize};
use summit_analysis::kde::{Bandwidth, Kde2d};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Fraction of the paper's 840k jobs.
    pub population_scale: f64,
    /// KDE evaluation grid per axis.
    pub grid: usize,
    /// Max sample per class fed to the KDE (subsampled above).
    pub max_samples: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            population_scale: 0.02,
            grid: 64,
            max_samples: 4000,
        }
    }
}

/// Per-class KDE characterization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassDensity {
    /// The evaluated density grid (log-energy x log-power), for rendering.
    pub grid: summit_analysis::kde::DensityGrid,
    /// Scheduling class 1..=5 (paper Table 3).
    pub class: u8,
    /// Number of jobs in this group.
    pub jobs: usize,
    /// Density peak in (energy J, max power W) space.
    pub peak_energy_j: f64,
    /// Density-peak power (W).
    pub peak_power_w: f64,
    /// Local maxima above 10 % of the peak — multi-modality measure.
    pub mode_count: usize,
    /// Observed ranges.
    pub energy_range_j: (f64, f64),
    /// Observed power range (W).
    pub power_range_w: (f64, f64),
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig06Result {
    /// Per-class results.
    pub classes: Vec<ClassDensity>,
    /// Fraction of pairwise class power-range overlap (paper: minimal).
    pub mean_power_overlap: f64,
    /// Fraction of pairwise class energy-range overlap (paper: extended).
    pub mean_energy_overlap: f64,
}

fn overlap(a: (f64, f64), b: (f64, f64)) -> f64 {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    if hi <= lo {
        return 0.0;
    }
    let span = (a.1 - a.0).min(b.1 - b.0).max(f64::MIN_POSITIVE);
    (hi - lo) / span
}

/// Runs the Figure 6 study against a private cache.
pub fn run(config: &Config) -> Fig06Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 6 study, acquiring the population through `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig06Result {
    let _obs = summit_obs::span("summit_core_fig06");
    let pop = cache.population(&PopulationScenario::paper_year(config.population_scale));
    let rows = &pop.rows;
    let mut classes = Vec::new();
    for class in 1..=5u8 {
        let pts: Vec<(f64, f64)> = rows
            .iter()
            .filter(|r| r.job.class() == class)
            .map(|r| (r.stats.energy_j, r.stats.max_power_w))
            .collect();
        if pts.len() < 5 {
            continue;
        }
        let step = (pts.len() / config.max_samples).max(1);
        let log_e: Vec<f64> = pts.iter().step_by(step).map(|p| p.0.log10()).collect();
        let log_p: Vec<f64> = pts.iter().step_by(step).map(|p| p.1.log10()).collect();
        let Some(kde) = Kde2d::fit(&log_e, &log_p, Bandwidth::Scott) else {
            continue;
        };
        let grid = kde.grid(config.grid, config.grid);
        let (pe, pp, _) = grid.peak();
        let mode_count = grid.count_modes(0.1);
        let e_range = (
            pts.iter().map(|p| p.0).fold(f64::INFINITY, f64::min),
            pts.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max),
        );
        let p_range = (
            pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min),
            pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max),
        );
        classes.push(ClassDensity {
            grid,
            class,
            jobs: pts.len(),
            peak_energy_j: 10f64.powf(pe),
            peak_power_w: 10f64.powf(pp),
            mode_count,
            energy_range_j: e_range,
            power_range_w: p_range,
        });
    }

    // Pairwise overlaps of adjacent classes in log space.
    let mut p_overlaps = Vec::new();
    let mut e_overlaps = Vec::new();
    for w in classes.windows(2) {
        let (a, b) = (&w[0], &w[1]);
        let log = |r: (f64, f64)| (r.0.log10(), r.1.log10());
        p_overlaps.push(overlap(log(a.power_range_w), log(b.power_range_w)));
        e_overlaps.push(overlap(log(a.energy_range_j), log(b.energy_range_j)));
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;

    Fig06Result {
        mean_power_overlap: mean(&p_overlaps),
        mean_energy_overlap: mean(&e_overlaps),
        classes,
    }
}

/// Registry adapter for the Figure 6 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig06"
    }

    fn summary(&self) -> &'static str {
        "Energy vs max-power KDE density per scheduling class"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([
            ("population_scale", Json::Num(s.max(0.002))),
            ("grid", Json::Num(if s < 0.5 { 32.0 } else { 64.0 })),
            (
                "max_samples",
                Json::Num(if s < 0.5 { 1000.0 } else { 4000.0 }),
            ),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig06", config)?;
        let config = Config {
            population_scale: cfg.f64("population_scale")?,
            grid: cfg.usize("grid")?,
            max_samples: cfg.usize("max_samples")?,
        };
        ensure_population_scale("fig06", config.population_scale)?;
        if config.grid == 0 || config.max_samples == 0 {
            return Err(ExperimentError::invalid(
                "fig06",
                "grid and max_samples must be positive",
            ));
        }
        Ok(run_with(cache, &config).render())
    }
}

impl Fig06Result {
    /// Renders the per-class density table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 6: energy vs max input power density per class",
            &[
                "class",
                "jobs",
                "peak energy",
                "peak power",
                "modes",
                "power range",
                "energy range",
            ],
        );
        for c in &self.classes {
            t.row(vec![
                c.class.to_string(),
                c.jobs.to_string(),
                joules(c.peak_energy_j),
                watts(c.peak_power_w),
                c.mode_count.to_string(),
                format!(
                    "{} - {}",
                    watts(c.power_range_w.0),
                    watts(c.power_range_w.1)
                ),
                format!(
                    "{} - {}",
                    joules(c.energy_range_j.0),
                    joules(c.energy_range_j.1)
                ),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\nadjacent-class range overlap: power {:.2}, energy {:.2}\n\
             paper: classes 1-2 few peaks, classes 3-5 multi-modal; power overlap minimal, \
             energy overlap extended\n",
            self.mean_power_overlap, self.mean_energy_overlap
        ));
        // Render the extreme panels as density heatmaps (x: log10 energy,
        // y: log10 max power) — the textual cousins of the contour plots.
        for c in [self.classes.first(), self.classes.last()]
            .into_iter()
            .flatten()
        {
            s.push_str(&format!(
                "\nclass {} density (x: log10 J {:.1}-{:.1}, y: log10 W {:.1}-{:.1}):\n",
                c.class,
                c.grid.x_axis.first().copied().unwrap_or(f64::NAN),
                c.grid.x_axis.last().copied().unwrap_or(f64::NAN),
                c.grid.y_axis.first().copied().unwrap_or(f64::NAN),
                c.grid.y_axis.last().copied().unwrap_or(f64::NAN),
            ));
            // Downsample the grid to ~24x48 characters, y flipped so high
            // power sits at the top.
            let nx = c.grid.x_axis.len();
            let ny = c.grid.y_axis.len();
            let step_x = (nx / 48).max(1);
            let step_y = (ny / 20).max(1);
            let rows: Vec<Vec<f64>> = (0..ny)
                .step_by(step_y)
                .rev()
                .map(|yi| {
                    (0..nx)
                        .step_by(step_x)
                        .map(|xi| c.grid.at(xi, yi))
                        .collect()
                })
                .collect();
            s.push_str(&crate::report::heatmap(&rows));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig06Result {
        run(&Config {
            population_scale: 0.004,
            grid: 48,
            max_samples: 2000,
        })
    }

    #[test]
    fn all_classes_present_and_ordered() {
        let r = result();
        assert_eq!(r.classes.len(), 5);
        // Peak power strictly falls with class number.
        for w in r.classes.windows(2) {
            assert!(
                w[0].peak_power_w > w[1].peak_power_w,
                "class {} peak {} <= class {} peak {}",
                w[0].class,
                w[0].peak_power_w,
                w[1].class,
                w[1].peak_power_w
            );
        }
    }

    #[test]
    fn small_classes_more_multimodal() {
        let r = result();
        let big: usize = r.classes[..2].iter().map(|c| c.mode_count).sum();
        let small: usize = r.classes[3..].iter().map(|c| c.mode_count).sum();
        assert!(
            small >= big,
            "classes 4-5 should show at least as many modes ({small}) as classes 1-2 ({big})"
        );
    }

    #[test]
    fn energy_overlap_exceeds_power_overlap() {
        let r = result();
        assert!(
            r.mean_energy_overlap > r.mean_power_overlap,
            "paper: energy ranges overlap more ({} vs {})",
            r.mean_energy_overlap,
            r.mean_power_overlap
        );
    }

    #[test]
    fn class1_peak_in_megawatt_range() {
        let r = result();
        let c1 = &r.classes[0];
        assert!(c1.peak_power_w > 2.0e6, "class-1 peak {}", c1.peak_power_w);
        let c5 = r.classes.last().unwrap();
        assert!(c5.peak_power_w < 2.0e5, "class-5 peak {}", c5.peak_power_w);
    }
}
