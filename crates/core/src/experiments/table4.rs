//! Table 4: GPU failure composition and per-node concentration.
//!
//! Paper anchors: 251,859 XID events in 2020; memory page faults dominate
//! (186,496), followed by graphics engine exceptions (32,339) and stopped
//! processing (22,649); 96.9 % of the 8,736 NVLINK errors came from one
//! node; driver error handling exceptions were 100 % on one node.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{Cfg, Experiment, ExperimentError};
use crate::json::Json;
use crate::pipeline::FailureScenario;
use crate::report::{pct, Table};
use serde::{Deserialize, Serialize};
use summit_sim::failures::{
    count_by_kind, max_node_share, paper_annual_count, paper_node_concentration,
};
use summit_sim::spec::{TOTAL_NODES, YEAR_S};
use summit_telemetry::records::{XidErrorKind, XidEvent};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Observation span in weeks (52+ = paper year).
    pub weeks: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weeks: 52.3,
            seed: 2020,
        }
    }
}

/// One Table 4 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KindRow {
    /// Event/error kind.
    pub kind: XidErrorKind,
    /// Measured count, extrapolated to a full year.
    pub annual_count: f64,
    /// Measured max-per-node share.
    pub max_node_share: f64,
    /// Paper's annual count.
    pub paper_count: u64,
    /// Paper's concentration.
    pub paper_share: f64,
    /// True for user-associated kinds (Table 4 top block).
    pub user_associated: bool,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Result {
    /// Result rows.
    pub rows: Vec<KindRow>,
    /// Total annualized events.
    pub total_annual: f64,
    /// The paper's total (251,859).
    pub paper_total: u64,
}

/// The cacheable failure scenario behind a Table 4 config (also shared
/// by Figures 13-16 and the early-warning study).
pub fn scenario(config: &Config) -> FailureScenario {
    FailureScenario {
        weeks: config.weeks,
        seed: config.seed,
    }
}

/// Generates a failure log for `weeks` of paper-rate traffic
/// (compatibility wrapper over [`FailureScenario::generate`]).
pub fn generate_events(config: &Config) -> Vec<XidEvent> {
    scenario(config).generate().events
}

/// Runs the Table 4 reproduction against a private cache.
pub fn run(config: &Config) -> Table4Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Table 4 reproduction, acquiring the failure log through
/// `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Table4Result {
    let _obs = summit_obs::span("summit_core_table4");
    let art = cache.failures(&scenario(config));
    let events = &art.events;
    let counts = count_by_kind(events);
    let shares = max_node_share(events, TOTAL_NODES);
    let inflate = YEAR_S / (config.weeks * 7.0 * 86_400.0);
    let rows: Vec<KindRow> = XidErrorKind::ALL
        .iter()
        .map(|&kind| KindRow {
            kind,
            annual_count: counts[kind.index()] as f64 * inflate,
            max_node_share: shares[kind.index()],
            paper_count: paper_annual_count(kind),
            paper_share: paper_node_concentration(kind),
            user_associated: kind.user_associated(),
        })
        .collect();
    let total_annual = rows.iter().map(|r| r.annual_count).sum();
    Table4Result {
        rows,
        total_annual,
        paper_total: 251_859,
    }
}

/// The failure family's default observation span at `scale` (weeks).
/// Every failure study (Table 4, Figures 13-16, early warning) uses the
/// same span and the paper seed, so a suite run generates one failure
/// log and shares it through the cache.
pub(crate) fn default_weeks(scale: f64) -> f64 {
    (52.3 * crate::experiments::registry::clamp_scale(scale)).max(8.0)
}

/// Parses and validates the shared `{weeks, seed}` scenario fields.
pub(crate) fn scenario_from(cfg: &Cfg<'_>) -> Result<FailureScenario, ExperimentError> {
    let scenario = FailureScenario {
        weeks: cfg.f64("weeks")?,
        seed: cfg.u64("seed")?,
    };
    if scenario.weeks.is_finite() && scenario.weeks > 0.0 && scenario.weeks <= 520.0 {
        Ok(scenario)
    } else {
        Err(ExperimentError::invalid(
            cfg.experiment(),
            format!("weeks must be a span in (0, 520], got {}", scenario.weeks),
        ))
    }
}

/// Registry adapter for the Table 4 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "table4"
    }

    fn summary(&self) -> &'static str {
        "GPU failure composition and per-node concentration (annualized)"
    }

    fn default_config(&self, scale: f64) -> Json {
        Json::obj([
            ("weeks", Json::Num(default_weeks(scale))),
            ("seed", Json::Num(2020.0)),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("table4", config)?;
        let scenario = scenario_from(&cfg)?;
        let config = Config {
            weeks: scenario.weeks,
            seed: scenario.seed,
        };
        Ok(run_with(cache, &config).render())
    }
}

impl Table4Result {
    /// Renders the paper-vs-measured composition table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 4: GPU failure composition (annualized)",
            &["GPU error", "count", "paper", "max/node", "paper max/node"],
        );
        for r in &self.rows {
            t.row(vec![
                r.kind.name().into(),
                format!("{:.0}", r.annual_count),
                r.paper_count.to_string(),
                pct(r.max_node_share),
                pct(r.paper_share),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\ntotal: {:.0} annualized (paper: {})\n",
            self.total_annual, self.paper_total
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Table4Result {
        run(&Config {
            weeks: 8.0,
            seed: 7,
        })
    }

    #[test]
    fn totals_within_factor_of_paper() {
        let r = result();
        assert!(
            (r.total_annual / r.paper_total as f64 - 1.0).abs() < 0.35,
            "annualized total {} vs paper {}",
            r.total_annual,
            r.paper_total
        );
    }

    #[test]
    fn rank_order_matches_table() {
        let r = result();
        // Table 4's top three kinds, in order.
        let count = |k: XidErrorKind| {
            r.rows
                .iter()
                .find(|row| row.kind == k)
                .unwrap()
                .annual_count
        };
        use XidErrorKind::*;
        assert!(count(MemoryPageFault) > count(GraphicsEngineException));
        assert!(count(GraphicsEngineException) > count(StoppedProcessing));
        assert!(count(StoppedProcessing) > count(NvlinkError));
        assert!(count(NvlinkError) > count(PageRetirementEvent));
    }

    #[test]
    fn concentration_pattern_matches() {
        let r = result();
        let share = |k: XidErrorKind| {
            r.rows
                .iter()
                .find(|row| row.kind == k)
                .unwrap()
                .max_node_share
        };
        use XidErrorKind::*;
        assert!(share(NvlinkError) > 0.85, "super-offender");
        assert!(share(MemoryPageFault) < 0.05, "spread kind");
        assert!(share(DriverErrorHandlingException) > 0.9, "single node");
        assert!(
            share(PageRetirementFailure) > share(PageRetirementEvent),
            "failures concentrate more than events (paper 42.4% vs 4.3%)"
        );
    }

    #[test]
    fn user_associated_kinds_dominate() {
        let r = result();
        let user: f64 = r
            .rows
            .iter()
            .filter(|row| row.user_associated)
            .map(|row| row.annual_count)
            .sum();
        assert!(
            user / r.total_annual > 0.9,
            "paper: the vast majority is user-associated"
        );
    }
}
