//! Table 4: GPU failure composition and per-node concentration.
//!
//! Paper anchors: 251,859 XID events in 2020; memory page faults dominate
//! (186,496), followed by graphics engine exceptions (32,339) and stopped
//! processing (22,649); 96.9 % of the 8,736 NVLINK errors came from one
//! node; driver error handling exceptions were 100 % on one node.

use crate::report::{pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use summit_sim::failures::{
    count_by_kind, max_node_share, paper_annual_count, paper_node_concentration, FailureModel,
};
use summit_sim::jobs::JobGenerator;
use summit_sim::spec::{TOTAL_NODES, YEAR_S};
use summit_telemetry::records::{XidErrorKind, XidEvent};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Observation span in weeks (52+ = paper year).
    pub weeks: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weeks: 52.3,
            seed: 2020,
        }
    }
}

/// One Table 4 row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KindRow {
    /// Event/error kind.
    pub kind: XidErrorKind,
    /// Measured count, extrapolated to a full year.
    pub annual_count: f64,
    /// Measured max-per-node share.
    pub max_node_share: f64,
    /// Paper's annual count.
    pub paper_count: u64,
    /// Paper's concentration.
    pub paper_share: f64,
    /// True for user-associated kinds (Table 4 top block).
    pub user_associated: bool,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Result {
    /// Result rows.
    pub rows: Vec<KindRow>,
    /// Total annualized events.
    pub total_annual: f64,
    /// The paper's total (251,859).
    pub paper_total: u64,
}

/// Generates a failure log for `weeks` of paper-rate traffic.
pub fn generate_events(config: &Config) -> Vec<XidEvent> {
    let span = config.weeks * 7.0 * 86_400.0;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gen = JobGenerator::new();
    let n_jobs = (840_000.0 * span / YEAR_S) as usize;
    let jobs = gen.generate_population(&mut rng, n_jobs, 0.0, span);
    let model = FailureModel::paper();
    model.generate(&mut rng, &jobs, TOTAL_NODES, 0.0, span)
}

/// Runs the Table 4 reproduction.
pub fn run(config: &Config) -> Table4Result {
    let _obs = summit_obs::span("summit_core_table4");
    let events = generate_events(config);
    let counts = count_by_kind(&events);
    let shares = max_node_share(&events, TOTAL_NODES);
    let inflate = YEAR_S / (config.weeks * 7.0 * 86_400.0);
    let rows: Vec<KindRow> = XidErrorKind::ALL
        .iter()
        .map(|&kind| KindRow {
            kind,
            annual_count: counts[kind.index()] as f64 * inflate,
            max_node_share: shares[kind.index()],
            paper_count: paper_annual_count(kind),
            paper_share: paper_node_concentration(kind),
            user_associated: kind.user_associated(),
        })
        .collect();
    let total_annual = rows.iter().map(|r| r.annual_count).sum();
    Table4Result {
        rows,
        total_annual,
        paper_total: 251_859,
    }
}

impl Table4Result {
    /// Renders the paper-vs-measured composition table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 4: GPU failure composition (annualized)",
            &["GPU error", "count", "paper", "max/node", "paper max/node"],
        );
        for r in &self.rows {
            t.row(vec![
                r.kind.name().into(),
                format!("{:.0}", r.annual_count),
                r.paper_count.to_string(),
                pct(r.max_node_share),
                pct(r.paper_share),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\ntotal: {:.0} annualized (paper: {})\n",
            self.total_annual, self.paper_total
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Table4Result {
        run(&Config {
            weeks: 8.0,
            seed: 7,
        })
    }

    #[test]
    fn totals_within_factor_of_paper() {
        let r = result();
        assert!(
            (r.total_annual / r.paper_total as f64 - 1.0).abs() < 0.35,
            "annualized total {} vs paper {}",
            r.total_annual,
            r.paper_total
        );
    }

    #[test]
    fn rank_order_matches_table() {
        let r = result();
        // Table 4's top three kinds, in order.
        let count = |k: XidErrorKind| {
            r.rows
                .iter()
                .find(|row| row.kind == k)
                .unwrap()
                .annual_count
        };
        use XidErrorKind::*;
        assert!(count(MemoryPageFault) > count(GraphicsEngineException));
        assert!(count(GraphicsEngineException) > count(StoppedProcessing));
        assert!(count(StoppedProcessing) > count(NvlinkError));
        assert!(count(NvlinkError) > count(PageRetirementEvent));
    }

    #[test]
    fn concentration_pattern_matches() {
        let r = result();
        let share = |k: XidErrorKind| {
            r.rows
                .iter()
                .find(|row| row.kind == k)
                .unwrap()
                .max_node_share
        };
        use XidErrorKind::*;
        assert!(share(NvlinkError) > 0.85, "super-offender");
        assert!(share(MemoryPageFault) < 0.05, "spread kind");
        assert!(share(DriverErrorHandlingException) > 0.9, "single node");
        assert!(
            share(PageRetirementFailure) > share(PageRetirementEvent),
            "failures concentrate more than events (paper 42.4% vs 4.3%)"
        );
    }

    #[test]
    fn user_associated_kinds_dominate() {
        let r = result();
        let user: f64 = r
            .rows
            .iter()
            .filter(|row| row.user_associated)
            .map(|row| row.annual_count)
            .sum();
        assert!(
            user / r.total_annual > 0.9,
            "paper: the vast majority is user-associated"
        );
    }
}
