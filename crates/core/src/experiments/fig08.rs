//! Figure 8: job-level max power and energy by science domain
//! (leadership classes 1 and 2, boxplot distributions).
//!
//! The paper reads off high variation in peak power across disciplines
//! (different codes/kernels), domain-dominating applications, ~10 MW
//! class-1 peaks, and wide energy variation driven by run time.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{
    clamp_scale, ensure_population_scale, Cfg, Experiment, ExperimentError,
};
use crate::json::Json;
use crate::pipeline::PopulationScenario;
use crate::report::{joules, watts, Table};
use serde::{Deserialize, Serialize};
use summit_analysis::stats::BoxStats;
use summit_telemetry::records::ScienceDomain;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Fraction of the paper's 840k jobs.
    pub population_scale: f64,
    /// Scheduling class analyzed (1 or 2, as in the paper's two panels).
    pub class: u8,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            population_scale: 0.05,
            class: 1,
        }
    }
}

/// One domain's distributions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainRow {
    /// Science domain of the project.
    pub domain: ScienceDomain,
    /// Number of jobs in this group.
    pub jobs: usize,
    /// Max power.
    pub max_power: BoxStats,
    /// Energy.
    pub energy: BoxStats,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig08Result {
    /// Scheduling class 1..=5 (paper Table 3).
    pub class: u8,
    /// Result rows.
    pub rows: Vec<DomainRow>,
}

/// Runs the Figure 8 study for one class panel against a private cache.
pub fn run(config: &Config) -> Result<Fig08Result, ExperimentError> {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 8 study, acquiring the population through `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Result<Fig08Result, ExperimentError> {
    let _obs = summit_obs::span("summit_core_fig08");
    if config.class != 1 && config.class != 2 {
        return Err(ExperimentError::invalid(
            "fig08",
            format!(
                "the paper's Figure 8 shows classes 1 and 2, got class {}",
                config.class
            ),
        ));
    }
    ensure_population_scale("fig08", config.population_scale)?;
    let pop = cache.population(&PopulationScenario::paper_year(config.population_scale));
    let rows = &pop.rows;
    let mut out = Vec::new();
    for domain in ScienceDomain::ALL {
        let sel: Vec<_> = rows
            .iter()
            .filter(|r| r.job.class() == config.class && r.job.record.domain == domain)
            .collect();
        if sel.len() < 3 {
            continue;
        }
        let power: Vec<f64> = sel.iter().map(|r| r.stats.max_power_w).collect();
        let energy: Vec<f64> = sel.iter().map(|r| r.stats.energy_j).collect();
        let (Some(max_power), Some(energy)) =
            (BoxStats::compute(&power), BoxStats::compute(&energy))
        else {
            continue;
        };
        out.push(DomainRow {
            domain,
            jobs: sel.len(),
            max_power,
            energy,
        });
    }
    // Sort by job count descending (the paper orders axes by traffic).
    out.sort_by_key(|d| std::cmp::Reverse(d.jobs));
    Ok(Fig08Result {
        class: config.class,
        rows: out,
    })
}

/// Registry adapter for the Figure 8 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig08"
    }

    fn summary(&self) -> &'static str {
        "Job-level max power and energy by science domain (class 1/2 boxplots)"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([
            ("population_scale", Json::Num(s.max(0.03))),
            ("class", Json::Num(1.0)),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig08", config)?;
        let config = Config {
            population_scale: cfg.f64("population_scale")?,
            class: cfg.u8("class")?,
        };
        Ok(run_with(cache, &config)?.render())
    }
}

impl Fig08Result {
    /// Renders the per-domain boxplot table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            format!(
                "Figure 8: class {} power/energy by science domain",
                self.class
            ),
            &[
                "domain", "jobs", "maxP q1", "maxP med", "maxP q3", "E med", "E q3",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.domain.name().into(),
                r.jobs.to_string(),
                watts(r.max_power.q1),
                watts(r.max_power.median),
                watts(r.max_power.q3),
                joules(r.energy.median),
                joules(r.energy.q3),
            ]);
        }
        let mut s = t.render();
        s.push_str(
            "\npaper: high peak-power variation across disciplines; class-1 peaks near 10 MW; \
             energy spans orders of magnitude with run time\n",
        );
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result(class: u8) -> Fig08Result {
        run(&Config {
            population_scale: 0.03,
            class,
        })
        .unwrap()
    }

    #[test]
    fn many_domains_represented() {
        // Class 2 carries 4x the job count of class 1, so the domain mix
        // is visible even at test scale.
        let r = result(2);
        assert!(
            r.rows.len() >= 8,
            "expected a broad domain mix, got {}",
            r.rows.len()
        );
    }

    #[test]
    fn power_varies_across_domains() {
        let r = result(1);
        let medians: Vec<f64> = r.rows.iter().map(|d| d.max_power.median).collect();
        let hi = medians.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let lo = medians.iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(
            hi / lo > 1.15,
            "domain peak-power medians must vary: {lo} .. {hi}"
        );
    }

    #[test]
    fn class1_peaks_near_10mw() {
        let r = result(1);
        let peak = r
            .rows
            .iter()
            .map(|d| d.max_power.max)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(
            peak > 8.0e6,
            "class-1 domain peaks should approach 10 MW, got {peak}"
        );
    }

    #[test]
    fn class2_sits_below_class1() {
        let r1 = result(1);
        let r2 = result(2);
        let med = |r: &Fig08Result| {
            let v: Vec<f64> = r.rows.iter().map(|d| d.max_power.median).collect();
            summit_analysis::stats::median(&v)
        };
        assert!(med(&r2) < med(&r1) * 0.7);
    }

    #[test]
    fn rejects_other_classes_with_typed_error() {
        let err = run(&Config {
            population_scale: 0.01,
            class: 5,
        })
        .unwrap_err();
        assert!(
            matches!(&err, ExperimentError::InvalidConfig(m) if m.contains("classes 1 and 2")),
            "unexpected error: {err}"
        );
        let err = run(&Config {
            population_scale: 0.0,
            class: 1,
        })
        .unwrap_err();
        assert!(
            matches!(&err, ExperimentError::InvalidConfig(m) if m.contains("population_scale"))
        );
    }
}
