//! Figure 4: power meter vs per-node sensor summation at scale.
//!
//! The paper compares the summation of per-node 10-second mean input
//! power under each main switchboard against the MSB's own meter:
//! the summation sits ~11 % below the meter (mean difference -128.83 kW
//! across MSBs), oscillations are in phase and of the same magnitude,
//! and the per-MSB difference distributions are tight with subtly
//! different means.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{clamp_scale, Cfg, Experiment, ExperimentError};
use crate::json::Json;
use crate::report::{pct, watts, Table};
use serde::{Deserialize, Serialize};
use summit_analysis::correlation::pearson;
use summit_analysis::stats::Summary;
use summit_sim::engine::{Engine, EngineConfig, StepOptions};
use summit_telemetry::ids::Msb;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Cabinets simulated (257 = full floor).
    pub cabinets: usize,
    /// Duration of the comparison (s).
    pub duration_s: usize,
    /// Workload: fraction of the floor kept busy to create load swings.
    pub busy_fraction: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cabinets: 60,
            duration_s: 1800,
            busy_fraction: 1.0,
        }
    }
}

/// Per-MSB comparison row.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MsbRow {
    /// The switchboard.
    pub msb: Msb,
    /// Mean of the 10 s meter readings (W).
    pub mean_meter_w: f64,
    /// Mean of the 10 s sensor summations (W).
    pub mean_summation_w: f64,
    /// Mean difference meter - summation (W).
    pub mean_diff_w: f64,
    /// Std of the difference (W) — tightness of the distribution.
    pub std_diff_w: f64,
    /// Pearson correlation between the two 10 s series — phase agreement.
    pub oscillation_r: f64,
    /// Relative gap (meter - summation) / meter.
    pub relative_gap: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig04Result {
    /// Result rows.
    pub rows: Vec<MsbRow>,
    /// Mean difference across all MSBs (W) — the paper's -128.83 kW
    /// (sign flipped: we report meter - summation).
    pub overall_mean_diff_w: f64,
    /// Overall relative gap — the paper's ~11 %.
    pub overall_gap: f64,
    /// Spread of the per-MSB mean gaps — the "external factor" signal.
    pub gap_spread: f64,
}

/// Runs the Figure 4 validation study.
pub fn run(config: &Config) -> Fig04Result {
    let _obs = summit_obs::span("summit_core_fig04");
    let mut engine_cfg = EngineConfig::small(config.cabinets);
    engine_cfg.dt_s = 1.0;
    let mut engine = Engine::new(engine_cfg, 0.0);
    let node_count = engine.topology().node_count();

    // A busy background workload so the series oscillates.
    {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(44);
        let mut gen = summit_sim::jobs::JobGenerator::new();
        let busy_nodes = (node_count as f64 * config.busy_fraction) as u32;
        let mut placed = 0u32;
        while placed < busy_nodes {
            let mut job = gen.generate_with_class(&mut rng, 0.0, 5);
            job.record.node_count = job.record.node_count.min(busy_nodes - placed).max(1);
            job.record.end_time = job.record.begin_time + config.duration_s as f64 + 100.0;
            job.profile.oscillation_depth = 0.5;
            job.profile.gpu_intensity = 0.9;
            placed += job.record.node_count;
            engine.scheduler().submit(job);
        }
    }

    // Topology groups per MSB.
    let topo = engine.topology().clone();
    let msb_nodes: Vec<Vec<usize>> = Msb::ALL
        .iter()
        .map(|&m| topo.nodes_of_msb(m).iter().map(|n| n.index()).collect())
        .collect();

    // Collect 10 s means of meter and summation per MSB.
    let windows = config.duration_s / 10;
    let mut meter_series: Vec<Vec<f64>> = (0..5).map(|_| Vec::with_capacity(windows)).collect();
    let mut sum_series: Vec<Vec<f64>> = (0..5).map(|_| Vec::with_capacity(windows)).collect();
    for _ in 0..windows {
        let mut meter_acc = [0.0f64; 5];
        let mut sum_acc = [0.0f64; 5];
        for _ in 0..10 {
            let out = engine.step_opts(&StepOptions {
                node_power: true,
                ..Default::default()
            });
            let Some(node_power) = out.node_sensor_power_w.as_ref() else {
                continue;
            };
            for (m, nodes) in msb_nodes.iter().enumerate() {
                meter_acc[m] += out.msb_meter_w[m];
                sum_acc[m] += nodes
                    .iter()
                    .map(|&i| node_power[i] as f64)
                    .filter(|v| v.is_finite())
                    .sum::<f64>();
            }
        }
        for m in 0..5 {
            meter_series[m].push(meter_acc[m] / 10.0);
            sum_series[m].push(sum_acc[m] / 10.0);
        }
    }

    let mut rows = Vec::with_capacity(5);
    for (m, msb) in Msb::ALL.into_iter().enumerate() {
        let diffs: Vec<f64> = meter_series[m]
            .iter()
            .zip(&sum_series[m])
            .map(|(a, b)| a - b)
            .collect();
        let Some(s) = Summary::compute(&diffs) else {
            continue;
        };
        let mean_meter = summit_analysis::stats::nanmean(&meter_series[m]);
        let mean_sum = summit_analysis::stats::nanmean(&sum_series[m]);
        rows.push(MsbRow {
            msb,
            mean_meter_w: mean_meter,
            mean_summation_w: mean_sum,
            mean_diff_w: s.mean,
            std_diff_w: s.std,
            oscillation_r: pearson(&meter_series[m], &sum_series[m]),
            relative_gap: (mean_meter - mean_sum) / mean_meter,
        });
    }
    let overall_mean_diff_w = rows.iter().map(|r| r.mean_diff_w).sum::<f64>() / rows.len() as f64;
    let overall_gap = rows.iter().map(|r| r.relative_gap).sum::<f64>() / rows.len() as f64;
    let gaps: Vec<f64> = rows.iter().map(|r| r.relative_gap).collect();
    let gap_spread = summit_analysis::stats::nanmax(&gaps) - summit_analysis::stats::nanmin(&gaps);

    Fig04Result {
        rows,
        overall_mean_diff_w,
        overall_gap,
        gap_spread,
    }
}

/// Registry adapter for the Figure 4 validation study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig04"
    }

    fn summary(&self) -> &'static str {
        "Validation: MSB power meters vs per-node sensor summation"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([
            ("cabinets", Json::Num(((257.0 * s) as usize).max(5) as f64)),
            (
                "duration_s",
                Json::Num(((1800.0 * s) as usize).max(120) as f64),
            ),
            ("busy_fraction", Json::Num(1.0)),
        ])
    }

    fn run(&self, _cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig04", config)?;
        let config = Config {
            cabinets: cfg.usize("cabinets")?,
            duration_s: cfg.usize("duration_s")?,
            busy_fraction: cfg.f64("busy_fraction")?,
        };
        if config.cabinets == 0 || config.duration_s < 10 {
            return Err(ExperimentError::invalid(
                "fig04",
                "cabinets must be positive and duration_s at least one 10 s window",
            ));
        }
        if !(0.0..=1.0).contains(&config.busy_fraction) {
            return Err(ExperimentError::invalid(
                "fig04",
                format!(
                    "busy_fraction must be in [0, 1], got {}",
                    config.busy_fraction
                ),
            ));
        }
        Ok(run(&config).render())
    }
}

impl Fig04Result {
    /// Renders the comparison table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 4: power meter vs per-node sensor summation",
            &[
                "MSB",
                "meter mean",
                "summation mean",
                "mean diff",
                "std diff",
                "phase r",
                "gap",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.msb.name().into(),
                watts(r.mean_meter_w),
                watts(r.mean_summation_w),
                watts(r.mean_diff_w),
                watts(r.std_diff_w),
                format!("{:.4}", r.oscillation_r),
                pct(r.relative_gap),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\noverall: mean diff {} ({} of meter); per-MSB gap spread {}\n\
             paper:   summation ~11% under meter; mean diff 128.83 kW; \
             oscillations in phase, same magnitude, tight distributions\n",
            watts(self.overall_mean_diff_w),
            pct(self.overall_gap),
            pct(self.gap_spread),
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn summation_tracks_meter_like_paper() {
        let r = run(&Config {
            cabinets: 10,
            duration_s: 300,
            busy_fraction: 1.0,
        });
        assert_eq!(r.rows.len(), 5);
        // ~11 % gap.
        assert!(
            (0.07..0.15).contains(&r.overall_gap),
            "gap {} should be near the paper's 11 %",
            r.overall_gap
        );
        // Meter above summation everywhere.
        for row in &r.rows {
            assert!(row.mean_diff_w > 0.0);
            // Tight distribution: std well under the mean gap.
            assert!(row.std_diff_w < row.mean_diff_w);
            // In-phase oscillation.
            assert!(
                row.oscillation_r > 0.95,
                "phase r {} too low for {:?}",
                row.oscillation_r,
                row.msb
            );
        }
        // Per-MSB means differ subtly (the external factor).
        assert!(r.gap_spread > 0.003, "gap spread {}", r.gap_spread);
    }
}
