//! Extension experiment: micro-controller warnings as early diagnostics
//! for fatal driver errors.
//!
//! The paper's Figure 13 discussion: "the analysis shows an extremely
//! strong correlation between internal micro-controller warnings and
//! driver errors handling GPU exception. The latter suggests that soft
//! errors such as micro-controller warnings can be efficient for early
//! diagnostics and ultimately prevention of fatal driver errors." This
//! experiment quantifies that claim on the synthetic XID stream:
//! alert on every µC warning and score how well the alerts anticipate
//! driver error-handling exceptions on the same node within a horizon.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{Cfg, Experiment, ExperimentError};
use crate::experiments::table4;
use crate::json::Json;
use crate::pipeline::FailureScenario;
use crate::report::{pct, Table};
use serde::{Deserialize, Serialize};
use summit_telemetry::records::{XidErrorKind, XidEvent};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Observation span (weeks).
    pub weeks: f64,
    /// Prediction horizon after a warning (s).
    pub horizon_s: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weeks: 52.3,
            horizon_s: 3600.0,
            seed: 2020,
        }
    }
}

/// Evaluation result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EarlyWarningResult {
    /// Micro-controller warnings observed.
    pub warnings: usize,
    /// Driver error-handling exceptions observed.
    pub driver_errors: usize,
    /// Warnings followed by a driver error on the same node within the
    /// horizon.
    pub true_positives: usize,
    /// Warnings with no driver error in the horizon.
    pub false_positives: usize,
    /// Driver errors preceded by at least one warning.
    pub anticipated_errors: usize,
    /// Precision of the warning alert.
    pub precision: f64,
    /// Recall over driver errors.
    pub recall: f64,
    /// Median lead time from warning to driver error (s).
    pub median_lead_s: f64,
}

/// Runs the early-warning evaluation against a private cache.
pub fn run(config: &Config) -> EarlyWarningResult {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the early-warning evaluation, acquiring the failure log through
/// `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> EarlyWarningResult {
    let _obs = summit_obs::span("summit_core_early_warning");
    let art = cache.failures(&FailureScenario {
        weeks: config.weeks,
        seed: config.seed,
    });
    let warnings: Vec<&XidEvent> = art
        .events
        .iter()
        .filter(|e| e.kind == XidErrorKind::InternalMicrocontrollerWarning)
        .collect();
    let errors: Vec<&XidEvent> = art
        .events
        .iter()
        .filter(|e| e.kind == XidErrorKind::DriverErrorHandlingException)
        .collect();

    let mut true_pos = 0usize;
    let mut leads = Vec::new();
    for w in &warnings {
        let hit = errors
            .iter()
            .find(|e| e.node == w.node && e.time >= w.time && e.time <= w.time + config.horizon_s);
        if let Some(e) = hit {
            true_pos += 1;
            leads.push(e.time - w.time);
        }
    }
    let anticipated = errors
        .iter()
        .filter(|e| {
            warnings.iter().any(|w| {
                w.node == e.node && w.time <= e.time && e.time <= w.time + config.horizon_s
            })
        })
        .count();

    let precision = if warnings.is_empty() {
        f64::NAN
    } else {
        true_pos as f64 / warnings.len() as f64
    };
    let recall = if errors.is_empty() {
        f64::NAN
    } else {
        anticipated as f64 / errors.len() as f64
    };

    EarlyWarningResult {
        warnings: warnings.len(),
        driver_errors: errors.len(),
        true_positives: true_pos,
        false_positives: warnings.len() - true_pos,
        anticipated_errors: anticipated,
        precision,
        recall,
        median_lead_s: summit_analysis::stats::median(&leads),
    }
}

/// Registry adapter for the early-warning extension study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "early_warning"
    }

    fn summary(&self) -> &'static str {
        "Extension: uC warnings as early diagnostics for driver errors"
    }

    fn default_config(&self, scale: f64) -> Json {
        Json::obj([
            ("weeks", Json::Num(table4::default_weeks(scale))),
            ("horizon_s", Json::Num(3600.0)),
            ("seed", Json::Num(2020.0)),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("early_warning", config)?;
        let scenario = table4::scenario_from(&cfg)?;
        let horizon_s = cfg.f64("horizon_s")?;
        if !(horizon_s.is_finite() && horizon_s > 0.0) {
            return Err(ExperimentError::invalid(
                "early_warning",
                format!("horizon_s must be a positive horizon, got {horizon_s}"),
            ));
        }
        let config = Config {
            weeks: scenario.weeks,
            horizon_s,
            seed: scenario.seed,
        };
        Ok(run_with(cache, &config).render())
    }
}

impl EarlyWarningResult {
    /// Renders the evaluation.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Early diagnostics: uC warnings -> driver error handling exceptions",
            &["quantity", "value"],
        );
        t.row(vec!["uC warnings".into(), self.warnings.to_string()]);
        t.row(vec!["driver errors".into(), self.driver_errors.to_string()]);
        t.row(vec![
            "warnings confirmed (TP)".into(),
            self.true_positives.to_string(),
        ]);
        t.row(vec!["alert precision".into(), pct(self.precision)]);
        t.row(vec!["error recall".into(), pct(self.recall)]);
        t.row(vec![
            "median lead time".into(),
            format!("{:.0} s", self.median_lead_s),
        ]);
        let mut s = t.render();
        s.push_str(
            "\npaper: soft uC warnings \"can be efficient for early diagnostics and\n\
             ultimately prevention of fatal driver errors\"\n",
        );
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> EarlyWarningResult {
        run(&Config {
            weeks: 26.0,
            horizon_s: 3600.0,
            seed: 21,
        })
    }

    #[test]
    fn warnings_anticipate_most_driver_errors() {
        let r = result();
        assert!(r.warnings > 10);
        assert!(r.driver_errors > 3);
        assert!(
            r.recall > 0.8,
            "most driver errors follow a warning, recall {}",
            r.recall
        );
    }

    #[test]
    fn precision_reflects_escalation_rate() {
        let r = result();
        // The defect node escalates ~62 % of warnings; background
        // warnings never escalate, so precision sits below that.
        assert!(
            (0.1..0.8).contains(&r.precision),
            "precision {}",
            r.precision
        );
        assert_eq!(r.true_positives + r.false_positives, r.warnings);
    }

    #[test]
    fn lead_time_is_positive_and_short() {
        let r = result();
        assert!(
            r.median_lead_s >= 0.0 && r.median_lead_s <= 60.0,
            "escalations are near-immediate in the generator, got {}",
            r.median_lead_s
        );
    }
}
