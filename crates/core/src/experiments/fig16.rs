//! Figure 16: counts of GPU failures by component placement (slot 0-5).
//!
//! Paper anchors: the trend is close to the *reverse* of the water-order
//! expectation — "second-hand" cooling water is not the issue; GPU 0
//! leads many counts (single-GPU jobs); double-bit errors and page
//! retirement events are unexpectedly elevated on GPU 4; off-the-bus
//! failures cluster on the CPU1-side GPUs.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{Cfg, Experiment, ExperimentError};
use crate::experiments::table4;
use crate::json::Json;
use crate::pipeline::FailureScenario;
use crate::report::{bar, Table};
use serde::{Deserialize, Serialize};
use summit_telemetry::records::XidErrorKind;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Observation span (weeks).
    pub weeks: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weeks: 52.3,
            seed: 2020,
        }
    }
}

/// Slot histogram for one kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SlotHistogram {
    /// Event/error kind.
    pub kind: XidErrorKind,
    /// Per-slot counts.
    pub counts: [u64; 6],
}

impl SlotHistogram {
    /// The slot with the largest count.
    pub fn peak_slot(&self) -> usize {
        self.counts
            .iter()
            .enumerate()
            .max_by_key(|&(_, &c)| c)
            .map(|(i, _)| i)
            .unwrap_or(0)
    }
}

/// Full result — the four panels of the figure plus the all-kinds total.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig16Result {
    /// Per-panel results.
    pub panels: Vec<SlotHistogram>,
    /// Histogram over all kinds together.
    pub all_kinds: SlotHistogram,
}

/// The four kinds the paper plots.
pub const PANEL_KINDS: [XidErrorKind; 4] = [
    XidErrorKind::PageRetirementEvent,
    XidErrorKind::DoubleBitError,
    XidErrorKind::InternalMicrocontrollerWarning,
    XidErrorKind::FallenOffTheBus,
];

/// Runs the Figure 16 analysis against a private cache.
pub fn run(config: &Config) -> Fig16Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 16 analysis, acquiring the failure log through
/// `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig16Result {
    let _obs = summit_obs::span("summit_core_fig16");
    let art = cache.failures(&FailureScenario {
        weeks: config.weeks,
        seed: config.seed,
    });
    let mut panels: Vec<SlotHistogram> = PANEL_KINDS
        .iter()
        .map(|&kind| SlotHistogram {
            kind,
            counts: [0; 6],
        })
        .collect();
    let mut all = SlotHistogram {
        kind: XidErrorKind::MemoryPageFault, // placeholder tag for "all"
        counts: [0; 6],
    };
    for e in &art.events {
        all.counts[e.slot.index()] += 1;
        if let Some(p) = panels.iter_mut().find(|p| p.kind == e.kind) {
            p.counts[e.slot.index()] += 1;
        }
    }
    Fig16Result {
        panels,
        all_kinds: all,
    }
}

/// Registry adapter for the Figure 16 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig16"
    }

    fn summary(&self) -> &'static str {
        "GPU failure counts by component placement (slot 0-5)"
    }

    fn default_config(&self, scale: f64) -> Json {
        Json::obj([
            ("weeks", Json::Num(table4::default_weeks(scale))),
            ("seed", Json::Num(2020.0)),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig16", config)?;
        let scenario = table4::scenario_from(&cfg)?;
        let config = Config {
            weeks: scenario.weeks,
            seed: scenario.seed,
        };
        Ok(run_with(cache, &config).render())
    }
}

impl Fig16Result {
    /// Renders the four slot histograms.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for p in &self.panels {
            let mut t = Table::new(
                format!("Figure 16: {} by GPU slot", p.kind.name()),
                &["slot", "count", ""],
            );
            let max = *p.counts.iter().max().unwrap_or(&1) as f64;
            for (slot, &c) in p.counts.iter().enumerate() {
                t.row(vec![
                    slot.to_string(),
                    c.to_string(),
                    bar(c as f64, max, 30),
                ]);
            }
            s.push_str(&t.render());
            s.push('\n');
        }
        s.push_str(
            "paper: GPU 4 leads double-bit/page-retirement; GPU 0 leads overall \
             (single-GPU jobs); trend reverses the water-order expectation\n",
        );
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use XidErrorKind::*;

    fn result() -> Fig16Result {
        run(&Config {
            weeks: 40.0,
            seed: 13,
        })
    }

    #[test]
    fn four_panels_present() {
        let r = result();
        assert_eq!(r.panels.len(), 4);
        for p in &r.panels {
            assert!(p.counts.iter().sum::<u64>() > 0, "{:?} empty", p.kind);
        }
    }

    #[test]
    fn gpu4_leads_memory_kinds() {
        let r = result();
        for kind in [PageRetirementEvent, DoubleBitError] {
            let p = r.panels.iter().find(|p| p.kind == kind).unwrap();
            assert_eq!(
                p.peak_slot(),
                4,
                "paper: {} peaks on GPU 4, got {:?}",
                kind.name(),
                p.counts
            );
        }
    }

    #[test]
    fn slot0_leads_overall() {
        let r = result();
        assert_eq!(
            r.all_kinds.peak_slot(),
            0,
            "GPU 0 must lead the all-kinds histogram: {:?}",
            r.all_kinds.counts
        );
        // Reverse of the water order: downstream slots do NOT lead.
        assert!(r.all_kinds.counts[0] > r.all_kinds.counts[2]);
        assert!(r.all_kinds.counts[3] > r.all_kinds.counts[5]);
    }

    #[test]
    fn off_bus_leans_cpu1_side() {
        let r = result();
        let p = r.panels.iter().find(|p| p.kind == FallenOffTheBus).unwrap();
        let cpu0: u64 = p.counts[..3].iter().sum();
        let cpu1: u64 = p.counts[3..].iter().sum();
        assert!(
            cpu1 as f64 > cpu0 as f64 * 0.8,
            "off-the-bus should lean toward the CPU1-side GPUs: {:?}",
            p.counts
        );
    }
}
