//! Extension experiment: power-aware job scheduling.
//!
//! The paper's conclusion: "aggressive power and energy aware application
//! optimizations and scheduling policies can have impact even on HPC
//! deployments like Summit that impose no power constraints on its jobs"
//! — because the cooling plant must be provisioned for the rare peaks
//! (overcooling). This experiment runs the year's job stream through a
//! power-capped admission policy and measures the trade: peak/p99 cluster
//! power shed vs added queue wait, at several cap levels.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{
    clamp_scale, ensure_population_scale, Cfg, Experiment, ExperimentError,
};
use crate::json::Json;
use crate::pipeline::PopulationScenario;
use crate::report::{pct, watts, Table};
use serde::{Deserialize, Serialize};
use summit_sim::jobstats::JobStatsRow;
use summit_sim::spec;

/// Experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Config {
    /// Fraction of the paper's 840k jobs.
    pub population_scale: f64,
    /// Cluster-power caps to evaluate (W); `f64::INFINITY` = no cap
    /// (Summit's actual policy).
    pub caps_w: Vec<f64>,
    /// Scheduler tick (s).
    pub dt_s: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            population_scale: 0.05,
            caps_w: vec![f64::INFINITY, 10.0e6, 9.0e6, 8.0e6, 7.0e6, 6.0e6],
            dt_s: 600.0,
        }
    }
}

/// Outcome of one cap level.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CapOutcome {
    /// Cluster power cap (W).
    pub cap_w: f64,
    /// Peak cluster power over the year (W).
    pub peak_power_w: f64,
    /// 99th percentile of the power series (W).
    pub p99_power_w: f64,
    /// Mean cluster power (W).
    pub mean_power_w: f64,
    /// Jobs completed within the horizon.
    pub completed: usize,
    /// Jobs still queued at the end (starved by the cap).
    pub unfinished: usize,
    /// Mean queue wait (s). Jobs never admitted within the horizon are
    /// censored at the horizon, so starvation under tight caps shows up
    /// here instead of silently dropping out of the average.
    pub mean_wait_s: f64,
    /// 95th percentile queue wait (s), censored like `mean_wait_s`.
    pub p95_wait_s: f64,
    /// Node-hours delivered.
    pub node_hours: f64,
}

struct Running {
    end_time: f64,
    nodes: u32,
    above_idle_w: f64,
}

/// Simulates the year under one cap with a FIFO + backfill admission
/// policy: a job starts when (a) enough nodes are free and (b) projected
/// cluster power (idle floor + running above-idle + the job's mean
/// above-idle) stays under the cap.
fn simulate_cap(rows: &[JobStatsRow], cap_w: f64, dt: f64, horizon_s: f64) -> CapOutcome {
    let idle_w = spec::SYSTEM_IDLE_POWER_W;
    let total_nodes = spec::TOTAL_NODES as u32;

    // Arrival-ordered queue of (arrival, nodes, duration, above_idle, started?).
    #[derive(Clone)]
    struct Pending {
        arrival: f64,
        nodes: u32,
        duration: f64,
        above_idle_w: f64,
    }
    let mut queue: Vec<Pending> = rows
        .iter()
        .map(|r| Pending {
            arrival: r.job.record.begin_time,
            nodes: r.job.record.node_count,
            duration: r.job.record.walltime_s(),
            above_idle_w: (r.stats.mean_power_w
                - r.job.record.node_count as f64 * spec::NODE_IDLE_POWER_W)
                .max(0.0),
        })
        .collect();
    queue.sort_by(|a, b| a.arrival.total_cmp(&b.arrival));

    let mut running: Vec<Running> = Vec::new();
    let mut free_nodes = total_nodes;
    let mut power_above_idle = 0.0f64;
    let mut next = 0usize;
    let mut waits: Vec<f64> = Vec::new();
    let mut completed = 0usize;
    let mut node_seconds = 0.0f64;
    let mut peak = idle_w;
    let mut p_sum = 0.0;
    let mut powers: Vec<f64> = Vec::new();
    let mut waiting: Vec<Pending> = Vec::new();

    let steps = (horizon_s / dt).ceil() as usize;
    for step in 0..steps {
        let t = step as f64 * dt;
        // Complete.
        let mut i = 0;
        while i < running.len() {
            if running[i].end_time <= t {
                let r = running.swap_remove(i);
                free_nodes += r.nodes;
                power_above_idle -= r.above_idle_w;
                completed += 1;
            } else {
                i += 1;
            }
        }
        // Move newly-arrived jobs into the waiting pool.
        while next < queue.len() && queue[next].arrival <= t {
            waiting.push(queue[next].clone());
            next += 1;
        }
        // Admit (FIFO with backfill).
        let mut k = 0;
        while k < waiting.len() {
            let p = &waiting[k];
            let fits_nodes = p.nodes <= free_nodes;
            let fits_power = idle_w + power_above_idle + p.above_idle_w <= cap_w;
            if fits_nodes && fits_power {
                let p = waiting.remove(k);
                waits.push(t - p.arrival);
                free_nodes -= p.nodes;
                power_above_idle += p.above_idle_w;
                node_seconds += p.nodes as f64 * p.duration;
                running.push(Running {
                    end_time: t + p.duration,
                    nodes: p.nodes,
                    above_idle_w: p.above_idle_w,
                });
            } else {
                k += 1;
            }
        }
        let power = idle_w + power_above_idle;
        peak = peak.max(power);
        p_sum += power;
        powers.push(power);
    }

    // Censor jobs that never started: their wait is at least the time
    // from arrival to the end of the horizon. Without this, a tight cap
    // that starves its most power-hungry jobs would *lower* the mean
    // wait by excluding them.
    for p in &waiting {
        waits.push((horizon_s - p.arrival).max(0.0));
    }

    powers.sort_by(|a, b| a.total_cmp(b));
    let p99 = powers[(powers.len() as f64 * 0.99) as usize - 1];
    let mut sorted_waits = waits.clone();
    sorted_waits.sort_by(|a, b| a.total_cmp(b));
    let mean_wait = if waits.is_empty() {
        f64::NAN
    } else {
        waits.iter().sum::<f64>() / waits.len() as f64
    };
    let p95_wait = if sorted_waits.is_empty() {
        f64::NAN
    } else {
        sorted_waits[((sorted_waits.len() as f64 * 0.95) as usize).min(sorted_waits.len() - 1)]
    };

    CapOutcome {
        cap_w,
        peak_power_w: peak,
        p99_power_w: p99,
        mean_power_w: p_sum / steps as f64,
        completed,
        unfinished: waiting.len() + (queue.len() - next) + running.len(),
        mean_wait_s: mean_wait,
        p95_wait_s: p95_wait,
        node_hours: node_seconds / 3600.0,
    }
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PowerAwareResult {
    /// Per-cap outcomes.
    pub outcomes: Vec<CapOutcome>,
}

/// Runs the power-aware scheduling sweep against a private cache.
pub fn run(config: &Config) -> PowerAwareResult {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the power-aware scheduling sweep, acquiring the population
/// through `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> PowerAwareResult {
    let _obs = summit_obs::span("summit_core_power_aware");
    let pop = cache.population(&PopulationScenario::paper_year(config.population_scale));
    // Sub-scaled populations under-fill the machine; horizon covers the
    // arrival span plus drain time.
    let horizon = spec::YEAR_S + 48.0 * 3600.0;
    let outcomes = config
        .caps_w
        .iter()
        .map(|&cap| simulate_cap(&pop.rows, cap, config.dt_s, horizon))
        .collect();
    PowerAwareResult { outcomes }
}

/// Registry adapter for the power-aware scheduling study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "power_aware"
    }

    fn summary(&self) -> &'static str {
        "Extension: power-capped admission — peak shed vs queue wait"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        // `null` encodes "no cap" (infinity) — JSON has no infinity
        // literal.
        let caps: Vec<Json> = if s < 0.5 {
            vec![Json::Null, Json::from(8.0e6)]
        } else {
            vec![
                Json::Null,
                Json::from(10.0e6),
                Json::from(9.0e6),
                Json::from(8.0e6),
                Json::from(7.0e6),
                Json::from(6.0e6),
            ]
        };
        Json::obj([
            ("population_scale", Json::Num(s.max(0.005))),
            ("caps_w", Json::Arr(caps)),
            ("dt_s", Json::Num(if s < 0.5 { 3600.0 } else { 600.0 })),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("power_aware", config)?;
        let config = Config {
            population_scale: cfg.f64("population_scale")?,
            caps_w: cfg.f64_list("caps_w")?,
            dt_s: cfg.f64("dt_s")?,
        };
        ensure_population_scale("power_aware", config.population_scale)?;
        if !(config.dt_s.is_finite() && config.dt_s > 0.0) {
            return Err(ExperimentError::invalid(
                "power_aware",
                format!("dt_s must be a positive tick, got {}", config.dt_s),
            ));
        }
        Ok(run_with(cache, &config).render())
    }
}

impl PowerAwareResult {
    /// Renders the cap-sweep table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Power-aware admission: peak shed vs queue wait",
            &[
                "cap",
                "peak",
                "p99",
                "mean",
                "completed",
                "starved",
                "mean wait",
                "p95 wait",
            ],
        );
        let uncapped = self.outcomes.first();
        for o in &self.outcomes {
            t.row(vec![
                if o.cap_w.is_finite() {
                    watts(o.cap_w)
                } else {
                    "none".into()
                },
                watts(o.peak_power_w),
                watts(o.p99_power_w),
                watts(o.mean_power_w),
                o.completed.to_string(),
                o.unfinished.to_string(),
                format!("{:.1} min", o.mean_wait_s / 60.0),
                format!("{:.1} min", o.p95_wait_s / 60.0),
            ]);
        }
        let mut s = t.render();
        if let Some(base) = uncapped {
            // The tightest cap that costs under ten minutes of mean wait.
            if let Some(knee) = self
                .outcomes
                .iter()
                .rfind(|o| o.cap_w.is_finite() && o.mean_wait_s < base.mean_wait_s + 600.0)
            {
                s.push_str(&format!(
                    "\nknee: capping at {} sheds {} of peak for <10 min extra mean wait\n",
                    watts(knee.cap_w),
                    pct(1.0 - knee.peak_power_w / base.peak_power_w),
                ));
            }
        }
        s.push_str(
            "paper conclusion: power-aware scheduling can shrink the peak the cooling\n\
             plant must stand ready for, cutting the overcooling margin\n",
        );
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> PowerAwareResult {
        run(&Config {
            population_scale: 0.01,
            caps_w: vec![f64::INFINITY, 8.0e6, 5.0e6],
            dt_s: 1800.0,
        })
    }

    #[test]
    fn caps_bind_peak_power() {
        let r = result();
        let base = &r.outcomes[0];
        for o in &r.outcomes[1..] {
            assert!(
                o.peak_power_w <= o.cap_w * 1.001,
                "cap {} violated: peak {}",
                o.cap_w,
                o.peak_power_w
            );
            assert!(o.peak_power_w <= base.peak_power_w + 1.0);
        }
    }

    #[test]
    fn tighter_caps_increase_waits() {
        let r = result();
        let wait = |i: usize| r.outcomes[i].mean_wait_s;
        assert!(
            wait(2) >= wait(1) && wait(1) >= wait(0) - 1.0,
            "waits must not shrink as caps tighten: {} {} {}",
            wait(0),
            wait(1),
            wait(2)
        );
    }

    #[test]
    fn throughput_preserved_at_loose_caps() {
        let r = result();
        let base = &r.outcomes[0];
        let loose = &r.outcomes[1];
        assert!(
            loose.completed as f64 >= base.completed as f64 * 0.95,
            "an 8 MW cap should barely cost throughput: {} vs {}",
            loose.completed,
            base.completed
        );
    }

    #[test]
    fn node_hours_accounted() {
        let r = result();
        for o in &r.outcomes {
            assert!(o.node_hours > 0.0);
            assert!(o.completed + o.unfinished > 0);
        }
    }
}
