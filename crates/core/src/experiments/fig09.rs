//! Figure 9: joint distribution of per-node CPU vs GPU power (mean and
//! maximum) across the job population.
//!
//! The paper's reading: density concentrates near the axes — jobs are
//! either CPU-intensive (x-axis) or GPU-focused (y-axis); few jobs
//! heavily use both at once (empty upper-right corner); the maximum plots
//! spread further along the GPU axis.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{
    clamp_scale, ensure_population_scale, Cfg, Experiment, ExperimentError,
};
use crate::json::Json;
use crate::pipeline::PopulationScenario;
use crate::report::{pct, watts, Table};
use serde::{Deserialize, Serialize};
use summit_analysis::kde::{Bandwidth, Kde2d};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Fraction of the paper's 840k jobs.
    pub population_scale: f64,
    /// Max samples fed to each KDE.
    pub max_samples: usize,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            population_scale: 0.02,
            max_samples: 4000,
        }
    }
}

/// Characterization of one (statistic, class-group) panel.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Panel {
    /// "mean" or "max".
    pub statistic: String,
    /// "leadership" (classes 1-2) or "small" (classes 3-5).
    pub group: String,
    /// Number of jobs in this group.
    pub jobs: usize,
    /// Density peak (cpu W, gpu W).
    pub peak_cpu_w: f64,
    /// Density-peak GPU power (W).
    pub peak_gpu_w: f64,
    /// Fraction of jobs that are GPU-focused (gpu > 2x cpu).
    pub gpu_focused: f64,
    /// Fraction CPU-intensive (cpu-side dominance given the 6:2 ratio of
    /// GPUs to CPUs: gpu < cpu).
    pub cpu_intensive: f64,
    /// Fraction using both heavily (cpu > 400 W and gpu > 1,200 W) — the
    /// paper's empty upper-right corner.
    pub both_heavy: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig09Result {
    /// Per-panel results.
    pub panels: Vec<Panel>,
}

fn build_panel(
    rows: &[&summit_sim::jobstats::JobStatsRow],
    statistic: &str,
    group: &str,
    max_samples: usize,
) -> Option<Panel> {
    if rows.len() < 10 {
        return None;
    }
    let step = (rows.len() / max_samples).max(1);
    let pick = |r: &summit_sim::jobstats::JobStatsRow| -> (f64, f64) {
        match statistic {
            "mean" => (r.stats.mean_node_cpu_w, r.stats.mean_node_gpu_w),
            _ => (r.stats.max_node_cpu_w, r.stats.max_node_gpu_w),
        }
    };
    let pts: Vec<(f64, f64)> = rows.iter().step_by(step).map(|r| pick(r)).collect();
    let cpu: Vec<f64> = pts.iter().map(|p| p.0).collect();
    let gpu: Vec<f64> = pts.iter().map(|p| p.1).collect();
    let kde = Kde2d::fit(&cpu, &gpu, Bandwidth::Scott)?;
    let grid = kde.grid(56, 56);
    let (px, py, _) = grid.peak();
    let n = pts.len() as f64;
    let gpu_focused = pts.iter().filter(|(c, g)| *g > 2.0 * c).count() as f64 / n;
    let cpu_intensive = pts.iter().filter(|(c, g)| *g < *c).count() as f64 / n;
    let both_heavy = pts
        .iter()
        .filter(|(c, g)| *c > 400.0 && *g > 1200.0)
        .count() as f64
        / n;
    Some(Panel {
        statistic: statistic.into(),
        group: group.into(),
        jobs: pts.len(),
        peak_cpu_w: px,
        peak_gpu_w: py,
        gpu_focused,
        cpu_intensive,
        both_heavy,
    })
}

/// Runs the Figure 9 study against a private cache.
pub fn run(config: &Config) -> Fig09Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 9 study, acquiring the population through `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig09Result {
    let _obs = summit_obs::span("summit_core_fig09");
    let pop = cache.population(&PopulationScenario::paper_year(config.population_scale));
    let rows = &pop.rows;
    let leadership: Vec<_> = rows.iter().filter(|r| r.job.class() <= 2).collect();
    let small: Vec<_> = rows.iter().filter(|r| r.job.class() >= 3).collect();
    let mut panels = Vec::new();
    for stat in ["mean", "max"] {
        if let Some(p) = build_panel(&leadership, stat, "leadership", config.max_samples) {
            panels.push(p);
        }
        if let Some(p) = build_panel(&small, stat, "small", config.max_samples) {
            panels.push(p);
        }
    }
    Fig09Result { panels }
}

/// Registry adapter for the Figure 9 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig09"
    }

    fn summary(&self) -> &'static str {
        "Per-node CPU vs GPU power density by class group"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([
            ("population_scale", Json::Num(s.max(0.002))),
            (
                "max_samples",
                Json::Num(if s < 0.5 { 800.0 } else { 4000.0 }),
            ),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig09", config)?;
        let config = Config {
            population_scale: cfg.f64("population_scale")?,
            max_samples: cfg.usize("max_samples")?,
        };
        ensure_population_scale("fig09", config.population_scale)?;
        if config.max_samples == 0 {
            return Err(ExperimentError::invalid(
                "fig09",
                "max_samples must be positive",
            ));
        }
        Ok(run_with(cache, &config).render())
    }
}

impl Fig09Result {
    /// Renders the four panels.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 9: per-node CPU vs GPU power density",
            &[
                "stat",
                "classes",
                "jobs",
                "peak CPU",
                "peak GPU",
                "GPU-focused",
                "CPU-intensive",
                "both heavy",
            ],
        );
        for p in &self.panels {
            t.row(vec![
                p.statistic.clone(),
                p.group.clone(),
                p.jobs.to_string(),
                watts(p.peak_cpu_w),
                watts(p.peak_gpu_w),
                pct(p.gpu_focused),
                pct(p.cpu_intensive),
                pct(p.both_heavy),
            ]);
        }
        let mut s = t.render();
        s.push_str(
            "\npaper: density hugs the axes (CPU-intensive vs GPU-focused jobs); \
             few jobs use both heavily; max panels spread farther up the GPU axis\n",
        );
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig09Result {
        run(&Config {
            population_scale: 0.005,
            max_samples: 2000,
        })
    }

    #[test]
    fn four_panels() {
        let r = result();
        assert_eq!(r.panels.len(), 4);
    }

    #[test]
    fn density_hugs_the_axes() {
        let r = result();
        for p in &r.panels {
            // Most jobs are one-sided; the upper-right corner stays thin.
            assert!(
                p.gpu_focused + p.cpu_intensive > 0.5,
                "panel {}-{}: {} + {}",
                p.statistic,
                p.group,
                p.gpu_focused,
                p.cpu_intensive
            );
            assert!(
                p.both_heavy < 0.25,
                "panel {}-{}: both-heavy {} should be rare",
                p.statistic,
                p.group,
                p.both_heavy
            );
        }
    }

    #[test]
    fn max_spreads_gpu_axis() {
        let r = result();
        let find = |stat: &str, group: &str| {
            r.panels
                .iter()
                .find(|p| p.statistic == stat && p.group == group)
                .unwrap()
        };
        for group in ["leadership", "small"] {
            let mean = find("mean", group);
            let max = find("max", group);
            assert!(
                max.gpu_focused >= mean.gpu_focused * 0.8,
                "{group}: GPU focus persists in the max panel"
            );
        }
    }
}
