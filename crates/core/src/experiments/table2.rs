//! Table 2: data specification — rows, footprints and ingest rates of the
//! telemetry streams.
//!
//! The paper's anchors: the per-node OpenBMC stream carries 134 G rows
//! per year in 8.5 TB compressed (about 1 MB/s sustained), ingested at
//! 460 k metrics/s with a 2.5 s average propagation delay. This
//! experiment runs the real pipeline (frame generation -> fan-in ->
//! lossless archive -> 10 s coarsening) over a measured window on a
//! configurable floor and extrapolates to the full machine-year.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{clamp_scale, Cfg, Experiment, ExperimentError};
use crate::json::Json;
use crate::pipeline::stream_batches;
use crate::report::{eng, Table};
use serde::{Deserialize, Serialize};
use summit_sim::engine::{Engine, EngineConfig, StepOptions};
use summit_telemetry::catalog::METRIC_COUNT;
use summit_telemetry::ids::NodeId;
use summit_telemetry::ingest::IngestHealth;
use summit_telemetry::records::NodeFrame;
use summit_telemetry::store::TelemetryStore;
use summit_telemetry::stream::{fan_in_batches, IngestStats};

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Cabinets simulated (257 = full floor).
    pub cabinets: usize,
    /// Measured window (s); must be a multiple of 60.
    pub duration_s: usize,
    /// Fan-in producer threads.
    pub producers: usize,
    /// Run online: generate minutes on a producer thread and process
    /// them as they arrive over a bounded channel (backpressured).
    pub stream: bool,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cabinets: 40,
            duration_s: 120,
            producers: 8,
            stream: false,
        }
    }
}

/// Measured and extrapolated results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table2Result {
    /// Node-count feature CDF.
    pub nodes: usize,
    /// Window s.
    pub window_s: usize,
    /// Frames ingested in the window.
    pub frames: u64,
    /// Metric readings ingested in the window.
    pub metrics: u64,
    /// Measured mean/max propagation delay (s).
    pub mean_delay_s: f64,
    /// Maximum observed delay (s).
    pub max_delay_s: f64,
    /// Measured ingest rate (metrics/s).
    pub metrics_per_s: f64,
    /// Archive bytes for the window.
    pub archive_bytes: u64,
    /// Compression ratio (raw 8 B readings vs encoded).
    pub compression_ratio: f64,
    /// Extrapolations to 4,626 nodes x 366 days.
    pub year_rows: f64,
    /// Year bytes.
    pub year_bytes: f64,
    /// Full floor metrics per s.
    pub full_floor_metrics_per_s: f64,
    /// Coarsened (10 s) windows produced.
    pub coarsened_windows: usize,
    /// Fault-tolerance counters from the coarsening path.
    pub ingest_health: IngestHealth,
    /// Hot-path throughput: frames processed per wall-clock second.
    pub frames_per_wall_s: f64,
    /// Hot-path throughput: coarsened windows per wall-clock second.
    pub windows_per_wall_s: f64,
    /// Per-run observability snapshot (stage timings and counters).
    pub obs: summit_obs::Snapshot,
    /// True when the run executed in streaming (online) mode.
    pub streamed: bool,
}

/// Steps the engine through one minute of simulated time and shards the
/// emitted frames by node. Shared by the batch loop and the streaming
/// producer thread so both modes generate identical frames.
fn generate_minute(engine: &mut Engine, nodes: usize) -> Vec<Vec<NodeFrame>> {
    let mut frames_by_node: Vec<Vec<NodeFrame>> = vec![Vec::with_capacity(60); nodes];
    {
        let _obs = summit_obs::span("summit_core_frame_generation");
        for _ in 0..60 {
            let out = engine.step_opts(&StepOptions {
                frames: true,
                ..Default::default()
            });
            for f in out.frames.unwrap_or_default() {
                frames_by_node[f.node.index()].push(f);
            }
        }
    }
    summit_obs::counter("summit_core_engine_ticks_total").inc_by(60);
    let offered: usize = frames_by_node.iter().map(Vec::len).sum();
    summit_obs::counter("summit_core_frames_offered_total").inc_by(offered as u64);
    frames_by_node
}

/// Fans one minute of frames through the collector, archives and
/// coarsens it, and folds its accounting into `all_stats`; returns the
/// windows closed. Both execution modes call this exact function, so
/// streaming output is bit-identical to batch by construction.
fn process_minute(
    frames_by_node: Vec<Vec<NodeFrame>>,
    producers: usize,
    nodes: usize,
    store: &TelemetryStore,
    all_stats: &mut IngestStats,
) -> usize {
    // Fan-in through the collector (delay model + rate accounting).
    let (collected, stats) = {
        let _obs = summit_obs::span("summit_telemetry_fan_in");
        fan_in_batches(frames_by_node, producers)
    };
    all_stats.merge(&stats);
    // Re-shard by node for archival + coarsening.
    let _obs = summit_obs::span("summit_core_archive_coarsen");
    let mut by_node: Vec<Vec<NodeFrame>> = vec![Vec::with_capacity(60); nodes];
    for f in collected {
        by_node[f.node.index()].push(f);
    }
    let mut minute_windows = 0usize;
    for (n, frames) in by_node.into_iter().enumerate() {
        // The store sorts internally and the aggregator reorders
        // within its lateness horizon, so no pre-sort is needed.
        store.archive_partition(NodeId(n as u32), &frames);
        let mut agg = summit_telemetry::window::WindowAggregator::paper(NodeId(n as u32));
        for f in &frames {
            let _ = agg.push(f);
        }
        let (windows, health) = agg.finish_with_health();
        minute_windows += windows.len();
        all_stats.health.merge(&health);
    }
    summit_obs::counter("summit_telemetry_windows_total").inc_by(minute_windows as u64);
    minute_windows
}

/// Runs the Table 2 pipeline measurement. Installs a private
/// [`summit_obs`] registry for the duration so [`Table2Result::obs`]
/// holds this run's stage timings in isolation; the snapshot is also
/// absorbed into the caller's current registry.
///
/// Table 2 is a *measurement* of the live pipeline (throughput, wall
/// time), so unlike the scenario-backed studies its acquisition is
/// never cached — re-running it is the point.
pub fn run(config: &Config) -> Result<Table2Result, ExperimentError> {
    if config.duration_s < 60 || !config.duration_s.is_multiple_of(60) {
        return Err(ExperimentError::invalid(
            "table2",
            format!(
                "duration_s must be a multiple of 60 and at least 60, got {}",
                config.duration_s
            ),
        ));
    }
    let parent = summit_obs::current();
    let registry = summit_obs::registry::Registry::new();
    let mut result = {
        let _scope = registry.install();
        let run_span = summit_obs::span("summit_core_table2");
        let mut engine = Engine::new(EngineConfig::small(config.cabinets), 0.0);
        let nodes = engine.topology().node_count();
        let store = TelemetryStore::new();
        let mut total_windows = 0usize;
        let mut all_stats = IngestStats::default();

        // Stream minute-by-minute: generate frames, fan them in, archive and
        // coarsen, then drop — bounding memory like the real pipeline.
        let minutes = config.duration_s / 60;
        if config.stream {
            // Online mode: a producer thread generates minutes and ships
            // them over a bounded channel while the consumer runs the
            // same per-minute processing inline — blocking backpressure
            // keeps at most two minutes of frames in flight.
            let producers = config.producers;
            stream_batches(
                2,
                move |send: &dyn Fn(Vec<Vec<NodeFrame>>) -> bool| {
                    for _ in 0..minutes {
                        if !send(generate_minute(&mut engine, nodes)) {
                            break;
                        }
                    }
                },
                |frames_by_node, _depth| {
                    total_windows +=
                        process_minute(frames_by_node, producers, nodes, &store, &mut all_stats);
                },
            );
        } else {
            for _ in 0..minutes {
                let frames_by_node = generate_minute(&mut engine, nodes);
                total_windows += process_minute(
                    frames_by_node,
                    config.producers,
                    nodes,
                    &store,
                    &mut all_stats,
                );
            }
        }
        all_stats.publish_obs();

        let comp = store.compression_stats();
        let window_s = config.duration_s;
        let bytes = store.archive_bytes();
        let bytes_per_node_s = bytes as f64 / (nodes as f64 * window_s as f64);
        let full_nodes = summit_sim::spec::TOTAL_NODES as f64;
        let year_s = 366.0 * 86_400.0;

        let wall_s = run_span.elapsed_s();
        let frames_per_wall_s = if wall_s > 0.0 {
            all_stats.frames as f64 / wall_s
        } else {
            f64::NAN
        };
        let windows_per_wall_s = if wall_s > 0.0 {
            total_windows as f64 / wall_s
        } else {
            f64::NAN
        };
        summit_obs::gauge("summit_core_frames_per_wall_second").set(frames_per_wall_s);
        summit_obs::gauge("summit_core_windows_per_wall_second").set(windows_per_wall_s);

        Table2Result {
            nodes,
            window_s,
            frames: all_stats.frames,
            metrics: all_stats.metrics,
            mean_delay_s: all_stats.mean_delay_s(),
            max_delay_s: all_stats.max_delay_s,
            metrics_per_s: all_stats.metrics_per_second(),
            archive_bytes: bytes,
            compression_ratio: comp.ratio(),
            year_rows: full_nodes * year_s,
            year_bytes: bytes_per_node_s * full_nodes * year_s,
            full_floor_metrics_per_s: full_nodes * METRIC_COUNT as f64,
            coarsened_windows: total_windows,
            ingest_health: all_stats.health,
            frames_per_wall_s,
            windows_per_wall_s,
            obs: summit_obs::Snapshot::default(),
            streamed: config.stream,
        }
    };
    result.obs = registry.snapshot();
    parent.absorb(&result.obs);
    Ok(result)
}

/// Registry adapter for the Table 2 measurement.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "table2"
    }

    fn summary(&self) -> &'static str {
        "Telemetry data specification: rows, footprint and ingest rates"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([
            ("cabinets", Json::from(((257.0 * s) as usize).max(2))),
            ("duration_s", Json::from(60 * ((5.0 * s) as usize).max(1))),
            ("producers", Json::from(((16.0 * s) as usize).clamp(2, 16))),
            ("stream", Json::Bool(false)),
        ])
    }

    fn run(&self, _cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("table2", config)?;
        let config = Config {
            cabinets: cfg.usize("cabinets")?,
            duration_s: cfg.usize("duration_s")?,
            producers: cfg.usize("producers")?,
            stream: cfg.bool("stream")?,
        };
        Ok(run(&config)?.render())
    }
}

impl Table2Result {
    /// Renders the paper-vs-measured table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Table 2 (stream a): per-node OpenBMC telemetry",
            &["quantity", "measured", "paper"],
        );
        t.row(vec!["sample interval".into(), "1 s".into(), "1 s".into()]);
        t.row(vec![
            format!("window frames ({} nodes, {} s)", self.nodes, self.window_s),
            eng(self.frames as f64),
            "-".into(),
        ]);
        t.row(vec![
            "mean ingest delay".into(),
            format!("{:.2} s", self.mean_delay_s),
            "2.5 s".into(),
        ]);
        t.row(vec![
            "max ingest delay".into(),
            format!("{:.2} s", self.max_delay_s),
            "5 s".into(),
        ]);
        t.row(vec![
            "full-floor ingest rate".into(),
            format!("{}/s", eng(self.full_floor_metrics_per_s)),
            "460k metrics/s".into(),
        ]);
        t.row(vec![
            "rows per year (1 Hz frames x nodes)".into(),
            eng(self.year_rows),
            "134B samples".into(),
        ]);
        t.row(vec![
            "compression ratio".into(),
            format!("{:.1}x", self.compression_ratio),
            "-".into(),
        ]);
        t.row(vec![
            "archive footprint per year".into(),
            format!("{:.2} TB", self.year_bytes / 1e12),
            "8.5 TB".into(),
        ]);
        t.row(vec![
            "coarsened 10 s windows in window".into(),
            eng(self.coarsened_windows as f64),
            "-".into(),
        ]);
        let h = &self.ingest_health;
        t.row(vec![
            "frames accepted / reordered".into(),
            format!("{} / {}", h.accepted, h.reordered),
            "-".into(),
        ]);
        t.row(vec![
            "frames dropped (late / dup / other)".into(),
            format!(
                "{} / {} / {}",
                h.late_dropped,
                h.duplicates,
                h.wrong_node + h.invalid
            ),
            "-".into(),
        ]);
        t.row(vec![
            "pipeline throughput (wall clock)".into(),
            format!(
                "{}/s frames, {}/s windows",
                eng(self.frames_per_wall_s),
                eng(self.windows_per_wall_s)
            ),
            "-".into(),
        ]);
        if self.streamed {
            t.row(vec![
                "execution mode".into(),
                "streaming (bounded channel, online coarsening)".into(),
                "-".into(),
            ]);
        }
        let mut s = t.render();
        s.push('\n');
        s.push_str(&crate::monitoring::render_stage_timings(&self.obs));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn pipeline_measures_and_extrapolates() {
        let cfg = Config {
            cabinets: 3,
            duration_s: 60,
            producers: 4,
            stream: false,
        };
        let r = run(&cfg).unwrap();
        assert_eq!(r.nodes, 54);
        assert_eq!(r.frames, 54 * 60);
        assert_eq!(r.metrics, r.frames * METRIC_COUNT as u64);
        // Delay model honored.
        assert!(r.mean_delay_s > 1.5 && r.mean_delay_s < 3.5);
        assert!(r.max_delay_s < 5.0);
        // Compression beats raw storage comfortably.
        assert!(r.compression_ratio > 4.0, "ratio {}", r.compression_ratio);
        // Year extrapolation is in the paper's order of magnitude:
        // 4,626 nodes x 31.6M s = 1.46e11 frame-rows.
        assert!((r.year_rows - 1.46e11).abs() / 1.46e11 < 0.02);
        // Footprint within a factor of a few of the paper's 8.5 TB.
        assert!(
            r.year_bytes > 0.5e12 && r.year_bytes < 40e12,
            "year bytes {}",
            r.year_bytes
        );
        // 6 windows per node-minute.
        assert_eq!(r.coarsened_windows, 54 * 6);
        // Clean fabric: every frame accepted, nothing dropped.
        assert_eq!(r.ingest_health.accepted, r.frames);
        assert_eq!(r.ingest_health.dropped(), 0);
        let render = r.render();
        assert!(render.contains("8.5 TB"));
        assert!(render.contains("frames accepted"));
        // Observability: the run carries its own stage timings.
        assert!(r.frames_per_wall_s > 0.0);
        assert!(r.windows_per_wall_s > 0.0);
        assert_eq!(
            r.obs.counter("summit_core_frames_offered_total"),
            Some(54 * 60)
        );
        assert_eq!(r.obs.counter("summit_core_table2_calls_total"), Some(1));
        assert!(render.contains("pipeline stage timings"), "{render}");
        assert!(render.contains("summit_core_frame_generation"), "{render}");
    }

    #[test]
    fn streaming_mode_is_bit_identical_to_batch() {
        let cfg = Config {
            cabinets: 2,
            duration_s: 120,
            producers: 2,
            stream: false,
        };
        let batch = run(&cfg).unwrap();
        let streamed = run(&Config {
            stream: true,
            ..cfg
        })
        .unwrap();
        assert!(streamed.streamed && !batch.streamed);
        assert_eq!(streamed.nodes, batch.nodes);
        assert_eq!(streamed.frames, batch.frames);
        assert_eq!(streamed.metrics, batch.metrics);
        assert_eq!(
            streamed.mean_delay_s.to_bits(),
            batch.mean_delay_s.to_bits()
        );
        assert_eq!(streamed.max_delay_s.to_bits(), batch.max_delay_s.to_bits());
        assert_eq!(
            streamed.metrics_per_s.to_bits(),
            batch.metrics_per_s.to_bits()
        );
        assert_eq!(streamed.archive_bytes, batch.archive_bytes);
        assert_eq!(
            streamed.compression_ratio.to_bits(),
            batch.compression_ratio.to_bits()
        );
        assert_eq!(streamed.coarsened_windows, batch.coarsened_windows);
        assert_eq!(streamed.ingest_health, batch.ingest_health);
        // Obs totals agree even though the producer side runs on its
        // own thread (the registry is shared).
        assert_eq!(
            streamed.obs.counter("summit_core_frames_offered_total"),
            batch.obs.counter("summit_core_frames_offered_total")
        );
        // The streaming row only appears in streaming mode.
        assert!(streamed.render().contains("execution mode"));
        assert!(!batch.render().contains("execution mode"));
    }

    #[test]
    fn rejects_non_minute_window() {
        let err = run(&Config {
            cabinets: 1,
            duration_s: 90,
            producers: 1,
            stream: false,
        })
        .unwrap_err();
        assert!(
            matches!(&err, ExperimentError::InvalidConfig(m) if m.contains("duration_s")),
            "unexpected error: {err}"
        );
    }
}
