//! Figure 12: component temperatures and cooling-system response around
//! rising and falling power edges.
//!
//! Paper anchors: GPU temperatures tightly follow the power envelope
//! (maximums keep rising after a large edge); CPU temperatures stay
//! comparatively fixed; the MTW return temperature and tons of
//! refrigeration respond with a ~1 minute delay; attenuation after a
//! falling edge is much slower than the ramp after a rising edge; PUE
//! stays inversely proportional with oscillations after large falls.

use crate::cache::ScenarioCache;
use crate::experiments::fig11::{self, burst_run_with, Config as BurstConfig};
use crate::experiments::registry::{Cfg, Experiment, ExperimentError};
use crate::json::Json;
use crate::report::Table;
use serde::{Deserialize, Serialize};
use summit_analysis::edges::EdgeKind;
use summit_analysis::snapshot::{superimpose, Superposition};

/// Experiment configuration (delegates burst staging to Figure 11's).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Config {
    /// Burst staging configuration (shared with Figure 11).
    pub burst: BurstConfig,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            burst: BurstConfig {
                amplitudes_mw: vec![4.0, 7.0],
                repeats: 3,
                ..Default::default()
            },
        }
    }
}

/// Superpositions of every observable around one edge kind.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResponsePanel {
    /// Event/error kind.
    pub kind: EdgeKind,
    /// Snapshots superimposed.
    pub snapshot_count: usize,
    /// Power distribution statistics.
    pub power: Superposition,
    /// PUE distribution statistics.
    pub pue: Superposition,
    /// Cluster mean GPU temperature superposition.
    pub gpu_temp_mean: Superposition,
    /// Cluster max GPU temperature superposition.
    pub gpu_temp_max: Superposition,
    /// Cluster mean CPU temperature superposition.
    pub cpu_temp_mean: Superposition,
    /// MTW return temperature superposition.
    pub mtw_return: Superposition,
    /// MTW supply temperature superposition.
    pub mtw_supply: Superposition,
    /// Total cooling superposition (tons).
    pub cooling_tons: Superposition,
    /// Chiller cooling superposition (tons).
    pub chiller_tons: Superposition,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig12Result {
    /// Superpositions around rising edges.
    pub rising: ResponsePanel,
    /// Superpositions around falling edges.
    pub falling: ResponsePanel,
    /// Seconds until the cooling tonnage reached half its eventual
    /// increase after a rising edge (paper: "roughly one minute delay").
    pub cooling_half_response_s: f64,
    /// GPU mean-temp swing vs CPU mean-temp swing over the rising window
    /// (paper: GPUs respond tightly, CPUs stay relatively fixed).
    pub gpu_swing_c: f64,
    /// CPU mean-temperature swing over the rising window (C).
    pub cpu_swing_c: f64,
}

fn panel(run: &crate::pipeline::DynamicsRun, times: &[f64], kind: EdgeKind) -> ResponsePanel {
    let before = 60.0;
    let after = 240.0;
    let conf = 0.95;
    let s10 = |series: summit_analysis::series::Series| series.downsample_mean(10);
    let sup = |series: summit_analysis::series::Series| {
        superimpose(&s10(series), times, before, after, conf)
    };
    ResponsePanel {
        kind,
        snapshot_count: times.len(),
        power: sup(run.power_series()),
        pue: sup(run.pue_series()),
        gpu_temp_mean: sup(run.gpu_temp_mean_series()),
        gpu_temp_max: sup(run.gpu_temp_max_series()),
        cpu_temp_mean: sup(run.cpu_temp_mean_series()),
        mtw_return: sup(run.mtw_return_series()),
        mtw_supply: sup(run.mtw_supply_series()),
        cooling_tons: sup(run.tower_tons_series().add(&run.chiller_tons_series())),
        chiller_tons: sup(run.chiller_tons_series()),
    }
}

/// Runs the Figure 12 study against a private cache.
pub fn run(config: &Config) -> Fig12Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 12 study, acquiring the engine run through `cache`
/// (the same cached run Figure 11 uses for an identical burst config).
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig12Result {
    let _obs = summit_obs::span("summit_core_fig12");
    let (run, edges) = burst_run_with(cache, &config.burst);
    let rising_times: Vec<f64> = edges
        .iter()
        .filter(|e| e.kind == EdgeKind::Rising)
        .map(|e| e.start_time)
        .collect();
    let falling_times: Vec<f64> = edges
        .iter()
        .filter(|e| e.kind == EdgeKind::Falling)
        .map(|e| e.start_time)
        .collect();

    let rising = panel(&run, &rising_times, EdgeKind::Rising);
    let falling = panel(&run, &falling_times, EdgeKind::Falling);

    // Cooling half-response time after rising edges.
    let base = rising.cooling_tons.mean_at(-30.0);
    let final_level = rising.cooling_tons.mean_at(230.0);
    let half = base + 0.5 * (final_level - base);
    let mut half_t = f64::NAN;
    for (i, &t) in rising.cooling_tons.offsets_s.iter().enumerate() {
        if t >= 0.0 && rising.cooling_tons.mean[i] >= half && (final_level > base) {
            half_t = t;
            break;
        }
    }

    // Swing measured at the in-burst peak: the paper notes GPU maximums
    // keep rising after the edge while the burst holds.
    let gpu_swing = rising.gpu_temp_mean.peak_in(0.0, 235.0) - rising.gpu_temp_mean.mean_at(-30.0);
    let cpu_swing = rising.cpu_temp_mean.peak_in(0.0, 235.0) - rising.cpu_temp_mean.mean_at(-30.0);

    Fig12Result {
        rising,
        falling,
        cooling_half_response_s: half_t,
        gpu_swing_c: gpu_swing,
        cpu_swing_c: cpu_swing,
    }
}

/// Registry adapter for the Figure 12 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig12"
    }

    fn summary(&self) -> &'static str {
        "Thermal and cooling response around rising/falling power edges"
    }

    fn default_config(&self, scale: f64) -> Json {
        // Reuses Figure 11's burst schedule so a suite run shares one
        // cached engine sweep between the two studies.
        Json::obj([("burst", fig11::default_burst_json(scale))])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig12", config)?;
        let burst_json = config.get("burst").ok_or_else(|| {
            ExperimentError::invalid(cfg.experiment(), "missing `burst` config object")
        })?;
        let burst_cfg = Cfg::new("fig12", burst_json)?;
        let config = Config {
            burst: fig11::burst_config_from(&burst_cfg)?,
        };
        Ok(run_with(cache, &config).render())
    }
}

impl Fig12Result {
    /// Renders the thermal-response summary.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 12: thermal response around rising/falling edges",
            &[
                "observable",
                "rising: -30s",
                "rising: +180s",
                "falling: -30s",
                "falling: +180s",
            ],
        );
        let mut row = |name: &str, r: &Superposition, f: &Superposition, unit: &str| {
            t.row(vec![
                name.into(),
                format!("{:.2}{unit}", r.mean_at(-30.0)),
                format!("{:.2}{unit}", r.mean_at(180.0)),
                format!("{:.2}{unit}", f.mean_at(-30.0)),
                format!("{:.2}{unit}", f.mean_at(180.0)),
            ]);
        };
        row(
            "power (MW)",
            &scale(&self.rising.power, 1e-6),
            &scale(&self.falling.power, 1e-6),
            "",
        );
        row("PUE", &self.rising.pue, &self.falling.pue, "");
        row(
            "GPU temp mean (C)",
            &self.rising.gpu_temp_mean,
            &self.falling.gpu_temp_mean,
            "",
        );
        row(
            "GPU temp max (C)",
            &self.rising.gpu_temp_max,
            &self.falling.gpu_temp_max,
            "",
        );
        row(
            "CPU temp mean (C)",
            &self.rising.cpu_temp_mean,
            &self.falling.cpu_temp_mean,
            "",
        );
        row(
            "MTW return (C)",
            &self.rising.mtw_return,
            &self.falling.mtw_return,
            "",
        );
        row(
            "cooling (tons)",
            &self.rising.cooling_tons,
            &self.falling.cooling_tons,
            "",
        );
        row(
            "chiller (tons)",
            &self.rising.chiller_tons,
            &self.falling.chiller_tons,
            "",
        );
        let mut s = t.render();
        s.push_str(&format!(
            "\nsnapshots: {} rising, {} falling\n\
             cooling half-response after rising edge: {:.0} s (paper: ~1 minute)\n\
             GPU mean-temp swing {:.2} C vs CPU {:.2} C (paper: GPUs tight, CPUs fixed)\n",
            self.rising.snapshot_count,
            self.falling.snapshot_count,
            self.cooling_half_response_s,
            self.gpu_swing_c,
            self.cpu_swing_c
        ));
        s
    }
}

fn scale(sp: &Superposition, k: f64) -> Superposition {
    Superposition {
        offsets_s: sp.offsets_s.clone(),
        mean: sp.mean.iter().map(|v| v * k).collect(),
        ci_lo: sp.ci_lo.iter().map(|v| v * k).collect(),
        ci_hi: sp.ci_hi.iter().map(|v| v * k).collect(),
        support: sp.support.clone(),
        snapshot_count: sp.snapshot_count,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig12Result {
        run(&Config {
            burst: BurstConfig {
                cabinets: 24,
                amplitudes_mw: vec![0.3, 0.55],
                repeats: 2,
                burst_duration_s: 150.0,
                spacing_s: 480.0,
            },
        })
    }

    #[test]
    fn gpu_responds_cpu_stays_fixed() {
        let r = result();
        assert!(
            r.gpu_swing_c > 2.0,
            "GPU mean temp must follow the power envelope, swing {}",
            r.gpu_swing_c
        );
        assert!(
            r.gpu_swing_c > 2.0 * r.cpu_swing_c.abs(),
            "paper: CPU temps comparatively fixed (gpu {} vs cpu {})",
            r.gpu_swing_c,
            r.cpu_swing_c
        );
    }

    #[test]
    fn cooling_lags_about_a_minute() {
        let r = result();
        assert!(
            r.cooling_half_response_s.is_finite(),
            "cooling must respond after rising edges"
        );
        assert!(
            (20.0..240.0).contains(&r.cooling_half_response_s),
            "half response {} s should be near the paper's ~1 minute",
            r.cooling_half_response_s
        );
    }

    #[test]
    fn mtw_return_rises_with_load() {
        let r = result();
        let rise = r.rising.mtw_return.mean_at(200.0) - r.rising.mtw_return.mean_at(-30.0);
        assert!(
            rise > 0.0,
            "return water must warm after a rising edge: {rise}"
        );
    }

    #[test]
    fn falling_attenuation_slower_than_rise() {
        let r = result();
        // Progress of cooling tonnage 120 s after the edge, normalized by
        // the eventual change, rising vs falling.
        let prog = |p: &Superposition| {
            let a = p.mean_at(-30.0);
            let b = p.mean_at(230.0);
            if (b - a).abs() < 1e-9 {
                return f64::NAN;
            }
            (p.mean_at(120.0) - a) / (b - a)
        };
        let up = prog(&r.rising.cooling_tons);
        let down = prog(&r.falling.cooling_tons);
        if up.is_finite() && down.is_finite() {
            assert!(
                up >= down - 0.1,
                "staging up ({up}) should not lag destaging ({down})"
            );
        }
    }

    #[test]
    fn both_edge_kinds_captured() {
        let r = result();
        assert!(r.rising.snapshot_count >= 2);
        assert!(r.falling.snapshot_count >= 2);
    }
}
