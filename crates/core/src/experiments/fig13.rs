//! Figure 13: GPU failure co-occurrence — Pearson correlation between
//! per-node count vectors of every failure-type pair, Bonferroni-corrected
//! at 0.05.
//!
//! Paper anchors: expected co-occurrence between double-bit errors,
//! preemptive cleanups and page-retirement events; an extremely strong
//! correlation between internal micro-controller warnings and driver
//! error handling exceptions (soft errors as early diagnostics).

use crate::cache::ScenarioCache;
use crate::experiments::registry::{Cfg, Experiment, ExperimentError};
use crate::experiments::table4;
use crate::json::Json;
use crate::pipeline::FailureScenario;
use crate::report::Table;
use serde::{Deserialize, Serialize};
use summit_analysis::correlation::CorrelationMatrix;
use summit_sim::failures::node_count_matrix;
use summit_sim::spec::TOTAL_NODES;
use summit_telemetry::records::XidErrorKind;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Observation span (weeks).
    pub weeks: f64,
    /// Significance level before Bonferroni correction.
    pub alpha: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weeks: 52.3,
            alpha: 0.05,
            seed: 2020,
        }
    }
}

/// One significant pair.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignificantPair {
    /// First kind of the pair.
    pub a: XidErrorKind,
    /// Second kind of the pair.
    pub b: XidErrorKind,
    /// Pearson correlation coefficient.
    pub r: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig13Result {
    /// Significant correlation pairs.
    pub pairs: Vec<SignificantPair>,
    /// Bonferroni-corrected significance threshold.
    pub corrected_alpha: f64,
    /// Total pairs tested.
    pub total_pairs: usize,
}

/// Runs the Figure 13 analysis against a private cache.
pub fn run(config: &Config) -> Fig13Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 13 analysis, acquiring the failure log through
/// `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig13Result {
    let _obs = summit_obs::span("summit_core_fig13");
    let art = cache.failures(&FailureScenario {
        weeks: config.weeks,
        seed: config.seed,
    });
    let matrix = node_count_matrix(&art.events, TOTAL_NODES);
    let corr = CorrelationMatrix::compute(&matrix, config.alpha);
    let pairs = corr
        .significant_pairs()
        .into_iter()
        .map(|p| SignificantPair {
            a: XidErrorKind::ALL[p.i],
            b: XidErrorKind::ALL[p.j],
            r: p.r,
            p_value: p.p_value,
        })
        .collect();
    Fig13Result {
        pairs,
        corrected_alpha: corr.corrected_alpha,
        total_pairs: corr.pairs.len(),
    }
}

/// Registry adapter for the Figure 13 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig13"
    }

    fn summary(&self) -> &'static str {
        "Failure co-occurrence correlations (Bonferroni-corrected)"
    }

    fn default_config(&self, scale: f64) -> Json {
        Json::obj([
            ("weeks", Json::Num(table4::default_weeks(scale))),
            ("alpha", Json::Num(0.05)),
            ("seed", Json::Num(2020.0)),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig13", config)?;
        let scenario = table4::scenario_from(&cfg)?;
        let alpha = cfg.f64("alpha")?;
        if !(alpha.is_finite() && alpha > 0.0 && alpha < 1.0) {
            return Err(ExperimentError::invalid(
                "fig13",
                format!("alpha must be a significance level in (0, 1), got {alpha}"),
            ));
        }
        let config = Config {
            weeks: scenario.weeks,
            alpha,
            seed: scenario.seed,
        };
        Ok(run_with(cache, &config).render())
    }
}

impl Fig13Result {
    /// Finds a specific pair's r, if significant.
    pub fn r_of(&self, a: XidErrorKind, b: XidErrorKind) -> Option<f64> {
        self.pairs
            .iter()
            .find(|p| (p.a == a && p.b == b) || (p.a == b && p.b == a))
            .map(|p| p.r)
    }

    /// Renders the significant-pair list (the non-empty matrix cells).
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 13: significant failure co-occurrences (Bonferroni 0.05)",
            &["pair", "r", "p"],
        );
        for p in &self.pairs {
            t.row(vec![
                format!("{} x {}", p.a.name(), p.b.name()),
                format!("{:.2}", p.r),
                format!("{:.1e}", p.p_value),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\n{} of {} pairs significant at corrected alpha {:.1e}\n\
             paper: uC warning x driver error extremely strong; double-bit x preemptive \
             cleanup x page retirement cluster\n",
            self.pairs.len(),
            self.total_pairs,
            self.corrected_alpha
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use XidErrorKind::*;

    fn result() -> Fig13Result {
        run(&Config {
            weeks: 16.0,
            alpha: 0.05,
            seed: 11,
        })
    }

    #[test]
    fn uc_warning_driver_error_strongest() {
        let r = result();
        let v = r
            .r_of(InternalMicrocontrollerWarning, DriverErrorHandlingException)
            .expect("pair must be significant");
        assert!(v > 0.8, "paper: extremely strong correlation, got {v}");
    }

    #[test]
    fn memory_cluster_significant() {
        let r = result();
        assert!(
            r.r_of(DoubleBitError, PageRetirementEvent).unwrap_or(0.0) > 0.3,
            "double-bit x page-retirement must co-occur"
        );
        assert!(
            r.r_of(DoubleBitError, PreemptiveCleanup).unwrap_or(0.0) > 0.3,
            "double-bit x preemptive-cleanup must co-occur"
        );
    }

    #[test]
    fn bonferroni_applied() {
        let r = result();
        assert_eq!(r.total_pairs, 16 * 15 / 2);
        assert!((r.corrected_alpha - 0.05 / r.total_pairs as f64).abs() < 1e-12);
        for p in &r.pairs {
            assert!(p.p_value <= r.corrected_alpha);
        }
    }

    #[test]
    fn unrelated_pairs_absent() {
        let r = result();
        // Page faults spread everywhere; driver errors on one defect node.
        if let Some(v) = r.r_of(MemoryPageFault, DriverErrorHandlingException) {
            assert!(v.abs() < 0.5, "spurious correlation {v}");
        }
    }
}
