//! Figure 5: Summit power and energy trends over the year 2020.
//!
//! The paper's anchors: average power between 5 and 6 MW with constant
//! small extremes touching idle (2.5 MW) and peak (13 MW); average PUE
//! 1.11; summer average 1.22 (chilled water trimming); a ~1.3 spike in
//! early February when cooling-tower maintenance forced 100 % chilled
//! water; chilled water needed only ~20 % of the year.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{
    clamp_scale, ensure_population_scale, Cfg, Experiment, ExperimentError,
};
use crate::json::Json;
use crate::pipeline::PopulationScenario;
use crate::report::{sparkline, Table};
use serde::{Deserialize, Serialize};
use summit_analysis::pue::average_pue;
use summit_analysis::series::Series;
use summit_analysis::stats::BoxStats;
use summit_sim::facility::{Facility, FacilityConfig};
use summit_sim::spec;
use summit_sim::weather::Weather;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Fraction of the paper's 840k jobs to draw.
    pub population_scale: f64,
    /// Facility simulation step (s).
    pub dt_s: f64,
    /// February cooling-tower maintenance window (day-of-year range).
    pub maintenance_days: Option<(f64, f64)>,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            population_scale: 1.0,
            dt_s: 600.0,
            maintenance_days: Some((34.0, 41.0)),
        }
    }
}

/// One weekly summary row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WeekRow {
    /// Week index (0-based).
    pub week: usize,
    /// Power distribution statistics.
    pub power: BoxStats,
    /// Weekly maximum power (W).
    pub week_max_power_w: f64,
    /// PUE distribution statistics.
    pub pue: BoxStats,
    /// Fraction of the week the chillers carried any load.
    pub chiller_active_fraction: f64,
    /// Mean wet-bulb temperature (C).
    pub mean_wet_bulb_c: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig05Result {
    /// Observation span in weeks.
    pub weeks: Vec<WeekRow>,
    /// Energy-weighted annual PUE.
    pub annual_avg_pue: f64,
    /// Energy-weighted summer PUE.
    pub summer_avg_pue: f64,
    /// Peak PUE during the maintenance window.
    pub maintenance_peak_pue: f64,
    /// Fraction of the year with meaningful chiller duty.
    pub chiller_year_fraction: f64,
    /// Minimum power (W).
    pub min_power_w: f64,
    /// Maximum power (W).
    pub max_power_w: f64,
    /// Mean power (W).
    pub mean_power_w: f64,
    /// Total IT energy for the year (J).
    pub it_energy_j: f64,
}

/// Runs the yearly-trend experiment against a private cache.
pub fn run(config: &Config) -> Fig05Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the yearly-trend experiment, acquiring the population through
/// `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig05Result {
    let _obs = summit_obs::span("summit_core_fig05");
    let pop = cache.population(&PopulationScenario::paper_year(config.population_scale));
    let rows = &pop.rows;
    // At full scale (the default; ~5 s of compute) the sweep lands in the
    // paper's 5-6 MW band directly. Sub-scaled test populations inflate
    // their above-idle contribution to stay in-band.
    let sweep = crate::pipeline::cluster_power_sweep(rows, 0.0, spec::YEAR_S, config.dt_s);
    let inflate = 1.0 / config.population_scale;
    let idle = spec::SYSTEM_IDLE_POWER_W;
    let cap = spec::TOTAL_NODES as f64 * spec::NODE_MAX_POWER_W;
    let it_values: Vec<f64> = sweep
        .values()
        .iter()
        .map(|&v| (idle + (v - idle) * inflate).min(cap))
        .collect();
    let it = Series::new(0.0, config.dt_s, it_values);

    // Facility loop over the year.
    let weather = Weather::oak_ridge(2020);
    let maintenance = config
        .maintenance_days
        .map(|(a, b)| (a * 86_400.0, b * 86_400.0));
    let fac_cfg = FacilityConfig {
        maintenance,
        ..Default::default()
    };
    let infra = 0.6e6;
    let mut facility = Facility::new(fac_cfg, it.values()[0] + infra);
    let mut facility_series = Vec::with_capacity(it.len());
    let mut chiller_series = Vec::with_capacity(it.len());
    let mut wet_bulb_series = Vec::with_capacity(it.len());
    for (i, &p) in it.values().iter().enumerate() {
        let t = i as f64 * config.dt_s;
        let wb = weather.wet_bulb_c(t);
        let rec = facility.step(t, p + infra, wb, config.dt_s);
        facility_series.push(rec.facility_power_w);
        chiller_series.push(rec.chiller_tons);
        wet_bulb_series.push(wb);
    }
    let it_total = Series::new(
        0.0,
        config.dt_s,
        it.values().iter().map(|v| v + infra).collect(),
    );
    let facility_s = Series::new(0.0, config.dt_s, facility_series);

    // Weekly summaries.
    let steps_per_week = (7.0 * 86_400.0 / config.dt_s) as usize;
    let n_weeks = it.len().div_ceil(steps_per_week);
    let mut weeks = Vec::with_capacity(n_weeks);
    for w in 0..n_weeks {
        let a = w * steps_per_week;
        let b = ((w + 1) * steps_per_week).min(it.len());
        let p_slice = &it_total.values()[a..b];
        let f_slice = &facility_s.values()[a..b];
        let pues: Vec<f64> = f_slice
            .iter()
            .zip(p_slice)
            .map(|(&f, &p)| summit_analysis::pue::pue(f, p))
            .collect();
        let chill = &chiller_series[a..b];
        let active = chill.iter().filter(|&&c| c > 25.0).count() as f64 / chill.len() as f64;
        let (Some(power), Some(pue)) = (BoxStats::compute(p_slice), BoxStats::compute(&pues))
        else {
            continue;
        };
        weeks.push(WeekRow {
            week: w,
            power,
            week_max_power_w: summit_analysis::stats::nanmax(p_slice),
            pue,
            chiller_active_fraction: active,
            mean_wet_bulb_c: summit_analysis::stats::nanmean(&wet_bulb_series[a..b]),
        });
    }

    // Seasonal aggregates.
    let annual_avg_pue = average_pue(&facility_s, &it_total);
    let summer_idx: Vec<usize> = (0..it.len())
        .filter(|&i| Weather::is_summer(i as f64 * config.dt_s))
        .collect();
    let summer_fac: Vec<f64> = summer_idx.iter().map(|&i| facility_s.values()[i]).collect();
    let summer_it: Vec<f64> = summer_idx.iter().map(|&i| it_total.values()[i]).collect();
    let summer_avg_pue = summer_fac.iter().sum::<f64>() / summer_it.iter().sum::<f64>();
    let maintenance_peak_pue = match maintenance {
        Some((a, b)) => {
            let idx_a = (a / config.dt_s) as usize;
            let idx_b = ((b / config.dt_s) as usize).min(it.len());
            (idx_a..idx_b)
                .map(|i| facility_s.values()[i] / it_total.values()[i])
                .fold(f64::NEG_INFINITY, f64::max)
        }
        None => f64::NAN,
    };
    let chiller_year_fraction =
        chiller_series.iter().filter(|&&c| c > 25.0).count() as f64 / chiller_series.len() as f64;

    Fig05Result {
        weeks,
        annual_avg_pue,
        summer_avg_pue,
        maintenance_peak_pue,
        chiller_year_fraction,
        min_power_w: summit_analysis::stats::nanmin(it_total.values()),
        max_power_w: summit_analysis::stats::nanmax(it_total.values()),
        mean_power_w: summit_analysis::stats::nanmean(it_total.values()),
        it_energy_j: summit_analysis::pue::integrate_energy(&it_total).energy_j,
    }
}

/// Registry adapter for the Figure 5 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig05"
    }

    fn summary(&self) -> &'static str {
        "Yearly Summit power/PUE trend with chiller and maintenance anchors"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([
            ("population_scale", Json::Num(s.max(0.002))),
            ("dt_s", Json::Num(if s < 0.5 { 7200.0 } else { 600.0 })),
            (
                "maintenance_days",
                Json::Arr(vec![Json::from(34.0), Json::from(41.0)]),
            ),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig05", config)?;
        let config = Config {
            population_scale: cfg.f64("population_scale")?,
            dt_s: cfg.f64("dt_s")?,
            maintenance_days: cfg.opt_f64_pair("maintenance_days")?,
        };
        ensure_population_scale("fig05", config.population_scale)?;
        if !(config.dt_s.is_finite() && config.dt_s > 0.0) {
            return Err(ExperimentError::invalid(
                "fig05",
                format!("dt_s must be a positive step, got {}", config.dt_s),
            ));
        }
        Ok(run_with(cache, &config).render())
    }
}

impl Fig05Result {
    /// Renders the weekly trend plus annual anchors.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 5: Summit power and PUE trend (weekly, year 2020)",
            &[
                "week",
                "P med (MW)",
                "P max (MW)",
                "PUE med",
                "chiller",
                "wet-bulb C",
            ],
        );
        for w in &self.weeks {
            t.row(vec![
                w.week.to_string(),
                format!("{:.2}", w.power.median / 1e6),
                format!("{:.2}", w.week_max_power_w / 1e6),
                format!("{:.3}", w.pue.median),
                format!("{:.0}%", w.chiller_active_fraction * 100.0),
                format!("{:.1}", w.mean_wet_bulb_c),
            ]);
        }
        let mut s = t.render();
        let medians: Vec<f64> = self.weeks.iter().map(|w| w.pue.median).collect();
        s.push_str(&format!("PUE trend:   {}\n", sparkline(&medians)));
        let powers: Vec<f64> = self.weeks.iter().map(|w| w.power.median).collect();
        s.push_str(&format!("power trend: {}\n", sparkline(&powers)));
        s.push_str(&format!(
            "\nannual: mean power {:.2} MW (range {:.2}-{:.2}), avg PUE {:.3}, summer PUE {:.3}, \
             maintenance peak PUE {:.3}, chiller time {:.0}%, IT energy {:.1} GWh\n\
             paper:  mean 5-6 MW (idle 2.5, peak 13), avg PUE 1.11, summer 1.22, Feb ~1.3, \
             chillers ~20% of year\n",
            self.mean_power_w / 1e6,
            self.min_power_w / 1e6,
            self.max_power_w / 1e6,
            self.annual_avg_pue,
            self.summer_avg_pue,
            self.maintenance_peak_pue,
            self.chiller_year_fraction * 100.0,
            self.it_energy_j / 3.6e12,
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig05Result {
        run(&Config {
            population_scale: 0.005,
            dt_s: 3600.0,
            maintenance_days: Some((34.0, 41.0)),
        })
    }

    #[test]
    fn annual_pue_near_paper() {
        let r = result();
        assert!(
            (1.06..1.17).contains(&r.annual_avg_pue),
            "annual PUE {} should be near 1.11",
            r.annual_avg_pue
        );
        assert!(
            r.summer_avg_pue > r.annual_avg_pue + 0.02,
            "summer PUE {} must exceed annual {}",
            r.summer_avg_pue,
            r.annual_avg_pue
        );
        assert!(
            (1.15..1.35).contains(&r.summer_avg_pue),
            "summer PUE {} near 1.22",
            r.summer_avg_pue
        );
    }

    #[test]
    fn maintenance_spike_visible() {
        let r = result();
        assert!(
            r.maintenance_peak_pue > 1.22,
            "Feb maintenance PUE {} should approach 1.3",
            r.maintenance_peak_pue
        );
    }

    #[test]
    fn chiller_fraction_near_20_percent() {
        let r = result();
        assert!(
            (0.10..0.40).contains(&r.chiller_year_fraction),
            "chiller fraction {}",
            r.chiller_year_fraction
        );
    }

    #[test]
    fn power_band_matches_paper() {
        let r = result();
        assert!(
            (3.0e6..8.0e6).contains(&r.mean_power_w),
            "mean power {} should sit in the paper's 5-6 MW band",
            r.mean_power_w
        );
        assert!(r.min_power_w >= 2.4e6, "idle floor {}", r.min_power_w);
        assert!(r.max_power_w > 7.0e6, "peaks {}", r.max_power_w);
        assert_eq!(r.weeks.len(), 53);
    }
}
