//! One module per table/figure of the paper's evaluation, plus the
//! unified registry that drives them all.
//!
//! Each module exposes a `Config` (with a `scale`/size knob so the same
//! experiment runs in CI seconds or at bench fidelity), a `run` function
//! returning a typed result, and a `render` on the result that prints the
//! same rows/series the paper reports, annotated with the paper's own
//! numbers for side-by-side comparison (recorded in EXPERIMENTS.md).
//!
//! Each module also registers a `Study` adapter in [`registry`]; the
//! `experiments` driver binary (`cargo run -p summit-bench --bin
//! experiments`) lists and runs the whole suite through one shared
//! [`crate::cache::ScenarioCache`]. Cache-heavy modules expose a
//! `run_with(cache, config)` variant; their plain `run(config)` keeps
//! the historical behavior by running against a private cache.

pub mod registry;

pub use registry::{Experiment, ExperimentError, REGISTRY};

pub mod early_warning;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod power_aware;
pub mod table2;
pub mod table4;
pub mod tables;
pub mod titan_contrast;
