//! Figure 10: power-consumption dynamics — edge counts, edge durations,
//! and FFT frequency/amplitude distributions per scheduling class.
//!
//! Paper anchors: 96.9 % of jobs experience no rising/falling edge
//! (868 W/node per 10 s interval); class 4 shows the most, shortest
//! edges; class-1 edges are sustained (60 % under 25 min but 20 % over
//! 200 min); the dominant differenced-FFT frequency clusters at 0.005 Hz
//! (200 s) across classes; amplitudes skew low with stair-stepping from
//! popular node counts.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{
    clamp_scale, ensure_population_scale, Cfg, Experiment, ExperimentError,
};
use crate::json::Json;
use crate::pipeline::PopulationScenario;
use crate::report::{pct, Table};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use summit_analysis::cdf::Ecdf;
use summit_analysis::edges::{detect_edges_for_job, Edge};
use summit_analysis::fft::dominant_component;
use summit_sim::jobstats::job_power_series;
use summit_sim::power::PowerModel;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Fraction of the paper's 840k jobs to replay as series.
    pub population_scale: f64,
    /// Series resolution (s) — the paper works on 10 s data.
    pub dt_s: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            population_scale: 0.01,
            dt_s: 10.0,
        }
    }
}

/// Per-class dynamics summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassDynamics {
    /// Scheduling class 1..=5 (paper Table 3).
    pub class: u8,
    /// Number of jobs in this group.
    pub jobs: usize,
    /// Jobs with at least one detected edge.
    pub jobs_with_edges: usize,
    /// Edge-count CDF over jobs that have edges.
    pub edges_p50: f64,
    /// 95th-percentile edge count.
    pub edges_p95: f64,
    /// Edge-duration CDF (minutes) over completed edges.
    pub duration_p50_min: f64,
    /// 95th-percentile edge duration (minutes).
    pub duration_p95_min: f64,
    /// Dominant FFT frequency stats over jobs with edges (Hz).
    pub freq_p50_hz: f64,
    /// Fraction of dominant frequencies within [1/300, 1/150] Hz — the
    /// 200 s mode.
    pub freq_near_200s: f64,
    /// Dominant amplitude median (W).
    pub amp_p50_w: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig10Result {
    /// Per-class results.
    pub classes: Vec<ClassDynamics>,
    /// Overall fraction of jobs with no edges (paper: 96.9 %).
    pub edge_free_fraction: f64,
}

struct JobDyn {
    class: u8,
    edges: Vec<Edge>,
    dominant_freq: Option<f64>,
    dominant_amp: Option<f64>,
}

/// Runs the Figure 10 study.
pub fn run(config: &Config) -> Fig10Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 10 study, acquiring the population through `cache`.
/// The cached rows carry their jobs and power model, so the replay uses
/// the exact job stream `PopulationScenario::generate` would produce.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig10Result {
    let _obs = summit_obs::span("summit_core_fig10");
    let pop = cache.population(&PopulationScenario::paper_year(config.population_scale));
    let pm: PowerModel = pop.power_model;

    let per_job: Vec<JobDyn> = pop
        .rows
        .par_iter()
        .map(|row| {
            let job = &row.job;
            let series = job_power_series(job, &pm, config.dt_s);
            let edges = detect_edges_for_job(&series, job.record.node_count as usize);
            let (freq, amp) = if edges.is_empty() {
                (None, None)
            } else {
                // The paper differences the auto-correlated series before
                // the FFT and keeps the maximum amplitude component.
                match dominant_component(series.diff().values(), 1.0 / config.dt_s) {
                    Some(d) => (Some(d.frequency_hz), Some(d.amplitude)),
                    None => (None, None),
                }
            };
            JobDyn {
                class: job.class(),
                edges,
                dominant_freq: freq,
                dominant_amp: amp,
            }
        })
        .collect();

    let edge_free =
        per_job.iter().filter(|j| j.edges.is_empty()).count() as f64 / per_job.len().max(1) as f64;

    let mut classes = Vec::new();
    for class in 1..=5u8 {
        let sel: Vec<&JobDyn> = per_job.iter().filter(|j| j.class == class).collect();
        if sel.is_empty() {
            continue;
        }
        let with_edges: Vec<&&JobDyn> = sel.iter().filter(|j| !j.edges.is_empty()).collect();
        let counts: Vec<f64> = with_edges.iter().map(|j| j.edges.len() as f64).collect();
        let durations: Vec<f64> = with_edges
            .iter()
            .flat_map(|j| j.edges.iter().filter_map(|e| e.duration_s))
            .map(|d| d / 60.0)
            .collect();
        let freqs: Vec<f64> = with_edges.iter().filter_map(|j| j.dominant_freq).collect();
        let amps: Vec<f64> = with_edges.iter().filter_map(|j| j.dominant_amp).collect();
        let p = |v: &[f64], q: f64| Ecdf::new(v).map_or(f64::NAN, |e| e.percentile(q));
        let near_200 = if freqs.is_empty() {
            f64::NAN
        } else {
            freqs
                .iter()
                .filter(|&&f| (1.0 / 300.0..=1.0 / 150.0).contains(&f))
                .count() as f64
                / freqs.len() as f64
        };
        classes.push(ClassDynamics {
            class,
            jobs: sel.len(),
            jobs_with_edges: with_edges.len(),
            edges_p50: p(&counts, 0.5),
            edges_p95: p(&counts, 0.95),
            duration_p50_min: p(&durations, 0.5),
            duration_p95_min: p(&durations, 0.95),
            freq_p50_hz: p(&freqs, 0.5),
            freq_near_200s: near_200,
            amp_p50_w: p(&amps, 0.5),
        });
    }

    Fig10Result {
        classes,
        edge_free_fraction: edge_free,
    }
}

/// Registry adapter for the Figure 10 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig10"
    }

    fn summary(&self) -> &'static str {
        "Intra-job power dynamics: edges, durations, dominant frequencies"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([
            ("population_scale", Json::Num((0.03 * s).clamp(0.001, 0.03))),
            ("dt_s", Json::Num(10.0)),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig10", config)?;
        let config = Config {
            population_scale: cfg.f64("population_scale")?,
            dt_s: cfg.f64("dt_s")?,
        };
        ensure_population_scale("fig10", config.population_scale)?;
        if !(config.dt_s.is_finite() && config.dt_s > 0.0) {
            return Err(ExperimentError::invalid(
                "fig10",
                format!("dt_s must be a positive step, got {}", config.dt_s),
            ));
        }
        Ok(run_with(cache, &config).render())
    }
}

impl Fig10Result {
    /// Renders the per-class dynamics table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 10: power dynamics per class",
            &[
                "class",
                "jobs",
                "w/ edges",
                "edges p50",
                "edges p95",
                "dur p50 (min)",
                "dur p95 (min)",
                "freq p50 (Hz)",
                "near 200 s",
            ],
        );
        for c in &self.classes {
            t.row(vec![
                c.class.to_string(),
                c.jobs.to_string(),
                c.jobs_with_edges.to_string(),
                format!("{:.0}", c.edges_p50),
                format!("{:.0}", c.edges_p95),
                format!("{:.1}", c.duration_p50_min),
                format!("{:.1}", c.duration_p95_min),
                format!("{:.4}", c.freq_p50_hz),
                pct(c.freq_near_200s),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\nedge-free jobs: {} (paper: 96.9%)\n\
             paper: class 4 most/shortest edges; class 1 sustained edges; dominant \
             frequency 0.005 Hz (200 s) across classes\n",
            pct(self.edge_free_fraction)
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig10Result {
        run(&Config {
            population_scale: 0.003,
            dt_s: 10.0,
        })
    }

    #[test]
    fn most_jobs_edge_free() {
        let r = result();
        assert!(
            (0.88..0.995).contains(&r.edge_free_fraction),
            "paper: 96.9 % edge-free, got {}",
            r.edge_free_fraction
        );
    }

    #[test]
    fn some_edges_exist() {
        let r = result();
        let total: usize = r.classes.iter().map(|c| c.jobs_with_edges).sum();
        assert!(total > 0, "the population must produce some edges");
    }

    #[test]
    fn dominant_frequency_near_200s_where_defined() {
        let r = result();
        // Pool classes with enough edge jobs for a stable statistic.
        for c in r.classes.iter().filter(|c| c.jobs_with_edges >= 10) {
            assert!(
                c.freq_near_200s > 0.2 || c.freq_p50_hz < 0.01,
                "class {}: dominant frequencies should cluster slow/200 s, got p50 {} near200 {}",
                c.class,
                c.freq_p50_hz,
                c.freq_near_200s
            );
        }
    }

    #[test]
    fn class4_edges_short() {
        let r = result();
        let c4 = r.classes.iter().find(|c| c.class == 4);
        let c1 = r.classes.iter().find(|c| c.class == 1);
        if let (Some(c4), Some(c1)) = (c4, c1) {
            if c4.jobs_with_edges >= 5 && c1.jobs_with_edges >= 3 {
                assert!(
                    c4.duration_p50_min <= c1.duration_p95_min,
                    "class-4 edges should be short relative to class-1 tails"
                );
            }
        }
    }
}
