//! Figure 11: superimposed time-series snapshots of rising power edges
//! per 1 MW amplitude class, with the PUE response.
//!
//! Paper anchors: edges from 1 to 7 MW detected over the summer; power
//! and PUE are "noticeably symmetric and inversely proportional"; optimal
//! PUE coincides with the largest swings; transitions complete within
//! tens of seconds; behaviour is similar across magnitudes.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{clamp_scale, Cfg, Experiment, ExperimentError};
use crate::json::Json;
use crate::pipeline::{run_burst_schedule, summer_t0, Burst, DynamicsRun};
use crate::report::{pct, watts, Table};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use summit_analysis::correlation::pearson;
use summit_analysis::edges::{detect_edges, Edge, EdgeKind};
use summit_analysis::snapshot::{superimpose, Superposition};
use summit_sim::engine::EngineConfig;

/// Experiment configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Config {
    /// Cabinets simulated (257 = full floor, needed for 7 MW swings).
    pub cabinets: usize,
    /// Target edge amplitudes (MW).
    pub amplitudes_mw: Vec<f64>,
    /// Snapshots (bursts) per amplitude class.
    pub repeats: usize,
    /// Burst plateau duration (s).
    pub burst_duration_s: f64,
    /// Spacing between burst starts (s).
    pub spacing_s: f64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            cabinets: 257,
            amplitudes_mw: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0],
            repeats: 3,
            burst_duration_s: 180.0,
            spacing_s: 600.0,
        }
    }
}

/// Effective above-idle power a burst node contributes (W) — used to size
/// bursts for a target amplitude.
pub const BURST_W_PER_NODE: f64 = 1500.0;

/// Builds the burst schedule and runs the engine against a private
/// cache; shared with Figure 12.
pub fn burst_run(config: &Config) -> (DynamicsRun, Vec<Edge>) {
    let (run, edges) = burst_run_with(&ScenarioCache::new(), config);
    ((*run).clone(), edges)
}

/// Builds the burst schedule and acquires the engine run through
/// `cache`, so Figures 11 and 12 with the same burst config share one
/// engine sweep. Edge detection is cheap and re-derived from the cached
/// run.
pub fn burst_run_with(cache: &ScenarioCache, config: &Config) -> (Arc<DynamicsRun>, Vec<Edge>) {
    let run = cache.dynamics(&format!("fig11 bursts {config:?}"), || engine_run(config));
    // Detect edges on the 10 s sensor power series, as the paper does.
    let power10 = run.power_series().downsample_mean(10);
    let min_mw = config
        .amplitudes_mw
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    let threshold = (0.45 * min_mw * 1e6).max(1e4);
    let edges = detect_edges(&power10, threshold);
    (run, edges)
}

/// The raw engine sweep behind [`burst_run`].
fn engine_run(config: &Config) -> DynamicsRun {
    let nodes_avail = (config.cabinets * 18) as u32;
    let mut bursts = Vec::new();
    let mut at = 120.0;
    for _ in 0..config.repeats {
        for &mw in &config.amplitudes_mw {
            let nodes = ((mw * 1e6 / BURST_W_PER_NODE) as u32).clamp(1, nodes_avail);
            bursts.push(Burst {
                at_s: at,
                nodes,
                duration_s: config.burst_duration_s,
                gpu_intensity: 0.95,
            });
            at += config.spacing_s;
        }
    }
    let duration = at + 300.0;
    let engine_cfg = if config.cabinets == 257 {
        EngineConfig {
            dt_s: 1.0,
            ..EngineConfig::default()
        }
    } else {
        EngineConfig::small(config.cabinets)
    };
    run_burst_schedule(engine_cfg, summer_t0(), duration, &bursts)
}

/// One amplitude class summary.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AmplitudeClass {
    /// Target amplitude (MW).
    pub amplitude_mw: f64,
    /// Rising-edge snapshots superimposed.
    pub snapshot_count: usize,
    /// Power superposition around the edges.
    pub power: Superposition,
    /// PUE superposition around the edges.
    pub pue: Superposition,
    /// Pearson correlation between the mean power and mean PUE envelopes
    /// (paper: strongly negative — inversely proportional).
    pub power_pue_r: f64,
    /// Power rise achieved within 60 s of the edge (W).
    pub rise_in_60s_w: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig11Result {
    /// Per-class results.
    pub classes: Vec<AmplitudeClass>,
    /// PUE at the highest load vs at the baseline (paper: best PUE at
    /// the largest swings).
    pub pue_at_peak: f64,
    /// PUE at the pre-edge baseline.
    pub pue_at_baseline: f64,
}

/// Runs the Figure 11 study against a private cache.
pub fn run(config: &Config) -> Fig11Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 11 study, acquiring the engine run through `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig11Result {
    let _obs = summit_obs::span("summit_core_fig11");
    let (run, edges) = burst_run_with(cache, config);
    let power10 = run.power_series().downsample_mean(10);
    let pue10 = run.pue_series().downsample_mean(10);

    let rising: Vec<&Edge> = edges
        .iter()
        .filter(|e| e.kind == EdgeKind::Rising)
        .collect();

    let mut classes = Vec::new();
    for &mw in &config.amplitudes_mw {
        // Edges whose amplitude is closest to this class.
        let in_class: Vec<f64> = rising
            .iter()
            .filter(|e| {
                let best = config
                    .amplitudes_mw
                    .iter()
                    .min_by(|a, b| {
                        (*a * 1e6 - e.amplitude())
                            .abs()
                            .total_cmp(&(*b * 1e6 - e.amplitude()).abs())
                    })
                    .copied()
                    .unwrap_or(mw);
                (best - mw).abs() < 1e-9
            })
            .map(|e| e.start_time)
            .collect();
        if in_class.is_empty() {
            continue;
        }
        let power = superimpose(&power10, &in_class, 60.0, 240.0, 0.95);
        let pue = superimpose(&pue10, &in_class, 60.0, 240.0, 0.95);
        let valid: Vec<(f64, f64)> = power
            .mean
            .iter()
            .zip(&pue.mean)
            .filter(|(p, q)| p.is_finite() && q.is_finite())
            .map(|(&p, &q)| (p, q))
            .collect();
        let r = pearson(
            &valid.iter().map(|v| v.0).collect::<Vec<_>>(),
            &valid.iter().map(|v| v.1).collect::<Vec<_>>(),
        );
        let rise = power.mean_at(60.0) - power.mean_at(-30.0);
        classes.push(AmplitudeClass {
            amplitude_mw: mw,
            snapshot_count: in_class.len(),
            power,
            pue,
            power_pue_r: r,
            rise_in_60s_w: rise,
        });
    }

    // PUE vs load anchors from the largest class.
    let (pue_at_peak, pue_at_baseline) = classes
        .last()
        .map(|c| (c.pue.mean_at(120.0), c.pue.mean_at(-40.0)))
        .unwrap_or((f64::NAN, f64::NAN));

    Fig11Result {
        classes,
        pue_at_peak,
        pue_at_baseline,
    }
}

/// The default burst schedule at `scale`, as JSON (shared with the
/// Figure 12 registry adapter so the two studies hit the same cached
/// engine run).
pub(crate) fn default_burst_json(scale: f64) -> Json {
    let s = clamp_scale(scale);
    if s < 0.5 {
        // 12 cabinets = 216 nodes, enough for ~0.3 MW swings in seconds.
        Json::obj([
            ("cabinets", Json::Num(((257.0 * s) as usize).max(12) as f64)),
            (
                "amplitudes_mw",
                Json::Arr(vec![Json::from(0.15), Json::from(0.3)]),
            ),
            ("repeats", Json::Num(2.0)),
            ("burst_duration_s", Json::Num(120.0)),
            ("spacing_s", Json::Num(420.0)),
        ])
    } else {
        let d = Config::default();
        Json::obj([
            ("cabinets", Json::from(d.cabinets)),
            (
                "amplitudes_mw",
                Json::Arr(d.amplitudes_mw.iter().map(|&m| Json::from(m)).collect()),
            ),
            ("repeats", Json::from(d.repeats)),
            ("burst_duration_s", Json::Num(d.burst_duration_s)),
            ("spacing_s", Json::Num(d.spacing_s)),
        ])
    }
}

/// Parses and validates a burst [`Config`] from a JSON config object
/// (shared with the Figure 12 registry adapter).
pub(crate) fn burst_config_from(cfg: &Cfg<'_>) -> Result<Config, ExperimentError> {
    let config = Config {
        cabinets: cfg.usize("cabinets")?,
        amplitudes_mw: cfg.f64_list("amplitudes_mw")?,
        repeats: cfg.usize("repeats")?,
        burst_duration_s: cfg.f64("burst_duration_s")?,
        spacing_s: cfg.f64("spacing_s")?,
    };
    let name = cfg.experiment();
    if config.cabinets == 0 || config.repeats == 0 {
        return Err(ExperimentError::invalid(
            name,
            "cabinets and repeats must be positive",
        ));
    }
    if config.amplitudes_mw.is_empty()
        || config
            .amplitudes_mw
            .iter()
            .any(|&m| !(m.is_finite() && m > 0.0))
    {
        return Err(ExperimentError::invalid(
            name,
            "amplitudes_mw must be a non-empty list of positive MW values",
        ));
    }
    for (key, v) in [
        ("burst_duration_s", config.burst_duration_s),
        ("spacing_s", config.spacing_s),
    ] {
        if !(v.is_finite() && v > 0.0) {
            return Err(ExperimentError::invalid(
                name,
                format!("`{key}` must be a positive duration, got {v}"),
            ));
        }
    }
    Ok(config)
}

/// Registry adapter for the Figure 11 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig11"
    }

    fn summary(&self) -> &'static str {
        "Superimposed rising power edges per amplitude class with PUE response"
    }

    fn default_config(&self, scale: f64) -> Json {
        default_burst_json(scale)
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig11", config)?;
        let config = burst_config_from(&cfg)?;
        Ok(run_with(cache, &config).render())
    }
}

impl Fig11Result {
    /// Renders the per-amplitude summary (the "NMW - count" panels).
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 11: rising-edge snapshots per amplitude class",
            &[
                "class",
                "snapshots",
                "rise in 60 s",
                "power-PUE r",
                "PUE dip",
            ],
        );
        for c in &self.classes {
            let dip = c.pue.mean_at(-40.0) - c.pue.mean_at(120.0);
            t.row(vec![
                format!("{:.0} MW", c.amplitude_mw),
                c.snapshot_count.to_string(),
                watts(c.rise_in_60s_w),
                format!("{:.3}", c.power_pue_r),
                format!("{:.3}", dip),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\nPUE at peak load {:.3} vs baseline {:.3} ({} better)\n\
             paper: PUE symmetric & inversely proportional to power; optimal PUE at the \
             largest (7 MW) swings; similar patterns across magnitudes\n",
            self.pue_at_peak,
            self.pue_at_baseline,
            pct((self.pue_at_baseline - self.pue_at_peak) / self.pue_at_baseline.max(1e-9)),
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> Fig11Result {
        run(&Config {
            cabinets: 24, // 432 nodes -> up to ~0.6 MW swings
            amplitudes_mw: vec![0.2, 0.4, 0.6],
            repeats: 2,
            burst_duration_s: 120.0,
            spacing_s: 420.0,
        })
    }

    #[test]
    fn detects_all_amplitude_classes() {
        let r = result();
        assert!(
            r.classes.len() >= 2,
            "expected at least two amplitude classes, got {}",
            r.classes.len()
        );
        for c in &r.classes {
            assert!(c.snapshot_count >= 1);
            assert!(c.rise_in_60s_w > 0.0, "power must rise after a rising edge");
        }
    }

    #[test]
    fn pue_inversely_proportional_to_power() {
        let r = result();
        for c in &r.classes {
            assert!(
                c.power_pue_r < -0.5,
                "amplitude {} MW: power-PUE correlation {} should be strongly negative",
                c.amplitude_mw,
                c.power_pue_r
            );
        }
        assert!(
            r.pue_at_peak < r.pue_at_baseline,
            "PUE at peak ({}) must beat baseline ({})",
            r.pue_at_peak,
            r.pue_at_baseline
        );
    }

    #[test]
    fn larger_amplitudes_rise_more() {
        let r = result();
        if r.classes.len() >= 2 {
            let first = r.classes.first().unwrap();
            let last = r.classes.last().unwrap();
            assert!(
                last.rise_in_60s_w > first.rise_in_60s_w,
                "bigger class should swing harder: {} vs {}",
                last.rise_in_60s_w,
                first.rise_in_60s_w
            );
        }
    }
}
