//! The unified experiment registry.
//!
//! Every study in this reproduction registers here as a first-class
//! [`Experiment`]: a named, self-describing unit that accepts a JSON
//! config (its scaled defaults merged with user overrides), pulls its
//! expensive inputs through a shared [`ScenarioCache`], and returns its
//! rendered report. The per-module typed APIs (`Config` in,
//! typed result out, `render()` on the result) remain the primary
//! programmatic surface; the trait is the type-erased layer that lets
//! one driver binary list, configure and run the whole suite — and lets
//! a full-suite run generate each population/engine/failure artifact
//! exactly once.
//!
//! Config validation is typed: invalid user configuration surfaces as
//! [`ExperimentError::InvalidConfig`], never as a panic.

use crate::cache::ScenarioCache;
use crate::json::Json;
use std::fmt;

/// A typed experiment failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExperimentError {
    /// The user-supplied configuration is invalid for this experiment.
    InvalidConfig(String),
    /// No registered experiment has the requested name.
    UnknownExperiment(String),
}

impl ExperimentError {
    /// Builds an [`ExperimentError::InvalidConfig`] tagged with the
    /// experiment name.
    pub fn invalid(experiment: &str, message: impl fmt::Display) -> Self {
        Self::InvalidConfig(format!("{experiment}: {message}"))
    }
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            Self::UnknownExperiment(name) => write!(
                f,
                "unknown experiment `{name}` (run with --list for the registry)"
            ),
        }
    }
}

impl std::error::Error for ExperimentError {}

/// A registered paper study: list it, configure it with JSON, run it
/// through the shared scenario cache, get its rendered report.
pub trait Experiment: Sync {
    /// Stable registry name (the experiment module's name).
    fn name(&self) -> &'static str;

    /// One-line description shown by `experiments --list`.
    fn summary(&self) -> &'static str;

    /// The study's default configuration at `scale` (fraction of paper
    /// fidelity in `(0, 1]`; 1.0 = paper scale), as a JSON object whose
    /// keys mirror the module's `Config` fields.
    fn default_config(&self, scale: f64) -> Json;

    /// Runs the study with a JSON config (normally
    /// [`Self::default_config`] merged with overrides), acquiring
    /// expensive inputs through `cache`, and returns the rendered
    /// report.
    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError>;
}

/// Every registered study, in paper order (tables and figures first,
/// then the related-work extension studies).
pub static REGISTRY: &[&dyn Experiment] = &[
    &super::tables::Study,
    &super::table2::Study,
    &super::fig04::Study,
    &super::fig05::Study,
    &super::fig06::Study,
    &super::fig07::Study,
    &super::fig08::Study,
    &super::fig09::Study,
    &super::fig10::Study,
    &super::fig11::Study,
    &super::fig12::Study,
    &super::table4::Study,
    &super::fig13::Study,
    &super::fig14::Study,
    &super::fig15::Study,
    &super::fig16::Study,
    &super::fig17::Study,
    &super::power_aware::Study,
    &super::early_warning::Study,
    &super::titan_contrast::Study,
];

/// Looks an experiment up by registry name.
pub fn find(name: &str) -> Option<&'static dyn Experiment> {
    REGISTRY.iter().find(|e| e.name() == name).copied()
}

/// Runs a registered experiment by name: the study's defaults at
/// `scale`, merged with `overrides` (if any), through `cache`.
pub fn run_by_name(
    cache: &ScenarioCache,
    name: &str,
    scale: f64,
    overrides: Option<&Json>,
) -> Result<String, ExperimentError> {
    let exp = find(name).ok_or_else(|| ExperimentError::UnknownExperiment(name.to_string()))?;
    let mut config = exp.default_config(scale);
    if let Some(over) = overrides {
        config.merge(over);
    }
    exp.run(cache, &config)
}

/// Clamps a fidelity scale into `(0, 1]`, treating non-finite input as
/// full fidelity.
pub fn clamp_scale(scale: f64) -> f64 {
    if scale.is_finite() {
        scale.clamp(1e-4, 1.0)
    } else {
        1.0
    }
}

/// Typed field access over a JSON config object; every failure carries
/// the experiment name and offending key.
pub(crate) struct Cfg<'a> {
    experiment: &'static str,
    json: &'a Json,
}

impl<'a> Cfg<'a> {
    /// Wraps a config, requiring a JSON object.
    pub fn new(experiment: &'static str, json: &'a Json) -> Result<Self, ExperimentError> {
        match json {
            Json::Obj(_) => Ok(Self { experiment, json }),
            other => Err(ExperimentError::invalid(
                experiment,
                format!("config must be a JSON object, got `{other}`"),
            )),
        }
    }

    /// The experiment name errors are tagged with.
    pub fn experiment(&self) -> &'static str {
        self.experiment
    }

    fn field(&self, key: &str) -> Result<&'a Json, ExperimentError> {
        self.json
            .get(key)
            .ok_or_else(|| ExperimentError::invalid(self.experiment, format!("missing `{key}`")))
    }

    fn bad(&self, key: &str, want: &str, got: &Json) -> ExperimentError {
        ExperimentError::invalid(
            self.experiment,
            format!("`{key}` must be {want}, got `{got}`"),
        )
    }

    /// A required number field (`null` reads as infinity).
    pub fn f64(&self, key: &str) -> Result<f64, ExperimentError> {
        let v = self.field(key)?;
        v.as_f64().ok_or_else(|| self.bad(key, "a number", v))
    }

    /// A required non-negative integer field.
    pub fn usize(&self, key: &str) -> Result<usize, ExperimentError> {
        let v = self.f64(key)?;
        if v.is_finite() && v >= 0.0 && v.fract() == 0.0 && v <= u32::MAX as f64 {
            Ok(v as usize)
        } else {
            Err(self.bad(key, "a non-negative integer", &Json::Num(v)))
        }
    }

    /// A required `u64` field.
    pub fn u64(&self, key: &str) -> Result<u64, ExperimentError> {
        self.usize(key).map(|v| v as u64)
    }

    /// A required `u8` field.
    pub fn u8(&self, key: &str) -> Result<u8, ExperimentError> {
        let v = self.usize(key)?;
        u8::try_from(v).map_err(|_| self.bad(key, "an integer in 0..=255", &Json::from(v)))
    }

    /// A required boolean field.
    pub fn bool(&self, key: &str) -> Result<bool, ExperimentError> {
        let v = self.field(key)?;
        v.as_bool().ok_or_else(|| self.bad(key, "a boolean", v))
    }

    /// A required list-of-numbers field; `null` items read as infinity
    /// (the "no cap" encoding — JSON has no infinity literal).
    pub fn f64_list(&self, key: &str) -> Result<Vec<f64>, ExperimentError> {
        let v = self.field(key)?;
        let items = v.as_arr().ok_or_else(|| self.bad(key, "an array", v))?;
        items
            .iter()
            .map(|item| {
                item.as_f64()
                    .ok_or_else(|| self.bad(key, "an array of numbers", v))
            })
            .collect()
    }

    /// An optional two-number field (`null` = absent).
    pub fn opt_f64_pair(&self, key: &str) -> Result<Option<(f64, f64)>, ExperimentError> {
        match self.field(key)? {
            Json::Null => Ok(None),
            v => match v.as_arr() {
                Some([a, b]) => match (a.as_f64(), b.as_f64()) {
                    (Some(a), Some(b)) => Ok(Some((a, b))),
                    _ => Err(self.bad(key, "a pair of numbers or null", v)),
                },
                _ => Err(self.bad(key, "a pair of numbers or null", v)),
            },
        }
    }

    /// An optional `u16` field (`null` = absent).
    pub fn opt_u16(&self, key: &str) -> Result<Option<u16>, ExperimentError> {
        match self.field(key)? {
            Json::Null => Ok(None),
            v => {
                let n = v
                    .as_f64()
                    .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
                    .and_then(|n| u16::try_from(n as u64).ok())
                    .ok_or_else(|| self.bad(key, "a u16 or null", v))?;
                Ok(Some(n))
            }
        }
    }
}

/// Validates a population scale (fraction of the paper's 840k jobs).
pub(crate) fn ensure_population_scale(
    experiment: &'static str,
    scale: f64,
) -> Result<(), ExperimentError> {
    if scale > 0.0 && scale <= 1.0 {
        Ok(())
    } else {
        Err(ExperimentError::invalid(
            experiment,
            format!("population_scale must be in (0, 1], got {scale}"),
        ))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn registry_names_are_unique_and_stable() {
        let mut names: Vec<&str> = REGISTRY.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 20, "all paper studies registered");
        let full = names.clone();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), full.len(), "duplicate registry name");
        assert_eq!(find("fig08").map(|e| e.name()), Some("fig08"));
        assert!(find("fig99").is_none());
    }

    #[test]
    fn every_summary_and_default_config_is_well_formed() {
        for exp in REGISTRY {
            assert!(!exp.summary().is_empty(), "{} summary", exp.name());
            let cfg = exp.default_config(0.01);
            assert!(
                matches!(cfg, Json::Obj(_)),
                "{} default config must be an object",
                exp.name()
            );
            // Defaults must parse back through their own Display form.
            assert_eq!(Json::parse(&cfg.to_string()).unwrap(), sanitize(cfg));
        }
    }

    /// Display writes non-finite numbers as null; mirror that for the
    /// round-trip comparison.
    fn sanitize(v: Json) -> Json {
        match v {
            Json::Num(n) if !n.is_finite() => Json::Null,
            Json::Arr(items) => Json::Arr(items.into_iter().map(sanitize).collect()),
            Json::Obj(pairs) => {
                Json::Obj(pairs.into_iter().map(|(k, v)| (k, sanitize(v))).collect())
            }
            other => other,
        }
    }

    #[test]
    fn unknown_experiment_is_a_typed_error() {
        let cache = ScenarioCache::new();
        let err = run_by_name(&cache, "fig99", 0.01, None).unwrap_err();
        assert_eq!(err, ExperimentError::UnknownExperiment("fig99".into()));
    }

    #[test]
    fn cfg_reports_offending_keys() {
        let json = Json::parse(r#"{"a": 1.5, "b": [1, null], "c": null, "d": [2, 3]}"#).unwrap();
        let cfg = Cfg::new("demo", &json).unwrap();
        assert_eq!(cfg.f64("a").unwrap(), 1.5);
        assert!(matches!(
            cfg.usize("a"),
            Err(ExperimentError::InvalidConfig(m)) if m.contains("`a`")
        ));
        assert_eq!(cfg.f64_list("b").unwrap(), vec![1.0, f64::INFINITY]);
        assert_eq!(cfg.opt_f64_pair("c").unwrap(), None);
        assert_eq!(cfg.opt_f64_pair("d").unwrap(), Some((2.0, 3.0)));
        assert_eq!(cfg.opt_u16("c").unwrap(), None);
        assert!(cfg.f64("missing").is_err());
    }

    #[test]
    fn clamp_scale_bounds() {
        assert_eq!(clamp_scale(0.5), 0.5);
        assert_eq!(clamp_scale(7.0), 1.0);
        assert_eq!(clamp_scale(0.0), 1e-4);
        assert_eq!(clamp_scale(f64::NAN), 1.0);
    }
}
