//! Extension experiment: Summit vs Titan thermal-failure regimes.
//!
//! The paper's Section 6 summary: "Compared to the prior generation
//! system Titan, the GPUs are not the same. Different architecture and
//! cooling mechanisms introduce different outcomes. While
//! high-temperature was a reason for the major errors in the case of
//! Titan, its direct effect on GPU failures in the current system is not
//! significant." This experiment runs the same workload through both
//! thermal regimes and contrasts the Figure-15 skew statistics, showing
//! the analysis toolkit *would have detected* Titan-style overheating had
//! it been present.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{clamp_scale, Cfg, Experiment, ExperimentError};
use crate::experiments::table4;
use crate::json::Json;
use crate::report::{pct, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use summit_analysis::zscore::ExtremitySummary;
use summit_sim::failures::{FailureConfig, FailureModel, ThermalRegime};
use summit_sim::jobs::JobGenerator;
use summit_sim::spec::{TOTAL_NODES, YEAR_S};
use summit_telemetry::records::XidErrorKind;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Observation span (weeks).
    pub weeks: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weeks: 26.0,
            seed: 2020,
        }
    }
}

/// Skew/temperature profile of one kind under one regime.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RegimeKind {
    /// Event/error kind.
    pub kind: XidErrorKind,
    /// Number of events.
    pub events: usize,
    /// Fisher-Pearson skewness.
    pub skewness: f64,
    /// Median z-score.
    pub median_z: f64,
    /// Fraction of events with z > 1.
    pub frac_hot_z: f64,
    /// Maximum observed temperature (C).
    pub max_temp_c: f64,
    /// Fraction of events at or above 60 C.
    pub frac_over_60c: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TitanContrastResult {
    /// Profiles under the Summit liquid-cooled regime.
    pub summit: Vec<RegimeKind>,
    /// Profiles under the Titan-like air-cooled regime.
    pub titan: Vec<RegimeKind>,
}

/// The hardware kinds the contrast focuses on (Titan's thermal victims).
pub const CONTRAST_KINDS: [XidErrorKind; 3] = [
    XidErrorKind::DoubleBitError,
    XidErrorKind::FallenOffTheBus,
    XidErrorKind::PageRetirementFailure,
];

fn profile(config: &Config, regime: ThermalRegime) -> Vec<RegimeKind> {
    let span = config.weeks * 7.0 * 86_400.0;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut gen = JobGenerator::new();
    let n_jobs = (840_000.0 * span / YEAR_S) as usize;
    let jobs = gen.generate_population(&mut rng, n_jobs, 0.0, span);
    let model = FailureModel::new(
        FailureConfig {
            thermal_regime: regime,
            ..Default::default()
        },
        TOTAL_NODES,
    );
    let events = model.generate(&mut rng, &jobs, TOTAL_NODES, 0.0, span);
    CONTRAST_KINDS
        .iter()
        .filter_map(|&kind| {
            let sel: Vec<_> = events.iter().filter(|e| e.kind == kind).collect();
            if sel.len() < 10 {
                return None;
            }
            let zs: Vec<f64> = sel.iter().map(|e| e.temp_zscore).collect();
            let temps: Vec<f64> = sel
                .iter()
                .map(|e| e.gpu_core_temp)
                .filter(|t| t.is_finite())
                .collect();
            let summary = ExtremitySummary::compute(&zs)?;
            Some(RegimeKind {
                kind,
                events: sel.len(),
                skewness: summary.skewness,
                median_z: summary.median_z,
                frac_hot_z: summary.frac_above_1,
                max_temp_c: temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
                frac_over_60c: temps.iter().filter(|&&t| t >= 60.0).count() as f64
                    / temps.len().max(1) as f64,
            })
        })
        .collect()
}

/// Runs both regimes over the identical job population.
pub fn run(config: &Config) -> TitanContrastResult {
    let _obs = summit_obs::span("summit_core_titan_contrast");
    TitanContrastResult {
        summit: profile(config, ThermalRegime::SummitLiquidCooled),
        titan: profile(config, ThermalRegime::TitanAirCooled),
    }
}

/// Registry adapter for the Summit-vs-Titan contrast study. The Titan
/// regime re-generates events under air-cooled thermals, so this study
/// never shares the cached Summit failure log.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "titan_contrast"
    }

    fn summary(&self) -> &'static str {
        "Extension: liquid-cooled Summit vs air-cooled Titan failure thermals"
    }

    fn default_config(&self, scale: f64) -> Json {
        let s = clamp_scale(scale);
        Json::obj([
            ("weeks", Json::Num((26.0 * s).max(6.0))),
            ("seed", Json::Num(2020.0)),
        ])
    }

    fn run(&self, _cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("titan_contrast", config)?;
        let scenario = table4::scenario_from(&cfg)?;
        let config = Config {
            weeks: scenario.weeks,
            seed: scenario.seed,
        };
        Ok(run(&config).render())
    }
}

impl TitanContrastResult {
    /// Renders the side-by-side contrast.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Summit (liquid) vs Titan-like (air) failure thermal signatures",
            &["kind", "regime", "skew", "median z", "max temp C", ">=60C"],
        );
        for (regime, rows) in [("Summit", &self.summit), ("Titan", &self.titan)] {
            for r in rows {
                t.row(vec![
                    r.kind.name().into(),
                    regime.into(),
                    format!("{:+.2}", r.skewness),
                    format!("{:+.2}", r.median_z),
                    format!("{:.1}", r.max_temp_c),
                    pct(r.frac_over_60c),
                ]);
            }
        }
        let mut s = t.render();
        s.push_str(
            "\npaper Section 6: on Titan high temperature drove the major errors; on\n\
             Summit's direct liquid cooling its direct effect is not significant —\n\
             the same analysis separates the two regimes cleanly\n",
        );
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn result() -> TitanContrastResult {
        run(&Config {
            weeks: 26.0,
            seed: 23,
        })
    }

    #[test]
    fn regimes_are_distinguishable() {
        let r = result();
        assert!(!r.summit.is_empty() && !r.titan.is_empty());
        for (s, t) in r.summit.iter().zip(&r.titan) {
            assert_eq!(s.kind, t.kind);
            // Summit: cold-start (right) skew. Titan: hot (left) skew.
            assert!(
                s.skewness > 0.0,
                "{}: Summit skew {} should be right",
                s.kind.name(),
                s.skewness
            );
            assert!(
                t.skewness < 0.0,
                "{}: Titan skew {} should be left",
                t.kind.name(),
                t.skewness
            );
            // Titan's bulk sits above the in-job mean, Summit's below.
            assert!(
                t.median_z > s.median_z + 0.3,
                "{}: median z {} vs {}",
                s.kind.name(),
                t.median_z,
                s.median_z
            );
        }
    }

    #[test]
    fn titan_double_bit_runs_hot() {
        let r = result();
        let s_dbe = r
            .summit
            .iter()
            .find(|k| k.kind == XidErrorKind::DoubleBitError)
            .unwrap();
        let t_dbe = r
            .titan
            .iter()
            .find(|k| k.kind == XidErrorKind::DoubleBitError)
            .unwrap();
        assert!(s_dbe.max_temp_c <= 46.5, "Summit caps at 46.1 C");
        assert!(
            t_dbe.max_temp_c > 60.0,
            "Titan-like double-bit errors run hot, got {}",
            t_dbe.max_temp_c
        );
        assert!(t_dbe.frac_over_60c > 0.5);
        assert_eq!(s_dbe.frac_over_60c, 0.0);
    }
}
