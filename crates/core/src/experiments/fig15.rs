//! Figure 15: thermal extremity of GPU failures — z-score and absolute
//! temperature distributions per failure type.
//!
//! Paper anchors: after removing the NVLINK super-offender, no failure
//! type is left-skewed (overheating is not a significant factor, unlike
//! Titan); double-bit, off-the-bus, µC-warning and page-retirement-failure
//! distributions are right-skewed (errors favour GPUs "that did not yet
//! warm up"); the only 60 °C+ failures were 1.4 % of NVLINK and 5.2 % of
//! off-the-bus errors; the hottest double-bit error was 46.1 °C.

use crate::cache::ScenarioCache;
use crate::experiments::registry::{Cfg, Experiment, ExperimentError};
use crate::experiments::table4;
use crate::json::Json;
use crate::pipeline::FailureScenario;
use crate::report::{pct, Table};
use serde::{Deserialize, Serialize};
use summit_analysis::zscore::ExtremitySummary;
use summit_sim::failures::FailureModel;
use summit_telemetry::records::XidErrorKind;

/// Experiment configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Config {
    /// Observation span (weeks).
    pub weeks: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            weeks: 52.3,
            seed: 2020,
        }
    }
}

/// One failure kind's thermal profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KindThermal {
    /// Event/error kind.
    pub kind: XidErrorKind,
    /// Number of events.
    pub events: usize,
    /// Thermal-extremity z-score summary.
    pub z: ExtremitySummary,
    /// Maximum observed temperature (C).
    pub max_temp_c: f64,
    /// Fraction of events at or above 60 °C.
    pub frac_over_60c: f64,
}

/// Full result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig15Result {
    /// Per-kind results.
    pub kinds: Vec<KindThermal>,
    /// Events removed as super-offender NVLINK noise.
    pub removed_super_offender: usize,
}

/// Runs the Figure 15 analysis against a private cache.
pub fn run(config: &Config) -> Fig15Result {
    run_with(&ScenarioCache::new(), config)
}

/// Runs the Figure 15 analysis, acquiring the failure log through
/// `cache`.
pub fn run_with(cache: &ScenarioCache, config: &Config) -> Fig15Result {
    let _obs = summit_obs::span("summit_core_fig15");
    let art = cache.failures(&FailureScenario {
        weeks: config.weeks,
        seed: config.seed,
    });
    // "We removed the data for a super-offender node accounting for 97 %
    // of all the NVLink errors."
    let offender = FailureModel::paper().super_offender();
    let removed = art.events.iter().filter(|e| e.node == offender).count();
    let kept: Vec<_> = art.events.iter().filter(|e| e.node != offender).collect();

    let mut kinds = Vec::new();
    for kind in XidErrorKind::ALL {
        let sel: Vec<_> = kept.iter().filter(|e| e.kind == kind).collect();
        if sel.len() < 5 {
            continue;
        }
        let zs: Vec<f64> = sel.iter().map(|e| e.temp_zscore).collect();
        let temps: Vec<f64> = sel
            .iter()
            .map(|e| e.gpu_core_temp)
            .filter(|t| t.is_finite())
            .collect();
        let Some(z) = ExtremitySummary::compute(&zs) else {
            continue;
        };
        let max_temp = temps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let over60 =
            temps.iter().filter(|&&t| t >= 60.0).count() as f64 / temps.len().max(1) as f64;
        kinds.push(KindThermal {
            kind,
            events: sel.len(),
            z,
            max_temp_c: max_temp,
            frac_over_60c: over60,
        });
    }

    Fig15Result {
        kinds,
        removed_super_offender: removed,
    }
}

/// Registry adapter for the Figure 15 study.
pub struct Study;

impl Experiment for Study {
    fn name(&self) -> &'static str {
        "fig15"
    }

    fn summary(&self) -> &'static str {
        "Thermal extremity (z-scores) of GPU failures per kind"
    }

    fn default_config(&self, scale: f64) -> Json {
        Json::obj([
            ("weeks", Json::Num(table4::default_weeks(scale))),
            ("seed", Json::Num(2020.0)),
        ])
    }

    fn run(&self, cache: &ScenarioCache, config: &Json) -> Result<String, ExperimentError> {
        let cfg = Cfg::new("fig15", config)?;
        let scenario = table4::scenario_from(&cfg)?;
        let config = Config {
            weeks: scenario.weeks,
            seed: scenario.seed,
        };
        Ok(run_with(cache, &config).render())
    }
}

impl Fig15Result {
    /// Thermal profile of a kind, if observed.
    pub fn kind(&self, kind: XidErrorKind) -> Option<&KindThermal> {
        self.kinds.iter().find(|k| k.kind == kind)
    }

    /// Renders the per-kind thermal extremity table.
    pub fn render(&self) -> String {
        let mut t = Table::new(
            "Figure 15: thermal extremity of GPU failures",
            &[
                "kind",
                "events",
                "mean z",
                "skew",
                "label",
                "max temp C",
                ">=60C",
            ],
        );
        for k in &self.kinds {
            t.row(vec![
                k.kind.name().into(),
                k.events.to_string(),
                format!("{:.2}", k.z.mean_z),
                format!("{:.2}", k.z.skewness),
                k.z.skew_label().into(),
                format!("{:.1}", k.max_temp_c),
                pct(k.frac_over_60c),
            ]);
        }
        let mut s = t.render();
        s.push_str(&format!(
            "\nsuper-offender events removed: {}\n\
             paper: no left-skewed types; double-bit/off-bus/uC-warning/page-retirement-failure \
             right-skewed; hottest double-bit 46.1 C; 60 C+ only for NVLINK (1.4%) and \
             off-bus (5.2%)\n",
            self.removed_super_offender
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use XidErrorKind::*;

    fn result() -> Fig15Result {
        run(&Config {
            weeks: 26.0,
            seed: 5,
        })
    }

    #[test]
    fn no_kind_left_skewed_except_graphics_fault() {
        let r = result();
        for k in &r.kinds {
            if k.kind == GraphicsEngineFault {
                continue; // the paper's one potentially-left-skewed type
            }
            if k.events < 30 {
                continue; // skewness is meaningless on tiny samples
            }
            assert!(
                k.z.skewness > -0.25,
                "{}: left skew {} contradicts the paper",
                k.kind.name(),
                k.z.skewness
            );
        }
    }

    #[test]
    fn cold_start_kinds_right_skewed() {
        let r = result();
        for kind in [
            DoubleBitError,
            FallenOffTheBus,
            InternalMicrocontrollerWarning,
        ] {
            if let Some(k) = r.kind(kind) {
                assert!(
                    k.z.skewness > 0.2,
                    "{} should be right-skewed, got {}",
                    kind.name(),
                    k.z.skewness
                );
            }
        }
    }

    #[test]
    fn double_bit_max_temp_low() {
        let r = result();
        let dbe = r.kind(DoubleBitError).expect("double-bit events present");
        assert!(
            dbe.max_temp_c <= 46.5,
            "paper: hottest double-bit was 46.1 C, got {}",
            dbe.max_temp_c
        );
        assert_eq!(dbe.frac_over_60c, 0.0);
    }

    #[test]
    fn super_offender_removed() {
        let r = result();
        assert!(
            r.removed_super_offender > 100,
            "the NVLINK super-offender stream must be excised"
        );
    }

    #[test]
    fn page_faults_symmetric() {
        let r = result();
        let mpf = r.kind(MemoryPageFault).expect("page faults present");
        assert!(
            mpf.z.skewness.abs() < 0.3,
            "page faults stay symmetric, got {}",
            mpf.z.skewness
        );
    }
}
