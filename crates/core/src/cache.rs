//! Shared scenario cache: fingerprint-keyed memoization of the
//! expensive artifacts every experiment re-derives.
//!
//! Before this layer each study privately regenerated its inputs — a
//! full-suite run rebuilt the same 840k-job statistical year up to a
//! dozen times. [`ScenarioCache`] memoizes the four artifact families
//! behind the experiments:
//!
//! - **populations** — [`PopulationArtifact`]: the statistical-year job
//!   population with closed-form [`JobStatsRow`] stats (Figures 5-10,
//!   14; power_aware);
//! - **dynamics** — [`DynamicsRun`]: staged-burst engine runs
//!   (Figures 11/12 share one run per burst schedule);
//! - **telemetry** — [`TelemetryRun`]: end-to-end telemetry-path runs;
//! - **failures** — [`FailureArtifact`]: the XID failure log plus the
//!   job population it was drawn over (Table 4; Figures 13-16;
//!   early_warning).
//!
//! Entries are keyed by an FNV-1a fingerprint of the scenario config's
//! `Debug` rendering (configs derive `Debug` and render every field, so
//! two configs collide only if they are field-for-field identical).
//! Generation is seeded and deterministic, so a cached artifact is
//! bit-identical to a fresh one — `tests/experiments_smoke.rs` proves
//! this. Hits and misses are counted in the observability registry as
//! `summit_core_scenario_cache_hits_total` /
//! `summit_core_scenario_cache_misses_total`.
//!
//! The cache is `Sync`; builders run outside the map lock, so two
//! threads racing on the same key may both build, but the first insert
//! wins and determinism makes the loser's artifact identical.

use crate::pipeline::{
    run_telemetry, DynamicsRun, FailureArtifact, FailureScenario, PopulationArtifact,
    PopulationScenario, TelemetryRun,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use summit_telemetry::stream::FaultConfig;

/// Counter name for cache hits.
pub const HITS_COUNTER: &str = "summit_core_scenario_cache_hits_total";
/// Counter name for cache misses (each miss builds the artifact once).
pub const MISSES_COUNTER: &str = "summit_core_scenario_cache_misses_total";

/// FNV-1a over a domain tag and a key string; stable across runs and
/// platforms (unlike `std`'s `DefaultHasher`, which is randomized by
/// design in other stdlibs and unspecified across releases).
fn fingerprint(domain: &str, key: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in domain.bytes().chain([0u8]).chain(key.bytes()) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

type Slot<T> = Mutex<BTreeMap<u64, Arc<T>>>;

/// Thread-safe memo of the expensive experiment inputs; see the module
/// docs for the artifact families and keying scheme.
#[derive(Debug, Default)]
pub struct ScenarioCache {
    populations: Slot<PopulationArtifact>,
    dynamics: Slot<DynamicsRun>,
    telemetry: Slot<TelemetryRun>,
    failures: Slot<FailureArtifact>,
}

/// Entry counts per artifact family (for driver summaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Cached population artifacts.
    pub populations: usize,
    /// Cached dynamics runs.
    pub dynamics: usize,
    /// Cached telemetry runs.
    pub telemetry: usize,
    /// Cached failure artifacts.
    pub failures: usize,
}

impl CacheStats {
    /// Total cached artifacts.
    pub fn total(&self) -> usize {
        self.populations + self.dynamics + self.telemetry + self.failures
    }
}

fn lock<T>(slot: &Slot<T>) -> std::sync::MutexGuard<'_, BTreeMap<u64, Arc<T>>> {
    // A poisoned lock only means another thread panicked mid-insert;
    // the map itself is still a valid memo, so recover it.
    slot.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn memo<T>(slot: &Slot<T>, domain: &str, key: &str, build: impl FnOnce() -> T) -> Arc<T> {
    let fp = fingerprint(domain, key);
    if let Some(hit) = lock(slot).get(&fp) {
        summit_obs::counter(HITS_COUNTER).inc();
        return Arc::clone(hit);
    }
    summit_obs::counter(MISSES_COUNTER).inc();
    let built = Arc::new(build());
    Arc::clone(lock(slot).entry(fp).or_insert(built))
}

impl ScenarioCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The statistical-year population with per-job stats for
    /// `scenario`, generating it on first use.
    pub fn population(&self, scenario: &PopulationScenario) -> Arc<PopulationArtifact> {
        memo(
            &self.populations,
            "population",
            &format!("{scenario:?}"),
            || scenario.artifact(),
        )
    }

    /// A staged-burst dynamics run, keyed by the caller's full burst
    /// configuration (`key` must render every field that shapes the
    /// run; passing the config's `Debug` output does).
    pub fn dynamics(&self, key: &str, build: impl FnOnce() -> DynamicsRun) -> Arc<DynamicsRun> {
        memo(&self.dynamics, "dynamics", key, build)
    }

    /// An end-to-end telemetry-path run (see
    /// [`run_telemetry`]), generated on first use.
    pub fn telemetry(
        &self,
        cabinets: usize,
        duration_s: f64,
        faults: Option<FaultConfig>,
    ) -> Arc<TelemetryRun> {
        let key = format!("cabinets={cabinets} duration_s={duration_s} faults={faults:?}");
        memo(&self.telemetry, "telemetry", &key, || {
            run_telemetry(cabinets, duration_s, faults)
        })
    }

    /// The failure log (and the job population it was drawn over) for
    /// `scenario`, generating it on first use.
    pub fn failures(&self, scenario: &FailureScenario) -> Arc<FailureArtifact> {
        memo(&self.failures, "failures", &format!("{scenario:?}"), || {
            scenario.generate()
        })
    }

    /// Entry counts per artifact family.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            populations: lock(&self.populations).len(),
            dynamics: lock(&self.dynamics).len(),
            telemetry: lock(&self.telemetry).len(),
            failures: lock(&self.failures).len(),
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn counters() -> (u64, u64) {
        (
            summit_obs::counter(HITS_COUNTER).get(),
            summit_obs::counter(MISSES_COUNTER).get(),
        )
    }

    #[test]
    fn population_is_generated_once_and_shared() {
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let cache = ScenarioCache::new();
        let scenario = PopulationScenario::paper_year(0.001);
        let a = cache.population(&scenario);
        let (h0, m0) = counters();
        assert_eq!((h0, m0), (0, 1));
        let b = cache.population(&scenario);
        assert!(Arc::ptr_eq(&a, &b), "second lookup must be the same Arc");
        let (h1, m1) = counters();
        assert_eq!((h1, m1), (1, 1));
        assert_eq!(cache.stats().populations, 1);
        assert_eq!(cache.stats().total(), 1);
    }

    #[test]
    fn distinct_scenarios_occupy_distinct_entries() {
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let cache = ScenarioCache::new();
        let _ = cache.population(&PopulationScenario::paper_year(0.001));
        let _ = cache.population(&PopulationScenario::paper_year(0.002));
        assert_eq!(cache.stats().populations, 2);
        let (h, m) = counters();
        assert_eq!((h, m), (0, 2));
    }

    #[test]
    fn cached_population_matches_fresh_generation() {
        let cache = ScenarioCache::new();
        let scenario = PopulationScenario::paper_year(0.001);
        let cached = cache.population(&scenario);
        let fresh = scenario.artifact();
        assert_eq!(cached.rows.len(), fresh.rows.len());
        for (a, b) in cached.rows.iter().zip(&fresh.rows) {
            assert_eq!(format!("{a:?}"), format!("{b:?}"));
        }
    }

    #[test]
    fn fingerprints_are_domain_separated() {
        assert_ne!(fingerprint("population", "x"), fingerprint("dynamics", "x"));
        assert_ne!(fingerprint("a", "bc"), fingerprint("ab", "c"));
    }

    #[test]
    fn failure_artifact_is_shared_across_studies() {
        let registry = summit_obs::registry::Registry::new();
        let _scope = registry.install();
        let cache = ScenarioCache::new();
        let scenario = FailureScenario {
            weeks: 2.0,
            seed: 7,
        };
        let a = cache.failures(&scenario);
        let b = cache.failures(&scenario);
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.events.is_empty());
        assert!(!a.jobs.is_empty());
        let (h, m) = counters();
        assert_eq!((h, m), (1, 1));
    }
}
