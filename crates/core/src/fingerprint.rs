//! Job power-profile fingerprinting and predictive power analytics —
//! the paper's Section 9 future-work plan, implemented.
//!
//! "From the existing 2020 Summit job power dataset, we create
//! fingerprints as vector representations that describe user job power
//! consumption at the OLCF. Fingerprints are then clustered and
//! user-portraits are generated. Queued jobs will assume the average
//! power portrait of the user given job size, job launch arguments, and
//! project ID." — Shin et al., Section 9.
//!
//! Pipeline: per-job power series -> feature vector ([`Fingerprint`]) ->
//! z-normalized k-means clustering ([`KMeans`]) -> per-project portraits
//! ([`PortraitModel`]) -> queued-job power prediction, evaluated against
//! a power-history-only baseline (the paper: "using the power consumption
//! histories alone will most likely be insufficient").

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use summit_analysis::edges::detect_edges_for_job;
use summit_analysis::fft::dominant_component;
use summit_sim::jobs::SyntheticJob;
use summit_sim::jobstats::job_power_series;
use summit_sim::power::PowerModel;

/// Number of fingerprint features.
pub const FEATURES: usize = 8;

/// A job's power-behaviour fingerprint (per-node normalized so job size
/// does not dominate the geometry).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fingerprint {
    /// Mean power per node (W).
    pub mean_node_w: f64,
    /// Max power per node (W).
    pub max_node_w: f64,
    /// Relative swing: (max - min) / max over the series.
    pub swing: f64,
    /// Dominant differenced-FFT frequency (Hz; 0 when undefined).
    pub dominant_freq_hz: f64,
    /// Dominant amplitude per node (W).
    pub dominant_amp_node_w: f64,
    /// Edges per hour of walltime.
    pub edges_per_hour: f64,
    /// log10 of walltime in seconds.
    pub log_walltime: f64,
    /// log10 of node count.
    pub log_nodes: f64,
}

impl Fingerprint {
    /// The feature vector.
    pub fn to_vec(self) -> [f64; FEATURES] {
        [
            self.mean_node_w,
            self.max_node_w,
            self.swing,
            self.dominant_freq_hz,
            self.dominant_amp_node_w,
            self.edges_per_hour,
            self.log_walltime,
            self.log_nodes,
        ]
    }
}

/// Extracts a fingerprint from a job by synthesizing its Dataset-3-style
/// power series (10 s resolution).
pub fn extract(job: &SyntheticJob, power_model: &PowerModel) -> Fingerprint {
    let series = job_power_series(job, power_model, 10.0);
    let nodes = job.record.node_count as f64;
    let v = series.values();
    let mean = summit_analysis::stats::nanmean(v);
    let max = summit_analysis::stats::nanmax(v);
    let min = summit_analysis::stats::nanmin(v);
    let swing = if max > 0.0 { (max - min) / max } else { 0.0 };
    let (freq, amp) = match dominant_component(series.diff().values(), 0.1) {
        Some(d) => (d.frequency_hz, d.amplitude),
        None => (0.0, 0.0),
    };
    let edges = detect_edges_for_job(&series, job.record.node_count as usize).len();
    let hours = (job.record.walltime_s() / 3600.0).max(1e-6);
    Fingerprint {
        mean_node_w: mean / nodes,
        max_node_w: max / nodes,
        swing,
        dominant_freq_hz: freq,
        dominant_amp_node_w: amp / nodes,
        edges_per_hour: edges as f64 / hours,
        log_walltime: job.record.walltime_s().max(1.0).log10(),
        log_nodes: nodes.max(1.0).log10(),
    }
}

/// Feature z-normalizer fitted on a sample.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Normalizer {
    mean: [f64; FEATURES],
    std: [f64; FEATURES],
}

impl Normalizer {
    /// Fits per-feature mean/std (std floors at 1e-9).
    pub fn fit(data: &[[f64; FEATURES]]) -> Self {
        assert!(!data.is_empty(), "cannot normalize an empty sample");
        let n = data.len() as f64;
        let mut mean = [0.0; FEATURES];
        for x in data {
            for (m, v) in mean.iter_mut().zip(x) {
                *m += v / n;
            }
        }
        let mut std = [0.0; FEATURES];
        for x in data {
            for f in 0..FEATURES {
                std[f] += (x[f] - mean[f]).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        Self { mean, std }
    }

    /// Applies the normalization.
    pub fn apply(&self, x: &[f64; FEATURES]) -> [f64; FEATURES] {
        let mut out = [0.0; FEATURES];
        for f in 0..FEATURES {
            out[f] = (x[f] - self.mean[f]) / self.std[f];
        }
        out
    }
}

fn sq_dist(a: &[f64; FEATURES], b: &[f64; FEATURES]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum()
}

/// Plain k-means with k-means++ seeding (Lloyd iterations).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeans {
    /// Cluster centroids in normalized feature space.
    pub centroids: Vec<[f64; FEATURES]>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Iterations executed.
    pub iterations: usize,
}

impl KMeans {
    /// Fits `k` clusters on normalized data.
    ///
    /// # Panics
    /// If `k == 0` or `data.len() < k`.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        data: &[[f64; FEATURES]],
        k: usize,
        max_iters: usize,
    ) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(data.len() >= k, "need at least k points");

        // k-means++ seeding.
        let mut centroids: Vec<[f64; FEATURES]> = Vec::with_capacity(k);
        centroids.push(data[rng.gen_range(0..data.len())]);
        while centroids.len() < k {
            let d2: Vec<f64> = data
                .iter()
                .map(|x| {
                    centroids
                        .iter()
                        .map(|c| sq_dist(x, c))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let idx = crate::weighted_pick(rng, &d2).unwrap_or(0);
            centroids.push(data[idx]);
        }

        let mut assignment = vec![0usize; data.len()];
        let mut iterations = 0;
        for iter in 0..max_iters {
            iterations = iter + 1;
            // Assign.
            let mut changed = false;
            for (i, x) in data.iter().enumerate() {
                let best = (0..k)
                    .min_by(|&a, &b| {
                        sq_dist(x, &centroids[a]).total_cmp(&sq_dist(x, &centroids[b]))
                    })
                    .unwrap_or(0);
                if assignment[i] != best {
                    assignment[i] = best;
                    changed = true;
                }
            }
            // Update.
            let mut sums = vec![[0.0; FEATURES]; k];
            let mut counts = vec![0usize; k];
            for (x, &a) in data.iter().zip(&assignment) {
                counts[a] += 1;
                for f in 0..FEATURES {
                    sums[a][f] += x[f];
                }
            }
            for c in 0..k {
                if counts[c] > 0 {
                    for f in 0..FEATURES {
                        centroids[c][f] = sums[c][f] / counts[c] as f64;
                    }
                }
            }
            if !changed && iter > 0 {
                break;
            }
        }

        let inertia = data
            .iter()
            .zip(&assignment)
            .map(|(x, &a)| sq_dist(x, &centroids[a]))
            .sum();
        Self {
            centroids,
            inertia,
            iterations,
        }
    }

    /// Index of the nearest centroid (0 for a degenerate centroid-free
    /// model, which the constructor prevents).
    pub fn assign(&self, x: &[f64; FEATURES]) -> usize {
        (0..self.centroids.len())
            .min_by(|&a, &b| {
                sq_dist(x, &self.centroids[a]).total_cmp(&sq_dist(x, &self.centroids[b]))
            })
            .unwrap_or(0)
    }
}

/// Per-project power portrait: the average fingerprint of a project's
/// history plus its cluster identity.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Portrait {
    /// Project identifier (e.g. `MAT003`).
    pub project: String,
    /// Number of jobs in this group.
    pub jobs: usize,
    /// Mean per-node power (W).
    pub mean_node_w: f64,
    /// Max per-node power (W).
    pub max_node_w: f64,
    /// Majority k-means cluster of the project.
    pub cluster: usize,
}

/// The queued-job power predictor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PortraitModel {
    portraits: HashMap<String, Portrait>,
    /// Global fallback per-node mean/max power.
    global_mean_node_w: f64,
    global_max_node_w: f64,
    /// The clustering used to label portraits.
    pub kmeans: KMeans,
    /// Normalizer.
    pub normalizer: Normalizer,
}

impl PortraitModel {
    /// Fits portraits from a training set of (job, fingerprint) pairs.
    pub fn fit<R: Rng + ?Sized>(
        rng: &mut R,
        jobs: &[&SyntheticJob],
        prints: &[Fingerprint],
        k: usize,
    ) -> Self {
        assert_eq!(jobs.len(), prints.len());
        assert!(!jobs.is_empty(), "training set must not be empty");
        let raw: Vec<[f64; FEATURES]> = prints.iter().map(|p| p.to_vec()).collect();
        let normalizer = Normalizer::fit(&raw);
        let normalized: Vec<[f64; FEATURES]> = raw.iter().map(|x| normalizer.apply(x)).collect();
        let kmeans = KMeans::fit(rng, &normalized, k.min(jobs.len()), 50);

        // BTreeMap: portraits are built in project order, and the
        // majority-cluster tie-break below is deterministic.
        let mut acc: BTreeMap<String, (usize, f64, f64, Vec<usize>)> = BTreeMap::new();
        for ((job, print), norm) in jobs.iter().zip(prints).zip(&normalized) {
            let e = acc
                .entry(job.record.project.clone())
                .or_insert((0, 0.0, 0.0, Vec::new()));
            e.0 += 1;
            e.1 += print.mean_node_w;
            e.2 += print.max_node_w;
            e.3.push(kmeans.assign(norm));
        }
        let portraits: HashMap<String, Portrait> = acc
            .into_iter()
            .map(|(project, (n, mean, max, clusters))| {
                // Majority cluster; `max_by_key` keeps the last max, so
                // over a BTreeMap a count tie resolves to the highest
                // cluster index — deterministically.
                let mut counts: BTreeMap<usize, usize> = BTreeMap::new();
                for c in clusters {
                    *counts.entry(c).or_default() += 1;
                }
                let cluster = counts
                    .into_iter()
                    .max_by_key(|&(_, c)| c)
                    .map(|(k, _)| k)
                    .unwrap_or(0);
                (
                    project.clone(),
                    Portrait {
                        project,
                        jobs: n,
                        mean_node_w: mean / n as f64,
                        max_node_w: max / n as f64,
                        cluster,
                    },
                )
            })
            .collect();

        let global_mean = prints.iter().map(|p| p.mean_node_w).sum::<f64>() / prints.len() as f64;
        let global_max = prints.iter().map(|p| p.max_node_w).sum::<f64>() / prints.len() as f64;
        Self {
            portraits,
            global_mean_node_w: global_mean,
            global_max_node_w: global_max,
            kmeans,
            normalizer,
        }
    }

    /// Number of portraits held.
    pub fn len(&self) -> usize {
        self.portraits.len()
    }

    /// True when no portraits were fitted (cannot happen via [`fit`]).
    ///
    /// [`fit`]: PortraitModel::fit
    pub fn is_empty(&self) -> bool {
        self.portraits.is_empty()
    }

    /// Portrait lookup.
    pub fn portrait(&self, project: &str) -> Option<&Portrait> {
        self.portraits.get(project)
    }

    /// Predicts a queued job's mean power (W) from its metadata only —
    /// project id and node count, exactly the paper's proposal.
    pub fn predict_mean_power(&self, job: &SyntheticJob) -> f64 {
        let per_node = self
            .portraits
            .get(&job.record.project)
            .map(|p| p.mean_node_w)
            .unwrap_or(self.global_mean_node_w);
        per_node * job.record.node_count as f64
    }

    /// Predicts a queued job's max power (W).
    pub fn predict_max_power(&self, job: &SyntheticJob) -> f64 {
        let per_node = self
            .portraits
            .get(&job.record.project)
            .map(|p| p.max_node_w)
            .unwrap_or(self.global_max_node_w);
        per_node * job.record.node_count as f64
    }
}

/// Mean absolute percentage error.
pub fn mape(pairs: &[(f64, f64)]) -> f64 {
    if pairs.is_empty() {
        return f64::NAN;
    }
    pairs
        .iter()
        .map(|(pred, actual)| ((pred - actual) / actual).abs())
        .sum::<f64>()
        / pairs.len() as f64
}

/// End-to-end evaluation of the fingerprint predictor on a train/test
/// split, against the history-only baseline (predict every job at the
/// global average per-node power — what a model without job metadata can
/// do at queue time).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Training-set size.
    pub train_jobs: usize,
    /// Test-set size.
    pub test_jobs: usize,
    /// k-means cluster count.
    pub clusters: usize,
    /// Portrait predictor MAPE on mean power.
    pub portrait_mape_mean: f64,
    /// Portrait predictor MAPE on max power.
    pub portrait_mape_max: f64,
    /// History-only baseline MAPE on mean power.
    pub baseline_mape_mean: f64,
    /// History-only baseline MAPE on max power.
    pub baseline_mape_max: f64,
    /// Final within-cluster sum of squares.
    pub kmeans_inertia: f64,
}

/// Runs the evaluation: fingerprints all jobs, splits 70/30, fits
/// portraits on the training split, and scores both predictors.
pub fn evaluate<R: Rng + ?Sized>(
    rng: &mut R,
    jobs: &[SyntheticJob],
    power_model: &PowerModel,
    k: usize,
) -> PredictionReport {
    assert!(jobs.len() >= 20, "need a meaningful population");
    use rayon::prelude::*;
    let prints: Vec<Fingerprint> = jobs.par_iter().map(|j| extract(j, power_model)).collect();

    let split = jobs.len() * 7 / 10;
    let train_jobs: Vec<&SyntheticJob> = jobs[..split].iter().collect();
    let train_prints = &prints[..split];
    let model = PortraitModel::fit(rng, &train_jobs, train_prints, k);

    let mut portrait_mean = Vec::new();
    let mut portrait_max = Vec::new();
    let mut baseline_mean = Vec::new();
    let mut baseline_max = Vec::new();
    for (job, print) in jobs[split..].iter().zip(&prints[split..]) {
        let actual_mean = print.mean_node_w * job.record.node_count as f64;
        let actual_max = print.max_node_w * job.record.node_count as f64;
        if actual_mean <= 0.0 || actual_max <= 0.0 {
            continue;
        }
        portrait_mean.push((model.predict_mean_power(job), actual_mean));
        portrait_max.push((model.predict_max_power(job), actual_max));
        baseline_mean.push((
            model.global_mean_node_w * job.record.node_count as f64,
            actual_mean,
        ));
        baseline_max.push((
            model.global_max_node_w * job.record.node_count as f64,
            actual_max,
        ));
    }

    PredictionReport {
        train_jobs: split,
        test_jobs: jobs.len() - split,
        clusters: model.kmeans.centroids.len(),
        portrait_mape_mean: mape(&portrait_mean),
        portrait_mape_max: mape(&portrait_max),
        baseline_mape_mean: mape(&baseline_mean),
        baseline_mape_max: mape(&baseline_max),
        kmeans_inertia: model.kmeans.inertia,
    }
}

impl PredictionReport {
    /// Renders the evaluation summary.
    pub fn render(&self) -> String {
        let mut t = crate::report::Table::new(
            "Job power-profile fingerprinting (paper Section 9 future work)",
            &["predictor", "mean-power MAPE", "max-power MAPE"],
        );
        t.row(vec![
            format!("project portraits (k={})", self.clusters),
            crate::report::pct(self.portrait_mape_mean),
            crate::report::pct(self.portrait_mape_max),
        ]);
        t.row(vec![
            "history-only baseline".into(),
            crate::report::pct(self.baseline_mape_mean),
            crate::report::pct(self.baseline_mape_max),
        ]);
        let mut s = t.render();
        s.push_str(&format!(
            "\ntrain {} / test {} jobs; k-means inertia {:.1}\n\
             paper: \"power consumption histories alone will most likely be insufficient\";\n\
             portraits mediated by job metadata should beat the history-only baseline\n",
            self.train_jobs, self.test_jobs, self.kmeans_inertia
        ));
        s
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use summit_sim::jobs::JobGenerator;

    fn population(n: usize) -> (Vec<SyntheticJob>, PowerModel) {
        let mut rng = StdRng::seed_from_u64(31);
        let mut gen = JobGenerator::new();
        (
            gen.generate_population(&mut rng, n, 0.0, 30.0 * 86400.0),
            PowerModel::new(31),
        )
    }

    #[test]
    fn fingerprints_are_finite_and_scaled() {
        let (jobs, pm) = population(100);
        for job in &jobs {
            let f = extract(job, &pm);
            for v in f.to_vec() {
                assert!(v.is_finite(), "feature must be finite for {job:?}");
            }
            assert!(f.mean_node_w > 100.0 && f.mean_node_w < 2400.0);
            assert!(f.max_node_w >= f.mean_node_w - 1e-6);
            assert!((0.0..=1.0).contains(&f.swing));
        }
    }

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = Vec::new();
        for i in 0..60 {
            let jitter = (i % 7) as f64 * 0.01;
            let mut a = [0.0; FEATURES];
            a[0] = 0.0 + jitter;
            let mut b = [0.0; FEATURES];
            b[0] = 10.0 + jitter;
            data.push(a);
            data.push(b);
        }
        let km = KMeans::fit(&mut rng, &data, 2, 50);
        let c0 = km.assign(&{
            let mut x = [0.0; FEATURES];
            x[0] = 0.05;
            x
        });
        let c1 = km.assign(&{
            let mut x = [0.0; FEATURES];
            x[0] = 9.9;
            x
        });
        assert_ne!(c0, c1, "well-separated clusters must split");
        assert!(km.inertia < 1.0, "inertia {}", km.inertia);
    }

    #[test]
    fn kmeans_inertia_decreases_with_k() {
        let (jobs, pm) = population(150);
        let raw: Vec<[f64; FEATURES]> = jobs.iter().map(|j| extract(j, &pm).to_vec()).collect();
        let norm = Normalizer::fit(&raw);
        let data: Vec<[f64; FEATURES]> = raw.iter().map(|x| norm.apply(x)).collect();
        let mut rng = StdRng::seed_from_u64(2);
        let i2 = KMeans::fit(&mut rng, &data, 2, 50).inertia;
        let mut rng = StdRng::seed_from_u64(2);
        let i8 = KMeans::fit(&mut rng, &data, 8, 50).inertia;
        assert!(i8 < i2, "more clusters must reduce inertia ({i8} vs {i2})");
    }

    #[test]
    fn portraits_beat_history_only_baseline() {
        let (jobs, pm) = population(1200);
        let mut rng = StdRng::seed_from_u64(3);
        let report = evaluate(&mut rng, &jobs, &pm, 6);
        assert!(report.portrait_mape_mean.is_finite());
        assert!(
            report.portrait_mape_mean < report.baseline_mape_mean,
            "portraits {} must beat baseline {}",
            report.portrait_mape_mean,
            report.baseline_mape_mean
        );
        assert!(
            report.portrait_mape_max < report.baseline_mape_max,
            "max-power prediction must also improve"
        );
        let s = report.render();
        assert!(s.contains("MAPE"));
    }

    #[test]
    fn unknown_project_falls_back_to_global() {
        let (jobs, pm) = population(100);
        let prints: Vec<Fingerprint> = jobs.iter().map(|j| extract(j, &pm)).collect();
        let refs: Vec<&SyntheticJob> = jobs.iter().collect();
        let mut rng = StdRng::seed_from_u64(4);
        let model = PortraitModel::fit(&mut rng, &refs, &prints, 4);
        let mut stranger = jobs[0].clone();
        stranger.record.project = "ZZZ999".into();
        let pred = model.predict_mean_power(&stranger);
        assert!(pred > 0.0);
        assert!(model.portrait("ZZZ999").is_none());
    }

    #[test]
    fn normalizer_zero_mean_unit_std() {
        let data = vec![
            {
                let mut x = [0.0; FEATURES];
                x[0] = 1.0;
                x
            },
            {
                let mut x = [0.0; FEATURES];
                x[0] = 3.0;
                x
            },
        ];
        let n = Normalizer::fit(&data);
        let a = n.apply(&data[0]);
        let b = n.apply(&data[1]);
        assert!((a[0] + 1.0).abs() < 1e-9);
        assert!((b[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn mape_basics() {
        assert!((mape(&[(110.0, 100.0), (90.0, 100.0)]) - 0.1).abs() < 1e-12);
        assert!(mape(&[]).is_nan());
    }
}
