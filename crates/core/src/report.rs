//! Terminal rendering: aligned text tables, ASCII sparklines, bar charts
//! and floor heatmaps — the output medium for every experiment binary
//! ("prints the same rows/series the paper reports").

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Self {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            out.push_str(&format!("== {} ==\n", self.title));
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a number in engineering style (k/M/G suffixes).
pub fn eng(value: f64) -> String {
    if !value.is_finite() {
        return "n/a".into();
    }
    let abs = value.abs();
    let (scaled, suffix) = if abs >= 1e9 {
        (value / 1e9, "G")
    } else if abs >= 1e6 {
        (value / 1e6, "M")
    } else if abs >= 1e3 {
        (value / 1e3, "k")
    } else {
        (value, "")
    };
    format!("{scaled:.2}{suffix}")
}

/// Formats watts with MW/kW units.
pub fn watts(value: f64) -> String {
    if !value.is_finite() {
        return "n/a".into();
    }
    if value.abs() >= 1e6 {
        format!("{:.2} MW", value / 1e6)
    } else if value.abs() >= 1e3 {
        format!("{:.1} kW", value / 1e3)
    } else {
        format!("{value:.0} W")
    }
}

/// Formats joules with MJ/GJ/TJ units.
pub fn joules(value: f64) -> String {
    if !value.is_finite() {
        return "n/a".into();
    }
    let abs = value.abs();
    if abs >= 1e12 {
        format!("{:.2} TJ", value / 1e12)
    } else if abs >= 1e9 {
        format!("{:.2} GJ", value / 1e9)
    } else if abs >= 1e6 {
        format!("{:.2} MJ", value / 1e6)
    } else {
        format!("{value:.0} J")
    }
}

/// Renders a sparkline of values using eighth-block characters.
/// NaNs render as spaces.
pub fn sparkline(values: &[f64]) -> String {
    const BLOCKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
    if finite.is_empty() {
        return " ".repeat(values.len());
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                ' '
            } else {
                let idx = (((v - lo) / span) * 7.0).round() as usize;
                BLOCKS[idx.min(7)]
            }
        })
        .collect()
}

/// Renders a horizontal bar scaled to `max_width` characters.
pub fn bar(value: f64, max_value: f64, max_width: usize) -> String {
    if !value.is_finite() || !max_value.is_finite() || max_value <= 0.0 {
        return String::new();
    }
    let n = ((value / max_value).clamp(0.0, 1.0) * max_width as f64).round() as usize;
    "#".repeat(n)
}

/// Renders a 2-D grid as an ASCII heatmap with a 10-level ramp.
/// `NaN` cells print `.` (missing — the Figure 17 grey/green cabinets).
pub fn heatmap(grid: &[Vec<f64>]) -> String {
    const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let finite: Vec<f64> = grid
        .iter()
        .flatten()
        .copied()
        .filter(|v| v.is_finite())
        .collect();
    if finite.is_empty() {
        return String::new();
    }
    let lo = finite.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = finite.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = String::new();
    for row in grid {
        for &v in row {
            if !v.is_finite() {
                out.push('·');
            } else {
                let idx = (((v - lo) / span) * 9.0).round() as usize;
                out.push(RAMP[idx.min(9)]);
            }
        }
        out.push('\n');
    }
    out.push_str(&format!(
        "scale: {} = {:.1} .. {} = {:.1}\n",
        RAMP[0], lo, RAMP[9], hi
    ));
    out
}

/// Formats a fraction as a percentage.
pub fn pct(fraction: f64) -> String {
    if !fraction.is_finite() {
        return "n/a".into();
    }
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        let lines: Vec<&str> = s.lines().collect();
        // All data lines have equal width.
        assert_eq!(lines[2].len(), lines[3].len());
        assert!(s.contains("long-name"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn eng_formatting() {
        assert_eq!(eng(1234.0), "1.23k");
        assert_eq!(eng(12.0), "12.00");
        assert_eq!(eng(2.5e7), "25.00M");
        assert_eq!(eng(3.1e9), "3.10G");
        assert_eq!(eng(f64::NAN), "n/a");
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(watts(5.5e6), "5.50 MW");
        assert_eq!(watts(1500.0), "1.5 kW");
        assert_eq!(watts(42.0), "42 W");
        assert_eq!(joules(2.0e12), "2.00 TJ");
        assert_eq!(joules(3.0e9), "3.00 GJ");
    }

    #[test]
    fn sparkline_shape() {
        let s = sparkline(&[0.0, 0.5, 1.0]);
        let chars: Vec<char> = s.chars().collect();
        assert_eq!(chars.len(), 3);
        assert_eq!(chars[0], '▁');
        assert_eq!(chars[2], '█');
        // NaN becomes a space.
        assert_eq!(sparkline(&[0.0, f64::NAN, 1.0]).chars().nth(1), Some(' '));
    }

    #[test]
    fn bar_scaling() {
        assert_eq!(bar(5.0, 10.0, 10), "#####");
        assert_eq!(bar(20.0, 10.0, 10).len(), 10, "clamps at max");
        assert_eq!(bar(0.0, 10.0, 10), "");
    }

    #[test]
    fn heatmap_renders_missing() {
        let grid = vec![vec![1.0, 2.0], vec![f64::NAN, 3.0]];
        let h = heatmap(&grid);
        assert!(h.contains('·'));
        let lines: Vec<&str> = h.lines().collect();
        assert_eq!(lines.len(), 3); // two rows + scale line
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(pct(0.969), "96.9%");
        assert_eq!(pct(f64::NAN), "n/a");
    }
}
