//! # summit-core
//!
//! Experiment drivers reproducing every table and figure of the SC '21
//! Summit power study on top of the digital twin (`summit-sim`), the
//! telemetry pipeline (`summit-telemetry`) and the analysis toolkit
//! (`summit-analysis`).
//!
//! - [`pipeline`] — scenario presets (statistical year, burst dynamics,
//!   telemetry measurement, failure year) shared across experiments.
//! - [`cache`] — the shared [`cache::ScenarioCache`]: fingerprint-keyed
//!   memoization of populations, dynamics runs, telemetry runs and
//!   failure logs, so a full-suite run generates each artifact once.
//! - [`experiments`] — one module per paper artifact (Tables 1-4,
//!   Figures 4-17), each with a scalable `Config`, a typed result, and a
//!   terminal rendering annotated with the paper's numbers; all studies
//!   register in [`experiments::registry`] behind the
//!   [`experiments::Experiment`] trait.
//! - [`json`] — the dependency-free JSON value the registry uses for
//!   experiment configs.
//! - [`report`] — text tables, sparklines, bars and floor heatmaps.
//! - [`fingerprint`] — the paper's Section 9 future work: job power
//!   fingerprints, k-means portraits, queued-job power prediction.
//! - [`monitoring`] — the near-real-time operations console of the
//!   paper's Figure 2 (dashboards + alerting over engine ticks).
//! - [`failure_prediction`] — logistic-regression GPU-failure prediction
//!   from queue-time features (the related-work ML direction).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod experiments;
pub mod failure_prediction;
pub mod fingerprint;
pub mod json;
pub mod monitoring;
pub mod pipeline;
pub mod report;

/// Picks an index with probability proportional to `weights`; `None` when
/// the weights are empty or sum to zero (k-means++ seeding helper).
pub(crate) fn weighted_pick<R: rand::Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            if x < w {
                return Some(i);
            }
            x -= w;
        }
    }
    weights.iter().rposition(|w| w.is_finite() && *w > 0.0)
}

/// Convenient re-exports.
pub mod prelude {
    pub use crate::cache::ScenarioCache;
    pub use crate::experiments;
    pub use crate::experiments::{Experiment, ExperimentError, REGISTRY};
    pub use crate::fingerprint::{
        evaluate as evaluate_fingerprints, extract, Fingerprint, KMeans, PortraitModel,
    };
    pub use crate::json::Json;
    pub use crate::pipeline::{
        cluster_power_sweep, quick_dynamics, run_burst_schedule, summer_t0, Burst, DynamicsRun,
        FailureScenario, PopulationScenario,
    };
    pub use crate::report::{bar, eng, heatmap, joules, pct, sparkline, watts, Table};
}
