//! GPU failure prediction from job features — the direction of the
//! paper's related work ([23] Nie et al., DSN'18; [24]) brought into the
//! reproduction: a from-scratch logistic-regression classifier that
//! predicts whether a job will encounter at least one GPU XID event, from
//! queue-time features only (size, walltime, workload fingerprint,
//! project history).
//!
//! The generator's ground truth makes the hypothesis testable: failure
//! intensity scales with node-hours and per-project/domain multipliers,
//! so a well-calibrated model must recover that structure.

use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use summit_sim::apps::{domain_character, project_failure_multiplier};
use summit_sim::jobs::SyntheticJob;
use summit_telemetry::records::XidEvent;

/// Number of model features (plus intercept handled internally).
pub const FEATURES: usize = 6;

/// Queue-time feature vector for one job.
pub fn job_features(job: &SyntheticJob) -> [f64; FEATURES] {
    [
        (job.record.node_hours().max(1e-3)).ln(),
        (job.record.node_count as f64).ln(),
        (job.record.walltime_s().max(1.0)).ln(),
        job.profile.gpu_intensity,
        domain_character(job.record.domain).failure_multiplier,
        project_failure_multiplier(&job.record.project),
    ]
}

/// Labels jobs: true when at least one XID event was attributed to the
/// job's allocation.
pub fn label_jobs(jobs: &[SyntheticJob], events: &[XidEvent]) -> Vec<bool> {
    let hit: HashSet<u64> = events
        .iter()
        .filter_map(|e| e.allocation_id.map(|a| a.0))
        .collect();
    jobs.iter()
        .map(|j| hit.contains(&j.record.allocation_id.0))
        .collect()
}

/// A logistic-regression model trained by batch gradient descent with L2
/// regularization, on z-normalized features.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LogisticModel {
    weights: [f64; FEATURES],
    bias: f64,
    feat_mean: [f64; FEATURES],
    feat_std: [f64; FEATURES],
    /// Training epochs executed.
    pub epochs: usize,
    /// Final training loss (mean negative log-likelihood + L2).
    pub final_loss: f64,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl LogisticModel {
    /// Trains on (features, label) pairs.
    ///
    /// # Panics
    /// If the training set is empty or single-class.
    pub fn train(
        data: &[[f64; FEATURES]],
        labels: &[bool],
        epochs: usize,
        learning_rate: f64,
        l2: f64,
    ) -> Self {
        assert_eq!(data.len(), labels.len());
        assert!(!data.is_empty(), "empty training set");
        let positives = labels.iter().filter(|&&l| l).count();
        assert!(
            positives > 0 && positives < labels.len(),
            "training set must contain both classes (got {positives}/{})",
            labels.len()
        );

        // Normalize features.
        let n = data.len() as f64;
        let mut mean = [0.0; FEATURES];
        for x in data {
            for f in 0..FEATURES {
                mean[f] += x[f] / n;
            }
        }
        let mut std = [0.0; FEATURES];
        for x in data {
            for f in 0..FEATURES {
                std[f] += (x[f] - mean[f]).powi(2) / n;
            }
        }
        for s in &mut std {
            *s = s.sqrt().max(1e-9);
        }
        let norm: Vec<[f64; FEATURES]> = data
            .iter()
            .map(|x| {
                let mut out = [0.0; FEATURES];
                for f in 0..FEATURES {
                    out[f] = (x[f] - mean[f]) / std[f];
                }
                out
            })
            .collect();

        let mut w = [0.0f64; FEATURES];
        let mut b = 0.0f64;
        let mut loss = f64::INFINITY;
        let mut epochs_run = 0;
        for epoch in 0..epochs {
            epochs_run = epoch + 1;
            let mut grad_w = [0.0f64; FEATURES];
            let mut grad_b = 0.0f64;
            let mut nll = 0.0f64;
            for (x, &y) in norm.iter().zip(labels) {
                let z = b + w.iter().zip(x).map(|(wi, xi)| wi * xi).sum::<f64>();
                let p = sigmoid(z);
                let t = if y { 1.0 } else { 0.0 };
                let err = p - t;
                for (g, xi) in grad_w.iter_mut().zip(x) {
                    *g += err * xi / n;
                }
                grad_b += err / n;
                nll -= t * p.max(1e-12).ln() + (1.0 - t) * (1.0 - p).max(1e-12).ln();
            }
            for f in 0..FEATURES {
                grad_w[f] += l2 * w[f];
                w[f] -= learning_rate * grad_w[f];
            }
            b -= learning_rate * grad_b;
            let new_loss = nll / n + 0.5 * l2 * w.iter().map(|wi| wi * wi).sum::<f64>();
            if (loss - new_loss).abs() < 1e-9 {
                loss = new_loss;
                break;
            }
            loss = new_loss;
        }

        Self {
            weights: w,
            bias: b,
            feat_mean: mean,
            feat_std: std,
            epochs: epochs_run,
            final_loss: loss,
        }
    }

    /// Predicted failure probability for a feature vector.
    pub fn predict(&self, x: &[f64; FEATURES]) -> f64 {
        let mut z = self.bias;
        for (((w, xi), m), sd) in self
            .weights
            .iter()
            .zip(x)
            .zip(&self.feat_mean)
            .zip(&self.feat_std)
        {
            z += w * (xi - m) / sd;
        }
        sigmoid(z)
    }

    /// The learned (normalized-space) weights.
    pub fn weights(&self) -> &[f64; FEATURES] {
        &self.weights
    }
}

/// Area under the ROC curve via the rank statistic (Mann-Whitney U).
pub fn auc(scores: &[f64], labels: &[bool]) -> f64 {
    assert_eq!(scores.len(), labels.len());
    let mut pairs: Vec<(f64, bool)> = scores.iter().copied().zip(labels.iter().copied()).collect();
    pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
    let n_pos = labels.iter().filter(|&&l| l).count() as f64;
    let n_neg = labels.len() as f64 - n_pos;
    if n_pos == 0.0 || n_neg == 0.0 {
        return f64::NAN;
    }
    // Average ranks over ties.
    let mut rank_sum_pos = 0.0;
    let mut i = 0usize;
    while i < pairs.len() {
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for p in &pairs[i..=j] {
            if p.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }
    (rank_sum_pos - n_pos * (n_pos + 1.0) / 2.0) / (n_pos * n_neg)
}

/// End-to-end evaluation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FailurePredictionReport {
    /// Training-set size.
    pub train_jobs: usize,
    /// Test-set size.
    pub test_jobs: usize,
    /// Positive-class prevalence in the test set.
    pub prevalence: f64,
    /// Area under the ROC curve.
    pub auc: f64,
    /// Accuracy at the 0.5 threshold.
    pub accuracy_at_half: f64,
    /// Feature weights in the order of [`job_features`].
    pub weights: [f64; FEATURES],
}

/// Generates labels from the failure model, splits 70/30, trains and
/// scores the classifier.
pub fn evaluate<R: Rng + ?Sized>(
    rng: &mut R,
    jobs: &[SyntheticJob],
    span_s: f64,
    node_count: usize,
) -> FailurePredictionReport {
    assert!(jobs.len() >= 50, "need a meaningful population");
    let model = summit_sim::failures::FailureModel::new(
        summit_sim::failures::FailureConfig::default(),
        node_count,
    );
    let events = model.generate(rng, jobs, node_count, 0.0, span_s);
    let labels = label_jobs(jobs, &events);
    let features: Vec<[f64; FEATURES]> = jobs.iter().map(job_features).collect();

    let split = jobs.len() * 7 / 10;
    let clf = LogisticModel::train(&features[..split], &labels[..split], 400, 0.5, 1e-4);

    let scores: Vec<f64> = features[split..].iter().map(|x| clf.predict(x)).collect();
    let test_labels = &labels[split..];
    let correct = scores
        .iter()
        .zip(test_labels)
        .filter(|(s, &l)| (**s >= 0.5) == l)
        .count();
    let prevalence = test_labels.iter().filter(|&&l| l).count() as f64 / test_labels.len() as f64;

    FailurePredictionReport {
        train_jobs: split,
        test_jobs: jobs.len() - split,
        prevalence,
        auc: auc(&scores, test_labels),
        accuracy_at_half: correct as f64 / scores.len() as f64,
        weights: *clf.weights(),
    }
}

impl FailurePredictionReport {
    /// Renders the evaluation.
    pub fn render(&self) -> String {
        let mut t = crate::report::Table::new(
            "GPU failure prediction from queue-time features (related work [23])",
            &["quantity", "value"],
        );
        t.row(vec![
            "train / test jobs".into(),
            format!("{} / {}", self.train_jobs, self.test_jobs),
        ]);
        t.row(vec![
            "failure prevalence".into(),
            crate::report::pct(self.prevalence),
        ]);
        t.row(vec!["ROC AUC".into(), format!("{:.3}", self.auc)]);
        t.row(vec![
            "accuracy @ 0.5".into(),
            crate::report::pct(self.accuracy_at_half),
        ]);
        let names = [
            "ln(node-hours)",
            "ln(nodes)",
            "ln(walltime)",
            "gpu intensity",
            "domain multiplier",
            "project multiplier",
        ];
        for (name, w) in names.iter().zip(self.weights) {
            t.row(vec![format!("weight: {name}"), format!("{w:+.3}")]);
        }
        t.render()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use summit_sim::jobs::JobGenerator;
    use summit_sim::spec::TOTAL_NODES;

    fn report() -> FailurePredictionReport {
        let span = 4.0 * 7.0 * 86400.0;
        let mut rng = StdRng::seed_from_u64(17);
        let mut gen = JobGenerator::new();
        let n_jobs = (840_000.0 * span / summit_sim::spec::YEAR_S) as usize;
        let jobs = gen.generate_population(&mut rng, n_jobs.min(30_000), 0.0, span);
        evaluate(&mut rng, &jobs, span, TOTAL_NODES)
    }

    #[test]
    fn auc_rank_statistic_correct() {
        // Perfect separation.
        assert_eq!(auc(&[0.1, 0.2, 0.8, 0.9], &[false, false, true, true]), 1.0);
        // Random-equivalent.
        let a = auc(&[0.5, 0.5, 0.5, 0.5], &[false, true, false, true]);
        assert!((a - 0.5).abs() < 1e-12);
        // Inverted.
        assert_eq!(auc(&[0.9, 0.8, 0.2, 0.1], &[false, false, true, true]), 0.0);
        assert!(auc(&[0.5], &[true]).is_nan());
    }

    #[test]
    fn model_learns_the_generator_structure() {
        let r = report();
        assert!(
            r.auc > 0.75,
            "node-hours x multipliers drive failures; AUC {} too low",
            r.auc
        );
        assert!(r.accuracy_at_half >= r.prevalence.max(1.0 - r.prevalence) - 0.05);
        // Exposure must carry positive weight.
        assert!(
            r.weights[0] > 0.0,
            "ln(node-hours) should predict failures, weight {}",
            r.weights[0]
        );
    }

    #[test]
    fn logistic_training_converges_on_synthetic() {
        // y = 1 iff x0 > 0 (clean separation in one feature).
        let mut data = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let x0 = (i as f64 - 100.0) / 30.0;
            let mut x = [0.0; FEATURES];
            x[0] = x0;
            data.push(x);
            labels.push(x0 > 0.0);
        }
        let m = LogisticModel::train(&data, &labels, 500, 1.0, 1e-5);
        assert!(m.weights()[0] > 1.0, "separating weight {}", m.weights()[0]);
        let mut hi = [0.0; FEATURES];
        hi[0] = 2.0;
        let mut lo = [0.0; FEATURES];
        lo[0] = -2.0;
        assert!(m.predict(&hi) > 0.9);
        assert!(m.predict(&lo) < 0.1);
    }

    #[test]
    #[should_panic(expected = "both classes")]
    fn training_rejects_single_class() {
        let data = vec![[0.0; FEATURES]; 10];
        let labels = vec![true; 10];
        LogisticModel::train(&data, &labels, 10, 0.1, 0.0);
    }
}
