//! GPU XID failure model (paper Section 6, Table 4, Figures 13-16).
//!
//! Reproduces the generating mechanisms the paper infers from Summit's
//! 251,859 XID events of 2020:
//!
//! - **Workload-driven baseline**: user-associated error rates scale with
//!   node-hours and differ strongly by domain/project ("distinct workload
//!   patterns are a major factor affecting GPU reliability", Fig 14).
//! - **Defective hardware**: "the presence of nodes accounting for a
//!   disproportionate share of non-software errors of each type heavily
//!   suggests the presence of manufacturing defects" — including the
//!   NVLINK "super-offender" node carrying 96.9 % of all NVLINK errors.
//! - **Correlated mechanisms**: internal micro-controller warnings and
//!   driver error-handling exceptions are extremely strongly correlated
//!   (Fig 13); double-bit errors, preemptive cleanups, page-retirement
//!   events and failures co-occur as "bad memory" incidents.
//! - **Placement effects**: slot-0 GPUs see more errors (single-GPU
//!   jobs), slot 4 shows elevated double-bit/page-retirement counts, and
//!   off-the-bus errors cluster on the CPU1-side GPUs (Fig 16).
//! - **Thermal signatures**: no error type is hot-skewed; double-bit,
//!   off-the-bus, µC warnings and page-retirement failures skew toward
//!   GPUs "that did not yet warm up" (Fig 15).

use rand::Rng;
use serde::{Deserialize, Serialize};
use summit_telemetry::ids::{CabinetId, GpuSlot, NodeId};
use summit_telemetry::records::{XidErrorKind, XidEvent};

use crate::apps::{domain_character, project_failure_multiplier};
use crate::jobs::SyntheticJob;
use crate::rng::{exponential, normal, poisson, weighted_index};
use crate::spec::TOTAL_NODES;

/// Paper Table 4 annual counts per kind (2020).
pub fn paper_annual_count(kind: XidErrorKind) -> u64 {
    use XidErrorKind::*;
    match kind {
        MemoryPageFault => 186_496,
        GraphicsEngineException => 32_339,
        StoppedProcessing => 22_649,
        NvlinkError => 8_736,
        PageRetirementEvent => 851,
        PageRetirementFailure => 210,
        DoubleBitError => 179,
        PreemptiveCleanup => 162,
        InternalMicrocontrollerWarning => 74,
        GraphicsEngineFault => 44,
        FallenOffTheBus => 31,
        InternalMicrocontrollerHalt => 29,
        DriverFirmwareError => 26,
        DriverErrorHandlingException => 21,
        CorruptedPushBufferStream => 11,
        GraphicsEngineClassError => 1,
    }
}

/// Paper Table 4 "max count per node" share per kind.
pub fn paper_node_concentration(kind: XidErrorKind) -> f64 {
    use XidErrorKind::*;
    match kind {
        MemoryPageFault => 0.006,
        GraphicsEngineException => 0.008,
        StoppedProcessing => 0.005,
        NvlinkError => 0.969,
        PageRetirementEvent => 0.043,
        PageRetirementFailure => 0.424,
        DoubleBitError => 0.184,
        PreemptiveCleanup => 0.201,
        InternalMicrocontrollerWarning => 0.446,
        GraphicsEngineFault => 0.114,
        FallenOffTheBus => 0.258,
        InternalMicrocontrollerHalt => 0.138,
        DriverFirmwareError => 0.077,
        DriverErrorHandlingException => 1.0,
        CorruptedPushBufferStream => 0.818,
        GraphicsEngineClassError => 1.0,
    }
}

/// Reference node-hours of the paper year: 4,626 nodes x 366 d x ~85 %
/// allocation.
pub const PAPER_YEAR_NODE_HOURS: f64 = TOTAL_NODES as f64 * 366.0 * 24.0 * 0.85;

/// Slot-preference weights per kind (Figure 16 shapes).
fn slot_weights(kind: XidErrorKind) -> [f64; 6] {
    use XidErrorKind::*;
    match kind {
        // Elevated double-bit / page-retirement counts on GPU 4.
        DoubleBitError | PageRetirementEvent => [1.2, 0.9, 0.8, 0.9, 2.4, 0.8],
        // Off-the-bus clusters on the CPU1-side GPUs.
        FallenOffTheBus => [1.1, 0.7, 0.6, 1.2, 1.4, 1.3],
        // Default: reverse of the water order — GPU 0 leads (single-GPU
        // jobs), counts fall along the slots.
        _ => [1.6, 1.15, 0.95, 0.85, 0.8, 0.75],
    }
}

/// Thermal-extremity z-score generator per kind (Figure 15 shapes).
fn sample_thermal_z<R: Rng + ?Sized>(
    rng: &mut R,
    kind: XidErrorKind,
    regime: ThermalRegime,
) -> f64 {
    use XidErrorKind::*;
    if regime == ThermalRegime::TitanAirCooled {
        // Titan's hardware errors cluster on the hottest chips: mass at
        // high z with a tail to low (left-skewed).
        if matches!(
            kind,
            DoubleBitError | FallenOffTheBus | PageRetirementEvent | PageRetirementFailure
        ) {
            return 1.2 - exponential(rng, 1.0);
        }
        return normal(rng, 0.2, 1.0);
    }
    match kind {
        // Right-skewed: most events on not-yet-warm GPUs, long tail up.
        DoubleBitError
        | FallenOffTheBus
        | InternalMicrocontrollerWarning
        | PageRetirementFailure => -0.9 + exponential(rng, 1.0),
        // Graphics engine faults: the one potentially left-skewed type.
        GraphicsEngineFault => 0.7 - exponential(rng, 1.0),
        // Everything else: symmetric, no overheating signature.
        _ => normal(rng, 0.0, 1.0),
    }
}

/// One whole-cabinet telemetry outage: every node of the cabinet goes
/// dark (all-NaN frames) for `[start_s, end_s)` — the transient version
/// of the paper's Figure 17 "bright green cabinet".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CabinetOutage {
    /// The dark cabinet.
    pub cabinet: CabinetId,
    /// Outage start (s).
    pub start_s: f64,
    /// Outage end (s, exclusive).
    pub end_s: f64,
}

impl CabinetOutage {
    /// True while the outage blanks the cabinet's telemetry.
    pub fn is_active(&self, t: f64) -> bool {
        t >= self.start_s && t < self.end_s
    }
}

/// Thermal regime of the failure model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ThermalRegime {
    /// Summit's observed behaviour: direct liquid cooling keeps chips
    /// cool; no failure type is hot-skewed (paper Section 6).
    SummitLiquidCooled,
    /// Titan-like behaviour: air-cooled GPUs where "high-temperature was
    /// a reason for the major errors" — hardware failures concentrate on
    /// hot chips (left-skewed temperature distributions).
    TitanAirCooled,
}

/// Failure model configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FailureConfig {
    /// Scales every rate (1.0 = paper year).
    pub rate_scale: f64,
    /// The NVLINK super-offender node.
    pub super_offender: NodeId,
    /// Thermal regime (Summit vs Titan-like).
    pub thermal_regime: ThermalRegime,
    /// Seed.
    pub seed: u64,
}

impl Default for FailureConfig {
    fn default() -> Self {
        Self {
            rate_scale: 1.0,
            super_offender: NodeId(2077),
            thermal_regime: ThermalRegime::SummitLiquidCooled,
            seed: 0x5EED,
        }
    }
}

/// The failure generator.
#[derive(Debug, Clone)]
pub struct FailureModel {
    config: FailureConfig,
    /// Weak-memory nodes hosting "bad memory" incidents, with weights.
    weak_memory_nodes: Vec<(NodeId, f64)>,
    /// The defect node for the µC-warning/driver-error pair.
    uc_defect_node: NodeId,
}

impl FailureModel {
    /// Builds the model; defect-node identities derive from the seed.
    pub fn new(config: FailureConfig, node_count: usize) -> Self {
        assert!(node_count > 2, "need a plausible floor");
        let pick = |salt: u64| {
            NodeId(
                (crate::rng::stable_jitter(config.seed ^ salt, 1).abs() * (node_count - 1) as f64)
                    as u32,
            )
        };
        // ~32 weak-memory nodes with geometric weights: the head nodes
        // dominate, which yields the paper's 18-42 % concentrations.
        let mut weak = Vec::new();
        let mut w = 1.0;
        for i in 0..32u64 {
            weak.push((pick(0x33 + i * 7), w));
            w *= 0.88;
        }
        Self {
            config,
            weak_memory_nodes: weak,
            uc_defect_node: pick(0xAB),
        }
    }

    /// Convenience: paper configuration on the full floor.
    pub fn paper() -> Self {
        Self::new(FailureConfig::default(), TOTAL_NODES)
    }

    /// The NVLINK super-offender node id.
    pub fn super_offender(&self) -> NodeId {
        self.config.super_offender
    }

    fn pseudo_block_start(&self, job: &SyntheticJob, node_count: usize) -> u32 {
        let span = node_count as u64;
        let h = job.seed.wrapping_mul(0xD6E8FEB86659FD93);
        let maxstart = span.saturating_sub(job.record.node_count as u64).max(1);
        (h % maxstart) as u32
    }

    /// Samples an in-job GPU core temperature consistent with the job's
    /// workload (used when the engine's thermal state is not available).
    fn sketch_temperature<R: Rng + ?Sized>(&self, rng: &mut R, job: &SyntheticJob, z: f64) -> f64 {
        // Mean in-job GPU temp from intensity: idle ~25 C, full ~50 C.
        let gi = job.profile.gpu_intensity;
        let mean = 24.0 + 27.0 * gi;
        let std = 4.5;
        let _ = rng;
        mean + z * std
    }

    /// Failure weight of a job: node-hours scaled by its domain and
    /// project multipliers.
    fn job_weight(job: &SyntheticJob) -> f64 {
        job.record.node_hours()
            * domain_character(job.record.domain).failure_multiplier
            * project_failure_multiplier(&job.record.project)
    }

    /// Generates the user-associated (job-driven) events for one job.
    /// `norm` converts a job weight into the fraction of each kind's
    /// annual total this job should carry (see [`FailureModel::generate`]).
    fn job_events<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        job: &SyntheticJob,
        node_count: usize,
        norm: f64,
        out: &mut Vec<XidEvent>,
    ) {
        let weight = Self::job_weight(job);
        let block = self.pseudo_block_start(job, node_count);

        use XidErrorKind::*;
        // Job-driven kinds and the share of their annual total that the
        // baseline process carries (the rest comes from defect streams).
        const JOB_KINDS: [(XidErrorKind, f64); 7] = [
            (MemoryPageFault, 0.97),
            (GraphicsEngineException, 0.95),
            (StoppedProcessing, 0.97),
            (NvlinkError, 0.031), // all the rest is the super-offender
            (GraphicsEngineFault, 0.85),
            (InternalMicrocontrollerHalt, 0.85),
            (DriverFirmwareError, 0.9),
        ];
        for (kind, share) in JOB_KINDS {
            let annual = paper_annual_count(kind) as f64 * share;
            let mean = annual * weight * norm;
            let count = poisson(rng, mean);
            for _ in 0..count {
                let rank = rng.gen_range(0..job.record.node_count);
                let node = NodeId((block + rank).min(node_count as u32 - 1));
                let slot = GpuSlot(weighted_index(rng, &slot_weights(kind)) as u8);
                let time = job.record.begin_time + rng.gen::<f64>() * job.record.walltime_s();
                let z = sample_thermal_z(rng, kind, self.config.thermal_regime);
                out.push(XidEvent {
                    kind,
                    node,
                    slot,
                    time,
                    allocation_id: Some(job.record.allocation_id),
                    gpu_core_temp: self.sketch_temperature(rng, job, z),
                    temp_zscore: z,
                });
            }
        }
    }

    /// Generates the NVLINK super-offender stream over `[t0, t0+span)`.
    fn super_offender_events<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        t0: f64,
        span_s: f64,
        year_fraction: f64,
        out: &mut Vec<XidEvent>,
    ) {
        let mean = paper_annual_count(XidErrorKind::NvlinkError) as f64
            * paper_node_concentration(XidErrorKind::NvlinkError)
            * year_fraction
            * self.config.rate_scale;
        let count = poisson(rng, mean);
        // A permanently-faulty link on one slot pair of one node.
        for _ in 0..count {
            let z = normal(rng, -0.3, 0.8);
            out.push(XidEvent {
                kind: XidErrorKind::NvlinkError,
                node: self.config.super_offender,
                slot: GpuSlot(if rng.gen::<bool>() { 1 } else { 2 }),
                time: t0 + rng.gen::<f64>() * span_s,
                allocation_id: None,
                gpu_core_temp: 32.0 + 4.0 * z,
                temp_zscore: z,
            });
        }
    }

    /// Generates "bad memory" incidents: clustered double-bit /
    /// page-retirement / preemptive-cleanup bursts on weak-memory nodes.
    fn memory_incidents<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        t0: f64,
        span_s: f64,
        year_fraction: f64,
        out: &mut Vec<XidEvent>,
    ) {
        use XidErrorKind::*;
        // ~220 incidents per paper year reproduce the Table 4 counts.
        let incidents = poisson(rng, 220.0 * year_fraction * self.config.rate_scale);
        let weights: Vec<f64> = self.weak_memory_nodes.iter().map(|(_, w)| *w).collect();
        for _ in 0..incidents {
            let (node, _) = self.weak_memory_nodes[weighted_index(rng, &weights)];
            let slot = GpuSlot(weighted_index(rng, &slot_weights(DoubleBitError)) as u8);
            let time = t0 + rng.gen::<f64>() * span_s;
            let z = sample_thermal_z(rng, DoubleBitError, self.config.thermal_regime);
            // Summit: cap double-bit temperatures near the paper's 46.1 C
            // max. Titan-like chips run far hotter under air cooling.
            let temp = match self.config.thermal_regime {
                ThermalRegime::SummitLiquidCooled => (30.0 + 4.5 * z).min(46.0),
                ThermalRegime::TitanAirCooled => 68.0 + 8.0 * z,
            };
            let mut push = |kind: XidErrorKind, dt: f64| {
                out.push(XidEvent {
                    kind,
                    node,
                    slot,
                    time: time + dt,
                    allocation_id: None,
                    gpu_core_temp: temp,
                    temp_zscore: z,
                });
            };
            // Every incident retires pages; double-bit errors and cleanups
            // accompany most incidents. Retirement *failures* concentrate
            // on the head weak node (its ECC repeatedly fails to retire),
            // reproducing the paper's 42.4 % vs 4.3 % concentration split.
            let retirements = 1 + poisson(rng, 2.9);
            for k in 0..retirements {
                push(PageRetirementEvent, k as f64);
            }
            let prf_count = if node == self.weak_memory_nodes[0].0 {
                1 + poisson(rng, 1.5)
            } else if rng.gen::<f64>() < 0.45 {
                1
            } else {
                0
            };
            for k in 0..prf_count {
                push(PageRetirementFailure, 0.5 + k as f64 * 0.1);
            }
            if rng.gen::<f64>() < 0.80 {
                push(DoubleBitError, 0.2);
            }
            if rng.gen::<f64>() < 0.72 {
                push(PreemptiveCleanup, 1.5);
            }
            if rng.gen::<f64>() < 0.12 {
                push(FallenOffTheBus, 2.0);
            }
        }
        // Independent off-the-bus events (irregular HPC tasks).
        let bus = poisson(rng, 26.0 * year_fraction * self.config.rate_scale);
        for _ in 0..bus {
            let z = sample_thermal_z(rng, FallenOffTheBus, self.config.thermal_regime);
            out.push(XidEvent {
                kind: FallenOffTheBus,
                node: NodeId(rng.gen_range(0..TOTAL_NODES as u32)),
                slot: GpuSlot(weighted_index(rng, &slot_weights(FallenOffTheBus)) as u8),
                time: t0 + rng.gen::<f64>() * span_s,
                allocation_id: None,
                gpu_core_temp: 28.0 + 5.0 * z,
                temp_zscore: z,
            });
        }
        // Corrupted push-buffer streams: concentrated on one weak node.
        let cpb = poisson(
            rng,
            paper_annual_count(CorruptedPushBufferStream) as f64
                * year_fraction
                * self.config.rate_scale,
        );
        for i in 0..cpb {
            let node = if (i as f64 / cpb.max(1) as f64) < 0.82 {
                self.weak_memory_nodes[0].0
            } else {
                NodeId(rng.gen_range(0..TOTAL_NODES as u32))
            };
            let z = normal(rng, 0.0, 1.0);
            out.push(XidEvent {
                kind: CorruptedPushBufferStream,
                node,
                slot: GpuSlot(rng.gen_range(0..6)),
                time: t0 + rng.gen::<f64>() * span_s,
                allocation_id: None,
                gpu_core_temp: 30.0 + 4.0 * z,
                temp_zscore: z,
            });
        }
        // The single graphics-engine class error of the year.
        if rng.gen::<f64>() < (year_fraction * self.config.rate_scale).min(1.0) {
            out.push(XidEvent {
                kind: GraphicsEngineClassError,
                node: NodeId(rng.gen_range(0..TOTAL_NODES as u32)),
                slot: GpuSlot(rng.gen_range(0..6)),
                time: t0 + rng.gen::<f64>() * span_s,
                allocation_id: None,
                gpu_core_temp: 35.0,
                temp_zscore: 0.0,
            });
        }
    }

    /// Generates the correlated µC-warning / driver-error pair streams.
    fn microcontroller_events<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        t0: f64,
        span_s: f64,
        year_fraction: f64,
        out: &mut Vec<XidEvent>,
    ) {
        use XidErrorKind::*;
        let scale = year_fraction * self.config.rate_scale;
        // Defect-node stream: 44.6 % of warnings on one node; every driver
        // error handling exception follows a warning on that node.
        let defect_warnings = poisson(rng, 33.0 * scale);
        for _ in 0..defect_warnings {
            let time = t0 + rng.gen::<f64>() * span_s;
            let z = sample_thermal_z(
                rng,
                InternalMicrocontrollerWarning,
                self.config.thermal_regime,
            );
            let slot = GpuSlot(3);
            let temp = 27.0 + 4.5 * z;
            out.push(XidEvent {
                kind: InternalMicrocontrollerWarning,
                node: self.uc_defect_node,
                slot,
                time,
                allocation_id: None,
                gpu_core_temp: temp,
                temp_zscore: z,
            });
            // Soft error escalates to a driver error most of the time —
            // "soft errors such as micro-controller warnings can be
            // efficient for early diagnostics ... of fatal driver errors".
            if rng.gen::<f64>() < 0.62 {
                out.push(XidEvent {
                    kind: DriverErrorHandlingException,
                    node: self.uc_defect_node,
                    slot,
                    time: time + 2.0,
                    allocation_id: None,
                    gpu_core_temp: temp,
                    temp_zscore: z,
                });
            }
        }
        // Background warnings spread thinly.
        let background = poisson(rng, 41.0 * scale);
        for _ in 0..background {
            let z = sample_thermal_z(
                rng,
                InternalMicrocontrollerWarning,
                self.config.thermal_regime,
            );
            out.push(XidEvent {
                kind: InternalMicrocontrollerWarning,
                node: NodeId(rng.gen_range(0..TOTAL_NODES as u32)),
                slot: GpuSlot(
                    weighted_index(rng, &slot_weights(InternalMicrocontrollerWarning)) as u8,
                ),
                time: t0 + rng.gen::<f64>() * span_s,
                allocation_id: None,
                gpu_core_temp: 27.0 + 4.5 * z,
                temp_zscore: z,
            });
        }
    }

    /// Generates the full event log for a job population spanning
    /// `[t0, t0 + span_s)`. `year_fraction` should be `span_s / YEAR_S`
    /// so hardware background streams scale with the observation window.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        jobs: &[SyntheticJob],
        node_count: usize,
        t0: f64,
        span_s: f64,
    ) -> Vec<XidEvent> {
        assert!(span_s > 0.0, "span must be positive");
        let year_fraction = span_s / crate::spec::YEAR_S;
        let mut out = Vec::new();
        // Normalize job-driven rates so the population carries exactly
        // `year_fraction` of each kind's annual total in expectation,
        // regardless of how the caller scaled its job population.
        let total_weight: f64 = jobs.iter().map(Self::job_weight).sum();
        if total_weight > 0.0 {
            let norm = year_fraction * self.config.rate_scale / total_weight;
            for job in jobs {
                self.job_events(rng, job, node_count, norm, &mut out);
            }
        }
        self.super_offender_events(rng, t0, span_s, year_fraction, &mut out);
        self.memory_incidents(rng, t0, span_s, year_fraction, &mut out);
        self.microcontroller_events(rng, t0, span_s, year_fraction, &mut out);
        out.sort_by(|a, b| a.time.total_cmp(&b.time));
        out
    }

    /// Samples whole-cabinet telemetry outage bursts over
    /// `[t0, t0 + span_s)`: Poisson arrivals at roughly four outages per
    /// cabinet-year (scaled by `rate_scale`), each lasting ten minutes
    /// to a few hours. Sorted by start time; an empty floor or
    /// non-positive span yields no outages.
    pub fn cabinet_outages<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        cabinets: usize,
        t0: f64,
        span_s: f64,
    ) -> Vec<CabinetOutage> {
        if cabinets == 0 || span_s <= 0.0 || span_s.is_nan() {
            return Vec::new();
        }
        let mean = cabinets as f64 * 4.0 * span_s / crate::spec::YEAR_S * self.config.rate_scale;
        let n = poisson(rng, mean);
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let start = t0 + rng.gen::<f64>() * span_s;
            let duration = 600.0 + exponential(rng, 1.0) * 7200.0;
            out.push(CabinetOutage {
                cabinet: CabinetId(rng.gen_range(0..cabinets) as u16),
                start_s: start,
                end_s: start + duration,
            });
        }
        out.sort_by(|a, b| a.start_s.total_cmp(&b.start_s));
        out
    }
}

/// Tallies events per kind.
pub fn count_by_kind(events: &[XidEvent]) -> [u64; 16] {
    let mut counts = [0u64; 16];
    for e in events {
        counts[e.kind.index()] += 1;
    }
    counts
}

/// Per-kind, per-node count matrix (the Figure 13 input): rows indexed by
/// kind, columns by node id.
pub fn node_count_matrix(events: &[XidEvent], node_count: usize) -> Vec<Vec<f64>> {
    let mut m = vec![vec![0.0f64; node_count]; 16];
    for e in events {
        if e.node.index() < node_count {
            m[e.kind.index()][e.node.index()] += 1.0;
        }
    }
    m
}

/// Max per-node share of each kind (the Table 4 right column).
pub fn max_node_share(events: &[XidEvent], node_count: usize) -> [f64; 16] {
    let m = node_count_matrix(events, node_count);
    let counts = count_by_kind(events);
    let mut out = [0.0f64; 16];
    for (k, row) in m.iter().enumerate() {
        if counts[k] > 0 {
            let max = row.iter().cloned().fold(0.0f64, f64::max);
            out[k] = max / counts[k] as f64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::jobs::JobGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A ~6-week population at paper intensity.
    fn events_and_jobs(weeks: f64) -> (Vec<XidEvent>, Vec<SyntheticJob>) {
        let span = weeks * 7.0 * 86400.0;
        let mut rng = StdRng::seed_from_u64(99);
        let mut g = JobGenerator::new();
        // Paper-rate job traffic: 840k jobs over the year.
        let n_jobs = (840_000.0 * span / crate::spec::YEAR_S) as usize;
        let jobs = g.generate_population(&mut rng, n_jobs, 0.0, span);
        let model = FailureModel::paper();
        let events = model.generate(&mut rng, &jobs, TOTAL_NODES, 0.0, span);
        (events, jobs)
    }

    #[test]
    fn composition_ordering_matches_table4() {
        let (events, _) = events_and_jobs(6.0);
        let counts = count_by_kind(&events);
        use XidErrorKind::*;
        // The big three user-associated kinds dominate in order.
        assert!(counts[MemoryPageFault.index()] > counts[GraphicsEngineException.index()]);
        assert!(counts[GraphicsEngineException.index()] > counts[StoppedProcessing.index()]);
        assert!(counts[StoppedProcessing.index()] > counts[NvlinkError.index()]);
        // Hardware kinds are orders of magnitude rarer.
        assert!(counts[DoubleBitError.index()] < counts[NvlinkError.index()]);
        assert!(counts[MemoryPageFault.index()] > 100 * counts[PageRetirementEvent.index()].max(1));
    }

    #[test]
    fn annual_totals_near_paper() {
        let (events, _) = events_and_jobs(6.0);
        let frac = 6.0 * 7.0 * 86400.0 / crate::spec::YEAR_S;
        let counts = count_by_kind(&events);
        let expect = paper_annual_count(XidErrorKind::MemoryPageFault) as f64 * frac;
        let got = counts[XidErrorKind::MemoryPageFault.index()] as f64;
        // Domain/project multipliers average near 1; allow 40 % band.
        assert!(
            (got / expect - 1.0).abs() < 0.4,
            "memory page faults: got {got}, expected ~{expect}"
        );
        let total: u64 = counts.iter().sum();
        let expect_total = 251_859.0 * frac;
        assert!(
            (total as f64 / expect_total - 1.0).abs() < 0.4,
            "total {total} vs expected ~{expect_total}"
        );
    }

    #[test]
    fn nvlink_super_offender_concentration() {
        let (events, _) = events_and_jobs(6.0);
        let shares = max_node_share(&events, TOTAL_NODES);
        let s = shares[XidErrorKind::NvlinkError.index()];
        assert!(
            s > 0.85,
            "paper: 96.9 % of NVLINK errors on one node, got {s}"
        );
    }

    #[test]
    fn memory_page_faults_spread_widely() {
        let (events, _) = events_and_jobs(6.0);
        let shares = max_node_share(&events, TOTAL_NODES);
        let s = shares[XidErrorKind::MemoryPageFault.index()];
        assert!(s < 0.05, "page faults are not defect-concentrated, got {s}");
    }

    #[test]
    fn uc_warning_driver_error_correlated() {
        let (events, _) = events_and_jobs(12.0);
        let m = node_count_matrix(&events, TOTAL_NODES);
        let r = summit_analysis::correlation::pearson(
            &m[XidErrorKind::InternalMicrocontrollerWarning.index()],
            &m[XidErrorKind::DriverErrorHandlingException.index()],
        );
        assert!(
            r > 0.8,
            "paper: extremely strong uC-warning/driver-error correlation, got r={r}"
        );
    }

    #[test]
    fn memory_cluster_correlated() {
        let (events, _) = events_and_jobs(12.0);
        let m = node_count_matrix(&events, TOTAL_NODES);
        use XidErrorKind::*;
        let r1 = summit_analysis::correlation::pearson(
            &m[DoubleBitError.index()],
            &m[PageRetirementEvent.index()],
        );
        let r2 = summit_analysis::correlation::pearson(
            &m[DoubleBitError.index()],
            &m[PreemptiveCleanup.index()],
        );
        assert!(r1 > 0.5, "double-bit vs page-retirement r={r1}");
        assert!(r2 > 0.5, "double-bit vs preemptive-cleanup r={r2}");
        // And an unrelated pair stays low.
        let r3 = summit_analysis::correlation::pearson(
            &m[MemoryPageFault.index()],
            &m[DriverErrorHandlingException.index()],
        );
        assert!(
            r3.abs() < 0.3,
            "unrelated pair should not correlate, r={r3}"
        );
    }

    #[test]
    fn thermal_skews_match_figure15() {
        let (events, _) = events_and_jobs(12.0);
        let zs_of = |kind: XidErrorKind| -> Vec<f64> {
            events
                .iter()
                .filter(|e| e.kind == kind)
                .map(|e| e.temp_zscore)
                .collect()
        };
        use XidErrorKind::*;
        let dbe = summit_analysis::stats::skewness(&zs_of(DoubleBitError));
        assert!(dbe > 0.3, "double-bit must be right-skewed, got {dbe}");
        let bus = summit_analysis::stats::skewness(&zs_of(FallenOffTheBus));
        assert!(bus > 0.2, "off-the-bus must be right-skewed, got {bus}");
        let mpf = summit_analysis::stats::skewness(&zs_of(MemoryPageFault));
        assert!(mpf.abs() < 0.25, "page faults stay symmetric, got {mpf}");
    }

    #[test]
    fn double_bit_temps_capped_low() {
        let (events, _) = events_and_jobs(12.0);
        let max_temp = events
            .iter()
            .filter(|e| e.kind == XidErrorKind::DoubleBitError)
            .map(|e| e.gpu_core_temp)
            .fold(f64::NEG_INFINITY, f64::max);
        // Paper: highest double-bit temperature was 46.1 C.
        assert!(max_temp <= 46.5, "double-bit max temp {max_temp}");
    }

    #[test]
    fn slot_zero_leads_default_kinds() {
        let (events, _) = events_and_jobs(6.0);
        let mut slots = [0u64; 6];
        for e in events
            .iter()
            .filter(|e| e.kind == XidErrorKind::MemoryPageFault)
        {
            slots[e.slot.index()] += 1;
        }
        assert!(
            slots[0] > slots[1] && slots[1] > slots[2],
            "slots {slots:?}"
        );
        assert!(slots[0] > slots[5]);
    }

    #[test]
    fn slot_four_elevated_for_double_bit() {
        let (events, _) = events_and_jobs(24.0);
        let mut slots = [0u64; 6];
        for e in events.iter().filter(|e| {
            e.kind == XidErrorKind::DoubleBitError || e.kind == XidErrorKind::PageRetirementEvent
        }) {
            slots[e.slot.index()] += 1;
        }
        let others_max = slots
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != 4)
            .map(|(_, &c)| c)
            .max()
            .unwrap();
        assert!(
            slots[4] > others_max,
            "paper Fig 16: GPU 4 leads double-bit/page-retirement, got {slots:?}"
        );
    }

    #[test]
    fn cabinet_outages_are_rare_and_bounded() {
        let model = FailureModel::paper();
        let mut rng = StdRng::seed_from_u64(7);
        // One year over the full floor: expect ~4 outages per cabinet.
        let outages = model.cabinet_outages(&mut rng, 257, 0.0, crate::spec::YEAR_S);
        let per_cabinet = outages.len() as f64 / 257.0;
        assert!(
            (2.0..8.0).contains(&per_cabinet),
            "expected ~4 outages/cabinet-year, got {per_cabinet}"
        );
        for o in &outages {
            assert!(o.cabinet.0 < 257);
            assert!(o.end_s > o.start_s + 600.0 - 1e-9);
            assert!(o.is_active(o.start_s));
            assert!(!o.is_active(o.end_s));
        }
        assert!(outages.windows(2).all(|w| w[0].start_s <= w[1].start_s));
        // Degenerate inputs yield no outages rather than panicking.
        assert!(model.cabinet_outages(&mut rng, 0, 0.0, 1.0).is_empty());
        assert!(model.cabinet_outages(&mut rng, 10, 0.0, 0.0).is_empty());
    }

    #[test]
    fn failure_rates_differ_by_project() {
        let (events, jobs) = events_and_jobs(6.0);
        // Failures per node-hour by project (only job-attributed events).
        use std::collections::HashMap;
        let mut nh: HashMap<&str, f64> = HashMap::new();
        let mut by_alloc: HashMap<u64, &str> = HashMap::new();
        for j in &jobs {
            *nh.entry(j.record.project.as_str()).or_default() += j.record.node_hours();
            by_alloc.insert(j.record.allocation_id.0, j.record.project.as_str());
        }
        let mut counts: HashMap<&str, u64> = HashMap::new();
        for e in &events {
            if let Some(a) = e.allocation_id {
                if let Some(p) = by_alloc.get(&a.0) {
                    *counts.entry(p).or_default() += 1;
                }
            }
        }
        let mut rates: Vec<f64> = counts
            .iter()
            .filter_map(|(p, &c)| {
                let h = nh.get(*p).copied().unwrap_or(0.0);
                (h > 5000.0).then(|| c as f64 / h)
            })
            .collect();
        rates.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(rates.len() > 10);
        let hi = rates[rates.len() - 1];
        let lo = rates[rates.len() / 10];
        assert!(
            hi / lo.max(1e-9) > 3.0,
            "project failure rates must vary widely: hi={hi} lo={lo}"
        );
    }
}
