//! The time-domain simulation driver.
//!
//! Advances the whole data center one tick (default 1 Hz, the paper's
//! native telemetry rate) at a time: scheduler state, per-node workload
//! utilization, component power, component thermals, facility cooling,
//! and the measurement layer (BMC sensors, MSB meters). Node updates run
//! in parallel with rayon.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use summit_telemetry::batch::FrameBatch;
use summit_telemetry::catalog;
use summit_telemetry::ids::{CabinetId, GpuSlot, NodeId, Socket};
use summit_telemetry::records::{CepRecord, NodeFrame};

use crate::facility::{Facility, FacilityConfig};
use crate::failures::CabinetOutage;
use crate::msb::MsbMeterModel;
use crate::power::{NodeUtilization, PowerModel};
use crate::scheduler::Scheduler;
use crate::spec::TOTAL_NODES;
use crate::thermal::{NodeThermals, ThermalModel};
use crate::topology::Topology;
use crate::weather::Weather;
use crate::workload::WorkloadSignal;

/// Engine configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Number of cabinets on the floor (257 = full Summit).
    pub cabinets: usize,
    /// Tick length in seconds (1.0 = the paper's native rate).
    pub dt_s: f64,
    /// Master seed for all stochastic submodels.
    pub seed: u64,
    /// Facility configuration.
    pub facility: FacilityConfig,
    /// Non-compute IT power (storage, network, service nodes) included in
    /// the PUE's IT denominator, scaled to the floor fraction.
    pub infrastructure_it_w: f64,
    /// Cabinet whose telemetry is missing (the Figure 17 bright-green
    /// cabinet), if any.
    pub missing_cabinet: Option<CabinetId>,
    /// Window `[start, end)` during which temperature telemetry is lost
    /// (the paper's spring-2020 aggregation-path outage), if any.
    pub temp_outage: Option<(f64, f64)>,
    /// Transient whole-cabinet telemetry outages (typically sampled via
    /// [`crate::failures::FailureModel::cabinet_outages`]): affected
    /// nodes emit all-NaN frames while an outage is active.
    pub cabinet_outages: Vec<CabinetOutage>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cabinets: 257,
            dt_s: 1.0,
            seed: 2020,
            facility: FacilityConfig::default(),
            infrastructure_it_w: 0.6e6,
            missing_cabinet: None,
            temp_outage: None,
            cabinet_outages: Vec::new(),
        }
    }
}

impl EngineConfig {
    /// A small-floor config for tests and examples: facility hydraulics
    /// and base loads scale with the floor fraction so PUE stays
    /// representative.
    pub fn small(cabinets: usize) -> Self {
        let frac = cabinets as f64 / 257.0;
        let mut facility = FacilityConfig::default();
        facility.mtw_flow_kg_s *= frac;
        facility.pump_base_w *= frac;
        Self {
            cabinets,
            facility,
            infrastructure_it_w: 0.6e6 * frac,
            ..Default::default()
        }
    }
}

/// What to collect on a tick beyond the always-on summary.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct StepOptions {
    /// Emit full telemetry frames (one per node, ~106 metrics).
    pub frames: bool,
    /// Collect the per-node sensor input power vector.
    pub node_power: bool,
    /// Collect per-GPU power and core temperature vectors (len nodes*6).
    pub gpu_state: bool,
}

/// Output of one tick.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TickOutput {
    /// Tick start time (s).
    pub t: f64,
    /// True total compute power (W).
    pub true_compute_power_w: f64,
    /// Sensor-summed compute power (what the telemetry path reports, W).
    pub sensor_compute_power_w: f64,
    /// Total IT power (compute + infrastructure, W).
    pub it_power_w: f64,
    /// Facility record for this tick.
    pub cep: CepRecord,
    /// Per-MSB physical meter readings (W).
    pub msb_meter_w: [f64; 5],
    /// Cluster GPU core temperature mean/max (°C; NaN during outages).
    pub gpu_temp_mean_c: f64,
    /// Gpu temp max c.
    pub gpu_temp_max_c: f64,
    /// Cluster CPU temperature mean/max (°C; NaN during outages).
    pub cpu_temp_mean_c: f64,
    /// Cpu temp max c.
    pub cpu_temp_max_c: f64,
    /// Running job count and busy-node count.
    pub running_jobs: usize,
    /// Busy nodes.
    pub busy_nodes: usize,
    /// Optional payloads per [`StepOptions`].
    pub frames: Option<Vec<NodeFrame>>,
    /// Node sensor power w.
    pub node_sensor_power_w: Option<Vec<f32>>,
    /// Per-GPU power (len nodes*6), if requested.
    pub gpu_power_w: Option<Vec<f32>>,
    /// Per-GPU core temperature (len nodes*6), if requested.
    pub gpu_temp_c: Option<Vec<f32>>,
}

/// The simulation engine.
///
/// ```
/// use summit_sim::engine::{Engine, EngineConfig};
/// // Two cabinets (36 nodes) at 1 Hz.
/// let mut engine = Engine::new(EngineConfig::small(2), 0.0);
/// let tick = engine.step();
/// assert_eq!(tick.t, 0.0);
/// assert!(tick.true_compute_power_w > 36.0 * 400.0);
/// assert!(tick.cep.pue() > 1.0);
/// ```
pub struct Engine {
    config: EngineConfig,
    topology: Topology,
    power_model: PowerModel,
    thermal_model: ThermalModel,
    weather: Weather,
    facility: Facility,
    msb_model: MsbMeterModel,
    scheduler: Scheduler,
    thermals: Vec<NodeThermals>,
    /// Tick-loop arenas, reused every tick so the steady-state tick
    /// path performs no per-tick (let alone per-frame) heap allocation.
    assignment_scratch: Vec<Option<(WorkloadSignal, f64, u32)>>,
    node_power_scratch: Vec<f64>,
    t: f64,
    tick: u64,
}

struct NodeTick {
    true_power: f64,
    sensor_power: f64,
    gpu_power: [f64; 6],
    cpu_power: [f64; 2],
    gpu_temp: [f64; 6],
    cpu_temp: [f64; 2],
    thermals: NodeThermals,
    busy: bool,
}

impl Engine {
    /// Minimum nodes per parallel chunk in the per-node tick map: each
    /// node tick is only a few closed-form model evaluations, so
    /// chunks below this waste more time on task hand-off than they
    /// recover through load balance. With the persistent pool a
    /// hand-off is one atomic claim (no spawn), so smaller chunks pay
    /// off: at sub-full scales the tick map still splits into enough
    /// tasks to keep every worker busy through the tail.
    const TICK_MIN_CHUNK: usize = 32;

    /// Builds an engine from config, starting at `t0` seconds.
    pub fn new(config: EngineConfig, t0: f64) -> Self {
        let topology = if config.cabinets == 257 {
            Topology::summit()
        } else {
            Topology::scaled(config.cabinets)
        };
        let node_count = topology.node_count();
        let power_model = PowerModel::new(config.seed);
        let thermal_model = ThermalModel::new(config.seed);
        let weather = Weather::oak_ridge(config.seed);
        let idle_estimate =
            node_count as f64 * crate::spec::NODE_IDLE_POWER_W + config.infrastructure_it_w;
        let facility = Facility::new(config.facility, idle_estimate);
        let supply = crate::spec::MTW_SUPPLY_NOMINAL_C;
        Self {
            config,
            power_model,
            thermal_model,
            weather,
            facility,
            msb_model: MsbMeterModel::with_seed(0x1157),
            scheduler: Scheduler::new(node_count),
            thermals: vec![NodeThermals::at_water(supply + 8.0); node_count],
            assignment_scratch: Vec::new(),
            node_power_scratch: Vec::new(),
            topology,
            t: t0,
            tick: 0,
        }
    }

    /// Current simulation time (s).
    pub fn time(&self) -> f64 {
        self.t
    }

    /// The floor topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Scheduler access (submit jobs, inspect allocations).
    pub fn scheduler(&mut self) -> &mut Scheduler {
        &mut self.scheduler
    }

    /// Immutable scheduler access.
    pub fn scheduler_ref(&self) -> &Scheduler {
        &self.scheduler
    }

    /// Power model access.
    pub fn power_model(&self) -> &PowerModel {
        &self.power_model
    }

    /// Thermal model access.
    pub fn thermal_model(&self) -> &ThermalModel {
        &self.thermal_model
    }

    fn temps_available(&self) -> bool {
        match self.config.temp_outage {
            Some((a, b)) => !(self.t >= a && self.t < b),
            None => true,
        }
    }

    fn cabinet_missing(&self, node: NodeId) -> bool {
        let cab = self.topology.cabinet_of(node);
        if self.config.missing_cabinet == Some(cab) {
            return true;
        }
        self.config
            .cabinet_outages
            .iter()
            .any(|o| o.cabinet == cab && o.is_active(self.t))
    }

    /// Advances one tick and returns its output.
    pub fn step(&mut self) -> TickOutput {
        self.step_opts(&StepOptions::default())
    }

    /// Advances one tick collecting the requested detail.
    pub fn step_opts(&mut self, opts: &StepOptions) -> TickOutput {
        self.step_impl(opts, None)
    }

    /// Advances one tick like [`Engine::step_opts`], but writes this
    /// tick's telemetry frames into the caller's columnar [`FrameBatch`]
    /// (reset to the floor's node count) instead of allocating a
    /// per-frame row vector; [`TickOutput::frames`] stays `None`. The
    /// batch rows are bit-identical to the frames [`Engine::step_opts`]
    /// would emit with `opts.frames` set.
    pub fn step_batch(&mut self, opts: &StepOptions, batch: &mut FrameBatch) -> TickOutput {
        self.step_impl(opts, Some(batch))
    }

    fn step_impl(
        &mut self,
        opts: &StepOptions,
        frame_batch: Option<&mut FrameBatch>,
    ) -> TickOutput {
        let dt = self.config.dt_s;
        let t = self.t;
        let tick = self.tick;
        self.scheduler.advance(t);

        // node -> (signal, t_rel, rank) assignment table (arena: the
        // table is reused across ticks, refilled in place).
        let node_count = self.topology.node_count();
        let mut assignment = std::mem::take(&mut self.assignment_scratch);
        assignment.clear();
        assignment.resize(node_count, None);
        for p in self.scheduler.running() {
            let sig = p.signal();
            let t_rel = t - p.start_time;
            for (rank, n) in p.nodes.iter().enumerate() {
                assignment[n.index()] = Some((sig, t_rel, rank as u32));
            }
        }

        let pm = self.power_model;
        let tm = self.thermal_model;
        let supply_c = crate::spec::MTW_SUPPLY_NOMINAL_C;
        let msb = self.msb_model;
        let thermals_in = &self.thermals;

        // Per-node tick work is light (a few model evaluations), so
        // keep chunks at >= TICK_MIN_CHUNK nodes to amortize task
        // hand-off; the chunk grid stays thread-count independent.
        // Iterating the index range over the *borrowed* thermal state
        // (instead of taking the vector by value) keeps the identical
        // chunk grid while avoiding the per-tick source binning and
        // thermal-vector rebuild.
        let results: Vec<NodeTick> = (0..node_count)
            .into_par_iter()
            .with_min_len(Self::TICK_MIN_CHUNK)
            .map(|i| {
                let mut th = thermals_in[i];
                let node = NodeId(i as u32);
                let (util, busy) = match &assignment[i] {
                    Some((sig, t_rel, rank)) => (sig.node_utilization(*t_rel, *rank), true),
                    None => (NodeUtilization::idle(), false),
                };
                let power = pm.node_power(node, &util);
                tm.step(node, &mut th, &power, supply_c, dt);
                let sensor = msb.sensor_reading(node, tick, power.input_w);
                NodeTick {
                    true_power: power.input_w,
                    sensor_power: sensor,
                    gpu_power: power.gpu_w,
                    cpu_power: power.cpu_w,
                    gpu_temp: th.gpu_core_c,
                    cpu_temp: th.cpu_c,
                    thermals: th,
                    busy,
                }
            })
            .collect();
        self.assignment_scratch = assignment;

        for (slot, r) in self.thermals.iter_mut().zip(&results) {
            *slot = r.thermals;
        }

        let true_compute: f64 = results.iter().map(|r| r.true_power).sum();
        let temps_ok = self.temps_available();
        let mut sensor_compute = 0.0;
        let mut gpu_t_sum = 0.0;
        let mut gpu_t_max = f64::NEG_INFINITY;
        let mut gpu_t_n = 0usize;
        let mut cpu_t_sum = 0.0;
        let mut cpu_t_max = f64::NEG_INFINITY;
        let mut cpu_t_n = 0usize;
        let mut busy_nodes = 0usize;
        for (i, r) in results.iter().enumerate() {
            if r.busy {
                busy_nodes += 1;
            }
            if self.cabinet_missing(NodeId(i as u32)) {
                continue;
            }
            sensor_compute += r.sensor_power;
            if temps_ok {
                for &g in &r.gpu_temp {
                    gpu_t_sum += g;
                    gpu_t_max = gpu_t_max.max(g);
                    gpu_t_n += 1;
                }
                for &c in &r.cpu_temp {
                    cpu_t_sum += c;
                    cpu_t_max = cpu_t_max.max(c);
                    cpu_t_n += 1;
                }
            }
        }

        let it_power = true_compute + self.config.infrastructure_it_w;
        let wet_bulb = self.weather.wet_bulb_c(t);
        let cep = self.facility.step(t, it_power, wet_bulb, dt);

        // MSB meters read the true power plus distribution overheads
        // (arena: the per-node power vector is reused across ticks).
        let mut true_node_power = std::mem::take(&mut self.node_power_scratch);
        true_node_power.clear();
        true_node_power.extend(results.iter().map(|r| r.true_power));
        let mut msb_meter_w = [0.0f64; 5];
        for m in summit_telemetry::ids::Msb::ALL {
            msb_meter_w[m.index()] =
                self.msb_model
                    .meter_reading(&self.topology, m, &true_node_power);
        }
        self.node_power_scratch = true_node_power;

        // Optional payloads.
        let frames = match frame_batch {
            Some(batch) => {
                batch.reset(node_count);
                for (i, r) in results.iter().enumerate() {
                    let node = NodeId(i as u32);
                    let row = batch.push_row(node, self.t);
                    if !self.cabinet_missing(node) {
                        // All-NaN rows stay as reset left them: the
                        // bright-green cabinet.
                        write_frame_metrics(r, temps_ok, &mut |m, v| batch.set(row, m, v));
                    }
                }
                None
            }
            None => opts.frames.then(|| {
                results
                    .iter()
                    .enumerate()
                    .map(|(i, r)| self.build_frame(NodeId(i as u32), r, temps_ok))
                    .collect()
            }),
        };
        let node_sensor_power_w = opts.node_power.then(|| {
            results
                .iter()
                .enumerate()
                .map(|(i, r)| {
                    if self.cabinet_missing(NodeId(i as u32)) {
                        f32::NAN
                    } else {
                        r.sensor_power as f32
                    }
                })
                .collect()
        });
        let (gpu_power_w, gpu_temp_c) = if opts.gpu_state {
            let mut pw = Vec::with_capacity(node_count * 6);
            let mut tc = Vec::with_capacity(node_count * 6);
            for (i, r) in results.iter().enumerate() {
                let missing = self.cabinet_missing(NodeId(i as u32));
                for s in 0..6 {
                    pw.push(if missing {
                        f32::NAN
                    } else {
                        r.gpu_power[s] as f32
                    });
                    tc.push(if missing || !temps_ok {
                        f32::NAN
                    } else {
                        r.gpu_temp[s] as f32
                    });
                }
            }
            (Some(pw), Some(tc))
        } else {
            (None, None)
        };

        self.t += dt;
        self.tick += 1;

        TickOutput {
            t,
            true_compute_power_w: true_compute,
            sensor_compute_power_w: sensor_compute,
            it_power_w: it_power,
            cep,
            msb_meter_w,
            gpu_temp_mean_c: if temps_ok && gpu_t_n > 0 {
                gpu_t_sum / gpu_t_n as f64
            } else {
                f64::NAN
            },
            gpu_temp_max_c: if temps_ok && gpu_t_n > 0 {
                gpu_t_max
            } else {
                f64::NAN
            },
            cpu_temp_mean_c: if temps_ok && cpu_t_n > 0 {
                cpu_t_sum / cpu_t_n as f64
            } else {
                f64::NAN
            },
            cpu_temp_max_c: if temps_ok && cpu_t_n > 0 {
                cpu_t_max
            } else {
                f64::NAN
            },
            running_jobs: self.scheduler.running().len(),
            busy_nodes,
            frames,
            node_sensor_power_w,
            gpu_power_w,
            gpu_temp_c,
        }
    }

    fn build_frame(&self, node: NodeId, r: &NodeTick, temps_ok: bool) -> NodeFrame {
        let mut f = NodeFrame::empty(node, self.t);
        if self.cabinet_missing(node) {
            return f; // all-NaN frame: the bright-green cabinet
        }
        write_frame_metrics(r, temps_ok, &mut |m, v| f.set(m, v));
        f
    }

    /// Runs `n` ticks, returning their outputs (summary level).
    pub fn run(&mut self, n: usize) -> Vec<TickOutput> {
        (0..n).map(|_| self.step()).collect()
    }
}

/// Writes one node tick's metric readings through `set` — the single
/// source of frame content shared by the row path
/// ([`Engine::step_opts`] building [`NodeFrame`]s) and the columnar
/// path ([`Engine::step_batch`] filling a [`FrameBatch`]), so the two
/// layouts cannot drift.
fn write_frame_metrics(r: &NodeTick, temps_ok: bool, set: &mut dyn FnMut(catalog::MetricId, f64)) {
    set(catalog::input_power(), r.sensor_power);
    set(catalog::ps_input_power(0), r.sensor_power * 0.5);
    set(catalog::ps_input_power(1), r.sensor_power * 0.5);
    for s in Socket::ALL {
        set(catalog::cpu_power(s), r.cpu_power[s.index()]);
    }
    for g in GpuSlot::ALL {
        set(catalog::gpu_power(g), r.gpu_power[g.index()]);
        if temps_ok {
            set(catalog::gpu_core_temp(g), r.gpu_temp[g.index()]);
            set(catalog::gpu_mem_temp(g), r.thermals.gpu_mem_c[g.index()]);
        }
    }
    if temps_ok {
        for s in Socket::ALL {
            set(catalog::cpu_pkg_temp(s), r.cpu_temp[s.index()]);
        }
    }
}

/// Reference scale: full Summit floor node count.
pub fn full_floor_nodes() -> usize {
    TOTAL_NODES
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::jobs::JobGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_engine() -> Engine {
        Engine::new(EngineConfig::small(10), 0.0)
    }

    #[test]
    fn idle_cluster_power_scales_with_floor() {
        let mut e = small_engine();
        let out = e.step();
        let per_node = out.true_compute_power_w / 180.0;
        assert!(
            (450.0..650.0).contains(&per_node),
            "idle per-node power {per_node}"
        );
        assert_eq!(out.running_jobs, 0);
        assert_eq!(out.busy_nodes, 0);
    }

    #[test]
    fn job_raises_power_then_completes() {
        let mut e = small_engine();
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = JobGenerator::new();
        let mut job = g.generate_with_class(&mut rng, 5.0, 5);
        job.record.node_count = 40;
        job.record.end_time = job.record.begin_time + 120.0;
        job.profile.gpu_intensity = 0.9;
        job.profile.ramp_s = 10.0;
        e.scheduler().submit(job);

        let idle = e.step().true_compute_power_w;
        let mut peak: f64 = 0.0;
        for _ in 0..80 {
            peak = peak.max(e.step().true_compute_power_w);
        }
        assert!(
            peak > idle + 40.0 * 800.0,
            "40 GPU-heavy nodes must add tens of kW: idle {idle}, peak {peak}"
        );
        // After walltime the job completes and power returns.
        for _ in 0..120 {
            e.step();
        }
        let back = e.step();
        assert_eq!(back.running_jobs, 0);
        assert!(back.true_compute_power_w < idle + 10_000.0);
    }

    #[test]
    fn sensor_power_tracks_true_power() {
        let mut e = small_engine();
        let out = e.step();
        let ratio = out.sensor_compute_power_w / out.true_compute_power_w;
        assert!((0.96..1.0).contains(&ratio), "sensor/true ratio {ratio}");
    }

    #[test]
    fn gpu_temps_warm_up_under_load() {
        let mut e = small_engine();
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = JobGenerator::new();
        let mut job = g.generate_with_class(&mut rng, 5.0, 5);
        job.record.node_count = 45;
        job.record.end_time = job.record.begin_time + 600.0;
        job.profile.gpu_intensity = 0.95;
        job.profile.oscillation_depth = 0.0;
        e.scheduler().submit(job);
        let first = e.step();
        for _ in 0..120 {
            e.step();
        }
        let later = e.step();
        assert!(
            later.gpu_temp_max_c > first.gpu_temp_max_c + 3.0,
            "max GPU temp should rise under load: {} -> {}",
            first.gpu_temp_max_c,
            later.gpu_temp_max_c
        );
        assert!(later.gpu_temp_max_c < 65.0);
    }

    #[test]
    fn missing_cabinet_blanks_telemetry_but_not_truth() {
        let mut cfg = EngineConfig::small(3);
        cfg.missing_cabinet = Some(CabinetId(1));
        let mut e = Engine::new(cfg, 0.0);
        let out = e.step_opts(&StepOptions {
            frames: true,
            node_power: true,
            gpu_state: true,
        });
        let frames = out.frames.as_ref().unwrap();
        // Nodes 18..36 are in cabinet 1: their frames are all-NaN.
        assert!(frames[20].get(catalog::input_power()).is_nan());
        assert!(!frames[2].get(catalog::input_power()).is_nan());
        let np = out.node_sensor_power_w.as_ref().unwrap();
        assert!(np[20].is_nan() && !np[0].is_nan());
        // Sensor sum excludes the cabinet; true power includes it.
        assert!(out.sensor_compute_power_w < out.true_compute_power_w * 0.95);
    }

    #[test]
    fn cabinet_outage_burst_blanks_window_only() {
        let mut cfg = EngineConfig::small(3);
        cfg.cabinet_outages = vec![CabinetOutage {
            cabinet: CabinetId(1),
            start_s: 2.0,
            end_s: 5.0,
        }];
        let mut e = Engine::new(cfg, 0.0);
        let opts = StepOptions {
            frames: true,
            ..StepOptions::default()
        };
        let mut dark_ticks = 0;
        for tick in 0..8 {
            let out = e.step_opts(&opts);
            let frames = out.frames.as_ref().unwrap();
            let dark = frames[20].get(catalog::input_power()).is_nan();
            assert_eq!(
                dark,
                (2..5).contains(&tick),
                "tick {tick}: outage window is [2, 5)"
            );
            // Other cabinets keep reporting throughout.
            assert!(!frames[2].get(catalog::input_power()).is_nan());
            dark_ticks += dark as u32;
        }
        assert_eq!(dark_ticks, 3);
    }

    #[test]
    fn temp_outage_blanks_temperatures() {
        let mut cfg = EngineConfig::small(2);
        cfg.temp_outage = Some((0.0, 100.0));
        let mut e = Engine::new(cfg, 0.0);
        let out = e.step();
        assert!(out.gpu_temp_mean_c.is_nan());
        assert!(out.cpu_temp_max_c.is_nan());
        // Power is unaffected.
        assert!(out.true_compute_power_w > 0.0);
        // After the outage, temps return.
        for _ in 0..100 {
            e.step();
        }
        let later = e.step();
        assert!(later.gpu_temp_mean_c.is_finite());
    }

    #[test]
    fn frames_carry_catalog_metrics() {
        let mut e = Engine::new(EngineConfig::small(1), 0.0);
        let out = e.step_opts(&StepOptions {
            frames: true,
            ..Default::default()
        });
        let frames = out.frames.unwrap();
        assert_eq!(frames.len(), 18);
        let f = &frames[0];
        assert!(f.get(catalog::input_power()) > 100.0);
        assert!(f.get(catalog::gpu_core_temp(GpuSlot(0))) > 15.0);
        assert!(f.get(catalog::gpu_power(GpuSlot(3))) > 10.0);
    }

    #[test]
    fn step_batch_matches_step_opts_frames_bitwise() {
        // The columnar tick path must reproduce the row path exactly,
        // dark cabinet and all.
        let mut cfg = EngineConfig::small(3);
        cfg.missing_cabinet = Some(CabinetId(1));
        let mut rows_engine = Engine::new(cfg.clone(), 0.0);
        let mut cols_engine = Engine::new(cfg, 0.0);
        let opts = StepOptions {
            frames: true,
            ..StepOptions::default()
        };
        let mut batch = FrameBatch::new();
        for _ in 0..5 {
            let row_out = rows_engine.step_opts(&opts);
            let col_out = cols_engine.step_batch(&opts, &mut batch);
            assert!(col_out.frames.is_none(), "batch path keeps frames out");
            assert_eq!(
                row_out.true_compute_power_w.to_bits(),
                col_out.true_compute_power_w.to_bits()
            );
            assert_eq!(
                row_out.sensor_compute_power_w.to_bits(),
                col_out.sensor_compute_power_w.to_bits()
            );
            let frames = row_out.frames.unwrap();
            assert_eq!(batch.len(), frames.len());
            for (i, f) in frames.iter().enumerate() {
                let g = batch.read_frame(i);
                assert_eq!(g.node, f.node);
                assert_eq!(g.t_sample.to_bits(), f.t_sample.to_bits());
                for (a, b) in g.values.iter().zip(&f.values) {
                    assert_eq!(a.to_bits(), b.to_bits());
                }
            }
        }
    }

    #[test]
    fn msb_meters_cover_all_power() {
        let mut e = small_engine();
        let out = e.step();
        let meter_total: f64 = out.msb_meter_w.iter().sum();
        // Meters include overheads: above true compute power.
        assert!(meter_total > out.true_compute_power_w);
        assert!(meter_total < out.true_compute_power_w * 1.2);
    }

    #[test]
    fn pue_reasonable_from_engine() {
        let mut e = small_engine();
        let mut last = e.step();
        for _ in 0..300 {
            last = e.step();
        }
        let pue = last.cep.pue();
        assert!((1.0..1.45).contains(&pue), "engine PUE {pue}");
    }

    #[test]
    fn time_advances_by_dt() {
        let mut cfg = EngineConfig::small(1);
        cfg.dt_s = 10.0;
        let mut e = Engine::new(cfg, 100.0);
        assert_eq!(e.time(), 100.0);
        let o = e.step();
        assert_eq!(o.t, 100.0);
        assert_eq!(e.time(), 110.0);
    }
}
