//! Compute-floor topology: cabinets, rows, MSB power feeds, coordinates.
//!
//! The paper's floor (Figure 1-(c)) holds 257 water-cooled cabinets of 18
//! nodes across rows h09-h36, fed by five main switchboards (Figure 4
//! compares MSB meters against per-node sensor summation). Figure 17
//! renders cabinet-level heatmaps on this layout, and Figure 14/16 use
//! node/slot placement. This module provides the bijections between node
//! ids and physical coordinates.

use serde::{Deserialize, Serialize};
use summit_telemetry::ids::{CabinetId, Msb, NodeId};

use crate::spec::{NODES_PER_CABINET, TOTAL_CABINETS, TOTAL_NODES};

/// Number of cabinet rows on the floor.
pub const FLOOR_ROWS: usize = 13;
/// Cabinets per full row (the last row is short: 257 = 12*20 + 17).
pub const CABINETS_PER_ROW: usize = 20;

/// Physical placement of one node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLocation {
    /// Cabinet.
    pub cabinet: CabinetId,
    /// Row index on the floor (0-based, paper rows h09..h36).
    pub row: u8,
    /// Cabinet position within the row (0-based).
    pub col: u8,
    /// Node height within the cabinet (0 = bottom .. 17 = top).
    pub height: u8,
    /// The switchboard feeding this cabinet.
    pub msb: Msb,
}

/// The static floor topology.
#[derive(Debug, Clone)]
pub struct Topology {
    node_count: usize,
}

impl Default for Topology {
    fn default() -> Self {
        Self::summit()
    }
}

impl Topology {
    /// The full Summit floor: 4,626 nodes in 257 cabinets.
    pub fn summit() -> Self {
        Self {
            node_count: TOTAL_NODES,
        }
    }

    /// A reduced floor for fast tests/CI: `cabinets` full cabinets.
    pub fn scaled(cabinets: usize) -> Self {
        assert!(
            (1..=TOTAL_CABINETS).contains(&cabinets),
            "cabinet count must be in 1..={TOTAL_CABINETS}"
        );
        Self {
            node_count: cabinets * NODES_PER_CABINET,
        }
    }

    /// Number of nodes on this floor.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of cabinets on this floor.
    pub fn cabinet_count(&self) -> usize {
        self.node_count / NODES_PER_CABINET
    }

    /// Iterates all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count as u32).map(NodeId)
    }

    /// The cabinet holding a node.
    pub fn cabinet_of(&self, node: NodeId) -> CabinetId {
        assert!(node.index() < self.node_count, "node {node} off the floor");
        CabinetId((node.index() / NODES_PER_CABINET) as u16)
    }

    /// The nodes inside a cabinet (18 consecutive ids).
    pub fn nodes_in_cabinet(&self, cabinet: CabinetId) -> impl Iterator<Item = NodeId> {
        assert!(
            cabinet.index() < self.cabinet_count(),
            "cabinet {} off the floor",
            cabinet.index()
        );
        let base = cabinet.index() * NODES_PER_CABINET;
        (base..base + NODES_PER_CABINET).map(|i| NodeId(i as u32))
    }

    /// Full physical location of a node.
    pub fn location(&self, node: NodeId) -> NodeLocation {
        let cabinet = self.cabinet_of(node);
        let row = (cabinet.index() / CABINETS_PER_ROW) as u8;
        let col = (cabinet.index() % CABINETS_PER_ROW) as u8;
        let height = (node.index() % NODES_PER_CABINET) as u8;
        NodeLocation {
            cabinet,
            row,
            col,
            height,
            msb: self.msb_of(cabinet),
        }
    }

    /// The switchboard feeding a cabinet. The floor is split into five
    /// contiguous MSB zones (the paper's node-to-MSB mapping was "manually
    /// created from the floormap"; contiguous zoning preserves the
    /// property that each MSB carries ~1/5 of the floor).
    pub fn msb_of(&self, cabinet: CabinetId) -> Msb {
        let zone = cabinet.index() * Msb::ALL.len() / self.cabinet_count();
        Msb::ALL[zone.min(Msb::ALL.len() - 1)]
    }

    /// All cabinets fed by one switchboard.
    pub fn cabinets_of_msb(&self, msb: Msb) -> Vec<CabinetId> {
        (0..self.cabinet_count() as u16)
            .map(CabinetId)
            .filter(|&c| self.msb_of(c) == msb)
            .collect()
    }

    /// All nodes fed by one switchboard.
    pub fn nodes_of_msb(&self, msb: Msb) -> Vec<NodeId> {
        self.cabinets_of_msb(msb)
            .into_iter()
            .flat_map(|c| self.nodes_in_cabinet(c))
            .collect()
    }

    /// Floor grid dimensions `(rows, cols)` for heatmap rendering.
    pub fn grid_dims(&self) -> (usize, usize) {
        let rows = self.cabinet_count().div_ceil(CABINETS_PER_ROW);
        (rows, CABINETS_PER_ROW.min(self.cabinet_count()))
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn summit_dimensions() {
        let t = Topology::summit();
        assert_eq!(t.node_count(), 4626);
        assert_eq!(t.cabinet_count(), 257);
        let (rows, cols) = t.grid_dims();
        assert!(rows * cols >= 257);
    }

    #[test]
    fn node_cabinet_bijection() {
        let t = Topology::scaled(10);
        let mut seen = vec![false; t.node_count()];
        for c in 0..t.cabinet_count() {
            for n in t.nodes_in_cabinet(CabinetId(c as u16)) {
                assert_eq!(t.cabinet_of(n).index(), c);
                assert!(!seen[n.index()], "node appears in two cabinets");
                seen[n.index()] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn locations_consistent() {
        let t = Topology::summit();
        let loc = t.location(NodeId(0));
        assert_eq!(loc.row, 0);
        assert_eq!(loc.col, 0);
        assert_eq!(loc.height, 0);
        let last = t.location(NodeId(4625));
        assert_eq!(last.height, 17);
        assert_eq!(last.cabinet.index(), 256);
    }

    #[test]
    fn msb_zones_are_balanced() {
        let t = Topology::summit();
        let mut counts = [0usize; 5];
        for m in Msb::ALL {
            counts[m.index()] = t.nodes_of_msb(m).len();
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 4626, "every node is fed by exactly one MSB");
        for &c in &counts {
            // Each MSB carries roughly a fifth of the floor (+-2 cabinets).
            assert!(
                (c as i64 - (4626 / 5) as i64).abs() <= 2 * NODES_PER_CABINET as i64,
                "unbalanced MSB: {c} nodes"
            );
        }
    }

    #[test]
    fn msb_zones_are_contiguous() {
        let t = Topology::summit();
        let mut last = 0usize;
        for c in 0..t.cabinet_count() {
            let z = t.msb_of(CabinetId(c as u16)).index();
            assert!(z >= last, "MSB zones must be contiguous along the floor");
            last = z;
        }
        assert_eq!(last, 4);
    }

    #[test]
    #[should_panic(expected = "off the floor")]
    fn out_of_range_node_panics() {
        let t = Topology::scaled(1);
        t.cabinet_of(NodeId(18));
    }

    #[test]
    fn scaled_floor() {
        let t = Topology::scaled(3);
        assert_eq!(t.node_count(), 54);
        assert_eq!(t.cabinet_count(), 3);
        assert_eq!(t.nodes().count(), 54);
    }
}
