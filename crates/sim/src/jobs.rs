//! Synthetic job population generator.
//!
//! Generates the 840k-job 2020 population with the class mix, node-count
//! distributions, and walltime distributions the paper reports in
//! Figures 6-8 and Table 3:
//! - classes 1-2 are rare leadership jobs, class 5 dominates the count;
//! - over 60 % of class-1 jobs use > 4,000 nodes, with a spike at 4,096;
//! - 80 % of class-2 jobs run below 1,500 nodes, most at 1,000/1,024;
//! - 80 % of class-1 jobs finish within ~43 minutes, class-2 within ~3 h;
//! - class-5 walltimes pile up against the 120-minute scheduler limit.

use rand::Rng;
use serde::{Deserialize, Serialize};
use summit_telemetry::ids::AllocationId;
use summit_telemetry::records::{JobRecord, ScienceDomain};

use crate::apps::{sample_domain, sample_profile_for_project, sample_project};
use crate::rng::{lognormal, weighted_index};
#[cfg(test)]
use crate::spec::MAX_JOB_NODES;
use crate::spec::{class_of_node_count, class_spec};
use crate::workload::AppProfile;

/// Paper job count for 2020 ("over 840k Summit jobs").
pub const PAPER_JOB_COUNT: usize = 840_000;

/// Share of job traffic per class (1..=5). Heavily bottom-weighted: the
/// paper's Figure 6 small classes carry almost all the job count while the
/// leadership classes carry the power peaks.
/// Calibrated so the population's annual node-hours land near 85 % of
/// machine capacity (the utilization behind the paper's 5-6 MW average).
pub const CLASS_MIX: [f64; 5] = [0.002, 0.008, 0.04, 0.10, 0.85];

/// A fully-specified synthetic job.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticJob {
    /// The scheduler job record.
    pub record: JobRecord,
    /// The application workload profile.
    pub profile: AppProfile,
    /// Seed for the job's workload signal (per-node jitter etc).
    pub seed: u64,
}

impl SyntheticJob {
    /// Scheduling class shortcut.
    pub fn class(&self) -> u8 {
        self.record.class
    }
}

/// The job generator.
#[derive(Debug, Clone)]
pub struct JobGenerator {
    next_id: u64,
}

impl Default for JobGenerator {
    fn default() -> Self {
        Self::new()
    }
}

impl JobGenerator {
    /// Creates a generator.
    pub fn new() -> Self {
        Self { next_id: 1 }
    }

    /// Samples a node count for `class` per the paper's distributions.
    pub fn sample_node_count<R: Rng + ?Sized>(&self, rng: &mut R, class: u8) -> u32 {
        let spec = class_spec(class);
        let (lo, hi) = spec.node_range;
        let n = match class {
            1 => match weighted_index(rng, &[0.35, 0.25, 0.40]) {
                0 => 4096,
                1 => hi, // full machine: spec::MAX_JOB_NODES
                _ => rng.gen_range(lo..=hi),
            },
            2 => match weighted_index(rng, &[0.30, 0.20, 0.50]) {
                0 => 1024,
                1 => 1000,
                _ => {
                    // Log-leaning toward the low end: 80 % below 1,500.
                    let x = lognormal(rng, (1100.0f64).ln(), 0.35);
                    x.round() as u32
                }
            },
            3..=5 => {
                // Mixture of power-of-two spikes and a log-uniform floor.
                if rng.gen::<f64>() < 0.35 {
                    let pows: Vec<u32> = (0..16)
                        .map(|k| 1u32 << k)
                        .filter(|&p| p >= lo && p <= hi)
                        .collect();
                    if pows.is_empty() {
                        rng.gen_range(lo..=hi)
                    } else {
                        pows[rng.gen_range(0..pows.len())]
                    }
                } else {
                    // Log-uniform over the class range.
                    let u: f64 = rng.gen();
                    let x = (lo as f64).ln() + u * ((hi as f64).ln() - (lo as f64).ln());
                    x.exp().round() as u32
                }
            }
            _ => unreachable!("classes are 1..=5"),
        };
        n.clamp(lo, hi)
    }

    /// Samples a walltime (s) for `class`, respecting the Table 3 limit.
    pub fn sample_walltime<R: Rng + ?Sized>(&self, rng: &mut R, class: u8) -> f64 {
        let limit_s = class_spec(class).max_walltime_h * 3600.0;
        let (median_s, sigma): (f64, f64) = match class {
            1 => (1200.0, 0.91), // 80 % under ~43 min
            2 => (3600.0, 1.15), // 80 % under ~3 h
            3 => (1800.0, 1.00),
            4 => (1100.0, 1.00),
            5 => (1100.0, 1.30), // clipping creates the 120-min pile-up
            _ => unreachable!(),
        };
        lognormal(rng, median_s.ln(), sigma).clamp(60.0, limit_s)
    }

    /// Samples a scheduling class from [`CLASS_MIX`].
    pub fn sample_class<R: Rng + ?Sized>(&self, rng: &mut R) -> u8 {
        (weighted_index(rng, &CLASS_MIX) + 1) as u8
    }

    /// Generates one job arriving at `begin_time`.
    pub fn generate<R: Rng + ?Sized>(&mut self, rng: &mut R, begin_time: f64) -> SyntheticJob {
        let class = self.sample_class(rng);
        self.generate_with_class(rng, begin_time, class)
    }

    /// Generates one job of a specific class.
    pub fn generate_with_class<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        begin_time: f64,
        class: u8,
    ) -> SyntheticJob {
        let node_count = self.sample_node_count(rng, class);
        debug_assert_eq!(class_of_node_count(node_count), class);
        let walltime = self.sample_walltime(rng, class);
        let domain = sample_domain(rng);
        let project = sample_project(rng, domain);
        let mut profile = sample_profile_for_project(rng, domain, &project);
        // Class-specific edge behaviour (paper Fig 10): class-4 jobs show
        // the most, shortest edges; leadership-class edges are rarer but
        // sustained for a large fraction of the (longer) job.
        match class {
            4 if rng.gen::<f64>() < 0.30 => {
                profile.checkpoint_interval_s =
                    crate::rng::truncated_normal(rng, 500.0, 150.0, 200.0, 900.0);
                profile.checkpoint_duration_s =
                    crate::rng::truncated_normal(rng, 40.0, 15.0, 20.0, 90.0);
            }
            1 | 2 if profile.checkpoint_interval_s > 0.0 => {
                let frac = crate::rng::truncated_normal(rng, 0.15, 0.10, 0.02, 0.45);
                profile.checkpoint_duration_s = (walltime * frac)
                    .max(profile.checkpoint_duration_s)
                    .min(profile.checkpoint_interval_s * 0.8);
            }
            _ => {}
        }
        let id = self.next_id;
        self.next_id += 1;
        SyntheticJob {
            record: JobRecord {
                allocation_id: AllocationId(id),
                class,
                node_count,
                project,
                domain,
                begin_time,
                end_time: begin_time + walltime,
            },
            profile,
            seed: id.wrapping_mul(0x9e3779b97f4a7c15),
        }
    }

    /// Generates a population of `count` jobs with arrivals uniform over
    /// `[t0, t0 + span_s)` (Poisson arrivals conditioned on the count),
    /// sorted by begin time.
    pub fn generate_population<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        count: usize,
        t0: f64,
        span_s: f64,
    ) -> Vec<SyntheticJob> {
        let mut jobs: Vec<SyntheticJob> = (0..count)
            .map(|_| {
                let t = t0 + rng.gen::<f64>() * span_s;
                self.generate(rng, t)
            })
            .collect();
        jobs.sort_by(|a, b| a.record.begin_time.total_cmp(&b.record.begin_time));
        jobs
    }
}

/// Sample a job population's domain for test assertions.
pub fn count_by_domain(jobs: &[SyntheticJob]) -> Vec<(ScienceDomain, usize)> {
    let mut counts = vec![0usize; ScienceDomain::ALL.len()];
    for j in jobs {
        counts[j.record.domain.index()] += 1;
    }
    ScienceDomain::ALL.iter().copied().zip(counts).collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn population(n: usize) -> Vec<SyntheticJob> {
        let mut rng = StdRng::seed_from_u64(2020);
        let mut g = JobGenerator::new();
        g.generate_population(&mut rng, n, 0.0, 366.0 * 86400.0)
    }

    #[test]
    fn class_mix_is_bottom_heavy() {
        let jobs = population(20_000);
        let mut counts = [0usize; 5];
        for j in &jobs {
            counts[(j.class() - 1) as usize] += 1;
        }
        assert!(counts[4] > jobs.len() * 7 / 10, "class 5 dominates");
        assert!(counts[0] < jobs.len() / 100, "class 1 is rare");
        assert!(counts.iter().all(|&c| c > 0), "all classes present");
    }

    #[test]
    fn node_counts_stay_in_class_ranges() {
        let jobs = population(10_000);
        for j in &jobs {
            let spec = class_spec(j.class());
            assert!(
                j.record.node_count >= spec.node_range.0
                    && j.record.node_count <= spec.node_range.1,
                "class {} job with {} nodes",
                j.class(),
                j.record.node_count
            );
            assert!(j.record.node_count <= MAX_JOB_NODES);
        }
    }

    #[test]
    fn class1_top_band_over_60_percent() {
        let mut rng = StdRng::seed_from_u64(7);
        let g = JobGenerator::new();
        let counts: Vec<u32> = (0..5000)
            .map(|_| g.sample_node_count(&mut rng, 1))
            .collect();
        let over_4000 = counts.iter().filter(|&&n| n > 4000).count();
        assert!(
            over_4000 as f64 / counts.len() as f64 > 0.6,
            "paper: over 60 % of class-1 jobs above 4,000 nodes"
        );
        // 4,096 is the modal count.
        let at_4096 = counts.iter().filter(|&&n| n == 4096).count();
        assert!(at_4096 as f64 / counts.len() as f64 > 0.25);
    }

    #[test]
    fn class2_80_percent_under_1500() {
        let mut rng = StdRng::seed_from_u64(8);
        let g = JobGenerator::new();
        let counts: Vec<u32> = (0..5000)
            .map(|_| g.sample_node_count(&mut rng, 2))
            .collect();
        let under_1500 = counts.iter().filter(|&&n| n < 1500).count();
        let frac = under_1500 as f64 / counts.len() as f64;
        assert!(
            (0.7..0.92).contains(&frac),
            "paper: ~80 % of class-2 jobs under 1,500 nodes, got {frac}"
        );
    }

    #[test]
    fn class1_walltime_80pct_under_43min() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = JobGenerator::new();
        let walls: Vec<f64> = (0..5000).map(|_| g.sample_walltime(&mut rng, 1)).collect();
        let e = summit_analysis::cdf::Ecdf::new(&walls).unwrap();
        let p80_min = e.percentile(0.8) / 60.0;
        assert!(
            (25.0..60.0).contains(&p80_min),
            "class-1 P80 walltime {p80_min} min should be near the paper's 43"
        );
    }

    #[test]
    fn class5_pileup_at_two_hour_limit() {
        let mut rng = StdRng::seed_from_u64(10);
        let g = JobGenerator::new();
        let walls: Vec<f64> = (0..5000).map(|_| g.sample_walltime(&mut rng, 5)).collect();
        assert!(walls.iter().all(|&w| w <= 7200.0));
        let e = summit_analysis::cdf::Ecdf::new(&walls).unwrap();
        let mass = e.terminal_mass(1.0);
        assert!(
            mass > 0.05,
            "the 120-min wall limit must be visible as terminal mass, got {mass}"
        );
    }

    #[test]
    fn allocation_ids_unique_and_ordered_population() {
        let jobs = population(5000);
        let mut ids: Vec<u64> = jobs.iter().map(|j| j.record.allocation_id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), jobs.len());
        for w in jobs.windows(2) {
            assert!(w[0].record.begin_time <= w[1].record.begin_time);
        }
    }

    #[test]
    fn domains_all_represented() {
        let jobs = population(20_000);
        for (d, c) in count_by_domain(&jobs) {
            assert!(c > 0, "domain {d:?} missing from a 20k population");
        }
    }

    #[test]
    fn profiles_valid_and_seeds_distinct() {
        let jobs = population(1000);
        for j in &jobs {
            j.profile.validate().expect("valid profile");
        }
        let mut seeds: Vec<u64> = jobs.iter().map(|j| j.seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), jobs.len());
    }
}
