//! Science-domain application library.
//!
//! Figure 8 of the paper breaks job power/energy down by science domain,
//! Figure 14 breaks GPU failure rates down by project. Each domain here
//! carries a workload mix (how GPU-leaning its codes are, how swingy they
//! run), a set of projects, and a failure-proneness factor; jobs sample a
//! concrete [`AppProfile`] from their domain.

use rand::Rng;
use serde::{Deserialize, Serialize};
use summit_telemetry::records::ScienceDomain;

use crate::rng::{truncated_normal, weighted_index};
use crate::workload::AppProfile;

/// Workload character of one science domain.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DomainCharacter {
    /// Share of Summit's job traffic from this domain.
    pub traffic_weight: f64,
    /// Probability a job from this domain is GPU-dominant.
    pub gpu_affinity: f64,
    /// Mean peak GPU utilization for GPU-dominant jobs.
    pub gpu_intensity_mean: f64,
    /// Mean peak CPU utilization for CPU-dominant jobs.
    pub cpu_intensity_mean: f64,
    /// Mean oscillation depth (swinginess) of the domain's codes.
    pub swing_mean: f64,
    /// Multiplier on baseline GPU failure rates (Figure 14: "distinct
    /// workload patterns are a major factor affecting GPU reliability").
    pub failure_multiplier: f64,
    /// Number of distinct projects in the domain.
    pub project_count: u32,
}

/// Character table for all domains. Weights and intensities are chosen to
/// reproduce the Figure 8/9 shapes: materials/physics/chemistry dominate
/// GPU-heavy traffic; some engineering/earth-science codes stay
/// CPU-bound; AI/ML runs hot on GPUs with low swing.
pub fn domain_character(domain: ScienceDomain) -> DomainCharacter {
    use ScienceDomain::*;
    let (traffic_weight, gpu_affinity, gpu_i, cpu_i, swing, fail, projects) = match domain {
        Materials => (0.16, 0.85, 0.92, 0.75, 0.35, 1.6, 14),
        Physics => (0.12, 0.80, 0.90, 0.72, 0.40, 1.3, 12),
        Chemistry => (0.11, 0.80, 0.88, 0.70, 0.30, 1.1, 10),
        Engineering => (0.07, 0.45, 0.75, 0.80, 0.45, 0.9, 8),
        Fusion => (0.06, 0.70, 0.85, 0.74, 0.50, 1.2, 6),
        Biophysics => (0.07, 0.75, 0.86, 0.65, 0.25, 0.8, 8),
        Astrophysics => (0.06, 0.70, 0.88, 0.70, 0.55, 1.4, 6),
        ComputerScience => (0.06, 0.60, 0.80, 0.70, 0.60, 2.0, 8),
        EarthScience => (0.05, 0.40, 0.70, 0.82, 0.35, 0.7, 6),
        NuclearPhysics => (0.05, 0.65, 0.85, 0.75, 0.40, 1.0, 5),
        HighEnergyPhysics => (0.04, 0.70, 0.87, 0.72, 0.45, 1.1, 5),
        Biology => (0.04, 0.70, 0.84, 0.66, 0.25, 0.8, 6),
        Seismology => (0.02, 0.50, 0.78, 0.78, 0.40, 0.9, 3),
        Combustion => (0.02, 0.55, 0.80, 0.78, 0.50, 1.0, 3),
        Medical => (0.02, 0.65, 0.82, 0.64, 0.20, 0.7, 4),
        AiMl => (0.03, 0.95, 0.96, 0.45, 0.15, 1.8, 6),
        Other => (0.02, 0.50, 0.75, 0.70, 0.40, 1.0, 6),
    };
    DomainCharacter {
        traffic_weight,
        gpu_affinity,
        gpu_intensity_mean: gpu_i,
        cpu_intensity_mean: cpu_i,
        swing_mean: swing,
        failure_multiplier: fail,
        project_count: projects,
    }
}

/// Three-letter project prefix per domain.
pub fn domain_prefix(domain: ScienceDomain) -> &'static str {
    use ScienceDomain::*;
    match domain {
        Materials => "MAT",
        Physics => "PHY",
        Chemistry => "CHM",
        Engineering => "ENG",
        Fusion => "FUS",
        Biophysics => "BIP",
        Astrophysics => "AST",
        ComputerScience => "CSC",
        EarthScience => "GEO",
        NuclearPhysics => "NPH",
        HighEnergyPhysics => "HEP",
        Biology => "BIO",
        Seismology => "SEI",
        Combustion => "CMB",
        Medical => "MED",
        AiMl => "AIM",
        Other => "GEN",
    }
}

/// Samples a science domain by traffic weight.
pub fn sample_domain<R: Rng + ?Sized>(rng: &mut R) -> ScienceDomain {
    let weights: Vec<f64> = ScienceDomain::ALL
        .iter()
        .map(|&d| domain_character(d).traffic_weight)
        .collect();
    ScienceDomain::ALL[weighted_index(rng, &weights)]
}

/// Samples a project name within a domain (e.g. `MAT007`). Lower project
/// numbers get more traffic (80/20-ish), which concentrates failures in
/// the Figure 14 top-projects the way real project mixes do.
pub fn sample_project<R: Rng + ?Sized>(rng: &mut R, domain: ScienceDomain) -> String {
    let c = domain_character(domain);
    // Geometric-ish preference for low project indices.
    let mut idx = 0u32;
    while idx + 1 < c.project_count && rng.gen::<f64>() < 0.55 {
        idx += 1;
    }
    format!("{}{:03}", domain_prefix(domain), idx)
}

/// Per-project failure multiplier on top of the domain multiplier — a few
/// projects run codes that are much harder on GPUs.
pub fn project_failure_multiplier(project: &str) -> f64 {
    // Stable hash of the project name -> multiplier in [0.4, 4.0],
    // log-uniform-ish so a handful of projects dominate (Figure 14).
    let mut h: u64 = 0xcbf29ce484222325;
    for b in project.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    // FNV's high bits are weak for short strings; finalize (splitmix64).
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    let u = (h >> 11) as f64 / (1u64 << 53) as f64;
    0.4 * (10.0f64).powf(u)
}

/// Stable per-project unit hash in [0, 1) (projects rerun the same codes,
/// so their workload character persists across jobs — the property the
/// paper's Section 9 fingerprinting plan relies on).
fn project_unit(project: &str, salt: u64) -> f64 {
    let mut h: u64 = 0xcbf29ce484222325 ^ salt;
    for b in project.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Samples a profile for a job of `project` within `domain`: the project
/// fixes stable anchors (its dominant code's intensity, cycle period and
/// swing); individual jobs jitter around them.
pub fn sample_profile_for_project<R: Rng + ?Sized>(
    rng: &mut R,
    domain: ScienceDomain,
    project: &str,
) -> AppProfile {
    let c = domain_character(domain);
    // The project's dominant code is GPU- or CPU-leaning, stably.
    let gpu_dominant = project_unit(project, 0x61) < c.gpu_affinity;
    let (cpu_anchor, gpu_anchor) = if gpu_dominant {
        (
            0.30 + 0.15 * (project_unit(project, 0x11) - 0.5),
            (c.gpu_intensity_mean - 0.15 + 0.36 * (project_unit(project, 0x22) - 0.5))
                .clamp(0.25, 1.0),
        )
    } else {
        (
            (c.cpu_intensity_mean + 0.20 * (project_unit(project, 0x33) - 0.5)).clamp(0.3, 1.0),
            (0.10 + 0.10 * (project_unit(project, 0x44) - 0.5)).clamp(0.02, 0.35),
        )
    };
    let period_anchor = if project_unit(project, 0x55) < 0.6 {
        120.0 + 180.0 * project_unit(project, 0x66)
    } else {
        60.0 + 1000.0 * project_unit(project, 0x77)
    };
    let depth_anchor = (c.swing_mean + 0.3 * (project_unit(project, 0x88) - 0.5)).clamp(0.0, 0.95);
    let has_ckpt = project_unit(project, 0x99) < 0.05;

    AppProfile {
        cpu_intensity: truncated_normal(rng, cpu_anchor, 0.05, 0.02, 1.0),
        gpu_intensity: truncated_normal(rng, gpu_anchor, 0.05, 0.02, 1.0),
        oscillation_period_s: truncated_normal(rng, period_anchor, 20.0, 60.0, 1200.0),
        oscillation_depth: truncated_normal(rng, depth_anchor, 0.06, 0.0, 0.95),
        // Ramps below ~20 s would register as power edges at job start.
        ramp_s: truncated_normal(rng, 27.0, 8.0, 20.0, 60.0),
        checkpoint_interval_s: if has_ckpt {
            truncated_normal(rng, 1500.0, 600.0, 300.0, 3600.0)
        } else {
            0.0
        },
        checkpoint_duration_s: if has_ckpt {
            truncated_normal(rng, 60.0, 30.0, 20.0, 180.0)
        } else {
            0.0
        },
    }
}

/// Samples a concrete application profile for a job from `domain`.
pub fn sample_profile<R: Rng + ?Sized>(rng: &mut R, domain: ScienceDomain) -> AppProfile {
    let c = domain_character(domain);
    let gpu_dominant = rng.gen::<f64>() < c.gpu_affinity;
    let (cpu_i, gpu_i) = if gpu_dominant {
        (
            truncated_normal(rng, 0.30, 0.12, 0.05, 0.7),
            // Wide spread below the domain ceiling: most codes do not
            // saturate the GPUs (paper: 80 % of class-1 jobs stay under
            // 6.6 MW while the largest reach 10.7 MW).
            truncated_normal(rng, c.gpu_intensity_mean - 0.15, 0.18, 0.25, 1.0),
        )
    } else {
        (
            truncated_normal(rng, c.cpu_intensity_mean, 0.10, 0.3, 1.0),
            truncated_normal(rng, 0.10, 0.06, 0.02, 0.35),
        )
    };
    // Oscillation period clusters around 200 s (the paper's dominant
    // frequency) with app-specific spread; some codes run much slower
    // cycles.
    let period = if rng.gen::<f64>() < 0.6 {
        truncated_normal(rng, 200.0, 30.0, 120.0, 300.0)
    } else {
        truncated_normal(rng, 500.0, 250.0, 60.0, 1200.0)
    };
    let depth = truncated_normal(rng, c.swing_mean, 0.15, 0.0, 0.95);
    // Checkpoint/I-O lulls are the main source of detectable power edges;
    // the paper finds 96.9 % of jobs edge-free, so hard phase drops are
    // rare in the base population (scheduling classes adjust this).
    let has_ckpt = rng.gen::<f64>() < 0.05;
    AppProfile {
        cpu_intensity: cpu_i,
        gpu_intensity: gpu_i,
        oscillation_period_s: period,
        oscillation_depth: depth,
        // Ramps below ~20 s would register as power edges at job start;
        // real applications take tens of seconds to reach full load.
        ramp_s: truncated_normal(rng, 27.0, 8.0, 20.0, 60.0),
        checkpoint_interval_s: if has_ckpt {
            truncated_normal(rng, 1500.0, 600.0, 300.0, 3600.0)
        } else {
            0.0
        },
        checkpoint_duration_s: if has_ckpt {
            truncated_normal(rng, 60.0, 30.0, 20.0, 180.0)
        } else {
            0.0
        },
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn traffic_weights_sum_to_one() {
        let total: f64 = ScienceDomain::ALL
            .iter()
            .map(|&d| domain_character(d).traffic_weight)
            .sum();
        assert!((total - 1.0).abs() < 1e-9, "weights sum to {total}");
    }

    #[test]
    fn sampled_profiles_are_valid() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..2000 {
            let d = sample_domain(&mut rng);
            let p = sample_profile(&mut rng, d);
            p.validate().expect("valid profile");
        }
    }

    #[test]
    fn gpu_affinity_shapes_profiles() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut aiml_gpu = 0;
        let mut earth_gpu = 0;
        let n = 2000;
        for _ in 0..n {
            if sample_profile(&mut rng, ScienceDomain::AiMl).gpu_intensity > 0.5 {
                aiml_gpu += 1;
            }
            if sample_profile(&mut rng, ScienceDomain::EarthScience).gpu_intensity > 0.5 {
                earth_gpu += 1;
            }
        }
        assert!(
            aiml_gpu as f64 / n as f64 > 0.85,
            "AI/ML must be GPU-dominant"
        );
        assert!(
            (earth_gpu as f64) < (aiml_gpu as f64) * 0.6,
            "earth science leans CPU: {earth_gpu} vs {aiml_gpu}"
        );
    }

    #[test]
    fn domain_sampling_follows_weights() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mat = 0;
        let n = 20_000;
        for _ in 0..n {
            if sample_domain(&mut rng) == ScienceDomain::Materials {
                mat += 1;
            }
        }
        let frac = mat as f64 / n as f64;
        assert!((frac - 0.16).abs() < 0.02, "materials share {frac}");
    }

    #[test]
    fn project_names_and_concentration() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut first = 0;
        let n = 5000;
        for _ in 0..n {
            let p = sample_project(&mut rng, ScienceDomain::Materials);
            assert!(p.starts_with("MAT"));
            assert_eq!(p.len(), 6);
            if p == "MAT000" {
                first += 1;
            }
        }
        // The head project carries the largest share (45 % stop prob).
        assert!(first as f64 / n as f64 > 0.3);
    }

    #[test]
    fn failure_multipliers_spread() {
        let ms: Vec<f64> = (0..50)
            .map(|i| project_failure_multiplier(&format!("MAT{i:03}")))
            .collect();
        assert!(ms.iter().all(|&m| (0.4..=4.0).contains(&m)));
        let min = ms.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ms.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min > 3.0, "projects must vary widely");
        // Deterministic.
        assert_eq!(
            project_failure_multiplier("MAT001"),
            project_failure_multiplier("MAT001")
        );
    }

    #[test]
    fn dominant_oscillation_near_200s() {
        let mut rng = StdRng::seed_from_u64(5);
        let periods: Vec<f64> = (0..2000)
            .map(|_| sample_profile(&mut rng, ScienceDomain::Physics).oscillation_period_s)
            .collect();
        let near_200 = periods
            .iter()
            .filter(|&&p| (150.0..=250.0).contains(&p))
            .count();
        assert!(
            near_200 as f64 / periods.len() as f64 > 0.45,
            "the 200 s mode must dominate"
        );
    }
}
