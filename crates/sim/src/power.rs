//! Component and node power models for the IBM AC922 node.
//!
//! Models per-component electrical draw as a function of utilization,
//! with per-chip manufacturing variation (the paper attributes part of
//! observed spread to "manufacturing variation in the chips") and a
//! power-supply efficiency curve. Calibrated against the paper's anchors:
//! node idle ~540 W (2.5 MW / 4,626 nodes), node max 2,300 W (Table 1),
//! CPU/GPU TDP 300 W.

use serde::{Deserialize, Serialize};
use summit_telemetry::ids::{GpuSlot, NodeId, Socket};

use crate::rng::stable_jitter;
use crate::spec::{NODE_MAX_POWER_W, TOTAL_NODES};

/// CPU idle package power (W).
pub const CPU_IDLE_W: f64 = 60.0;
/// CPU practical maximum under HPC load (W). The 300 W TDP is a thermal
/// limit; sustained draw tops out lower.
pub const CPU_MAX_W: f64 = 280.0;
/// GPU idle power (W).
pub const GPU_IDLE_W: f64 = 40.0;
/// GPU maximum boost power (W).
pub const GPU_MAX_W: f64 = 310.0;
/// Per-socket DDR4 power range (W).
pub const MEM_IDLE_W: f64 = 25.0;
/// MEM MAX W.
pub const MEM_MAX_W: f64 = 60.0;
/// NVMe burst buffer power range (W).
pub const NVME_IDLE_W: f64 = 8.0;
/// NVME MAX W.
pub const NVME_MAX_W: f64 = 22.0;
/// I/O subsystem (HCA, planar, BMC) power (W), roughly constant.
pub const IO_POWER_W: f64 = 32.0;
/// Chassis fan power range (W) — most heat leaves via water; fans cover
/// DIMMs and I/O.
pub const FAN_IDLE_W: f64 = 35.0;
/// FAN MAX W.
pub const FAN_MAX_W: f64 = 95.0;

/// Relative per-chip manufacturing variation of power draw (+-4 %).
pub const CHIP_POWER_VARIATION: f64 = 0.04;

/// Instantaneous power breakdown of one node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePower {
    /// AC input power after PSU losses, capped at the node limit (W).
    pub input_w: f64,
    /// Per-socket CPU package power (W).
    pub cpu_w: [f64; 2],
    /// Per-slot GPU power (W).
    pub gpu_w: [f64; 6],
    /// Per-socket memory power (W).
    pub mem_w: [f64; 2],
    /// NVMe power (W).
    pub nvme_w: f64,
    /// I/O subsystem power (W).
    pub io_w: f64,
    /// Fan power (W).
    pub fan_w: f64,
    /// PSU efficiency applied.
    pub psu_efficiency: f64,
}

impl NodePower {
    /// Total DC-side component power (W).
    pub fn dc_total(&self) -> f64 {
        self.cpu_w.iter().sum::<f64>()
            + self.gpu_w.iter().sum::<f64>()
            + self.mem_w.iter().sum::<f64>()
            + self.nvme_w
            + self.io_w
            + self.fan_w
    }
}

/// Per-node utilization input to the power model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NodeUtilization {
    /// Per-socket CPU utilization in [0, 1].
    pub cpu: [f64; 2],
    /// Per-slot GPU utilization in [0, 1].
    pub gpu: [f64; 6],
    /// Memory/IO activity in [0, 1] (defaults to the compute average).
    pub io: f64,
}

impl NodeUtilization {
    /// Uniform utilization across all compute components.
    pub fn uniform(cpu: f64, gpu: f64) -> Self {
        Self {
            cpu: [cpu; 2],
            gpu: [gpu; 6],
            io: 0.5 * (cpu + gpu),
        }
    }

    /// Fully idle node.
    pub fn idle() -> Self {
        Self::default()
    }
}

/// The node power model. Stateless apart from the manufacturing-variation
/// seed; all methods are pure functions of (node, utilization).
///
/// ```
/// use summit_sim::power::{NodeUtilization, PowerModel};
/// use summit_telemetry::ids::NodeId;
/// let pm = PowerModel::new(2020);
/// let idle = pm.node_power(NodeId(0), &NodeUtilization::idle());
/// let busy = pm.node_power(NodeId(0), &NodeUtilization::uniform(0.3, 0.95));
/// assert!(idle.input_w < 650.0);          // ~540 W idle (2.5 MW / 4,626)
/// assert!(busy.input_w > 1800.0);         // GPU-saturated node
/// assert!(busy.input_w <= 2300.0);        // Table 1 node maximum
/// ```
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct PowerModel {
    seed: u64,
}

impl PowerModel {
    /// Creates a model; `seed` fixes the per-chip variation pattern.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Per-chip variation factor for a CPU (stable across calls).
    fn cpu_variation(&self, node: NodeId, socket: Socket) -> f64 {
        let entity = node.0 as u64 * 8 + socket.index() as u64;
        1.0 + CHIP_POWER_VARIATION * stable_jitter(self.seed ^ 0xC9, entity)
    }

    /// Per-chip variation factor for a GPU (stable across calls).
    fn gpu_variation(&self, node: NodeId, slot: GpuSlot) -> f64 {
        let entity = node.0 as u64 * 8 + slot.index() as u64;
        1.0 + CHIP_POWER_VARIATION * stable_jitter(self.seed ^ 0x67, entity)
    }

    /// CPU package power at `util` in [0,1] (W).
    ///
    /// Slightly super-linear in utilization (voltage/frequency scaling).
    pub fn cpu_power(&self, node: NodeId, socket: Socket, util: f64) -> f64 {
        let u = util.clamp(0.0, 1.0);
        let base = CPU_IDLE_W + (CPU_MAX_W - CPU_IDLE_W) * (0.75 * u + 0.25 * u * u);
        base * self.cpu_variation(node, socket)
    }

    /// GPU power at `util` in [0,1] (W).
    pub fn gpu_power(&self, node: NodeId, slot: GpuSlot, util: f64) -> f64 {
        let u = util.clamp(0.0, 1.0);
        let base = GPU_IDLE_W + (GPU_MAX_W - GPU_IDLE_W) * (0.7 * u + 0.3 * u * u);
        base * self.gpu_variation(node, slot)
    }

    /// PSU efficiency at a given DC load fraction (flat-top curve: ~88 %
    /// at light load, ~94 % above half load).
    pub fn psu_efficiency(load_fraction: f64) -> f64 {
        let f = load_fraction.clamp(0.0, 1.0);
        0.88 + 0.06 * (2.0 * f).min(1.0)
    }

    /// Full node power at the given utilization.
    pub fn node_power(&self, node: NodeId, util: &NodeUtilization) -> NodePower {
        let mut cpu_w = [0.0; 2];
        for s in Socket::ALL {
            cpu_w[s.index()] = self.cpu_power(node, s, util.cpu[s.index()]);
        }
        let mut gpu_w = [0.0; 6];
        for g in GpuSlot::ALL {
            gpu_w[g.index()] = self.gpu_power(node, g, util.gpu[g.index()]);
        }
        let io_act = util.io.clamp(0.0, 1.0);
        let mem_w = [
            MEM_IDLE_W + (MEM_MAX_W - MEM_IDLE_W) * util.cpu[0].clamp(0.0, 1.0).max(io_act * 0.6),
            MEM_IDLE_W + (MEM_MAX_W - MEM_IDLE_W) * util.cpu[1].clamp(0.0, 1.0).max(io_act * 0.6),
        ];
        let nvme_w = NVME_IDLE_W + (NVME_MAX_W - NVME_IDLE_W) * io_act;
        let compute_mean = (cpu_w.iter().sum::<f64>() + gpu_w.iter().sum::<f64>())
            / (2.0 * CPU_MAX_W + 6.0 * GPU_MAX_W);
        let fan_w = FAN_IDLE_W + (FAN_MAX_W - FAN_IDLE_W) * compute_mean.clamp(0.0, 1.0);

        let partial = NodePower {
            input_w: 0.0,
            cpu_w,
            gpu_w,
            mem_w,
            nvme_w,
            io_w: IO_POWER_W,
            fan_w,
            psu_efficiency: 1.0,
        };
        let dc = partial.dc_total();
        let eff = Self::psu_efficiency(dc / NODE_MAX_POWER_W);
        let input = (dc / eff).min(NODE_MAX_POWER_W);
        NodePower {
            input_w: input,
            psu_efficiency: eff,
            ..partial
        }
    }

    /// Cluster idle power with every node idle (W) — the paper's 2.5 MW
    /// anchor at full scale.
    pub fn cluster_idle_power(&self, nodes: usize) -> f64 {
        (0..nodes as u32)
            .map(|n| self.node_power(NodeId(n), &NodeUtilization::idle()).input_w)
            .sum()
    }
}

/// Calibration check helper: expected full-cluster idle per the paper.
pub fn paper_idle_anchor_w() -> f64 {
    crate::spec::SYSTEM_IDLE_POWER_W / TOTAL_NODES as f64
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn model() -> PowerModel {
        PowerModel::new(2020)
    }

    #[test]
    fn idle_node_near_paper_anchor() {
        let m = model();
        let p = m.node_power(NodeId(0), &NodeUtilization::idle());
        let anchor = paper_idle_anchor_w(); // ~540 W
        assert!(
            (p.input_w - anchor).abs() < 60.0,
            "idle {} vs anchor {}",
            p.input_w,
            anchor
        );
    }

    #[test]
    fn cluster_idle_near_2_5_mw() {
        let m = model();
        let idle = m.cluster_idle_power(4626);
        assert!(
            (idle - 2.5e6).abs() < 0.3e6,
            "cluster idle {idle} should be near 2.5 MW"
        );
    }

    #[test]
    fn gpu_heavy_peak_under_node_limit() {
        let m = model();
        let p = m.node_power(NodeId(0), &NodeUtilization::uniform(0.3, 1.0));
        assert!(p.input_w <= NODE_MAX_POWER_W);
        assert!(
            p.input_w > 2000.0,
            "GPU-saturated node should be >2 kW, got {}",
            p.input_w
        );
    }

    #[test]
    fn full_blast_is_capped() {
        let m = model();
        let p = m.node_power(NodeId(0), &NodeUtilization::uniform(1.0, 1.0));
        assert_eq!(p.input_w, NODE_MAX_POWER_W);
    }

    #[test]
    fn power_monotone_in_utilization() {
        let m = model();
        let mut last = 0.0;
        for step in 0..=10 {
            let u = step as f64 / 10.0;
            let p = m.node_power(NodeId(7), &NodeUtilization::uniform(u, u));
            assert!(
                p.input_w >= last,
                "power must be monotone in utilization ({u})"
            );
            last = p.input_w;
        }
    }

    #[test]
    fn cpu_gpu_power_curves_hit_endpoints() {
        let m = model();
        // Variation is +-4 %, so endpoints land within that band.
        let c0 = m.cpu_power(NodeId(0), Socket::P0, 0.0);
        assert!((c0 - CPU_IDLE_W).abs() < CPU_IDLE_W * 0.05);
        let c1 = m.cpu_power(NodeId(0), Socket::P0, 1.0);
        assert!((c1 - CPU_MAX_W).abs() < CPU_MAX_W * 0.05);
        let g1 = m.gpu_power(NodeId(0), GpuSlot(3), 1.0);
        assert!((g1 - GPU_MAX_W).abs() < GPU_MAX_W * 0.05);
    }

    #[test]
    fn manufacturing_variation_differs_by_chip_but_stable() {
        let m = model();
        let a = m.gpu_power(NodeId(1), GpuSlot(0), 0.8);
        let b = m.gpu_power(NodeId(2), GpuSlot(0), 0.8);
        assert_ne!(a, b, "different chips should differ");
        assert_eq!(
            a,
            m.gpu_power(NodeId(1), GpuSlot(0), 0.8),
            "stable per chip"
        );
        // Spread across many chips is bounded by the variation constant.
        let powers: Vec<f64> = (0..1000)
            .map(|n| m.gpu_power(NodeId(n), GpuSlot(0), 1.0))
            .collect();
        let min = powers.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = powers.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(max / min < 1.0 + 2.5 * CHIP_POWER_VARIATION);
        // Paper Fig 17: non-outlier GPU power spread ~62 W at full load.
        assert!(max - min > 10.0, "variation should be visible");
        assert!(
            max - min < 80.0,
            "variation should stay near the paper's 62 W"
        );
    }

    #[test]
    fn psu_efficiency_curve() {
        assert!((PowerModel::psu_efficiency(0.0) - 0.88).abs() < 1e-12);
        assert!((PowerModel::psu_efficiency(0.5) - 0.94).abs() < 1e-12);
        assert!((PowerModel::psu_efficiency(1.0) - 0.94).abs() < 1e-12);
    }

    #[test]
    fn dc_total_sums_components() {
        let m = model();
        let p = m.node_power(NodeId(3), &NodeUtilization::uniform(0.5, 0.5));
        let manual = p.cpu_w.iter().sum::<f64>()
            + p.gpu_w.iter().sum::<f64>()
            + p.mem_w.iter().sum::<f64>()
            + p.nvme_w
            + p.io_w
            + p.fan_w;
        assert!((p.dc_total() - manual).abs() < 1e-9);
        // Input power reflects PSU losses.
        assert!(p.input_w > p.dc_total());
    }
}
