//! Closed-form job-level power/energy statistics (the fast path).
//!
//! A year of 840k jobs cannot be replayed at 1 Hz; the population studies
//! (Figures 6-9) only need per-job aggregates. This module computes them
//! analytically from the job's workload profile and the node power model:
//! the time-average of the utilization envelope has a closed form (ramp,
//! raised-cosine oscillation, checkpoint duty cycle), and power follows by
//! evaluating the power model at that utilization. Cross-checked against
//! the 1 Hz replay in the integration tests.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use summit_telemetry::ids::NodeId;

use crate::jobs::SyntheticJob;
use crate::power::{NodeUtilization, PowerModel};
use crate::rng::stable_jitter;

/// Per-job aggregate statistics (the paper's Datasets 5-7 columns).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobStats {
    /// Job-wide mean input power (W) — `mean_sum_inp`.
    pub mean_power_w: f64,
    /// Job-wide maximum input power (W) — `max_sum_inp`.
    pub max_power_w: f64,
    /// Total energy (J).
    pub energy_j: f64,
    /// Per-node mean CPU power, both sockets summed (W).
    pub mean_node_cpu_w: f64,
    /// Per-node max CPU power (W).
    pub max_node_cpu_w: f64,
    /// Per-node mean GPU power, all six GPUs summed (W).
    pub mean_node_gpu_w: f64,
    /// Per-node max GPU power (W).
    pub max_node_gpu_w: f64,
}

/// Time-average of the workload envelope over the job's life.
///
/// Exact for the raised-cosine oscillation over whole *and* partial
/// periods, and mixes the checkpoint lulls additively (the envelope takes
/// the `min` of the oscillation and the lull floor, so lull time
/// contributes the 0.15 floor, not a product). Validated against numeric
/// integration of [`WorkloadSignal::envelope`] in the integration tests.
///
/// [`WorkloadSignal::envelope`]: crate::workload::WorkloadSignal::envelope
pub fn mean_envelope(job: &SyntheticJob) -> f64 {
    let p = &job.profile;
    let dur = job.record.walltime_s();
    if dur <= 0.0 {
        return 0.0;
    }
    // Raised-cosine average over [0, dur]: 1 - d/2 * (1 - sinc(2*pi*dur/T)).
    let osc = if p.oscillation_depth > 0.0 && p.oscillation_period_s > 0.0 {
        let x = 2.0 * std::f64::consts::PI * dur / p.oscillation_period_s;
        let sinc = if x.abs() < 1e-9 { 1.0 } else { x.sin() / x };
        1.0 - 0.5 * p.oscillation_depth * (1.0 - sinc)
    } else {
        1.0
    };
    // Checkpoint lulls: active only after half an interval has elapsed
    // (warm-up guard in the envelope), dropping to the 0.15 floor.
    let mix = if p.checkpoint_interval_s > 0.0 && p.checkpoint_duration_s > 0.0 {
        let f = (p.checkpoint_duration_s / p.checkpoint_interval_s).min(1.0);
        let active_fraction = (1.0 - 0.5 * p.checkpoint_interval_s / dur).clamp(0.0, 1.0);
        let f_eff = f * active_fraction;
        (1.0 - f_eff) * osc + f_eff * 0.15
    } else {
        osc
    };
    // Ramp costs half the ramp window.
    let ramp_loss = (0.5 * p.ramp_s / dur).min(0.5);
    (mix * (1.0 - ramp_loss)).clamp(0.0, 1.0)
}

/// Computes the closed-form statistics of one job under `power_model`.
///
/// Per-node manufacturing variation is captured by evaluating a small set
/// of representative nodes spread across the id space.
pub fn job_stats(job: &SyntheticJob, power_model: &PowerModel) -> JobStats {
    let p = &job.profile;
    let env_mean = mean_envelope(job);
    let nodes = job.record.node_count as f64;
    let dur = job.record.walltime_s();

    // Representative nodes for variation averaging.
    const REPS: usize = 4;
    let mut mean_node_input = 0.0;
    let mut peak_node_input = 0.0;
    let mut mean_cpu = 0.0;
    let mut peak_cpu = 0.0;
    let mut mean_gpu = 0.0;
    let mut peak_gpu = 0.0;
    for r in 0..REPS {
        // Stable pseudo-placement of this job on the floor.
        let nid = NodeId(((stable_jitter(job.seed, r as u64).abs() * 4625.0) as u32).min(4625));
        let u_mean =
            NodeUtilization::uniform(p.cpu_intensity * env_mean, p.gpu_intensity * env_mean);
        let u_peak = NodeUtilization::uniform(p.cpu_intensity, p.gpu_intensity);
        let pw_mean = power_model.node_power(nid, &u_mean);
        let pw_peak = power_model.node_power(nid, &u_peak);
        mean_node_input += pw_mean.input_w;
        peak_node_input += pw_peak.input_w;
        mean_cpu += pw_mean.cpu_w.iter().sum::<f64>();
        peak_cpu += pw_peak.cpu_w.iter().sum::<f64>();
        mean_gpu += pw_mean.gpu_w.iter().sum::<f64>();
        peak_gpu += pw_peak.gpu_w.iter().sum::<f64>();
    }
    let inv = 1.0 / REPS as f64;
    mean_node_input *= inv;
    peak_node_input *= inv;
    mean_cpu *= inv;
    peak_cpu *= inv;
    mean_gpu *= inv;
    peak_gpu *= inv;

    let mean_power = mean_node_input * nodes;
    let max_power = peak_node_input * nodes;
    JobStats {
        mean_power_w: mean_power,
        max_power_w: max_power,
        energy_j: mean_power * dur,
        mean_node_cpu_w: mean_cpu,
        max_node_cpu_w: peak_cpu,
        mean_node_gpu_w: mean_gpu,
        max_node_gpu_w: peak_gpu,
    }
}

/// Synthesizes the job's cluster-power time series (W) at `dt_s`
/// resolution from its workload signal — the closed-form equivalent of a
/// Dataset-3 per-job series, used by the edge/FFT population studies
/// where replaying every job at 1 Hz through the engine is infeasible.
pub fn job_power_series(
    job: &SyntheticJob,
    power_model: &PowerModel,
    dt_s: f64,
) -> summit_analysis::series::Series {
    assert!(dt_s > 0.0);
    let signal =
        crate::workload::WorkloadSignal::new(job.profile, job.record.walltime_s(), job.seed);
    let n = (job.record.walltime_s() / dt_s).ceil() as usize;
    let nid = NodeId((job.seed % crate::spec::TOTAL_NODES as u64) as u32);
    let nodes = job.record.node_count as f64;
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let t_rel = i as f64 * dt_s;
            let env = signal.envelope(t_rel);
            let u = NodeUtilization::uniform(
                job.profile.cpu_intensity * env,
                job.profile.gpu_intensity * env,
            );
            power_model.node_power(nid, &u).input_w * nodes
        })
        .collect();
    summit_analysis::series::Series::new(job.record.begin_time, dt_s, values)
}

/// One row of the population table: the job plus its aggregates.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobStatsRow {
    /// Job.
    pub job: SyntheticJob,
    /// Per-metric window statistics in catalog order.
    pub stats: JobStats,
}

/// Computes statistics for an entire population in parallel.
pub fn population_stats(jobs: &[SyntheticJob], power_model: &PowerModel) -> Vec<JobStatsRow> {
    jobs.par_iter()
        .map(|job| JobStatsRow {
            job: job.clone(),
            stats: job_stats(job, power_model),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::jobs::JobGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn jobs(n: usize) -> Vec<SyntheticJob> {
        let mut rng = StdRng::seed_from_u64(77);
        let mut g = JobGenerator::new();
        g.generate_population(&mut rng, n, 0.0, 30.0 * 86400.0)
    }

    fn model() -> PowerModel {
        PowerModel::new(2020)
    }

    #[test]
    fn mean_envelope_closed_forms() {
        let mut job = jobs(1)[0].clone();
        // Whole number of oscillation periods: sinc term vanishes.
        job.record.begin_time = 0.0;
        job.record.end_time = 1000.0;
        job.profile.oscillation_depth = 0.4;
        job.profile.oscillation_period_s = 100.0;
        job.profile.checkpoint_interval_s = 0.0;
        job.profile.ramp_s = 0.0;
        assert!((mean_envelope(&job) - 0.8).abs() < 1e-9);

        // Checkpoint mixture: f = 0.1, active over the second half of the
        // first interval onward -> f_eff = 0.05; mix = 0.95 + 0.05*0.15.
        job.profile.oscillation_depth = 0.0;
        job.profile.checkpoint_interval_s = 1000.0;
        job.profile.checkpoint_duration_s = 100.0;
        let expect = 0.95 + 0.05 * 0.15;
        assert!((mean_envelope(&job) - expect).abs() < 1e-9);
    }

    #[test]
    fn mean_envelope_partial_period_correction() {
        let mut job = jobs(1)[0].clone();
        job.record.begin_time = 0.0;
        job.record.end_time = 125.0; // 1.25 periods
        job.profile.oscillation_depth = 0.6;
        job.profile.oscillation_period_s = 100.0;
        job.profile.checkpoint_interval_s = 0.0;
        job.profile.ramp_s = 0.0;
        // Numeric reference.
        let sig = crate::workload::WorkloadSignal::new(job.profile, 125.0, 1);
        let num: f64 = (0..12500)
            .map(|i| sig.envelope(i as f64 / 100.0))
            .sum::<f64>()
            / 12500.0;
        let closed = mean_envelope(&job);
        assert!(
            (closed - num).abs() < 0.01,
            "closed {closed} vs numeric {num}"
        );
    }

    #[test]
    fn stats_are_internally_consistent() {
        let m = model();
        for row in population_stats(&jobs(500), &m) {
            let s = row.stats;
            assert!(s.mean_power_w > 0.0);
            assert!(
                s.max_power_w >= s.mean_power_w - 1e-6,
                "max {} < mean {}",
                s.max_power_w,
                s.mean_power_w
            );
            assert!(
                (s.energy_j - s.mean_power_w * row.job.record.walltime_s()).abs()
                    < 1e-6 * s.energy_j.max(1.0)
            );
            assert!(s.max_node_cpu_w <= 620.0, "2 sockets x ~300 W");
            assert!(s.max_node_gpu_w <= 2000.0, "6 GPUs x ~310 W");
        }
    }

    #[test]
    fn class1_max_power_reaches_paper_scale() {
        // Paper: class-1 max input power peaks at 10.7 MW, 80 % below 6.6 MW.
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = JobGenerator::new();
        let m = model();
        let maxes: Vec<f64> = (0..400)
            .map(|_| {
                let j = g.generate_with_class(&mut rng, 0.0, 1);
                job_stats(&j, &m).max_power_w
            })
            .collect();
        let peak = maxes.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            peak > 8.0e6,
            "largest class-1 job should approach the 10.7 MW anchor, got {peak}"
        );
        let e = summit_analysis::cdf::Ecdf::new(&maxes).unwrap();
        let p80 = e.percentile(0.8);
        assert!(
            (4.0e6..9.0e6).contains(&p80),
            "class-1 P80 max power {p80} should be near 6.6 MW"
        );
    }

    #[test]
    fn class_separation_of_max_power() {
        // Paper Fig 6: max power strongly correlates with class.
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = JobGenerator::new();
        let m = model();
        let median_max = |class: u8, rng: &mut StdRng, g: &mut JobGenerator| {
            let v: Vec<f64> = (0..200)
                .map(|_| job_stats(&g.generate_with_class(rng, 0.0, class), &m).max_power_w)
                .collect();
            summit_analysis::stats::median(&v)
        };
        let m1 = median_max(1, &mut rng, &mut g);
        let m2 = median_max(2, &mut rng, &mut g);
        let m3 = median_max(3, &mut rng, &mut g);
        let m5 = median_max(5, &mut rng, &mut g);
        assert!(
            m1 > m2 && m2 > m3 && m3 > m5,
            "m1={m1} m2={m2} m3={m3} m5={m5}"
        );
        assert!(
            m1 / m5 > 50.0,
            "leadership and small jobs differ by orders of magnitude"
        );
    }

    #[test]
    fn energy_spans_many_decades() {
        // Paper Fig 6: energy ranges from ~1e7 J (class 5) to ~1e13 J.
        let m = model();
        let rows = population_stats(&jobs(5000), &m);
        let lo = rows
            .iter()
            .map(|r| r.stats.energy_j)
            .fold(f64::INFINITY, f64::min);
        let hi = rows
            .iter()
            .map(|r| r.stats.energy_j)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(lo < 1e8, "small jobs at ~1e7 J, got min {lo}");
        assert!(
            hi > 3e10,
            "leadership jobs reach the 1e10-1e13 J range, got max {hi}"
        );
        assert!(hi / lo > 1e4, "energy must span many decades");
    }

    #[test]
    fn parallel_population_matches_serial() {
        let m = model();
        let js = jobs(200);
        let par = population_stats(&js, &m);
        for (row, job) in par.iter().zip(&js) {
            let serial = job_stats(job, &m);
            assert_eq!(row.stats, serial);
        }
    }

    #[test]
    fn cpu_vs_gpu_split_visible() {
        // GPU-dominant jobs put most node power into GPUs and vice versa.
        let m = model();
        let rows = population_stats(&jobs(2000), &m);
        let gpu_heavy: Vec<&JobStatsRow> = rows
            .iter()
            .filter(|r| r.job.profile.gpu_intensity > 0.7)
            .collect();
        let cpu_heavy: Vec<&JobStatsRow> = rows
            .iter()
            .filter(|r| r.job.profile.gpu_intensity < 0.3)
            .collect();
        assert!(!gpu_heavy.is_empty() && !cpu_heavy.is_empty());
        let g_ratio: f64 = gpu_heavy
            .iter()
            .map(|r| r.stats.mean_node_gpu_w / r.stats.mean_node_cpu_w)
            .sum::<f64>()
            / gpu_heavy.len() as f64;
        let c_ratio: f64 = cpu_heavy
            .iter()
            .map(|r| r.stats.mean_node_gpu_w / r.stats.mean_node_cpu_w)
            .sum::<f64>()
            / cpu_heavy.len() as f64;
        assert!(g_ratio > 2.0 * c_ratio, "g={g_ratio} c={c_ratio}");
    }
}
