//! East-Tennessee weather model (wet-bulb temperature).
//!
//! The facility's cooling mode depends on outside conditions: evaporative
//! towers suffice "when the weather conditions are advantageous (i.e.,
//! wet-bulb temperature is below the necessary supply temperature)", and
//! chilled water trims the rest, "especially true during the hot and
//! humid Tennessee summer months", for "only about 20% of the year"
//! (Section 2). This model produces a deterministic seasonal + diurnal +
//! weather-front wet-bulb signal with those properties.

use serde::{Deserialize, Serialize};

use crate::rng::stable_jitter;

/// Seconds per day.
pub const DAY_S: f64 = 86_400.0;
/// Days per simulated year (2020 was a leap year).
pub const YEAR_DAYS: f64 = 366.0;

/// Wet-bulb temperature model for the Oak Ridge area.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Weather {
    /// Annual mean wet-bulb (°C).
    pub annual_mean_c: f64,
    /// Seasonal half-amplitude (°C).
    pub seasonal_amp_c: f64,
    /// Diurnal half-amplitude (°C).
    pub diurnal_amp_c: f64,
    /// Weather-front (multi-day) half-amplitude (°C).
    pub front_amp_c: f64,
    seed: u64,
}

impl Default for Weather {
    fn default() -> Self {
        Self::oak_ridge(2020)
    }
}

impl Weather {
    /// Climatology of Oak Ridge, TN: wet-bulb ranges from around -2 °C in
    /// January nights to ~23 °C on humid July afternoons.
    pub fn oak_ridge(seed: u64) -> Self {
        Self {
            annual_mean_c: 10.0,
            seasonal_amp_c: 10.5,
            diurnal_amp_c: 2.5,
            front_amp_c: 3.0,
            seed,
        }
    }

    /// Wet-bulb temperature (°C) at `t` seconds since Jan 1 00:00.
    pub fn wet_bulb_c(&self, t: f64) -> f64 {
        let day = t / DAY_S;
        // Seasonal: minimum mid-January (day ~15), maximum mid-July.
        let season =
            -(2.0 * std::f64::consts::PI * (day - 15.0) / YEAR_DAYS).cos() * self.seasonal_amp_c;
        // Diurnal: minimum ~05:00, maximum ~15:00.
        let hour = (t % DAY_S) / 3600.0;
        let diurnal =
            -(2.0 * std::f64::consts::PI * (hour - 3.0) / 24.0).cos() * self.diurnal_amp_c;
        // Weather fronts: piecewise-smooth multi-day wobble from hashed
        // control points every 3 days, linearly interpolated.
        let front_period_days = 3.0;
        let knot = (day / front_period_days).floor();
        let frac = (day / front_period_days) - knot;
        let a = stable_jitter(self.seed, knot as u64);
        let b = stable_jitter(self.seed, knot as u64 + 1);
        let front = self.front_amp_c * (a * (1.0 - frac) + b * frac);
        self.annual_mean_c + season + diurnal + front
    }

    /// True if `t` falls in the meteorological summer (Jun-Aug).
    pub fn is_summer(t: f64) -> bool {
        let day = (t / DAY_S) % YEAR_DAYS;
        // Jun 1 = day 152 (leap year), Sep 1 = day 244.
        (152.0..244.0).contains(&day)
    }

    /// Day-of-year (0-based) for a timestamp.
    pub fn day_of_year(t: f64) -> f64 {
        (t / DAY_S) % YEAR_DAYS
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn seasonal_shape() {
        let w = Weather::default();
        // Mid-January noon vs mid-July noon.
        let jan = w.wet_bulb_c(15.0 * DAY_S + 12.0 * 3600.0);
        let jul = w.wet_bulb_c(197.0 * DAY_S + 12.0 * 3600.0);
        assert!(
            jul > jan + 15.0,
            "summer {jul} must be much warmer than winter {jan}"
        );
        assert!((-8.0..12.0).contains(&jan), "January wet-bulb {jan}");
        assert!((15.0..28.0).contains(&jul), "July wet-bulb {jul}");
    }

    #[test]
    fn diurnal_shape() {
        let w = Weather::default();
        let day = 200.0 * DAY_S;
        let night = w.wet_bulb_c(day + 3.0 * 3600.0);
        let afternoon = w.wet_bulb_c(day + 15.0 * 3600.0);
        assert!(afternoon > night + 3.0);
    }

    #[test]
    fn deterministic() {
        let w = Weather::oak_ridge(7);
        assert_eq!(w.wet_bulb_c(1234.5), w.wet_bulb_c(1234.5));
        let w2 = Weather::oak_ridge(8);
        assert_ne!(w.wet_bulb_c(1e6), w2.wet_bulb_c(1e6));
    }

    #[test]
    fn continuous_across_front_knots() {
        let w = Weather::default();
        // At the 3-day knot boundary, interpolation keeps the jump small.
        let eps = 1.0;
        let t = 3.0 * DAY_S;
        let before = w.wet_bulb_c(t - eps);
        let after = w.wet_bulb_c(t + eps);
        assert!(
            (before - after).abs() < 0.1,
            "front wobble must be continuous"
        );
    }

    #[test]
    fn summer_predicate() {
        assert!(!Weather::is_summer(10.0 * DAY_S));
        assert!(Weather::is_summer(180.0 * DAY_S));
        assert!(!Weather::is_summer(300.0 * DAY_S));
    }

    #[test]
    fn chilled_water_needed_about_20_percent_of_year() {
        // Count hours where wet-bulb + tower approach exceeds what the MTW
        // supply target allows — the condition that forces chillers.
        let w = Weather::default();
        let approach = 4.0; // tower approach (K)
        let target = crate::spec::MTW_SUPPLY_NOMINAL_C;
        let mut need = 0usize;
        let mut total = 0usize;
        let mut t = 0.0;
        while t < YEAR_DAYS * DAY_S {
            if w.wet_bulb_c(t) + approach > target {
                need += 1;
            }
            total += 1;
            t += 3600.0;
        }
        let frac = need as f64 / total as f64;
        assert!(
            (0.12..0.32).contains(&frac),
            "chiller fraction {frac} should be near the paper's ~20 %"
        );
    }
}
