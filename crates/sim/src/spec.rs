//! System specification constants (paper Tables 1 and 3).
//!
//! Every number here is taken from the paper: the Summit system
//! specification table, the scheduling-policy table, and the quantitative
//! claims of Sections 2 and 4.

use serde::{Deserialize, Serialize};

/// Total compute nodes (IBM AC922 8335-GTX).
pub const TOTAL_NODES: usize = 4626;
/// Water-cooled cabinets on the floor.
pub const TOTAL_CABINETS: usize = 257;
/// Nodes per cabinet.
pub const NODES_PER_CABINET: usize = 18;
/// CPUs (Power9 sockets) per node.
pub const CPUS_PER_NODE: usize = 2;
/// GPUs (V100) per node.
pub const GPUS_PER_NODE: usize = 6;
/// Total GPUs in the machine.
pub const TOTAL_GPUS: usize = TOTAL_NODES * GPUS_PER_NODE; // 27,756 incl. spares; jobs span 27,648
/// Total CPUs in the machine.
pub const TOTAL_CPUS: usize = TOTAL_NODES * CPUS_PER_NODE;

/// Node maximum input power (W), Table 1.
pub const NODE_MAX_POWER_W: f64 = 2300.0;
/// CPU thermal design power (W).
pub const CPU_TDP_W: f64 = 300.0;
/// GPU thermal design power (W).
pub const GPU_TDP_W: f64 = 300.0;
/// System peak power consumption (W): 13 MW.
pub const SYSTEM_PEAK_POWER_W: f64 = 13.0e6;
/// System idle power consumption (W): 2.5 MW (Section 4.1).
pub const SYSTEM_IDLE_POWER_W: f64 = 2.5e6;
/// Supporting facility capacity (W): 20 MW.
pub const FACILITY_CAPACITY_W: f64 = 20.0e6;

/// Per-node idle input power (W), consistent with the 2.5 MW system idle.
pub const NODE_IDLE_POWER_W: f64 = SYSTEM_IDLE_POWER_W / TOTAL_NODES as f64; // ~540 W

/// MTW secondary-loop supply temperature range (°C): 64-71 °F.
pub const MTW_SUPPLY_MIN_C: f64 = 17.8;
/// MTW SUPPLY MAX C.
pub const MTW_SUPPLY_MAX_C: f64 = 21.7;
/// Nominal MTW supply (70 °F, Section 2).
pub const MTW_SUPPLY_NOMINAL_C: f64 = 21.1;
/// MTW return temperature range (°C): 80-100 °F.
pub const MTW_RETURN_MIN_C: f64 = 26.7;
/// MTW RETURN MAX C.
pub const MTW_RETURN_MAX_C: f64 = 37.8;

/// Fraction of the year the facility needs chilled water (Section 2:
/// "the facility uses chilled water for only about 20% of the year").
pub const CHILLED_WATER_YEAR_FRACTION: f64 = 0.20;

/// A scheduling class from the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulingClass {
    /// Class number 1..=5.
    pub class: u8,
    /// Inclusive node-count range.
    pub node_range: (u32, u32),
    /// Maximum walltime in hours.
    pub max_walltime_h: f64,
}

/// The five Summit scheduling classes (Table 3).
pub const SCHEDULING_CLASSES: [SchedulingClass; 5] = [
    SchedulingClass {
        class: 1,
        node_range: (2765, 4608),
        max_walltime_h: 24.0,
    },
    SchedulingClass {
        class: 2,
        node_range: (922, 2764),
        max_walltime_h: 24.0,
    },
    SchedulingClass {
        class: 3,
        node_range: (92, 921),
        max_walltime_h: 12.0,
    },
    SchedulingClass {
        class: 4,
        node_range: (46, 91),
        max_walltime_h: 6.0,
    },
    SchedulingClass {
        class: 5,
        node_range: (1, 45),
        max_walltime_h: 2.0,
    },
];

/// Largest schedulable job (class 1 upper bound).
pub const MAX_JOB_NODES: u32 = 4608;

/// GPUs visible to jobs: the paper counts 27,648 job-visible GPUs
/// (4,608 schedulable nodes x 6), while the floor holds 27,756 across
/// all 4,626 nodes — the extra cabinet is held out of the batch
/// partition. Use this, not [`TOTAL_GPUS`], when sizing job placement.
pub const JOB_VISIBLE_GPUS: usize = MAX_JOB_NODES as usize * GPUS_PER_NODE;

/// Classifies a node count into its scheduling class (1..=5).
///
/// # Panics
/// If `nodes` is zero or above [`MAX_JOB_NODES`].
#[allow(clippy::panic)] // documented API contract; tracked in xtask/panic_allowlist.txt
pub fn class_of_node_count(nodes: u32) -> u8 {
    for c in SCHEDULING_CLASSES {
        if nodes >= c.node_range.0 && nodes <= c.node_range.1 {
            return c.class;
        }
    }
    panic!("node count {nodes} outside all scheduling classes");
}

/// The scheduling class record for a class number.
///
/// # Panics
/// If `class` is not one of the paper's Table 3 classes (1..=5).
#[allow(clippy::panic)] // documented API contract; tracked in xtask/panic_allowlist.txt
pub fn class_spec(class: u8) -> SchedulingClass {
    SCHEDULING_CLASSES
        .iter()
        .copied()
        .find(|c| c.class == class)
        .unwrap_or_else(|| panic!("unknown scheduling class {class}"))
}

/// Seconds in the simulated year (2020 was a leap year: 366 days).
pub const YEAR_S: f64 = 366.0 * 86_400.0;

/// Watts-to-tons-of-refrigeration conversion (1 ton = 3.517 kW of heat).
pub const WATTS_PER_TON: f64 = 3517.0;

/// Paper-reported average PUE for 2020.
pub const PAPER_AVG_PUE: f64 = 1.11;
/// Paper-reported average summer PUE.
pub const PAPER_SUMMER_PUE: f64 = 1.22;

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn totals_match_paper() {
        // 257 cabinets x 18 = 4,626 nodes.
        assert_eq!(TOTAL_CABINETS * NODES_PER_CABINET, TOTAL_NODES);
        assert_eq!(TOTAL_GPUS, 27_756);
        assert_eq!(TOTAL_CPUS, 9_252);
    }

    #[test]
    fn job_visible_gpus_match_paper() {
        // The paper's 27,648 job-visible GPUs are the schedulable
        // subset of the 27,756 installed: one cabinet (18 nodes, 108
        // GPUs) is held out of the batch partition.
        assert_eq!(JOB_VISIBLE_GPUS, 27_648);
        assert_eq!(JOB_VISIBLE_GPUS, MAX_JOB_NODES as usize * GPUS_PER_NODE);
        assert_eq!(
            TOTAL_GPUS - JOB_VISIBLE_GPUS,
            (TOTAL_NODES - MAX_JOB_NODES as usize) * GPUS_PER_NODE
        );
    }

    #[test]
    fn classes_partition_the_node_range() {
        // Every node count 1..=4608 belongs to exactly one class.
        let mut last_class = 0;
        for n in 1..=MAX_JOB_NODES {
            let c = class_of_node_count(n);
            assert!((1..=5).contains(&c));
            // Classes are descending in node count.
            if n > 1 {
                assert!(c <= last_class || last_class == 0);
            }
            last_class = c;
        }
        assert_eq!(class_of_node_count(1), 5);
        assert_eq!(class_of_node_count(45), 5);
        assert_eq!(class_of_node_count(46), 4);
        assert_eq!(class_of_node_count(91), 4);
        assert_eq!(class_of_node_count(92), 3);
        assert_eq!(class_of_node_count(921), 3);
        assert_eq!(class_of_node_count(922), 2);
        assert_eq!(class_of_node_count(2764), 2);
        assert_eq!(class_of_node_count(2765), 1);
        assert_eq!(class_of_node_count(4608), 1);
    }

    #[test]
    #[should_panic(expected = "outside all scheduling classes")]
    fn class_rejects_oversized() {
        class_of_node_count(5000);
    }

    #[test]
    fn walltime_limits_match_table3() {
        assert_eq!(class_spec(1).max_walltime_h, 24.0);
        assert_eq!(class_spec(2).max_walltime_h, 24.0);
        assert_eq!(class_spec(3).max_walltime_h, 12.0);
        assert_eq!(class_spec(4).max_walltime_h, 6.0);
        assert_eq!(class_spec(5).max_walltime_h, 2.0);
    }

    #[test]
    fn idle_power_consistent() {
        assert!((NODE_IDLE_POWER_W - 540.4).abs() < 1.0);
        // Peak per node below the Table 1 max.
        assert!(SYSTEM_PEAK_POWER_W / TOTAL_NODES as f64 <= NODE_MAX_POWER_W * 1.25);
    }

    #[test]
    fn mtw_ranges_sane() {
        // Bind to locals so the relationships are checked as data, not
        // constant-folded away.
        let (lo, nom, hi, ret) = (
            MTW_SUPPLY_MIN_C,
            MTW_SUPPLY_NOMINAL_C,
            MTW_SUPPLY_MAX_C,
            MTW_RETURN_MIN_C,
        );
        assert!(lo < nom);
        assert!(nom < hi + 0.5);
        assert!(ret > hi);
    }
}
