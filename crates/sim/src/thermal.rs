//! Direct-liquid-cooling thermal model.
//!
//! Each AC922 node cools its two CPUs and six GPUs with cold plates fed by
//! the cabinet's MTW branch; within each socket's branch the water passes
//! the three GPU cold plates serially (paper Figure 1-(a)), so downstream
//! GPUs receive pre-warmed water. Component temperature follows a
//! first-order RC response to a steady state set by water temperature,
//! power, and a per-chip thermal resistance with manufacturing spread —
//! the paper observes GPU temperature tracking power "in a matter of
//! seconds" (Section 6.2) with a 15.8 °C non-outlier spread at a 62 W
//! power spread, and the "vast majority of the GPUs do not exceed 60 °C".

use serde::{Deserialize, Serialize};
use summit_telemetry::ids::{GpuSlot, NodeId, Socket};

use crate::power::NodePower;
use crate::rng::stable_jitter;

/// Mean GPU cold-plate thermal resistance (K/W).
pub const GPU_THERMAL_RESISTANCE: f64 = 0.10;
/// Manufacturing spread of the GPU thermal resistance (+-16 %).
pub const GPU_RESISTANCE_SPREAD: f64 = 0.16;
/// Mean CPU cold-plate thermal resistance (K/W). CPUs run a larger, more
/// conservative cold plate; their temperature stays comparatively flat.
pub const CPU_THERMAL_RESISTANCE: f64 = 0.085;
/// Manufacturing spread of the CPU thermal resistance.
pub const CPU_RESISTANCE_SPREAD: f64 = 0.10;
/// GPU thermal time constant (s) — tight response.
pub const GPU_TAU_S: f64 = 12.0;
/// CPU thermal time constant (s) — damped response.
pub const CPU_TAU_S: f64 = 45.0;
/// Water heating per cold plate passed, per watt dissipated (K/W):
/// branch flow ~0.08 kg/s, c_p 4186 J/(kg K) -> ~0.003 K/W.
pub const SERIAL_HEATING_K_PER_W: f64 = 0.003;
/// HBM2 runs hotter than the GPU core by roughly this factor of the
/// core's rise over water.
pub const MEM_TEMP_FACTOR: f64 = 1.15;

/// Thermal state of one node's cooled components (°C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeThermals {
    /// Cpu c.
    pub cpu_c: [f64; 2],
    /// Gpu core c.
    pub gpu_core_c: [f64; 6],
    /// Gpu mem c.
    pub gpu_mem_c: [f64; 6],
}

impl NodeThermals {
    /// All components at the water supply temperature (cold start).
    pub fn at_water(water_c: f64) -> Self {
        Self {
            cpu_c: [water_c; 2],
            gpu_core_c: [water_c; 6],
            gpu_mem_c: [water_c; 6],
        }
    }

    /// Hottest GPU core (°C).
    pub fn max_gpu_core(&self) -> f64 {
        self.gpu_core_c
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// The thermal model: per-chip resistances fixed by seed, first-order
/// dynamics advanced by [`ThermalModel::step`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct ThermalModel {
    seed: u64,
}

impl ThermalModel {
    /// Creates a model; `seed` fixes the manufacturing pattern.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// Per-chip GPU thermal resistance (K/W), stable per (node, slot).
    pub fn gpu_resistance(&self, node: NodeId, slot: GpuSlot) -> f64 {
        let j = stable_jitter(self.seed ^ 0x7e4a, node.0 as u64 * 8 + slot.index() as u64);
        GPU_THERMAL_RESISTANCE * (1.0 + GPU_RESISTANCE_SPREAD * j)
    }

    /// Per-chip CPU thermal resistance (K/W).
    pub fn cpu_resistance(&self, node: NodeId, socket: Socket) -> f64 {
        let j = stable_jitter(
            self.seed ^ 0x11c7,
            node.0 as u64 * 8 + socket.index() as u64,
        );
        CPU_THERMAL_RESISTANCE * (1.0 + CPU_RESISTANCE_SPREAD * j)
    }

    /// Water temperature entering the cold plate of `slot`, given the
    /// branch inlet temperature and the current GPU powers on the node:
    /// downstream plates receive water pre-warmed by upstream plates.
    pub fn water_at_slot(&self, inlet_c: f64, slot: GpuSlot, gpu_power_w: &[f64; 6]) -> f64 {
        let socket = slot.socket();
        let mut t = inlet_c;
        for upstream in GpuSlot::ALL {
            if upstream.socket() == socket && upstream.loop_position() < slot.loop_position() {
                t += gpu_power_w[upstream.index()] * SERIAL_HEATING_K_PER_W;
            }
        }
        t
    }

    /// Steady-state temperatures for the given power and water inlet.
    pub fn steady_state(&self, node: NodeId, power: &NodePower, inlet_c: f64) -> NodeThermals {
        let mut out = NodeThermals::at_water(inlet_c);
        for s in Socket::ALL {
            let r = self.cpu_resistance(node, s);
            out.cpu_c[s.index()] = inlet_c + r * power.cpu_w[s.index()];
        }
        for g in GpuSlot::ALL {
            let water = self.water_at_slot(inlet_c, g, &power.gpu_w);
            let r = self.gpu_resistance(node, g);
            let rise = r * power.gpu_w[g.index()];
            out.gpu_core_c[g.index()] = water + rise;
            out.gpu_mem_c[g.index()] = water + rise * MEM_TEMP_FACTOR;
        }
        out
    }

    /// Advances the thermal state by `dt` seconds toward the steady state
    /// implied by (`power`, `inlet_c`), with per-component time constants.
    pub fn step(
        &self,
        node: NodeId,
        state: &mut NodeThermals,
        power: &NodePower,
        inlet_c: f64,
        dt: f64,
    ) {
        assert!(dt > 0.0, "dt must be positive");
        let target = self.steady_state(node, power, inlet_c);
        let a_gpu = 1.0 - (-dt / GPU_TAU_S).exp();
        let a_cpu = 1.0 - (-dt / CPU_TAU_S).exp();
        for i in 0..2 {
            state.cpu_c[i] += a_cpu * (target.cpu_c[i] - state.cpu_c[i]);
        }
        for i in 0..6 {
            state.gpu_core_c[i] += a_gpu * (target.gpu_core_c[i] - state.gpu_core_c[i]);
            state.gpu_mem_c[i] += a_gpu * (target.gpu_mem_c[i] - state.gpu_mem_c[i]);
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::power::{NodeUtilization, PowerModel};

    fn models() -> (PowerModel, ThermalModel) {
        (PowerModel::new(2020), ThermalModel::new(2020))
    }

    #[test]
    fn gpus_stay_under_60c_at_full_load() {
        // Paper: "the vast majority of the GPUs do not exceed 60 °C".
        let (pm, tm) = models();
        let mut over = 0;
        let total = 500 * 6;
        for n in 0..500u32 {
            let p = pm.node_power(NodeId(n), &NodeUtilization::uniform(0.3, 1.0));
            let t = tm.steady_state(NodeId(n), &p, 21.1);
            for g in t.gpu_core_c {
                if g > 60.0 {
                    over += 1;
                }
            }
        }
        let frac = over as f64 / total as f64;
        assert!(frac < 0.05, "only a small tail may exceed 60C, got {frac}");
    }

    #[test]
    fn temperature_spread_matches_paper_scale() {
        // Paper Fig 17: at near-identical power, non-outlier temperature
        // spread was 15.8 C across 27,648 GPUs.
        let (pm, tm) = models();
        let mut temps = Vec::new();
        for n in 0..2000u32 {
            let p = pm.node_power(NodeId(n), &NodeUtilization::uniform(0.2, 0.95));
            let t = tm.steady_state(NodeId(n), &p, 21.1);
            temps.extend(t.gpu_core_c);
        }
        let b = summit_analysis::stats::BoxStats::compute(&temps).unwrap();
        let spread = b.non_outlier_spread();
        assert!(
            (8.0..25.0).contains(&spread),
            "spread {spread} should be near the paper's 15.8 C"
        );
    }

    #[test]
    fn serial_water_heating_warms_downstream_slots() {
        let (_, tm) = models();
        let powers = [300.0; 6];
        let w0 = tm.water_at_slot(21.0, GpuSlot(0), &powers);
        let w1 = tm.water_at_slot(21.0, GpuSlot(1), &powers);
        let w2 = tm.water_at_slot(21.0, GpuSlot(2), &powers);
        assert_eq!(w0, 21.0);
        assert!(w1 > w0 && w2 > w1);
        assert!((w1 - w0 - 0.9).abs() < 1e-9); // 300 W * 0.003 K/W
                                               // Slot 3 starts a fresh branch.
        let w3 = tm.water_at_slot(21.0, GpuSlot(3), &powers);
        assert_eq!(w3, 21.0);
    }

    #[test]
    fn steady_state_rises_with_power() {
        let (pm, tm) = models();
        let idle = pm.node_power(NodeId(0), &NodeUtilization::idle());
        let busy = pm.node_power(NodeId(0), &NodeUtilization::uniform(0.9, 0.9));
        let t_idle = tm.steady_state(NodeId(0), &idle, 21.0);
        let t_busy = tm.steady_state(NodeId(0), &busy, 21.0);
        for i in 0..6 {
            assert!(t_busy.gpu_core_c[i] > t_idle.gpu_core_c[i]);
            assert!(
                t_busy.gpu_mem_c[i] > t_busy.gpu_core_c[i],
                "HBM runs hotter"
            );
        }
        for i in 0..2 {
            assert!(t_busy.cpu_c[i] > t_idle.cpu_c[i]);
        }
    }

    #[test]
    fn gpu_responds_faster_than_cpu() {
        let (pm, tm) = models();
        let node = NodeId(0);
        let idle = pm.node_power(node, &NodeUtilization::idle());
        let busy = pm.node_power(node, &NodeUtilization::uniform(1.0, 1.0));
        let mut state = tm.steady_state(node, &idle, 21.0);
        let target = tm.steady_state(node, &busy, 21.0);
        let gpu_gap0 = target.gpu_core_c[0] - state.gpu_core_c[0];
        let cpu_gap0 = target.cpu_c[0] - state.cpu_c[0];
        // One 10 s step toward the new load.
        tm.step(node, &mut state, &busy, 21.0, 10.0);
        let gpu_progress = (state.gpu_core_c[0] - (target.gpu_core_c[0] - gpu_gap0)) / gpu_gap0;
        let cpu_progress = (state.cpu_c[0] - (target.cpu_c[0] - cpu_gap0)) / cpu_gap0;
        assert!(
            gpu_progress > cpu_progress + 0.2,
            "gpu {gpu_progress} vs cpu {cpu_progress}"
        );
        // GPUs settle "in a matter of seconds": > 50 % in one 10 s step.
        assert!(gpu_progress > 0.5);
    }

    #[test]
    fn step_converges_to_steady_state() {
        let (pm, tm) = models();
        let node = NodeId(5);
        let busy = pm.node_power(node, &NodeUtilization::uniform(0.7, 0.8));
        let target = tm.steady_state(node, &busy, 20.0);
        let mut state = NodeThermals::at_water(20.0);
        for _ in 0..600 {
            tm.step(node, &mut state, &busy, 20.0, 1.0);
        }
        for i in 0..6 {
            assert!((state.gpu_core_c[i] - target.gpu_core_c[i]).abs() < 0.01);
        }
        for i in 0..2 {
            assert!((state.cpu_c[i] - target.cpu_c[i]).abs() < 0.01);
        }
    }

    #[test]
    fn resistances_are_stable_and_varied() {
        let (_, tm) = models();
        let a = tm.gpu_resistance(NodeId(0), GpuSlot(0));
        assert_eq!(a, tm.gpu_resistance(NodeId(0), GpuSlot(0)));
        assert_ne!(a, tm.gpu_resistance(NodeId(0), GpuSlot(1)));
        for n in 0..100u32 {
            for g in GpuSlot::ALL {
                let r = tm.gpu_resistance(NodeId(n), g);
                assert!(r > 0.0);
                assert!(
                    (r - GPU_THERMAL_RESISTANCE).abs()
                        <= GPU_THERMAL_RESISTANCE * GPU_RESISTANCE_SPREAD + 1e-12
                );
            }
        }
    }
}
