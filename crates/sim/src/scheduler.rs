//! LSF-like scheduler: queueing, placement, and allocation logging.
//!
//! Produces the paper's Datasets C/D — the job allocation history and the
//! per-node allocation history — by placing synthetic jobs on the real
//! floor topology. Placement is first-fit over the free-node list, which
//! yields the mostly-contiguous, occasionally-fragmented allocations real
//! schedulers produce.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use summit_telemetry::ids::{AllocationId, NodeId};
use summit_telemetry::records::NodeAllocation;

use crate::jobs::SyntheticJob;
use crate::workload::WorkloadSignal;

/// A job actually running on nodes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PlacedJob {
    /// Job.
    pub job: SyntheticJob,
    /// Node ids assigned (length == node_count).
    pub nodes: Vec<NodeId>,
    /// Actual start time (>= requested begin time under contention).
    pub start_time: f64,
}

impl PlacedJob {
    /// End time given the actual start.
    pub fn end_time(&self) -> f64 {
        self.start_time + self.job.record.walltime_s()
    }

    /// The workload signal for this placement.
    pub fn signal(&self) -> WorkloadSignal {
        WorkloadSignal::new(
            self.job.profile,
            self.job.record.walltime_s(),
            self.job.seed,
        )
    }

    /// Rank of a node within the job, if assigned.
    pub fn rank_of(&self, node: NodeId) -> Option<u32> {
        self.nodes.iter().position(|&n| n == node).map(|i| i as u32)
    }

    /// Per-node allocation records (Dataset D rows).
    pub fn node_allocations(&self) -> Vec<NodeAllocation> {
        self.nodes
            .iter()
            .map(|&node| NodeAllocation {
                allocation_id: self.job.record.allocation_id,
                node,
                begin_time: self.start_time,
                end_time: self.end_time(),
            })
            .collect()
    }
}

/// The scheduler state.
#[derive(Debug, Clone)]
pub struct Scheduler {
    free: BTreeSet<u32>,
    /// Running jobs sorted by end time (simple vec; counts stay small).
    running: Vec<PlacedJob>,
    /// Queue of jobs waiting for nodes, FIFO per submission order.
    queue: Vec<SyntheticJob>,
    /// Completed allocation log.
    completed: Vec<PlacedJob>,
}

impl Scheduler {
    /// Creates a scheduler over `node_count` free nodes.
    pub fn new(node_count: usize) -> Self {
        Self {
            free: (0..node_count as u32).collect(),
            running: Vec::new(),
            queue: Vec::new(),
            completed: Vec::new(),
        }
    }

    /// Free-node count.
    pub fn free_nodes(&self) -> usize {
        self.free.len()
    }

    /// Currently running jobs.
    pub fn running(&self) -> &[PlacedJob] {
        &self.running
    }

    /// Completed jobs so far.
    pub fn completed(&self) -> &[PlacedJob] {
        &self.completed
    }

    /// Submits a job to the queue.
    pub fn submit(&mut self, job: SyntheticJob) {
        self.queue.push(job);
    }

    /// Advances scheduler state to time `t`: finishes jobs whose walltime
    /// elapsed, then starts queued jobs that fit (FIFO with backfill —
    /// later jobs may start if earlier ones don't fit).
    pub fn advance(&mut self, t: f64) {
        // Complete finished jobs, returning their nodes.
        let mut i = 0;
        while i < self.running.len() {
            if self.running[i].end_time() <= t {
                let done = self.running.swap_remove(i);
                for n in &done.nodes {
                    self.free.insert(n.0);
                }
                self.completed.push(done);
            } else {
                i += 1;
            }
        }
        // Start queued jobs that have arrived and fit (backfill pass).
        let mut remaining = Vec::new();
        let queue = std::mem::take(&mut self.queue);
        for job in queue {
            if job.record.begin_time > t {
                remaining.push(job);
                continue;
            }
            let want = job.record.node_count as usize;
            if want <= self.free.len() {
                let nodes: Vec<NodeId> = self.free.iter().take(want).map(|&n| NodeId(n)).collect();
                for n in &nodes {
                    self.free.remove(&n.0);
                }
                self.running.push(PlacedJob {
                    job,
                    nodes,
                    start_time: t,
                });
            } else {
                remaining.push(job);
            }
        }
        self.queue = remaining;
    }

    /// The job running on `node` at the current scheduler time, if any.
    pub fn job_on(&self, node: NodeId) -> Option<&PlacedJob> {
        self.running.iter().find(|p| p.nodes.contains(&node))
    }

    /// Builds a dense node -> running-job index for fast engine ticks.
    pub fn node_index(&self, node_count: usize) -> Vec<Option<usize>> {
        let mut idx = vec![None; node_count];
        for (j, p) in self.running.iter().enumerate() {
            for n in &p.nodes {
                idx[n.index()] = Some(j);
            }
        }
        idx
    }

    /// All per-node allocation records from completed and running jobs.
    pub fn all_node_allocations(&self) -> Vec<NodeAllocation> {
        self.completed
            .iter()
            .chain(self.running.iter())
            .flat_map(|p| p.node_allocations())
            .collect()
    }

    /// Drains completed jobs (for streaming consumers).
    pub fn drain_completed(&mut self) -> Vec<PlacedJob> {
        std::mem::take(&mut self.completed)
    }

    /// Finds a running job by allocation id.
    pub fn find(&self, id: AllocationId) -> Option<&PlacedJob> {
        self.running
            .iter()
            .find(|p| p.job.record.allocation_id == id)
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::jobs::JobGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn job(g: &mut JobGenerator, rng: &mut StdRng, t: f64, class: u8) -> SyntheticJob {
        g.generate_with_class(rng, t, class)
    }

    #[test]
    fn placement_and_completion() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut g = JobGenerator::new();
        let mut s = Scheduler::new(4626);
        let j = job(&mut g, &mut rng, 0.0, 2);
        let want = j.record.node_count as usize;
        let wall = j.record.walltime_s();
        s.submit(j);
        s.advance(0.0);
        assert_eq!(s.running().len(), 1);
        assert_eq!(s.free_nodes(), 4626 - want);
        assert_eq!(s.running()[0].nodes.len(), want);
        // Finish it.
        s.advance(wall + 1.0);
        assert_eq!(s.running().len(), 0);
        assert_eq!(s.free_nodes(), 4626);
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn no_double_allocation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut g = JobGenerator::new();
        let mut s = Scheduler::new(200);
        for _ in 0..20 {
            s.submit(job(&mut g, &mut rng, 0.0, 5));
        }
        s.advance(0.0);
        let mut used = std::collections::HashSet::new();
        for p in s.running() {
            for n in &p.nodes {
                assert!(used.insert(n.0), "node {n} allocated twice");
            }
        }
    }

    #[test]
    fn queue_waits_for_space() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut g = JobGenerator::new();
        let mut s = Scheduler::new(4626);
        // Fill the machine with a class-1 job, then submit another.
        let j1 = job(&mut g, &mut rng, 0.0, 1);
        let wall1 = j1.record.walltime_s();
        let n1 = j1.record.node_count;
        s.submit(j1);
        s.advance(0.0);
        let j2 = {
            // Force a job too large for the remainder.
            let mut j = job(&mut g, &mut rng, 10.0, 1);
            while (j.record.node_count + n1) as usize <= 4626 {
                j = job(&mut g, &mut rng, 10.0, 1);
            }
            j
        };
        s.submit(j2);
        s.advance(10.0);
        assert_eq!(s.running().len(), 1, "second job must wait");
        s.advance(wall1 + 1.0);
        assert_eq!(
            s.running().len(),
            1,
            "second job starts after the first ends"
        );
        assert_eq!(s.completed().len(), 1);
    }

    #[test]
    fn backfill_lets_small_jobs_pass() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut g = JobGenerator::new();
        let mut s = Scheduler::new(100);
        // 90-node job runs; a 50-node job cannot start, but a 5-node can.
        let mut big = job(&mut g, &mut rng, 0.0, 4);
        big.record.node_count = 90;
        s.submit(big);
        s.advance(0.0);
        let mut blocked = job(&mut g, &mut rng, 1.0, 4);
        blocked.record.node_count = 50;
        let mut small = job(&mut g, &mut rng, 1.0, 5);
        small.record.node_count = 5;
        s.submit(blocked);
        s.submit(small);
        s.advance(1.0);
        assert_eq!(s.running().len(), 2, "small job backfills");
        assert_eq!(s.free_nodes(), 5);
    }

    #[test]
    fn node_index_consistent() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut g = JobGenerator::new();
        let mut s = Scheduler::new(500);
        for _ in 0..10 {
            s.submit(job(&mut g, &mut rng, 0.0, 5));
        }
        s.advance(0.0);
        let idx = s.node_index(500);
        for (n, &slot) in idx.iter().enumerate() {
            match slot {
                Some(j) => assert!(s.running()[j].nodes.contains(&NodeId(n as u32))),
                None => assert!(s.job_on(NodeId(n as u32)).is_none()),
            }
        }
    }

    #[test]
    fn allocation_log_covers_all_nodes_of_job() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut g = JobGenerator::new();
        let mut s = Scheduler::new(4626);
        let j = job(&mut g, &mut rng, 0.0, 3);
        let id = j.record.allocation_id;
        let n = j.record.node_count as usize;
        s.submit(j);
        s.advance(0.0);
        let allocs = s.all_node_allocations();
        let mine: Vec<_> = allocs.iter().filter(|a| a.allocation_id == id).collect();
        assert_eq!(mine.len(), n);
    }
}
