//! # summit-sim
//!
//! A digital twin of the Summit supercomputer and its data center,
//! built to reproduce the measurement study *"Revealing Power, Energy and
//! Thermal Dynamics of a 200PF Pre-Exascale Supercomputer"* (SC '21)
//! without access to the physical machine. Every subsystem the paper's
//! analyses depend on is modelled:
//!
//! - [`spec`] / [`topology`] — Table 1/3 constants and the 257-cabinet
//!   floor with MSB power-feed zones and in-node water-loop ordering.
//! - [`power`] — component/node power models calibrated to the paper's
//!   anchors (540 W idle, 2,300 W node max, 2.5 MW cluster idle).
//! - [`thermal`] — first-order direct-liquid-cooling thermal model with
//!   manufacturing spread and serial water heating.
//! - [`weather`] / [`facility`] — East-Tennessee wet-bulb climate and the
//!   central energy plant (towers + trim chillers, PUE 1.11/1.22/1.3).
//! - [`workload`] / [`apps`] / [`jobs`] — application phase behaviour,
//!   science-domain characters, and the 840k-job population generator.
//! - [`scheduler`] — LSF-like placement producing allocation logs.
//! - [`jobstats`] — closed-form job-level power/energy (the fast path).
//! - [`failures`] — the GPU XID failure model (Table 4, Figures 13-16).
//! - [`engine`] — the 1 Hz time-domain driver wiring it all together.
//! - [`msb`] — main-switchboard meters for the Figure 4 validation.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod apps;
pub mod engine;
pub mod facility;
pub mod failures;
pub mod jobs;
pub mod jobstats;
pub mod msb;
pub mod power;
pub mod rng;
pub mod scheduler;
pub mod spec;
pub mod thermal;
pub mod topology;
pub mod weather;
pub mod workload;

/// Convenient re-exports of the most-used types.
pub mod prelude {
    pub use crate::apps::{domain_character, sample_domain, sample_profile};
    pub use crate::engine::{Engine, EngineConfig, StepOptions, TickOutput};
    pub use crate::facility::{Facility, FacilityConfig};
    pub use crate::failures::{FailureConfig, FailureModel};
    pub use crate::jobs::{JobGenerator, SyntheticJob, PAPER_JOB_COUNT};
    pub use crate::jobstats::{job_stats, population_stats, JobStats, JobStatsRow};
    pub use crate::msb::MsbMeterModel;
    pub use crate::power::{NodePower, NodeUtilization, PowerModel};
    pub use crate::scheduler::{PlacedJob, Scheduler};
    pub use crate::spec::{class_of_node_count, class_spec, SchedulingClass, SCHEDULING_CLASSES};
    pub use crate::thermal::{NodeThermals, ThermalModel};
    pub use crate::topology::Topology;
    pub use crate::weather::Weather;
    pub use crate::workload::{AppProfile, WorkloadSignal};
}
