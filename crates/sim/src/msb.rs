//! Main-switchboard (MSB) meters — the independent measurement path used
//! to validate per-node sensor summation (paper Figure 4, Section 3).
//!
//! The paper found the per-node 10-second-mean summation sat on average
//! ~11 % below the physical MSB measurement (mean difference -128.83 kW
//! per MSB), with oscillations in phase and of the same magnitude, tight
//! distributions around per-MSB means, and "subtle differences between
//! the mean values ... across MSBs, indicating an external factor".
//! This model reproduces those properties: MSB meters see the true power
//! plus per-MSB distribution overheads (PDU losses, rack network gear),
//! while node sensors under-read slightly and carry sampling noise.

use serde::{Deserialize, Serialize};
use summit_telemetry::ids::{Msb, NodeId};

use crate::rng::stable_jitter;
use crate::topology::Topology;

/// Per-MSB overhead factors: the "external factor" differs per board.
/// Values chosen so summation lands ~11 % under the meter on average.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct MsbMeterModel {
    /// Distribution overhead per MSB (fraction of true node power added
    /// by PDUs, rack switches, service gear on the same feed).
    pub overhead: [f64; 5],
    /// Per-node sensor bias: BMC sensors systematically read low.
    pub sensor_bias: f64,
    /// Per-sample multiplicative sensor noise (1-sigma).
    pub sensor_noise: f64,
    seed: u64,
}

impl Default for MsbMeterModel {
    fn default() -> Self {
        Self {
            // Distinct per-board overheads (the paper's differing means).
            overhead: [0.095, 0.105, 0.112, 0.118, 0.101],
            sensor_bias: 0.012,
            sensor_noise: 0.015,
            seed: 0x1157,
        }
    }
}

impl MsbMeterModel {
    /// Creates a model with a custom seed.
    pub fn with_seed(seed: u64) -> Self {
        Self {
            seed,
            ..Default::default()
        }
    }

    /// The physical meter reading of one MSB given the true input powers
    /// of all nodes (indexed by node id) on the floor.
    pub fn meter_reading(&self, topology: &Topology, msb: Msb, true_node_power: &[f64]) -> f64 {
        let sum: f64 = topology
            .nodes_of_msb(msb)
            .iter()
            .map(|n| true_node_power[n.index()])
            .sum();
        sum * (1.0 + self.overhead[msb.index()])
    }

    /// What the node's BMC sensor reports for a true input power: biased
    /// low plus deterministic per-(node, tick) sampling noise (the 500 µs
    /// instantaneous sample of a varying waveform).
    pub fn sensor_reading(&self, node: NodeId, tick: u64, true_power_w: f64) -> f64 {
        let noise =
            self.sensor_noise * stable_jitter(self.seed ^ tick.rotate_left(17), node.0 as u64);
        (true_power_w * (1.0 - self.sensor_bias) * (1.0 + noise)).max(0.0)
    }

    /// Sum of sensor readings for one MSB.
    pub fn sensor_summation(
        &self,
        topology: &Topology,
        msb: Msb,
        tick: u64,
        true_node_power: &[f64],
    ) -> f64 {
        topology
            .nodes_of_msb(msb)
            .iter()
            .map(|n| self.sensor_reading(*n, tick, true_node_power[n.index()]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn uniform_power(topology: &Topology, w: f64) -> Vec<f64> {
        vec![w; topology.node_count()]
    }

    #[test]
    fn meter_exceeds_summation_by_about_11_percent() {
        let topo = Topology::summit();
        let model = MsbMeterModel::default();
        let power = uniform_power(&topo, 1200.0);
        let mut total_meter = 0.0;
        let mut total_sum = 0.0;
        for msb in Msb::ALL {
            total_meter += model.meter_reading(&topo, msb, &power);
            total_sum += model.sensor_summation(&topo, msb, 0, &power);
        }
        let gap = (total_meter - total_sum) / total_meter;
        assert!(
            (0.08..0.14).contains(&gap),
            "paper: summation ~11 % under the meter, got {gap}"
        );
    }

    #[test]
    fn per_msb_means_differ() {
        let topo = Topology::summit();
        let model = MsbMeterModel::default();
        let power = uniform_power(&topo, 1000.0);
        let mut diffs = Vec::new();
        for msb in Msb::ALL {
            let meter = model.meter_reading(&topo, msb, &power);
            let sum = model.sensor_summation(&topo, msb, 0, &power);
            diffs.push((meter - sum) / meter);
        }
        let min = diffs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = diffs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(
            max - min > 0.005,
            "per-MSB means must differ subtly: {diffs:?}"
        );
    }

    #[test]
    fn oscillations_stay_in_phase() {
        // When true power swings, meter and summation must swing together.
        let topo = Topology::scaled(20);
        let model = MsbMeterModel::default();
        let low = uniform_power(&topo, 800.0);
        let high = uniform_power(&topo, 1600.0);
        let m_low = model.meter_reading(&topo, Msb::A, &low);
        let m_high = model.meter_reading(&topo, Msb::A, &high);
        let s_low = model.sensor_summation(&topo, Msb::A, 1, &low);
        let s_high = model.sensor_summation(&topo, Msb::A, 1, &high);
        let meter_swing = m_high - m_low;
        let sum_swing = s_high - s_low;
        assert!(meter_swing > 0.0 && sum_swing > 0.0);
        // Same magnitude within a few percent.
        assert!(
            ((sum_swing / meter_swing) - 1.0).abs() < 0.15,
            "swing magnitudes must match: meter {meter_swing}, sum {sum_swing}"
        );
    }

    #[test]
    fn sensor_noise_is_small_and_deterministic() {
        let model = MsbMeterModel::default();
        let a = model.sensor_reading(NodeId(5), 42, 1000.0);
        assert_eq!(a, model.sensor_reading(NodeId(5), 42, 1000.0));
        assert_ne!(a, model.sensor_reading(NodeId(5), 43, 1000.0));
        for tick in 0..100 {
            let r = model.sensor_reading(NodeId(9), tick, 1000.0);
            assert!(
                (r - 988.0).abs() < 30.0,
                "reading {r} too far from biased truth"
            );
        }
    }

    #[test]
    fn zero_power_reads_zero() {
        let model = MsbMeterModel::default();
        assert_eq!(model.sensor_reading(NodeId(0), 0, 0.0), 0.0);
    }
}
