//! Random-distribution helpers built on `rand`'s uniform primitives.
//!
//! The approved dependency set includes `rand` but not `rand_distr`, so
//! the distributions the simulator needs — normal (Box-Muller),
//! log-normal, truncated normal, exponential, and weighted categorical —
//! are implemented here and validated statistically in the tests.

use rand::Rng;

/// Samples a standard normal via the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Avoid u1 == 0 which would produce ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, std^2)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    assert!(std >= 0.0, "std must be non-negative");
    mean + std * standard_normal(rng)
}

/// Samples a normal truncated to `[lo, hi]` by rejection (falls back to
/// clamping after 64 rejections to stay O(1) under extreme truncation).
pub fn truncated_normal<R: Rng + ?Sized>(
    rng: &mut R,
    mean: f64,
    std: f64,
    lo: f64,
    hi: f64,
) -> f64 {
    assert!(lo <= hi, "invalid truncation interval [{lo}, {hi}]");
    for _ in 0..64 {
        let x = normal(rng, mean, std);
        if x >= lo && x <= hi {
            return x;
        }
    }
    mean.clamp(lo, hi)
}

/// Samples `LogNormal(mu, sigma)` — i.e. `exp(N(mu, sigma^2))`.
///
/// Note `mu`/`sigma` are the parameters of the underlying normal, not the
/// mean/std of the log-normal itself.
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Samples `Exp(rate)` (mean `1/rate`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "rate must be positive");
    let u: f64 = loop {
        let u: f64 = rng.gen();
        if u > f64::MIN_POSITIVE {
            break u;
        }
    };
    -u.ln() / rate
}

/// Samples a Poisson count with the given mean.
///
/// Knuth's algorithm for small means; normal approximation above 64 (the
/// simulator only uses large means for aggregate failure batches).
pub fn poisson<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> u64 {
    assert!(mean >= 0.0, "poisson mean must be non-negative");
    if mean == 0.0 {
        return 0;
    }
    if mean > 64.0 {
        let x = normal(rng, mean, mean.sqrt());
        return x.max(0.0).round() as u64;
    }
    let l = (-mean).exp();
    let mut k = 0u64;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        // Numerical guard: p can underflow only if mean is huge, which the
        // branch above excludes; cap iterations anyway.
        if k > 10_000 {
            return k;
        }
    }
}

/// Picks an index with probability proportional to `weights[i]`.
///
/// # Panics
/// If weights are empty, negative, or all zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(
        !weights.is_empty(),
        "weighted_index needs at least one weight"
    );
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be finite and non-negative"
            );
            w
        })
        .sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut x = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if x < w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

/// Deterministic per-entity jitter in `[-1, 1]` from a hash of `seed` and
/// `entity` — used for manufacturing variation that must be stable across
/// simulation runs with the same seed.
pub fn stable_jitter(seed: u64, entity: u64) -> f64 {
    let mut h = seed
        .wrapping_mul(0x9e3779b97f4a7c15)
        .wrapping_add(entity.wrapping_mul(0xbf58476d1ce4e5b9));
    h ^= h >> 30;
    h = h.wrapping_mul(0xbf58476d1ce4e5b9);
    h ^= h >> 27;
    h = h.wrapping_mul(0x94d049bb133111eb);
    h ^= h >> 31;
    (h >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xdecafbad)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.03, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = truncated_normal(&mut r, 0.0, 5.0, -1.0, 2.0);
            assert!((-1.0..=2.0).contains(&x));
        }
    }

    #[test]
    fn truncated_normal_extreme_truncation_clamps() {
        let mut r = rng();
        // Interval far in the tail: rejection will fail, clamp must apply.
        let x = truncated_normal(&mut r, 0.0, 0.001, 10.0, 11.0);
        assert_eq!(x, 10.0);
    }

    #[test]
    fn lognormal_median() {
        let mut r = rng();
        let n = 100_000;
        let mut samples: Vec<f64> = (0..n).map(|_| lognormal(&mut r, 1.0, 0.8)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        // Median of LogNormal(mu, sigma) = e^mu.
        let median = samples[n / 2];
        assert!(
            (median - std::f64::consts::E).abs() < 0.06,
            "median {median}"
        );
        assert!(samples.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.25)).sum::<f64>() / n as f64;
        assert!((mean - 4.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn poisson_small_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| poisson(&mut r, 3.5) as f64).sum::<f64>() / n as f64;
        assert!((mean - 3.5).abs() < 0.05, "mean {mean}");
        assert_eq!(poisson(&mut r, 0.0), 0);
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| poisson(&mut r, 1000.0) as f64).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 1000.0).abs() < 2.0, "mean {mean}");
        assert!((var - 1000.0).abs() < 60.0, "var {var}");
    }

    #[test]
    fn weighted_index_distribution() {
        let mut r = rng();
        let weights = [1.0, 3.0, 6.0];
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    fn weighted_index_handles_zero_prefix() {
        let mut r = rng();
        for _ in 0..1000 {
            assert_eq!(weighted_index(&mut r, &[0.0, 0.0, 1.0]), 2);
        }
    }

    #[test]
    #[should_panic(expected = "must not all be zero")]
    fn weighted_index_rejects_all_zero() {
        let mut r = rng();
        weighted_index(&mut r, &[0.0, 0.0]);
    }

    #[test]
    fn stable_jitter_deterministic_and_bounded() {
        let a = stable_jitter(42, 7);
        let b = stable_jitter(42, 7);
        assert_eq!(a, b);
        assert_ne!(stable_jitter(42, 7), stable_jitter(42, 8));
        let mut sum = 0.0;
        for e in 0..10_000 {
            let j = stable_jitter(1, e);
            assert!((-1.0..=1.0).contains(&j));
            sum += j;
        }
        assert!((sum / 10_000.0).abs() < 0.02, "jitter should be centered");
    }
}
