//! Central energy plant (CEP) model: MTW loop, cooling towers, trim
//! chillers, and PUE accounting (paper Figure 1-(d), Sections 2, 4.1, 5).
//!
//! Calibrated against the paper's operational anchors:
//! - average PUE 1.11, summer average 1.22, ~1.3 during the February
//!   cooling-tower maintenance (100 % chilled water);
//! - chilled water needed only ~20 % of the year;
//! - MTW supply 64-71 °F (nominal 70 °F), return 80-100 °F;
//! - cooling response lags the load by "roughly one minute", and
//!   "attenuation ... is much slower during decreases than increases".

use serde::{Deserialize, Serialize};
use summit_telemetry::records::CepRecord;

use crate::spec::{MTW_SUPPLY_NOMINAL_C, WATTS_PER_TON};

/// Facility configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FacilityConfig {
    /// MTW design mass flow (kg/s).
    pub mtw_flow_kg_s: f64,
    /// Cooling-tower approach temperature (K): tower outlet can reach
    /// wet-bulb + approach.
    pub tower_approach_k: f64,
    /// Chiller coefficient of performance.
    pub chiller_cop: f64,
    /// Pump power as a fraction of heat load.
    pub pump_fraction: f64,
    /// Base pump/controls power (W).
    pub pump_base_w: f64,
    /// Tower fan power as a fraction of tower-removed heat.
    pub tower_fan_fraction: f64,
    /// Electrical distribution losses as a fraction of IT power.
    pub distribution_loss_fraction: f64,
    /// Time constant of the MTW return-temperature response (s).
    pub return_tau_s: f64,
    /// Staging time constant when cooling must increase (s).
    pub stage_up_tau_s: f64,
    /// Staging time constant when cooling decreases (s) — slower, per the
    /// paper's falling-edge observation.
    pub stage_down_tau_s: f64,
    /// Minimum chiller loading once engaged: a staged chiller cannot trim
    /// at arbitrarily small part-load, so any engagement carries at least
    /// this share of the duty.
    pub chiller_min_share: f64,
    /// Optional maintenance window [start, end) in seconds during which
    /// the towers are offline and chillers carry 100 % of the load (the
    /// paper's early-February event).
    pub maintenance: Option<(f64, f64)>,
}

impl Default for FacilityConfig {
    fn default() -> Self {
        Self {
            mtw_flow_kg_s: 250.0,
            tower_approach_k: 3.5,
            chiller_cop: 4.5,
            pump_fraction: 0.015,
            pump_base_w: 120e3,
            tower_fan_fraction: 0.025,
            distribution_loss_fraction: 0.025,
            return_tau_s: 60.0,
            stage_up_tau_s: 60.0,
            stage_down_tau_s: 200.0,
            chiller_min_share: 0.45,
            maintenance: None,
        }
    }
}

/// Specific heat of water (J/(kg K)).
const WATER_CP: f64 = 4186.0;

/// The stateful facility model.
///
/// ```
/// use summit_sim::facility::{Facility, FacilityConfig};
/// let mut plant = Facility::new(FacilityConfig::default(), 6.0e6);
/// // Winter day: towers only, PUE near the paper's 1.11 annual mean.
/// let mut rec = plant.step(0.0, 6.0e6, 5.0, 10.0);
/// for i in 1..400 { rec = plant.step(i as f64 * 10.0, 6.0e6, 5.0, 10.0); }
/// assert!(rec.chiller_tons < 10.0);
/// assert!(rec.pue() > 1.0 && rec.pue() < 1.15);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Facility {
    config: FacilityConfig,
    /// Current (lagged) MTW return temperature (°C).
    return_c: f64,
    /// Current (lagged) total cooling delivered (W of heat removal).
    cooling_w: f64,
    /// Current chiller share of the cooling duty [0, 1].
    chiller_share: f64,
}

impl Facility {
    /// Creates the facility at thermal equilibrium with a given idle load.
    pub fn new(config: FacilityConfig, initial_it_w: f64) -> Self {
        let return_c = MTW_SUPPLY_NOMINAL_C + initial_it_w / (config.mtw_flow_kg_s * WATER_CP);
        Self {
            config,
            return_c,
            cooling_w: initial_it_w,
            chiller_share: 0.0,
        }
    }

    /// Config access.
    pub fn config(&self) -> &FacilityConfig {
        &self.config
    }

    /// Whether `t` falls in a configured maintenance window.
    pub fn in_maintenance(&self, t: f64) -> bool {
        self.config
            .maintenance
            .map(|(a, b)| t >= a && t < b)
            .unwrap_or(false)
    }

    /// Advances the plant by `dt` seconds under `it_power_w` of IT load
    /// and the given wet-bulb temperature, returning the CEP record.
    pub fn step(&mut self, t: f64, it_power_w: f64, wet_bulb_c: f64, dt: f64) -> CepRecord {
        assert!(dt > 0.0, "dt must be positive");
        assert!(it_power_w >= 0.0, "IT power cannot be negative");
        let cfg = self.config;
        let heat_w = it_power_w; // all IT power leaves as heat

        // MTW return temperature: first-order approach to the steady
        // state set by the heat load ("roughly one minute delay").
        let return_target = MTW_SUPPLY_NOMINAL_C + heat_w / (cfg.mtw_flow_kg_s * WATER_CP);
        let a_ret = 1.0 - (-dt / cfg.return_tau_s).exp();
        self.return_c += a_ret * (return_target - self.return_c);

        // Chiller duty share: towers cool to wet-bulb + approach; the
        // shortfall to the supply target is trimmed by chillers.
        let tower_outlet_c = wet_bulb_c + cfg.tower_approach_k;
        let span = (self.return_c - MTW_SUPPLY_NOMINAL_C).max(0.5);
        let raw_share = ((tower_outlet_c - MTW_SUPPLY_NOMINAL_C) / span).clamp(0.0, 1.0);
        // Discrete staging: once a chiller engages it carries at least its
        // minimum part-load.
        let mut share_target = if raw_share > 0.03 {
            raw_share.max(cfg.chiller_min_share)
        } else {
            0.0
        };
        if self.in_maintenance(t) {
            share_target = 1.0;
        }
        // Staging lag (asymmetric).
        let tau_share = if share_target > self.chiller_share {
            cfg.stage_up_tau_s
        } else {
            cfg.stage_down_tau_s
        };
        let a_share = 1.0 - (-dt / tau_share).exp();
        self.chiller_share += a_share * (share_target - self.chiller_share);

        // Total cooling duty follows the (lagged) return temperature.
        let cooling_target = (self.return_c - MTW_SUPPLY_NOMINAL_C) * cfg.mtw_flow_kg_s * WATER_CP;
        let tau_cool = if cooling_target > self.cooling_w {
            cfg.stage_up_tau_s
        } else {
            cfg.stage_down_tau_s
        };
        let a_cool = 1.0 - (-dt / tau_cool).exp();
        self.cooling_w += a_cool * (cooling_target - self.cooling_w);

        let chiller_heat_w = self.cooling_w * self.chiller_share;
        let tower_heat_w = self.cooling_w - chiller_heat_w;

        // Electrical overheads.
        let pump_w = cfg.pump_base_w + cfg.pump_fraction * self.cooling_w;
        let fan_w = cfg.tower_fan_fraction * tower_heat_w;
        let chiller_w = chiller_heat_w / cfg.chiller_cop;
        let losses_w = cfg.distribution_loss_fraction * it_power_w;
        let facility_power_w = it_power_w + pump_w + fan_w + chiller_w + losses_w;

        // Supply temperature: nominal, drifting up slightly when cooling
        // lags the heat load (bounded by the paper's 64-71 °F band).
        let deficit = (heat_w - self.cooling_w).max(0.0);
        let supply_c = (MTW_SUPPLY_NOMINAL_C + deficit / (cfg.mtw_flow_kg_s * WATER_CP)).clamp(
            crate::spec::MTW_SUPPLY_MIN_C,
            crate::spec::MTW_SUPPLY_MAX_C + 1.0,
        );

        CepRecord {
            time: t,
            mtw_supply_c: supply_c,
            mtw_return_c: self.return_c,
            tower_tons: tower_heat_w / WATTS_PER_TON,
            chiller_tons: chiller_heat_w / WATTS_PER_TON,
            wet_bulb_c,
            facility_power_w,
            it_power_w,
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn settle(fac: &mut Facility, t0: f64, it_w: f64, wb: f64, steps: usize) -> CepRecord {
        let mut last = fac.step(t0, it_w, wb, 10.0);
        for i in 1..steps {
            last = fac.step(t0 + 10.0 * i as f64, it_w, wb, 10.0);
        }
        last
    }

    #[test]
    fn winter_pue_near_paper_average() {
        let mut fac = Facility::new(FacilityConfig::default(), 6e6);
        // Cold wet-bulb: towers only.
        let rec = settle(&mut fac, 0.0, 6e6, 5.0, 500);
        assert!(rec.chiller_tons < 10.0, "no chillers in winter");
        assert!(
            (1.05..1.13).contains(&rec.pue()),
            "winter PUE {} should sit below the 1.11 annual mean",
            rec.pue()
        );
    }

    #[test]
    fn summer_pue_matches_paper() {
        let mut fac = Facility::new(FacilityConfig::default(), 6e6);
        // Humid summer afternoon: wet-bulb above supply target.
        let rec = settle(&mut fac, 0.0, 6e6, 22.0, 500);
        assert!(rec.chiller_tons > 100.0, "chillers must engage in summer");
        assert!(
            (1.15..1.30).contains(&rec.pue()),
            "summer PUE {} should be near the paper's 1.22",
            rec.pue()
        );
    }

    #[test]
    fn maintenance_forces_full_chiller_duty() {
        let cfg = FacilityConfig {
            maintenance: Some((0.0, 1e6)),
            ..Default::default()
        };
        let mut fac = Facility::new(cfg, 6e6);
        let rec = settle(&mut fac, 0.0, 6e6, 2.0, 500);
        assert!(rec.tower_tons < 10.0, "towers offline during maintenance");
        assert!(
            (1.25..1.35).contains(&rec.pue()),
            "maintenance PUE {} should approach the paper's 1.3",
            rec.pue()
        );
    }

    #[test]
    fn return_temp_in_paper_band_at_load() {
        let mut fac = Facility::new(FacilityConfig::default(), 5e6);
        let rec = settle(&mut fac, 0.0, 10e6, 10.0, 1000);
        assert!(
            (crate::spec::MTW_RETURN_MIN_C..=crate::spec::MTW_RETURN_MAX_C)
                .contains(&rec.mtw_return_c),
            "return temp {} outside the 80-100 F band",
            rec.mtw_return_c
        );
        assert!(rec.mtw_supply_c >= crate::spec::MTW_SUPPLY_MIN_C);
    }

    #[test]
    fn cooling_response_lags_by_about_a_minute() {
        let mut fac = Facility::new(FacilityConfig::default(), 4e6);
        settle(&mut fac, 0.0, 4e6, 10.0, 500);
        let before = fac.step(5000.0, 4e6, 10.0, 10.0);
        // Step the load up 4 MW; tonnage must NOT jump immediately.
        let just_after = fac.step(5010.0, 8e6, 10.0, 10.0);
        let total_before = before.tower_tons + before.chiller_tons;
        let total_after = just_after.tower_tons + just_after.chiller_tons;
        let needed = 8e6 / WATTS_PER_TON;
        assert!(
            total_after < total_before + 0.5 * (needed - total_before),
            "cooling must lag the load step"
        );
        // After ~5 minutes it should have mostly caught up.
        let caught_up = settle(&mut fac, 5020.0, 8e6, 10.0, 30);
        let total_late = caught_up.tower_tons + caught_up.chiller_tons;
        assert!(
            total_late > 0.9 * needed,
            "cooling catches up: {total_late} vs {needed}"
        );
    }

    #[test]
    fn destaging_is_slower_than_staging() {
        let mut fac_up = Facility::new(FacilityConfig::default(), 4e6);
        settle(&mut fac_up, 0.0, 4e6, 10.0, 500);
        let mut fac_down = fac_up.clone();

        // Rising edge: 4 -> 8 MW, measure progress after 60 s.
        let mut up_rec = None;
        for i in 0..6 {
            up_rec = Some(fac_up.step(6000.0 + i as f64 * 10.0, 8e6, 10.0, 10.0));
        }
        let up_tons = up_rec.unwrap().tower_tons + up_rec.unwrap().chiller_tons;
        let up_progress = (up_tons - 4e6 / WATTS_PER_TON) / (4e6 / WATTS_PER_TON);

        // Falling edge would need to settle at 8 MW first.
        settle(&mut fac_down, 7000.0, 8e6, 10.0, 500);
        let mut down_rec = None;
        for i in 0..6 {
            down_rec = Some(fac_down.step(20_000.0 + i as f64 * 10.0, 4e6, 10.0, 10.0));
        }
        let down_tons = down_rec.unwrap().tower_tons + down_rec.unwrap().chiller_tons;
        let down_progress = (8e6 / WATTS_PER_TON - down_tons) / (4e6 / WATTS_PER_TON);

        assert!(
            up_progress > down_progress + 0.1,
            "staging up ({up_progress:.2}) must outpace destaging ({down_progress:.2})"
        );
    }

    #[test]
    fn pue_inversely_tracks_load() {
        // Paper Fig 11: PUE is "noticeably symmetric and inversely
        // proportional" to power — higher load => better PUE.
        let mut fac_lo = Facility::new(FacilityConfig::default(), 3e6);
        let mut fac_hi = Facility::new(FacilityConfig::default(), 10e6);
        let lo = settle(&mut fac_lo, 0.0, 3e6, 10.0, 500);
        let hi = settle(&mut fac_hi, 0.0, 10e6, 10.0, 500);
        assert!(
            hi.pue() < lo.pue(),
            "PUE at 10 MW ({}) must beat PUE at 3 MW ({})",
            hi.pue(),
            lo.pue()
        );
    }

    #[test]
    #[should_panic(expected = "IT power cannot be negative")]
    fn rejects_negative_power() {
        let mut fac = Facility::new(FacilityConfig::default(), 1e6);
        fac.step(0.0, -1.0, 10.0, 1.0);
    }
}
