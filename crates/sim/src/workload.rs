//! Application workload model: per-job utilization as a function of time.
//!
//! The paper attributes the cluster's power dynamics to "the well-known
//! behavior of HPC applications themselves": synchronous phase changes
//! with dominant swing periods around 200 seconds (Figure 10), violent
//! MW-scale ramps within tens of seconds (Figure 11), and per-domain
//! CPU-vs-GPU intensity splits (Figures 8, 9). This module produces a
//! deterministic utilization signal per job with exactly those knobs:
//! ramp-up, periodic compute/communication oscillation, I/O lulls
//! (checkpoints), and final teardown.

use serde::{Deserialize, Serialize};

use crate::power::NodeUtilization;
use crate::rng::stable_jitter;

/// Static shape of one application's behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AppProfile {
    /// Peak CPU utilization in [0, 1].
    pub cpu_intensity: f64,
    /// Peak GPU utilization in [0, 1].
    pub gpu_intensity: f64,
    /// Period of the compute/communication oscillation (s); the paper's
    /// dominant mode is ~200 s.
    pub oscillation_period_s: f64,
    /// Oscillation depth in [0, 1]: 0 = flat, 1 = full swings to idle.
    pub oscillation_depth: f64,
    /// Ramp-up time from launch to full intensity (s); the paper observes
    /// transitions "within tens of seconds".
    pub ramp_s: f64,
    /// Interval between checkpoint/I/O lulls (s); 0 disables them.
    pub checkpoint_interval_s: f64,
    /// Duration of each checkpoint lull (s).
    pub checkpoint_duration_s: f64,
}

impl AppProfile {
    /// A steady GPU-dominant profile (the Figure 17 BerkeleyGW-like
    /// exemplar: near-full GPU utilization, little variability).
    pub fn gpu_steady() -> Self {
        Self {
            cpu_intensity: 0.25,
            gpu_intensity: 0.97,
            oscillation_period_s: 200.0,
            oscillation_depth: 0.05,
            ramp_s: 25.0,
            checkpoint_interval_s: 0.0,
            checkpoint_duration_s: 0.0,
        }
    }

    /// A swinging profile that generates detectable power edges.
    pub fn bursty(period_s: f64, depth: f64) -> Self {
        Self {
            cpu_intensity: 0.35,
            gpu_intensity: 0.95,
            oscillation_period_s: period_s,
            oscillation_depth: depth,
            ramp_s: 20.0,
            checkpoint_interval_s: 0.0,
            checkpoint_duration_s: 0.0,
        }
    }

    /// A CPU-dominant modelling/simulation profile.
    pub fn cpu_heavy() -> Self {
        Self {
            cpu_intensity: 0.9,
            gpu_intensity: 0.12,
            oscillation_period_s: 300.0,
            oscillation_depth: 0.2,
            ramp_s: 40.0,
            checkpoint_interval_s: 1800.0,
            checkpoint_duration_s: 60.0,
        }
    }

    /// Validates ranges; call after constructing custom profiles.
    pub fn validate(&self) -> Result<(), String> {
        let in01 = |x: f64| (0.0..=1.0).contains(&x);
        if !in01(self.cpu_intensity) || !in01(self.gpu_intensity) {
            return Err(format!(
                "intensities must be in [0,1]: cpu={}, gpu={}",
                self.cpu_intensity, self.gpu_intensity
            ));
        }
        if !in01(self.oscillation_depth) {
            return Err(format!(
                "oscillation depth {} not in [0,1]",
                self.oscillation_depth
            ));
        }
        if self.oscillation_period_s <= 0.0 && self.oscillation_depth > 0.0 {
            return Err("oscillating profile needs a positive period".into());
        }
        if self.ramp_s < 0.0 {
            return Err("ramp must be non-negative".into());
        }
        Ok(())
    }
}

/// A running job's utilization generator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WorkloadSignal {
    profile: AppProfile,
    /// Walltime of the job (s) — utilization tears down at the end.
    duration_s: f64,
    /// Seed for per-node jitter.
    seed: u64,
}

impl WorkloadSignal {
    /// Creates a signal for a job of the given duration.
    pub fn new(profile: AppProfile, duration_s: f64, seed: u64) -> Self {
        assert!(duration_s > 0.0, "job duration must be positive");
        debug_assert!(
            profile.validate().is_ok(),
            "workload profile invariants violated: {:?}",
            profile.validate()
        );
        Self {
            profile,
            duration_s,
            seed,
        }
    }

    /// The job-wide intensity envelope at `t_rel` seconds after launch, in
    /// [0, 1]: ramp -> oscillating plateau with checkpoint lulls -> end.
    pub fn envelope(&self, t_rel: f64) -> f64 {
        if t_rel < 0.0 || t_rel >= self.duration_s {
            return 0.0;
        }
        let p = &self.profile;
        // Ramp-up.
        let ramp = if p.ramp_s > 0.0 {
            (t_rel / p.ramp_s).min(1.0)
        } else {
            1.0
        };
        // Synchronous oscillation: raised cosine between (1-depth) and 1.
        let osc = if p.oscillation_depth > 0.0 {
            let phase = 2.0 * std::f64::consts::PI * t_rel / p.oscillation_period_s;
            1.0 - p.oscillation_depth * 0.5 * (1.0 - phase.cos())
        } else {
            1.0
        };
        // Checkpoint lulls: drop to 15 % during I/O.
        let ckpt = if p.checkpoint_interval_s > 0.0 && p.checkpoint_duration_s > 0.0 {
            let pos = t_rel % p.checkpoint_interval_s;
            if pos < p.checkpoint_duration_s && t_rel > p.checkpoint_interval_s * 0.5 {
                0.15
            } else {
                1.0
            }
        } else {
            1.0
        };
        ramp * osc.min(ckpt)
    }

    /// Per-node utilization at `t_rel` for rank `node_rank` within the
    /// job. Ranks carry a small stable jitter (+-3 %) plus a per-minute
    /// decorrelation so nodes are synchronized but not identical.
    pub fn node_utilization(&self, t_rel: f64, node_rank: u32) -> NodeUtilization {
        let env = self.envelope(t_rel);
        if env == 0.0 {
            return NodeUtilization::idle();
        }
        let p = &self.profile;
        let static_j = 0.03 * stable_jitter(self.seed, node_rank as u64);
        let minute = (t_rel / 60.0).floor() as u64;
        let dynamic_j = 0.02 * stable_jitter(self.seed ^ 0xD1A, node_rank as u64 ^ (minute << 20));
        let f = (1.0 + static_j + dynamic_j).clamp(0.0, 1.2);
        NodeUtilization::uniform(
            (p.cpu_intensity * env * f).clamp(0.0, 1.0),
            (p.gpu_intensity * env * f).clamp(0.0, 1.0),
        )
    }

    /// Job duration (s).
    pub fn duration_s(&self) -> f64 {
        self.duration_s
    }

    /// The profile driving this signal.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn envelope_ramps_and_ends() {
        let s = WorkloadSignal::new(AppProfile::gpu_steady(), 1000.0, 1);
        assert_eq!(s.envelope(-1.0), 0.0);
        assert!(s.envelope(5.0) < s.envelope(25.0), "ramping up");
        assert!(s.envelope(30.0) > 0.9);
        assert_eq!(s.envelope(1000.0), 0.0, "ends at walltime");
        assert_eq!(s.envelope(2000.0), 0.0);
    }

    #[test]
    fn oscillation_has_requested_period() {
        let profile = AppProfile::bursty(200.0, 0.6);
        let s = WorkloadSignal::new(profile, 10_000.0, 1);
        // After ramp, envelope at t and t+200 must match (periodicity)...
        let a = s.envelope(1000.0);
        let b = s.envelope(1200.0);
        assert!((a - b).abs() < 1e-9);
        // ...and the half-period point must dip by the depth.
        let mid = s.envelope(1100.0);
        assert!(a > mid, "peak {a} vs trough {mid}");
        assert!((a - mid - 0.6).abs() < 0.05, "depth should be ~0.6");
    }

    #[test]
    fn checkpoint_lulls_drop_utilization() {
        let s = WorkloadSignal::new(AppProfile::cpu_heavy(), 20_000.0, 1);
        // A checkpoint occurs at multiples of 1800 s (after warmup).
        let during = s.envelope(3600.0 + 10.0);
        let between = s.envelope(3600.0 + 900.0);
        assert!(during <= 0.15 + 1e-9);
        assert!(between > 0.5);
    }

    #[test]
    fn node_utilization_bounded_and_jittered() {
        let s = WorkloadSignal::new(AppProfile::gpu_steady(), 5000.0, 42);
        let a = s.node_utilization(1000.0, 0);
        let b = s.node_utilization(1000.0, 1);
        assert_ne!(a.gpu[0], b.gpu[0], "ranks must differ slightly");
        for rank in 0..100 {
            let u = s.node_utilization(1000.0, rank);
            for g in u.gpu {
                assert!((0.0..=1.0).contains(&g));
            }
            for c in u.cpu {
                assert!((0.0..=1.0).contains(&c));
            }
            // Jitter is small: stays within 10 % of the profile intensity.
            assert!((u.gpu[0] - 0.97f64 * s.envelope(1000.0)).abs() < 0.1);
        }
    }

    #[test]
    fn idle_outside_job() {
        let s = WorkloadSignal::new(AppProfile::gpu_steady(), 100.0, 7);
        let u = s.node_utilization(200.0, 3);
        assert_eq!(u.cpu, [0.0; 2]);
        assert_eq!(u.gpu, [0.0; 6]);
    }

    #[test]
    fn deterministic_signal() {
        let s = WorkloadSignal::new(AppProfile::bursty(150.0, 0.4), 1000.0, 9);
        let a = s.node_utilization(123.0, 5);
        let b = s.node_utilization(123.0, 5);
        assert_eq!(a, b);
    }

    #[test]
    fn profile_validation() {
        let mut p = AppProfile::gpu_steady();
        assert!(p.validate().is_ok());
        p.gpu_intensity = 1.5;
        assert!(p.validate().is_err());
        let mut q = AppProfile::bursty(100.0, 0.5);
        q.oscillation_period_s = 0.0;
        assert!(q.validate().is_err());
    }
}
