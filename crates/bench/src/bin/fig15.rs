//! Regenerates Figure 15 (thermal extremity of failures).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig15;

fn main() {
    let f = fidelity();
    header("Figure 15 (thermal extremity)", f);
    let cfg = match f {
        Fidelity::Quick => fig15::Config {
            weeks: 16.0,
            seed: 2020,
        },
        Fidelity::Full => fig15::Config::default(),
    };
    println!("{}", fig15::run(&cfg).render());
}
