//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Compression stages** — raw varint vs delta vs delta+RLE on real
//!    telemetry columns (the paper's "several lossless data compression
//!    methods").
//! 2. **Coarsening window** — information loss vs window length (the
//!    paper chose 10 s and kept min/max/mean/std to "avoid information
//!    loss").
//! 3. **Edge threshold** — sensitivity of the edge-free job fraction to
//!    the 868 W/node definition.
//! 4. **Cooling destaging** — the effect of the slow destaging time
//!    constant on post-falling-edge cooling overshoot (the paper's
//!    future-work tuning target).

use summit_bench::{fidelity, header, Fidelity};
use summit_core::pipeline::PopulationScenario;
use summit_core::report::{pct, Table};
use summit_sim::engine::{Engine, EngineConfig, StepOptions};
use summit_sim::facility::{Facility, FacilityConfig};
use summit_sim::jobstats::job_power_series;
use summit_sim::power::PowerModel;
use summit_telemetry::codec::{encode_column, encode_column_delta_only, encode_column_raw_varint};

fn codec_ablation(cabinets: usize) {
    // Real telemetry columns from an engine run.
    let mut engine = Engine::new(EngineConfig::small(cabinets), 0.0);
    let mut engine_col: Vec<i64> = Vec::new();
    let mut temp_col: Vec<i64> = Vec::new();
    for _ in 0..600 {
        let out = engine.step_opts(&StepOptions {
            frames: true,
            ..Default::default()
        });
        let Some(f) = out.frames.as_ref().and_then(|fs| fs.first()) else {
            continue;
        };
        engine_col.push(f.get(summit_telemetry::catalog::input_power()).round() as i64);
        temp_col.push(
            (f.get(summit_telemetry::catalog::gpu_core_temp(
                summit_telemetry::ids::GpuSlot(0),
            )) * 10.0)
                .round() as i64,
        );
    }
    let mut t = Table::new(
        "ablation 1: compression stages (bytes per 600-sample column)",
        &["column", "raw 8B", "varint", "+delta", "+delta+RLE"],
    );
    for (name, col) in [
        ("input_power (W)", &engine_col),
        ("gpu0_core_temp (0.1C)", &temp_col),
    ] {
        let sz = |f: &dyn Fn(&[i64], &mut bytes::BytesMut)| {
            let mut b = bytes::BytesMut::new();
            f(col, &mut b);
            b.len()
        };
        t.row(vec![
            name.into(),
            (col.len() * 8).to_string(),
            sz(&encode_column_raw_varint).to_string(),
            sz(&encode_column_delta_only).to_string(),
            sz(&|c, b| encode_column(c, b)).to_string(),
        ]);
    }
    println!("{}", t.render());
}

fn window_ablation(cabinets: usize) {
    // Ground truth: 1 Hz cluster power; coarsen at various windows and
    // measure how much of the true peak the window means retain.
    let run = summit_core::pipeline::quick_dynamics(cabinets, 900.0);
    let truth = run.true_power_series();
    let true_peak = summit_analysis::stats::nanmax(truth.values());
    let true_mean = summit_analysis::stats::nanmean(truth.values());
    let mut t = Table::new(
        "ablation 2: coarsening window vs information retention",
        &["window", "peak retained (window means)", "mean error"],
    );
    for w in [1usize, 10, 30, 60, 300] {
        let coarse = truth.downsample_mean(w);
        let peak = summit_analysis::stats::nanmax(coarse.values());
        let mean = summit_analysis::stats::nanmean(coarse.values());
        t.row(vec![
            format!("{w} s"),
            pct(peak / true_peak),
            pct((mean - true_mean).abs() / true_mean),
        ]);
    }
    let mut s = t.render();
    s.push_str(
        "paper: 10 s windows keep min/max/mean/std so peaks survive coarsening;\n\
         plain means at long windows shave the peaks\n",
    );
    println!("{s}");
}

fn edge_threshold_ablation(scale: f64) {
    let scenario = PopulationScenario::paper_year(scale);
    let jobs = scenario.generate();
    let pm = PowerModel::new(scenario.seed);
    let mut t = Table::new(
        "ablation 3: edge-threshold sensitivity",
        &["threshold (W/node)", "edge-free jobs"],
    );
    for thr in [400.0, 600.0, 868.0, 1200.0, 1600.0] {
        let edge_free = jobs
            .iter()
            .filter(|job| {
                let series = job_power_series(job, &pm, 10.0);
                summit_analysis::edges::detect_edges(&series, thr * job.record.node_count as f64)
                    .is_empty()
            })
            .count();
        t.row(vec![
            format!("{thr:.0}"),
            pct(edge_free as f64 / jobs.len() as f64),
        ]);
    }
    let mut s = t.render();
    s.push_str("paper definition: 868 W/node per 10 s => 96.9% edge-free\n");
    println!("{s}");
}

fn destaging_ablation() {
    // Step a settled plant down 4 MW and integrate the excess cooling
    // delivered after the fall (overcooling energy) for different
    // destaging time constants.
    let mut t = Table::new(
        "ablation 4: cooling destaging time constant",
        &[
            "stage_down_tau (s)",
            "overcooling after 4 MW fall (ton-minutes)",
        ],
    );
    for tau in [60.0, 120.0, 200.0, 400.0] {
        let cfg = FacilityConfig {
            stage_down_tau_s: tau,
            ..Default::default()
        };
        let mut fac = Facility::new(cfg, 8e6);
        for i in 0..500 {
            fac.step(i as f64 * 10.0, 8e6, 10.0, 10.0);
        }
        // Fall to 4 MW; integrate cooling beyond the 4 MW requirement.
        let need_tons = 4e6 / summit_sim::spec::WATTS_PER_TON;
        let mut overcool = 0.0;
        for i in 0..120 {
            let rec = fac.step(5000.0 + i as f64 * 10.0, 4e6, 10.0, 10.0);
            let delivered = rec.tower_tons + rec.chiller_tons;
            overcool += (delivered - need_tons).max(0.0) * 10.0 / 60.0;
        }
        t.row(vec![format!("{tau:.0}"), format!("{overcool:.0}")]);
    }
    let mut s = t.render();
    s.push_str(
        "paper future work: \"the higher PUE experienced on the high-magnitude falling\n\
         edges revealed potential parameter tunings ... that stages and de-stages cooling\"\n",
    );
    println!("{s}");
}

fn main() {
    let f = fidelity();
    header("design ablations", f);
    let (cabinets, scale) = match f {
        Fidelity::Quick => (6, 0.001),
        Fidelity::Full => (30, 0.01),
    };
    codec_ablation(cabinets);
    window_ablation(cabinets);
    edge_threshold_ablation(scale);
    destaging_ablation();
}
