//! Regenerates Table 4 (GPU failure composition).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::table4;

fn main() {
    let f = fidelity();
    header("Table 4 (GPU failure composition)", f);
    let cfg = match f {
        Fidelity::Quick => table4::Config {
            weeks: 8.0,
            seed: 2020,
        },
        Fidelity::Full => table4::Config::default(),
    };
    println!("{}", table4::run(&cfg).render());
}
