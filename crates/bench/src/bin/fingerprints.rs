//! Runs the Section 9 future-work pipeline: job power fingerprinting,
//! k-means portraits, and queued-job power prediction vs the
//! history-only baseline.
use rand::rngs::StdRng;
use rand::SeedableRng;
use summit_bench::{fidelity, header, Fidelity};
use summit_core::fingerprint::evaluate;
use summit_core::pipeline::PopulationScenario;
use summit_sim::power::PowerModel;

fn main() {
    let f = fidelity();
    header("job power fingerprints (Section 9 future work)", f);
    let scale = match f {
        Fidelity::Quick => 0.002,
        Fidelity::Full => 0.02,
    };
    let scenario = PopulationScenario::paper_year(scale);
    let jobs = scenario.generate();
    println!("fingerprinting {} jobs ...", jobs.len());
    let pm = PowerModel::new(scenario.seed);
    let mut rng = StdRng::seed_from_u64(scenario.seed);
    let report = evaluate(&mut rng, &jobs, &pm, 8);
    println!("{}", report.render());
}
