//! Regenerates Figure 6 (energy vs max power KDE per class).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig06;

fn main() {
    let f = fidelity();
    header("Figure 6 (energy x max power density)", f);
    let cfg = match f {
        Fidelity::Quick => fig06::Config {
            population_scale: 0.01,
            grid: 48,
            max_samples: 2000,
        },
        Fidelity::Full => fig06::Config {
            population_scale: 0.1,
            grid: 96,
            max_samples: 8000,
        },
    };
    println!("{}", fig06::run(&cfg).render());
}
