//! Regenerates every table and figure in one run — a thin shim over the
//! unified `experiments` driver (`--all`), kept for muscle memory.
//!
//! All studies share one scenario cache, so the year population, the
//! burst engine sweep and the failure log are each generated once.

use std::process::ExitCode;
use summit_bench::driver::{self, Invocation, SMOKE_SCALE};
use summit_bench::{fidelity, header, Fidelity};

fn main() -> ExitCode {
    let f = fidelity();
    header("ALL tables and figures", f);
    let inv = Invocation {
        all: true,
        scale: Some(if f == Fidelity::Full {
            1.0
        } else {
            SMOKE_SCALE
        }),
        ..Invocation::default()
    };
    match driver::run(&inv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}");
            ExitCode::FAILURE
        }
    }
}
