//! Runs every table/figure regeneration at the selected fidelity and
//! prints the full report — the one-command reproduction of the paper's
//! evaluation section.
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::*;

fn main() {
    let f = fidelity();
    header("ALL tables and figures", f);
    let quick = f == Fidelity::Quick;

    println!("{}", tables::render_table1());
    println!("{}", tables::render_table3());
    println!(
        "{}",
        table2::run(&if quick {
            table2::Config {
                cabinets: 6,
                duration_s: 60,
                producers: 4,
            }
        } else {
            table2::Config {
                cabinets: 257,
                duration_s: 300,
                producers: 16,
            }
        })
        .render()
    );
    println!(
        "{}",
        fig04::run(&if quick {
            fig04::Config {
                cabinets: 10,
                duration_s: 300,
                busy_fraction: 1.0,
            }
        } else {
            fig04::Config {
                cabinets: 257,
                duration_s: 3600,
                busy_fraction: 1.0,
            }
        })
        .render()
    );
    println!(
        "{}",
        fig05::run(&if quick {
            fig05::Config {
                population_scale: 0.25,
                dt_s: 3600.0,
                maintenance_days: Some((34.0, 41.0)),
            }
        } else {
            fig05::Config::default()
        })
        .render()
    );
    let pop = if quick { 0.005 } else { 0.1 };
    println!(
        "{}",
        fig06::run(&fig06::Config {
            population_scale: pop,
            grid: 48,
            max_samples: 2000
        })
        .render()
    );
    println!(
        "{}",
        fig07::run(&fig07::Config {
            population_scale: pop.max(0.02)
        })
        .render()
    );
    for class in [1u8, 2] {
        println!(
            "{}",
            fig08::run(&fig08::Config {
                population_scale: pop.max(0.03),
                class
            })
            .render()
        );
    }
    println!(
        "{}",
        fig09::run(&fig09::Config {
            population_scale: pop,
            max_samples: 2000
        })
        .render()
    );
    println!(
        "{}",
        fig10::run(&fig10::Config {
            population_scale: if quick { 0.003 } else { 0.03 },
            dt_s: 10.0
        })
        .render()
    );
    let burst = if quick {
        fig11::Config {
            cabinets: 24,
            amplitudes_mw: vec![0.2, 0.4, 0.6],
            repeats: 2,
            burst_duration_s: 150.0,
            spacing_s: 480.0,
        }
    } else {
        fig11::Config::default()
    };
    println!("{}", fig11::run(&burst).render());
    println!("{}", fig12::run(&fig12::Config { burst }).render());
    let weeks = if quick { 8.0 } else { 52.3 };
    println!(
        "{}",
        table4::run(&table4::Config { weeks, seed: 2020 }).render()
    );
    println!(
        "{}",
        fig13::run(&fig13::Config {
            weeks,
            alpha: 0.05,
            seed: 2020
        })
        .render()
    );
    println!(
        "{}",
        fig14::run(&fig14::Config {
            weeks,
            top: 15,
            min_node_hours: 1000.0,
            seed: 2020
        })
        .render()
    );
    println!(
        "{}",
        fig15::run(&fig15::Config {
            weeks: weeks.max(16.0),
            seed: 2020
        })
        .render()
    );
    println!(
        "{}",
        fig16::run(&fig16::Config {
            weeks: weeks.max(16.0),
            seed: 2020
        })
        .render()
    );
    println!(
        "{}",
        fig17::run(&if quick {
            fig17::Config {
                cabinets: 24,
                job_duration_s: 420.0,
                stride_s: 10.0,
                missing_cabinet: Some(13),
                seed: 2020,
            }
        } else {
            fig17::Config::default()
        })
        .render()
    );
}
