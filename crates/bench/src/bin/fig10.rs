//! Regenerates Figure 10 (edge counts/durations and FFT distributions).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig10;

fn main() {
    let f = fidelity();
    header("Figure 10 (power dynamics)", f);
    let cfg = match f {
        Fidelity::Quick => fig10::Config {
            population_scale: 0.005,
            dt_s: 10.0,
        },
        Fidelity::Full => fig10::Config {
            population_scale: 0.05,
            dt_s: 10.0,
        },
    };
    println!("{}", fig10::run(&cfg).render());
}
