//! Unified driver over the experiment registry.
//!
//! ```text
//! cargo run --release -p summit-bench --bin experiments -- --list
//! cargo run --release -p summit-bench --bin experiments -- --all
//! cargo run --release -p summit-bench --bin experiments -- fig08 --scale 0.1
//! cargo run --release -p summit-bench --bin experiments -- table4 --json \
//!     --config '{"weeks": 12}'
//! ```

use std::process::ExitCode;
use summit_bench::driver::{self, Invocation};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let inv = match Invocation::parse(args) {
        Ok(inv) => inv,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", driver::USAGE);
            return ExitCode::FAILURE;
        }
    };
    match driver::run(&inv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(err) => {
            eprintln!("error: {err}\n\n{}", driver::USAGE);
            ExitCode::FAILURE
        }
    }
}
