//! Regenerates Figure 12 (thermal response of the cooling system).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::{fig11, fig12};

fn main() {
    let f = fidelity();
    header("Figure 12 (thermal response)", f);
    let cfg = match f {
        Fidelity::Quick => fig12::Config {
            burst: fig11::Config {
                cabinets: 40,
                amplitudes_mw: vec![0.5, 1.0],
                repeats: 2,
                burst_duration_s: 150.0,
                spacing_s: 480.0,
            },
        },
        Fidelity::Full => fig12::Config::default(),
    };
    println!("{}", fig12::run(&cfg).render());
}
