//! Runs the power-aware admission sweep (the paper's concluding policy
//! suggestion).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::power_aware;

fn main() {
    let f = fidelity();
    header("power-aware scheduling sweep", f);
    let cfg = match f {
        Fidelity::Quick => power_aware::Config {
            population_scale: 0.02,
            ..Default::default()
        },
        Fidelity::Full => power_aware::Config {
            population_scale: 0.25,
            ..Default::default()
        },
    };
    println!("{}", power_aware::run(&cfg).render());
}
