//! Regenerates Figure 16 (failures per GPU slot).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig16;

fn main() {
    let f = fidelity();
    header("Figure 16 (slot placement)", f);
    let cfg = match f {
        Fidelity::Quick => fig16::Config {
            weeks: 16.0,
            seed: 2020,
        },
        Fidelity::Full => fig16::Config::default(),
    };
    println!("{}", fig16::run(&cfg).render());
}
