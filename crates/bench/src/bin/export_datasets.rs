//! Exports the derived datasets (artifact-appendix shapes) as CSV files:
//! runs a short full pipeline — engine, coarsening, cluster/job collapse,
//! thermal summary, failure log — and writes one CSV per dataset.
//!
//! ```sh
//! cargo run --release -p summit-bench --bin export_datasets -- [out_dir]
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fs::File;
use std::io::BufWriter;
use std::path::PathBuf;
use summit_sim::engine::{Engine, EngineConfig, StepOptions};
use summit_sim::failures::FailureModel;
use summit_sim::jobs::JobGenerator;
use summit_telemetry::cluster::cluster_power;
use summit_telemetry::datasets::thermal_cluster;
use summit_telemetry::export;
use summit_telemetry::ids::NodeId;
use summit_telemetry::jobjoin::{job_level_power, join_jobs, AllocationIndex};
use summit_telemetry::stream::IngestStats;
use summit_telemetry::window::WindowAggregator;

fn main() -> std::io::Result<()> {
    let out_dir: PathBuf = std::env::args()
        .nth(1)
        .filter(|a| a != "--full")
        .unwrap_or_else(|| "dataset_export".into())
        .into();
    std::fs::create_dir_all(&out_dir)?;

    // A 10-minute, 8-cabinet run with a few jobs.
    let cabinets = 8;
    let duration = 600usize;
    let mut engine = Engine::new(EngineConfig::small(cabinets), 0.0);
    let mut rng = StdRng::seed_from_u64(77);
    let mut gen = JobGenerator::new();
    let mut job_records = Vec::new();
    for k in 0..4 {
        let mut job = gen.generate_with_class(&mut rng, 30.0 + 120.0 * k as f64, 5);
        job.record.node_count = 30;
        job.record.end_time = job.record.begin_time + 240.0;
        job_records.push(job.record.clone());
        engine.scheduler().submit(job);
    }

    let nodes = engine.topology().node_count();
    let mut frames_by_node = vec![Vec::with_capacity(duration); nodes];
    let mut ceps = Vec::with_capacity(duration);
    for _ in 0..duration {
        let out = engine.step_opts(&StepOptions {
            frames: true,
            ..Default::default()
        });
        ceps.push(out.cep);
        for f in out.frames.unwrap_or_default() {
            frames_by_node[f.node.index()].push(f);
        }
    }
    let allocations = engine.scheduler_ref().all_node_allocations();

    // Coarsen, tracking ingest health along the way.
    let mut stats = IngestStats::default();
    let windows: Vec<_> = frames_by_node
        .iter()
        .enumerate()
        .map(|(n, fs)| {
            let mut agg = WindowAggregator::paper(NodeId(n as u32));
            for f in fs {
                stats.observe(f);
                let _ = agg.push(f);
            }
            let (windows, health) = agg.finish_with_health();
            stats.health.merge(&health);
            windows
        })
        .collect();

    // Derived datasets.
    let cluster = cluster_power(&windows);
    let index = AllocationIndex::build(&allocations);
    let (job_rows, _) = join_jobs(&windows, &index);
    let job_level = job_level_power(&job_rows, 10.0);
    let thermal = thermal_cluster(&windows, &ceps);
    let failures = {
        let model = FailureModel::new(summit_sim::failures::FailureConfig::default(), nodes);
        let jobs: Vec<summit_sim::jobs::SyntheticJob> = Vec::new();
        let mut ev = model.generate(&mut rng, &jobs, nodes, 0.0, duration as f64);
        ev.truncate(200);
        ev
    };

    let write = |name: &str, f: &dyn Fn(&mut BufWriter<File>) -> std::io::Result<()>| {
        let path = out_dir.join(name);
        let mut w = BufWriter::new(File::create(&path)?);
        f(&mut w)?;
        println!("wrote {}", path.display());
        Ok::<(), std::io::Error>(())
    };
    write("dataset1_cluster_power.csv", &|w| {
        export::write_cluster_power(w, &cluster)
    })?;
    write("dataset3_job_power.csv", &|w| {
        export::write_job_power(w, &job_rows)
    })?;
    write("dataset5_job_level.csv", &|w| {
        export::write_job_level(w, &job_level)
    })?;
    write("datasetC_job_records.csv", &|w| {
        export::write_job_records(w, &job_records)
    })?;
    write("dataset8_thermal.csv", &|w| {
        export::write_thermal(w, &thermal)
    })?;
    write("datasetE_xid_events.csv", &|w| {
        export::write_xid_events(w, &failures)
    })?;
    write("ingest_health.csv", &|w| {
        export::write_ingest_health(w, &stats)
    })?;
    println!(
        "\n{} cluster windows, {} job windows, {} jobs, {} thermal rows exported to {}",
        cluster.len(),
        job_rows.len(),
        job_level.len(),
        thermal.len(),
        out_dir.display()
    );
    Ok(())
}
