//! Regenerates Tables 1 and 3 (system spec / scheduling classes).
use summit_bench::{fidelity, header};
use summit_core::experiments::tables;

fn main() {
    header("Tables 1 and 3", fidelity());
    println!("{}", tables::render_table1());
    println!("{}", tables::render_table3());
}
