//! Regenerates Figure 7 (leadership job feature CDFs).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig07;

fn main() {
    let f = fidelity();
    header("Figure 7 (feature CDFs)", f);
    let cfg = match f {
        Fidelity::Quick => fig07::Config {
            population_scale: 0.02,
        },
        Fidelity::Full => fig07::Config {
            population_scale: 0.25,
        },
    };
    println!("{}", fig07::run(&cfg).render());
}
