//! Dumps the observability baseline for the default telemetry scenario
//! as machine-readable `BENCH_obs.json` (see DESIGN.md "Observability").
//!
//! Usage: `obs_report [--full] [--out PATH]`. Quick fidelity runs a
//! 4-cabinet 2-minute window; `--full` runs a 40-cabinet 5-minute one.
//! The Prometheus exposition of the same snapshot is printed to stdout.

use std::io::Write;
use summit_bench::obs_report::{build_report, to_json, ReportConfig};
use summit_bench::{fidelity, header, Fidelity};

fn out_path() -> String {
    let mut args = std::env::args();
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(p) = args.next() {
                return p;
            }
        }
    }
    "BENCH_obs.json".into()
}

fn main() {
    let f = fidelity();
    header("observability baseline (BENCH_obs.json)", f);
    let config = match f {
        Fidelity::Quick => ReportConfig::default(),
        Fidelity::Full => ReportConfig {
            cabinets: 40,
            duration_s: 300.0,
        },
    };
    let report = build_report(&config);

    let mut prom = Vec::new();
    if summit_obs::expose::write_prometheus(&mut prom, &report.snapshot).is_ok() {
        println!("{}", String::from_utf8_lossy(&prom));
    }

    let path = out_path();
    let json = to_json(&report);
    match std::fs::File::create(&path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("wrote {path} ({} bytes)", json.len()),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }
}
