//! Regenerates Figure 13 (failure co-occurrence matrix).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig13;

fn main() {
    let f = fidelity();
    header("Figure 13 (failure co-occurrence)", f);
    let cfg = match f {
        Fidelity::Quick => fig13::Config {
            weeks: 12.0,
            alpha: 0.05,
            seed: 2020,
        },
        Fidelity::Full => fig13::Config::default(),
    };
    println!("{}", fig13::run(&cfg).render());
}
