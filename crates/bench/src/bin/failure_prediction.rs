//! Trains and scores the GPU failure predictor (related work [23]/[24]).
use rand::rngs::StdRng;
use rand::SeedableRng;
use summit_bench::{fidelity, header, Fidelity};
use summit_core::failure_prediction::evaluate;
use summit_sim::jobs::JobGenerator;
use summit_sim::spec::{TOTAL_NODES, YEAR_S};

fn main() {
    let f = fidelity();
    header("GPU failure prediction", f);
    let weeks = match f {
        Fidelity::Quick => 4.0,
        Fidelity::Full => 26.0,
    };
    let span = weeks * 7.0 * 86400.0;
    let mut rng = StdRng::seed_from_u64(17);
    let mut gen = JobGenerator::new();
    let n_jobs = (840_000.0 * span / YEAR_S) as usize;
    let jobs = gen.generate_population(&mut rng, n_jobs, 0.0, span);
    println!("labeling {} jobs over {weeks} weeks ...", jobs.len());
    let report = evaluate(&mut rng, &jobs, span, TOTAL_NODES);
    println!("{}", report.render());
}
