//! Regenerates Figure 4 (power meter vs per-node sensor summation).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig04;

fn main() {
    let f = fidelity();
    header("Figure 4 (meter vs summation)", f);
    let cfg = match f {
        Fidelity::Quick => fig04::Config {
            cabinets: 20,
            duration_s: 600,
            busy_fraction: 1.0,
        },
        Fidelity::Full => fig04::Config {
            cabinets: 257,
            duration_s: 3600,
            busy_fraction: 1.0,
        },
    };
    println!("{}", fig04::run(&cfg).render());
}
