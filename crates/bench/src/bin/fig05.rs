//! Regenerates Figure 5 (yearly power and PUE trend).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig05;

fn main() {
    let f = fidelity();
    header("Figure 5 (yearly trend)", f);
    let cfg = match f {
        Fidelity::Quick => fig05::Config {
            population_scale: 0.25,
            dt_s: 3600.0,
            maintenance_days: Some((34.0, 41.0)),
        },
        Fidelity::Full => fig05::Config::default(),
    };
    println!("{}", fig05::run(&cfg).render());
}
