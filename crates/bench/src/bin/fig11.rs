//! Regenerates Figure 11 (rising-edge snapshots per MW class).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig11;

fn main() {
    let f = fidelity();
    header("Figure 11 (edge snapshots)", f);
    let cfg = match f {
        Fidelity::Quick => fig11::Config {
            cabinets: 40,
            amplitudes_mw: vec![0.25, 0.5, 0.75, 1.0],
            repeats: 2,
            burst_duration_s: 150.0,
            spacing_s: 480.0,
        },
        Fidelity::Full => fig11::Config::default(),
    };
    println!("{}", fig11::run(&cfg).render());
}
