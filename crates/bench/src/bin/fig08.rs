//! Regenerates Figure 8 (power/energy by science domain).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig08;

fn main() {
    let f = fidelity();
    header("Figure 8 (science domains)", f);
    let scale = match f {
        Fidelity::Quick => 0.03,
        Fidelity::Full => 0.25,
    };
    for class in [1u8, 2] {
        let cfg = fig08::Config {
            population_scale: scale,
            class,
        };
        println!("{}", fig08::run(&cfg).render());
    }
}
