//! Regenerates Figure 17 (GPU variability during a full-machine job).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig17;

fn main() {
    let f = fidelity();
    header("Figure 17 (job variability + floor heatmap)", f);
    let cfg = match f {
        Fidelity::Quick => fig17::Config {
            cabinets: 40,
            job_duration_s: 420.0,
            stride_s: 10.0,
            missing_cabinet: Some(22),
            seed: 2020,
        },
        Fidelity::Full => fig17::Config::default(),
    };
    println!("{}", fig17::run(&cfg).render());
}
