//! Regenerates Table 2 (telemetry data specification) by running the
//! real pipeline over a measured window and extrapolating.
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::table2;

fn main() {
    let f = fidelity();
    header("Table 2 (data specification)", f);
    let cfg = match f {
        Fidelity::Quick => table2::Config {
            cabinets: 10,
            duration_s: 120,
            producers: 8,
        },
        Fidelity::Full => table2::Config {
            cabinets: 257,
            duration_s: 300,
            producers: 16,
        },
    };
    println!("{}", table2::run(&cfg).render());
}
