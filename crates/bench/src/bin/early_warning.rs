//! Evaluates uC warnings as early diagnostics for fatal driver errors
//! (extension of the paper's Figure 13 discussion).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::early_warning;

fn main() {
    let f = fidelity();
    header("early-warning evaluation (Fig 13 extension)", f);
    let cfg = match f {
        Fidelity::Quick => early_warning::Config {
            weeks: 16.0,
            horizon_s: 3600.0,
            seed: 2020,
        },
        Fidelity::Full => early_warning::Config::default(),
    };
    println!("{}", early_warning::run(&cfg).render());
}
