//! Regenerates Figure 14 (failures per node-hour by project).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig14;

fn main() {
    let f = fidelity();
    header("Figure 14 (failures by project)", f);
    let cfg = match f {
        Fidelity::Quick => fig14::Config {
            weeks: 8.0,
            top: 15,
            min_node_hours: 1000.0,
            seed: 2020,
        },
        Fidelity::Full => fig14::Config::default(),
    };
    println!("{}", fig14::run(&cfg).render());
}
