//! Regenerates Figure 9 (CPU vs GPU per-node power density).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::fig09;

fn main() {
    let f = fidelity();
    header("Figure 9 (CPU x GPU density)", f);
    let cfg = match f {
        Fidelity::Quick => fig09::Config {
            population_scale: 0.01,
            max_samples: 2000,
        },
        Fidelity::Full => fig09::Config {
            population_scale: 0.1,
            max_samples: 8000,
        },
    };
    println!("{}", fig09::run(&cfg).render());
}
