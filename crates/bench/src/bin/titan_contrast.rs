//! Contrasts Summit's liquid-cooled failure thermal signatures against a
//! Titan-like air-cooled regime (paper Section 6 summary).
use summit_bench::{fidelity, header, Fidelity};
use summit_core::experiments::titan_contrast;

fn main() {
    let f = fidelity();
    header("Summit vs Titan thermal regimes", f);
    let cfg = match f {
        Fidelity::Quick => titan_contrast::Config {
            weeks: 12.0,
            seed: 2020,
        },
        Fidelity::Full => titan_contrast::Config::default(),
    };
    println!("{}", titan_contrast::run(&cfg).render());
}
