//! The unified `experiments` driver: list and run any registered study
//! through one shared [`ScenarioCache`].
//!
//! This is the engine behind `cargo run -p summit-bench --bin
//! experiments`. One invocation builds a single cache, so studies that
//! share an acquisition scenario (the year population, the burst engine
//! sweep, the failure log) generate it once and reuse it — `--all` runs
//! the whole paper suite with each expensive artifact built exactly
//! once.

use summit_core::cache::{ScenarioCache, HITS_COUNTER, MISSES_COUNTER};
use summit_core::experiments::registry;
use summit_core::experiments::{Experiment, REGISTRY};
use summit_core::json::Json;

/// Default fidelity scale when `--scale` is not given: the CI smoke
/// scale (seconds per study, shapes preserved).
pub const SMOKE_SCALE: f64 = 0.05;

/// Driver usage, printed on `--help` and argument errors.
pub const USAGE: &str = "\
usage: experiments [--list] [--all | <name>...] [options]

  --list            list every registered study and exit
  --all             run every registered study, sharing one scenario cache
  <name>...         run the named studies (see --list)
  --scale S         fidelity scale in (0, 1]; 1.0 = paper scale (default 0.05)
  --full            shorthand for --scale 1.0
  --config JSON     JSON object merged over each study's default config
  --json            emit one JSON envelope per study instead of plain text
  -h, --help        print this help";

/// Parsed command line for the `experiments` driver.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// Print the registry and exit.
    pub list: bool,
    /// Run every registered study.
    pub all: bool,
    /// Studies named explicitly.
    pub names: Vec<String>,
    /// Print usage and exit.
    pub help: bool,
    /// Fidelity scale in `(0, 1]`.
    pub scale: f64,
    /// Emit JSON envelopes instead of plain reports.
    pub json: bool,
    /// JSON object merged over each study's default config.
    pub overrides: Option<Json>,
}

impl Default for Invocation {
    fn default() -> Self {
        Self {
            list: false,
            all: false,
            names: Vec::new(),
            help: false,
            scale: SMOKE_SCALE,
            json: false,
            overrides: None,
        }
    }
}

impl Invocation {
    /// Parses driver arguments (everything after the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut inv = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--list" => inv.list = true,
                "--all" => inv.all = true,
                "--json" => inv.json = true,
                "--full" => inv.scale = 1.0,
                "-h" | "--help" => inv.help = true,
                "--scale" => {
                    let v = it.next().ok_or("--scale requires a value")?;
                    let s: f64 = v
                        .parse()
                        .map_err(|_| format!("invalid --scale value `{v}`"))?;
                    if !(s > 0.0 && s <= 1.0) {
                        return Err(format!("--scale must be in (0, 1], got {s}"));
                    }
                    inv.scale = s;
                }
                "--config" => {
                    let v = it.next().ok_or("--config requires a JSON object")?;
                    let json = Json::parse(&v).map_err(|e| format!("--config: {e}"))?;
                    if !matches!(json, Json::Obj(_)) {
                        return Err(format!("--config must be a JSON object, got `{json}`"));
                    }
                    inv.overrides = Some(json);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown flag `{other}`"));
                }
                name => inv.names.push(name.to_string()),
            }
        }
        Ok(inv)
    }
}

/// Renders the `--list` table.
pub fn render_list() -> String {
    let mut s = String::from("registered experiments (paper order):\n");
    for exp in REGISTRY {
        s.push_str(&format!("  {:<15} {}\n", exp.name(), exp.summary()));
    }
    s
}

/// Resolves the studies an invocation selects, in registry order for
/// `--all` and argument order otherwise.
pub fn select(inv: &Invocation) -> Result<Vec<&'static dyn Experiment>, String> {
    if inv.all {
        return Ok(REGISTRY.to_vec());
    }
    if inv.names.is_empty() {
        return Err("nothing to run: pass --all, --list or an experiment name".into());
    }
    inv.names
        .iter()
        .map(|name| {
            registry::find(name)
                .ok_or_else(|| format!("unknown experiment `{name}` (run with --list)"))
        })
        .collect()
}

/// One study's outcome in a driver run.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Registry name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The effective config the study ran with.
    pub config: Json,
    /// The rendered report.
    pub report: String,
}

/// Cache traffic recorded over a driver run.
#[derive(Debug, Clone, Copy)]
pub struct CacheTraffic {
    /// Artifacts resident in the cache after the run.
    pub artifacts: usize,
    /// Cache hits (an artifact was reused).
    pub hits: u64,
    /// Cache misses (an artifact was built).
    pub misses: u64,
}

/// Runs the selected studies through one shared cache, returning their
/// reports plus the cache traffic. Fails on the first study error.
pub fn run_selected(
    selected: &[&'static dyn Experiment],
    scale: f64,
    overrides: Option<&Json>,
) -> Result<(Vec<StudyReport>, CacheTraffic), String> {
    let obs = summit_obs::registry::Registry::new();
    let _guard = obs.install();
    let cache = ScenarioCache::new();
    let mut reports = Vec::with_capacity(selected.len());
    for exp in selected {
        let report = registry::run_by_name(&cache, exp.name(), scale, overrides)
            .map_err(|e| e.to_string())?;
        let mut config = exp.default_config(scale);
        if let Some(over) = overrides {
            config.merge(over);
        }
        reports.push(StudyReport {
            name: exp.name(),
            summary: exp.summary(),
            config,
            report,
        });
    }
    let snap = obs.snapshot();
    let traffic = CacheTraffic {
        artifacts: cache.stats().total(),
        hits: snap.counter(HITS_COUNTER).unwrap_or(0),
        misses: snap.counter(MISSES_COUNTER).unwrap_or(0),
    };
    Ok((reports, traffic))
}

/// Renders the post-run scenario-cache summary line.
pub fn render_traffic(t: &CacheTraffic) -> String {
    format!(
        "[scenario-cache] {} artifacts built ({} misses), {} reused (hits)",
        t.artifacts, t.misses, t.hits
    )
}

/// Writes a chunk to stdout, reporting whether the consumer is still
/// listening. A closed pipe (e.g. `experiments -- --all | head`) is a normal
/// way to stop reading reports, not an error worth panicking over.
fn emit(text: &str) -> bool {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    out.write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .is_ok()
}

/// Runs a full driver invocation, printing to stdout.
pub fn run(inv: &Invocation) -> Result<(), String> {
    if inv.help {
        emit(&format!("{USAGE}\n"));
        return Ok(());
    }
    if inv.list {
        emit(&render_list());
        return Ok(());
    }
    let selected = select(inv)?;
    let (reports, traffic) = run_selected(&selected, inv.scale, inv.overrides.as_ref())?;
    for r in &reports {
        let block = if inv.json {
            let envelope = Json::Obj(vec![
                ("experiment".into(), Json::from(r.name)),
                ("scale".into(), Json::Num(inv.scale)),
                ("config".into(), r.config.clone()),
                ("report".into(), Json::Str(r.report.clone())),
            ]);
            format!("{envelope}\n")
        } else {
            format!("== {} - {}\n\n{}\n", r.name, r.summary, r.report)
        };
        if !emit(&block) {
            return Ok(());
        }
    }
    if reports.len() > 1 {
        if inv.json {
            let summary = Json::Obj(vec![
                (
                    "scenario_cache_artifacts".into(),
                    Json::from(traffic.artifacts),
                ),
                ("scenario_cache_hits".into(), Json::Num(traffic.hits as f64)),
                (
                    "scenario_cache_misses".into(),
                    Json::Num(traffic.misses as f64),
                ),
            ]);
            emit(&format!("{summary}\n"));
        } else {
            emit(&format!("{}\n", render_traffic(&traffic)));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, String> {
        Invocation::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_names_and_scale() {
        let inv = parse(&["--all", "--scale", "0.2", "--json"]).unwrap();
        assert!(inv.all && inv.json && !inv.list);
        assert!((inv.scale - 0.2).abs() < 1e-12);

        let inv = parse(&["fig08", "table4", "--full"]).unwrap();
        assert_eq!(inv.names, vec!["fig08", "table4"]);
        assert_eq!(inv.scale, 1.0);

        let inv = parse(&["tables", "--config", r#"{"class": 2}"#]).unwrap();
        assert!(inv.overrides.is_some());
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--config", "[1]"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(select(&parse(&[]).unwrap()).is_err());
        assert!(select(&parse(&["fig99"]).unwrap()).is_err());
    }

    #[test]
    fn list_covers_the_registry() {
        let listing = render_list();
        for exp in REGISTRY {
            assert!(listing.contains(exp.name()), "{} missing", exp.name());
        }
    }

    #[test]
    fn selection_preserves_order() {
        let inv = parse(&["table4", "tables"]).unwrap();
        let sel = select(&inv).unwrap();
        let names: Vec<&str> = sel.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["table4", "tables"]);
        let all = select(&parse(&["--all"]).unwrap()).unwrap();
        assert_eq!(all.len(), REGISTRY.len());
    }
}
