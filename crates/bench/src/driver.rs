//! The unified `experiments` driver: list and run any registered study
//! through one shared [`ScenarioCache`].
//!
//! This is the engine behind `cargo run -p summit-bench --bin
//! experiments`. One invocation builds a single cache, so studies that
//! share an acquisition scenario (the year population, the burst engine
//! sweep, the failure log) generate it once and reuse it — `--all` runs
//! the whole paper suite with each expensive artifact built exactly
//! once.

use summit_core::cache::{ScenarioCache, HITS_COUNTER, MISSES_COUNTER};
use summit_core::experiments::registry;
use summit_core::experiments::{Experiment, REGISTRY};
use summit_core::json::Json;

/// Default fidelity scale when `--scale` is not given: the CI smoke
/// scale (seconds per study, shapes preserved).
pub const SMOKE_SCALE: f64 = 0.05;

/// Driver usage, printed on `--help` and argument errors.
pub const USAGE: &str = "\
usage: experiments [--list] [--all | <name>...] [options]

  --list            list every registered study and exit
  --all             run every registered study, sharing one scenario cache
  <name>...         run the named studies (see --list)
  --scale S         fidelity scale in (0, 1]; 1.0 = paper scale (default 0.05)
  --full            shorthand for --scale 1.0
  --config JSON     JSON object merged over each study's default config
  --json            emit one JSON envelope per study instead of plain text
  --bench           time the selected studies (default: all) sequentially
                    vs with the default thread pool and write BENCH_perf.json
  -h, --help        print this help";

/// Where `--bench` writes its machine-readable outcome (repo root when
/// invoked through `cargo run`).
pub const BENCH_PERF_PATH: &str = "BENCH_perf.json";

/// Parsed command line for the `experiments` driver.
#[derive(Debug, Clone)]
pub struct Invocation {
    /// Print the registry and exit.
    pub list: bool,
    /// Run every registered study.
    pub all: bool,
    /// Studies named explicitly.
    pub names: Vec<String>,
    /// Print usage and exit.
    pub help: bool,
    /// Fidelity scale in `(0, 1]`.
    pub scale: f64,
    /// Emit JSON envelopes instead of plain reports.
    pub json: bool,
    /// JSON object merged over each study's default config.
    pub overrides: Option<Json>,
    /// Time sequential vs parallel and write [`BENCH_PERF_PATH`].
    pub bench: bool,
}

impl Default for Invocation {
    fn default() -> Self {
        Self {
            list: false,
            all: false,
            names: Vec::new(),
            help: false,
            scale: SMOKE_SCALE,
            json: false,
            overrides: None,
            bench: false,
        }
    }
}

impl Invocation {
    /// Parses driver arguments (everything after the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut inv = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--list" => inv.list = true,
                "--all" => inv.all = true,
                "--json" => inv.json = true,
                "--bench" => inv.bench = true,
                "--full" => inv.scale = 1.0,
                "-h" | "--help" => inv.help = true,
                "--scale" => {
                    let v = it.next().ok_or("--scale requires a value")?;
                    let s: f64 = v
                        .parse()
                        .map_err(|_| format!("invalid --scale value `{v}`"))?;
                    if !(s > 0.0 && s <= 1.0) {
                        return Err(format!("--scale must be in (0, 1], got {s}"));
                    }
                    inv.scale = s;
                }
                "--config" => {
                    let v = it.next().ok_or("--config requires a JSON object")?;
                    let json = Json::parse(&v).map_err(|e| format!("--config: {e}"))?;
                    if !matches!(json, Json::Obj(_)) {
                        return Err(format!("--config must be a JSON object, got `{json}`"));
                    }
                    inv.overrides = Some(json);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown flag `{other}`"));
                }
                name => inv.names.push(name.to_string()),
            }
        }
        Ok(inv)
    }
}

/// Renders the `--list` table.
pub fn render_list() -> String {
    let mut s = String::from("registered experiments (paper order):\n");
    for exp in REGISTRY {
        s.push_str(&format!("  {:<15} {}\n", exp.name(), exp.summary()));
    }
    s
}

/// Resolves the studies an invocation selects, in registry order for
/// `--all` and argument order otherwise.
pub fn select(inv: &Invocation) -> Result<Vec<&'static dyn Experiment>, String> {
    if inv.all || (inv.bench && inv.names.is_empty()) {
        return Ok(REGISTRY.to_vec());
    }
    if inv.names.is_empty() {
        return Err("nothing to run: pass --all, --list or an experiment name".into());
    }
    inv.names
        .iter()
        .map(|name| {
            registry::find(name)
                .ok_or_else(|| format!("unknown experiment `{name}` (run with --list)"))
        })
        .collect()
}

/// One study's outcome in a driver run.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Registry name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The effective config the study ran with.
    pub config: Json,
    /// The rendered report.
    pub report: String,
}

/// Cache traffic recorded over a driver run.
#[derive(Debug, Clone, Copy)]
pub struct CacheTraffic {
    /// Artifacts resident in the cache after the run.
    pub artifacts: usize,
    /// Cache hits (an artifact was reused).
    pub hits: u64,
    /// Cache misses (an artifact was built).
    pub misses: u64,
}

/// Thread-pool traffic recorded over a driver run.
#[derive(Debug, Clone, Copy)]
pub struct ParTraffic {
    /// Worker threads the pool resolves to (`SUMMIT_THREADS` or the
    /// machine's available parallelism).
    pub threads: usize,
    /// Parallel chunk tasks executed (`summit_par_tasks_total`).
    pub tasks: u64,
}

/// Runs the selected studies through one shared cache, returning their
/// reports plus the cache and thread-pool traffic. Fails on the first
/// study error.
pub fn run_selected(
    selected: &[&'static dyn Experiment],
    scale: f64,
    overrides: Option<&Json>,
) -> Result<(Vec<StudyReport>, CacheTraffic, ParTraffic), String> {
    let obs = summit_obs::registry::Registry::new();
    let _guard = obs.install();
    let cache = ScenarioCache::new();
    let mut reports = Vec::with_capacity(selected.len());
    for exp in selected {
        let report = registry::run_by_name(&cache, exp.name(), scale, overrides)
            .map_err(|e| e.to_string())?;
        let mut config = exp.default_config(scale);
        if let Some(over) = overrides {
            config.merge(over);
        }
        reports.push(StudyReport {
            name: exp.name(),
            summary: exp.summary(),
            config,
            report,
        });
    }
    let snap = obs.snapshot();
    let traffic = CacheTraffic {
        artifacts: cache.stats().total(),
        hits: snap.counter(HITS_COUNTER).unwrap_or(0),
        misses: snap.counter(MISSES_COUNTER).unwrap_or(0),
    };
    let par = ParTraffic {
        threads: rayon::current_num_threads(),
        tasks: snap.counter("summit_par_tasks_total").unwrap_or(0),
    };
    Ok((reports, traffic, par))
}

/// Renders the post-run scenario-cache summary line.
pub fn render_traffic(t: &CacheTraffic) -> String {
    format!(
        "[scenario-cache] {} artifacts built ({} misses), {} reused (hits)",
        t.artifacts, t.misses, t.hits
    )
}

/// Renders the post-run thread-pool summary line.
pub fn render_par(p: &ParTraffic) -> String {
    format!(
        "[par] {} worker thread{} over {} parallel tasks (SUMMIT_THREADS to change)",
        p.threads,
        if p.threads == 1 { "" } else { "s" },
        p.tasks
    )
}

/// Outcome of a `--bench` run: the same study selection timed twice,
/// once pinned to one thread and once on the default pool.
#[derive(Debug, Clone, Copy)]
pub struct BenchOutcome {
    /// Wall-clock seconds with the pool pinned to one thread.
    pub sequential_s: f64,
    /// Wall-clock seconds with the default pool.
    pub parallel_s: f64,
    /// Default pool size the parallel leg resolved to.
    pub threads: usize,
    /// `sequential_s / parallel_s`.
    pub speedup: f64,
}

impl BenchOutcome {
    /// The CI gate verdict: `"skip"` on one-core hosts (no parallelism
    /// to measure), else `"pass"` when the parallel leg is at least as
    /// fast as the sequential one and `"fail"` otherwise.
    pub fn gate(&self) -> &'static str {
        if self.threads <= 1 {
            "skip"
        } else if self.parallel_s <= self.sequential_s {
            "pass"
        } else {
            "fail"
        }
    }

    /// Serializes the outcome to the `BENCH_perf.json` document.
    pub fn to_json(&self, scale: f64) -> String {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::from("summit-perf/1")),
            ("scale".into(), Json::Num(scale)),
            ("threads".into(), Json::from(self.threads)),
            ("sequential_seconds".into(), Json::Num(self.sequential_s)),
            ("parallel_seconds".into(), Json::Num(self.parallel_s)),
            ("speedup".into(), Json::Num(self.speedup)),
            ("gate".into(), Json::from(self.gate())),
        ]);
        format!("{doc}\n")
    }
}

/// Times the selected studies sequentially (pool pinned to one thread)
/// and then on the default pool, each leg against a fresh scenario
/// cache so both build every artifact from scratch.
pub fn run_bench(
    selected: &[&'static dyn Experiment],
    scale: f64,
    overrides: Option<&Json>,
) -> Result<BenchOutcome, String> {
    let time_leg = |f: &dyn Fn() -> Result<(), String>| -> Result<f64, String> {
        let started = std::time::Instant::now();
        f()?;
        Ok(started.elapsed().as_secs_f64())
    };
    let sequential_s = time_leg(&|| {
        rayon::with_thread_count(1, || run_selected(selected, scale, overrides)).map(|_| ())
    })?;
    let parallel_s = time_leg(&|| run_selected(selected, scale, overrides).map(|_| ()))?;
    Ok(BenchOutcome {
        sequential_s,
        parallel_s,
        threads: rayon::current_num_threads(),
        speedup: sequential_s / parallel_s.max(f64::MIN_POSITIVE),
    })
}

/// Renders the human-readable `--bench` summary.
pub fn render_bench(b: &BenchOutcome) -> String {
    format!(
        "[bench] sequential {:.3}s, parallel {:.3}s on {} threads -> {:.2}x speedup (gate: {})",
        b.sequential_s,
        b.parallel_s,
        b.threads,
        b.speedup,
        b.gate()
    )
}

/// Writes a chunk to stdout, reporting whether the consumer is still
/// listening. A closed pipe (e.g. `experiments -- --all | head`) is a normal
/// way to stop reading reports, not an error worth panicking over.
fn emit(text: &str) -> bool {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    out.write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .is_ok()
}

/// Runs a full driver invocation, printing to stdout.
pub fn run(inv: &Invocation) -> Result<(), String> {
    if inv.help {
        emit(&format!("{USAGE}\n"));
        return Ok(());
    }
    if inv.list {
        emit(&render_list());
        return Ok(());
    }
    let selected = select(inv)?;
    if inv.bench {
        let outcome = run_bench(&selected, inv.scale, inv.overrides.as_ref())?;
        let json = outcome.to_json(inv.scale);
        std::fs::write(BENCH_PERF_PATH, &json)
            .map_err(|e| format!("failed to write {BENCH_PERF_PATH}: {e}"))?;
        emit(&format!(
            "{}\nwrote {BENCH_PERF_PATH} ({} bytes)\n",
            render_bench(&outcome),
            json.len()
        ));
        return Ok(());
    }
    let (reports, traffic, par) = run_selected(&selected, inv.scale, inv.overrides.as_ref())?;
    for r in &reports {
        let block = if inv.json {
            let envelope = Json::Obj(vec![
                ("experiment".into(), Json::from(r.name)),
                ("scale".into(), Json::Num(inv.scale)),
                ("config".into(), r.config.clone()),
                ("report".into(), Json::Str(r.report.clone())),
            ]);
            format!("{envelope}\n")
        } else {
            format!("== {} - {}\n\n{}\n", r.name, r.summary, r.report)
        };
        if !emit(&block) {
            return Ok(());
        }
    }
    if reports.len() > 1 {
        if inv.json {
            let summary = Json::Obj(vec![
                (
                    "scenario_cache_artifacts".into(),
                    Json::from(traffic.artifacts),
                ),
                ("scenario_cache_hits".into(), Json::Num(traffic.hits as f64)),
                (
                    "scenario_cache_misses".into(),
                    Json::Num(traffic.misses as f64),
                ),
                ("par_threads".into(), Json::from(par.threads)),
                ("par_tasks".into(), Json::Num(par.tasks as f64)),
            ]);
            emit(&format!("{summary}\n"));
        } else {
            emit(&format!(
                "{}\n{}\n",
                render_traffic(&traffic),
                render_par(&par)
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, String> {
        Invocation::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_names_and_scale() {
        let inv = parse(&["--all", "--scale", "0.2", "--json"]).unwrap();
        assert!(inv.all && inv.json && !inv.list);
        assert!((inv.scale - 0.2).abs() < 1e-12);

        let inv = parse(&["fig08", "table4", "--full"]).unwrap();
        assert_eq!(inv.names, vec!["fig08", "table4"]);
        assert_eq!(inv.scale, 1.0);

        let inv = parse(&["tables", "--config", r#"{"class": 2}"#]).unwrap();
        assert!(inv.overrides.is_some());
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--config", "[1]"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(select(&parse(&[]).unwrap()).is_err());
        assert!(select(&parse(&["fig99"]).unwrap()).is_err());
    }

    #[test]
    fn bench_flag_parses_and_selects_everything() {
        let inv = parse(&["--bench"]).unwrap();
        assert!(inv.bench && !inv.all);
        // Bare --bench implies the full suite...
        assert_eq!(select(&inv).unwrap().len(), REGISTRY.len());
        // ...but explicit names narrow it.
        let inv = parse(&["--bench", "table4"]).unwrap();
        assert_eq!(select(&inv).unwrap().len(), 1);
    }

    #[test]
    fn bench_gate_verdicts() {
        let outcome = |threads, seq, par| BenchOutcome {
            sequential_s: seq,
            parallel_s: par,
            threads,
            speedup: seq / par,
        };
        assert_eq!(outcome(1, 1.0, 1.0).gate(), "skip");
        assert_eq!(outcome(4, 2.0, 1.0).gate(), "pass");
        assert_eq!(outcome(4, 1.0, 2.0).gate(), "fail");
    }

    #[test]
    fn bench_json_round_trips() {
        let json = BenchOutcome {
            sequential_s: 2.5,
            parallel_s: 1.25,
            threads: 4,
            speedup: 2.0,
        }
        .to_json(0.05);
        let doc = Json::parse(&json).unwrap();
        let Json::Obj(fields) = &doc else {
            panic!("expected object")
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(get("schema"), Some(&Json::from("summit-perf/1")));
        assert_eq!(get("gate"), Some(&Json::from("pass")));
        assert_eq!(get("threads"), Some(&Json::from(4usize)));
    }

    #[test]
    fn list_covers_the_registry() {
        let listing = render_list();
        for exp in REGISTRY {
            assert!(listing.contains(exp.name()), "{} missing", exp.name());
        }
    }

    #[test]
    fn selection_preserves_order() {
        let inv = parse(&["table4", "tables"]).unwrap();
        let sel = select(&inv).unwrap();
        let names: Vec<&str> = sel.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["table4", "tables"]);
        let all = select(&parse(&["--all"]).unwrap()).unwrap();
        assert_eq!(all.len(), REGISTRY.len());
    }
}
