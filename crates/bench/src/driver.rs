//! The unified `experiments` driver: list and run any registered study
//! through one shared [`ScenarioCache`].
//!
//! This is the engine behind `cargo run -p summit-bench --bin
//! experiments`. One invocation builds a single cache, so studies that
//! share an acquisition scenario (the year population, the burst engine
//! sweep, the failure log) generate it once and reuse it — `--all` runs
//! the whole paper suite with each expensive artifact built exactly
//! once.

use summit_analysis::cdf::Ecdf;
use summit_analysis::correlation::CorrelationMatrix;
use summit_analysis::fft::fft_padded;
use summit_analysis::kde::{Bandwidth, Kde1d, Kde2d};
use summit_analysis::stats::WindowStats;
use summit_core::cache::{ScenarioCache, HITS_COUNTER, MISSES_COUNTER};
use summit_core::experiments::registry;
use summit_core::experiments::{Experiment, REGISTRY};
use summit_core::json::Json;
use summit_core::pipeline::{run_streaming, run_telemetry, StreamConfig};
use summit_sim::engine::{Engine, EngineConfig, StepOptions};
use summit_telemetry::batch::FrameBatch;
use summit_telemetry::catalog::METRIC_COUNT;
use summit_telemetry::cluster::cluster_power;
use summit_telemetry::ids::{AllocationId, NodeId};
use summit_telemetry::ingest::IngestHealth;
use summit_telemetry::jobjoin::{join_jobs, AllocationIndex};
use summit_telemetry::records::{NodeAllocation, NodeFrame};
use summit_telemetry::stream::FaultConfig;
use summit_telemetry::window::{
    coarsen_parallel_layout, CoarsenLayout, NodeWindow, PAPER_WINDOW_S,
};

/// Default fidelity scale when `--scale` is not given: the CI smoke
/// scale (seconds per study, shapes preserved).
pub const SMOKE_SCALE: f64 = 0.05;

/// Default fidelity scale for `--bench`: large enough that the
/// trajectory's parallel kernels dominate the wall clock (at
/// [`SMOKE_SCALE`] fixed costs drown them and no pool can win), small
/// enough for a CI leg.
pub const BENCH_SCALE: f64 = 0.25;

/// Minimum end-to-end speedup (1 thread vs the default pool) the
/// `--bench` gate demands on a multi-core host.
pub const SPEEDUP_THRESHOLD: f64 = 1.15;

/// Minimum per-kernel speedup the gate tolerates on a multi-core host:
/// a stage may not profit from the pool (it runs inline under its
/// `seq_below` floor), but it must never pay for it. Anything below
/// this is a parallel regression of that kernel.
pub const PER_KERNEL_FLOOR: f64 = 0.95;

/// Per-stage sequential seconds below which the per-kernel gate treats
/// the timing as noise and abstains: a sub-5 ms histogram sum is timer
/// jitter, not a measurement, even after [`KERNEL_REPS`] repetitions.
pub const STAGE_NOISE_FLOOR_S: f64 = 0.005;

/// Minimum rows/columns coarsening-time ratio the AoS-vs-SoA leg
/// demands of the columnar layout on a multi-core host.
pub const AOS_SOA_THRESHOLD: f64 = 1.3;

/// Repetitions of the µs-scale analysis kernels (FFT, KDE fits, ECDF,
/// correlation) per trajectory pass: one call is far below timer
/// resolution at bench scale, so each leg repeats the kernel on the
/// same input and the per-stage histogram sums the repetitions. Both
/// legs repeat identically, leaving speedups unbiased.
const KERNEL_REPS: usize = 25;

/// Driver usage, printed on `--help` and argument errors.
pub const USAGE: &str = "\
usage: experiments [--list] [--all | <name>...] [options]

  --list            list every registered study and exit
  --all             run every registered study, sharing one scenario cache
  <name>...         run the named studies (see --list)
  --scale S         fidelity scale in (0, 1]; 1.0 = paper scale
                    (default 0.05, or 0.25 under --bench)
  --full            shorthand for --scale 1.0
  --config JSON     JSON object merged over each study's default config
  --json            emit one JSON envelope per study instead of plain text
  --bench           time the multi-kernel parallel trajectory (engine
                    ticks -> coarsening -> job join -> analysis
                    kernels) with 1 thread vs the default pool and
                    write BENCH_perf.json; study names are ignored
  --trace PATH      record a deterministic (virtual-clock) trace of the
                    run and write Chrome/Perfetto Trace Event JSON to
                    PATH (load at chrome://tracing or ui.perfetto.dev);
                    incompatible with --bench
  --trace-folded PATH
                    also write flamegraph-compatible folded stacks
  --stream          run table2-class studies online: frames are
                    generated on a producer thread and processed as
                    they arrive over a bounded, backpressured channel
                    (bit-identical output to the batch replay);
                    incompatible with --bench (which always times a
                    streaming leg)
  --export-windows PATH
                    run the telemetry pipeline at the effective scale
                    and write its coarsened 10 s windows as CSV to
                    PATH; honors --stream (same seed -> byte-identical
                    file either way); incompatible with --bench
  -h, --help        print this help";

/// Where `--bench` writes its machine-readable outcome (repo root when
/// invoked through `cargo run`).
pub const BENCH_PERF_PATH: &str = "BENCH_perf.json";

/// Parsed command line for the `experiments` driver.
#[derive(Debug, Clone, Default)]
pub struct Invocation {
    /// Print the registry and exit.
    pub list: bool,
    /// Run every registered study.
    pub all: bool,
    /// Studies named explicitly.
    pub names: Vec<String>,
    /// Print usage and exit.
    pub help: bool,
    /// Fidelity scale in `(0, 1]`; `None` picks the mode default
    /// ([`BENCH_SCALE`] under `--bench`, [`SMOKE_SCALE`] otherwise).
    pub scale: Option<f64>,
    /// Emit JSON envelopes instead of plain reports.
    pub json: bool,
    /// JSON object merged over each study's default config.
    pub overrides: Option<Json>,
    /// Time sequential vs parallel and write [`BENCH_PERF_PATH`].
    pub bench: bool,
    /// Write a Chrome/Perfetto Trace Event JSON of the run here.
    pub trace: Option<String>,
    /// Write flamegraph-compatible folded stacks of the run here.
    pub trace_folded: Option<String>,
    /// Run streaming-capable studies online (merges `"stream": true`
    /// over each study's config) and stream the `--export-windows` run.
    pub stream: bool,
    /// Write the pipeline's coarsened windows as CSV to this path.
    pub export_windows: Option<String>,
}

impl Invocation {
    /// Parses driver arguments (everything after the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self, String> {
        let mut inv = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--list" => inv.list = true,
                "--all" => inv.all = true,
                "--json" => inv.json = true,
                "--bench" => inv.bench = true,
                "--full" => inv.scale = Some(1.0),
                "-h" | "--help" => inv.help = true,
                "--scale" => {
                    let v = it.next().ok_or("--scale requires a value")?;
                    let s: f64 = v
                        .parse()
                        .map_err(|_| format!("invalid --scale value `{v}`"))?;
                    if !(s > 0.0 && s <= 1.0) {
                        return Err(format!("--scale must be in (0, 1], got {s}"));
                    }
                    inv.scale = Some(s);
                }
                "--trace" => {
                    let v = it.next().ok_or("--trace requires a path")?;
                    inv.trace = Some(v);
                }
                "--trace-folded" => {
                    let v = it.next().ok_or("--trace-folded requires a path")?;
                    inv.trace_folded = Some(v);
                }
                "--stream" => inv.stream = true,
                "--export-windows" => {
                    let v = it.next().ok_or("--export-windows requires a path")?;
                    inv.export_windows = Some(v);
                }
                "--config" => {
                    let v = it.next().ok_or("--config requires a JSON object")?;
                    let json = Json::parse(&v).map_err(|e| format!("--config: {e}"))?;
                    if !matches!(json, Json::Obj(_)) {
                        return Err(format!("--config must be a JSON object, got `{json}`"));
                    }
                    inv.overrides = Some(json);
                }
                other if other.starts_with('-') => {
                    return Err(format!("unknown flag `{other}`"));
                }
                name => inv.names.push(name.to_string()),
            }
        }
        Ok(inv)
    }

    /// The fidelity scale this invocation runs at: the explicit
    /// `--scale`/`--full` value, else the mode default.
    pub fn effective_scale(&self) -> f64 {
        self.scale
            .unwrap_or(if self.bench { BENCH_SCALE } else { SMOKE_SCALE })
    }
}

/// Renders the `--list` table.
pub fn render_list() -> String {
    let mut s = String::from("registered experiments (paper order):\n");
    for exp in REGISTRY {
        s.push_str(&format!("  {:<15} {}\n", exp.name(), exp.summary()));
    }
    s
}

/// Resolves the studies an invocation selects, in registry order for
/// `--all` and argument order otherwise.
pub fn select(inv: &Invocation) -> Result<Vec<&'static dyn Experiment>, String> {
    if inv.all || (inv.bench && inv.names.is_empty()) {
        return Ok(REGISTRY.to_vec());
    }
    if inv.names.is_empty() {
        return Err("nothing to run: pass --all, --list or an experiment name".into());
    }
    inv.names
        .iter()
        .map(|name| {
            registry::find(name)
                .ok_or_else(|| format!("unknown experiment `{name}` (run with --list)"))
        })
        .collect()
}

/// One study's outcome in a driver run.
#[derive(Debug, Clone)]
pub struct StudyReport {
    /// Registry name.
    pub name: &'static str,
    /// One-line summary.
    pub summary: &'static str,
    /// The effective config the study ran with.
    pub config: Json,
    /// The rendered report.
    pub report: String,
}

/// Cache traffic recorded over a driver run.
#[derive(Debug, Clone, Copy)]
pub struct CacheTraffic {
    /// Artifacts resident in the cache after the run.
    pub artifacts: usize,
    /// Cache hits (an artifact was reused).
    pub hits: u64,
    /// Cache misses (an artifact was built).
    pub misses: u64,
}

/// Thread-pool traffic recorded over a driver run.
#[derive(Debug, Clone, Copy)]
pub struct ParTraffic {
    /// Worker threads the pool resolves to (`SUMMIT_THREADS` or the
    /// machine's available parallelism).
    pub threads: usize,
    /// Parallel chunk tasks executed (`summit_par_tasks_total`).
    pub tasks: u64,
}

/// Everything one driver run produces: study reports, cache and pool
/// traffic, and the run's full observability snapshot (the `--bench`
/// stage table reads per-stage `_seconds` histograms out of it).
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// One report per selected study, in selection order.
    pub reports: Vec<StudyReport>,
    /// Scenario-cache traffic.
    pub traffic: CacheTraffic,
    /// Thread-pool traffic.
    pub par: ParTraffic,
    /// The scoped registry snapshot the run recorded into.
    pub obs: summit_obs::Snapshot,
}

/// Runs the selected studies through one shared cache. Fails on the
/// first study error.
pub fn run_selected(
    selected: &[&'static dyn Experiment],
    scale: f64,
    overrides: Option<&Json>,
) -> Result<RunOutput, String> {
    let obs = summit_obs::registry::Registry::new();
    let _guard = obs.install();
    let cache = ScenarioCache::new();
    let mut reports = Vec::with_capacity(selected.len());
    for exp in selected {
        let report = registry::run_by_name(&cache, exp.name(), scale, overrides)
            .map_err(|e| e.to_string())?;
        let mut config = exp.default_config(scale);
        if let Some(over) = overrides {
            config.merge(over);
        }
        reports.push(StudyReport {
            name: exp.name(),
            summary: exp.summary(),
            config,
            report,
        });
    }
    let snap = obs.snapshot();
    let traffic = CacheTraffic {
        artifacts: cache.stats().total(),
        hits: snap.counter(HITS_COUNTER).unwrap_or(0),
        misses: snap.counter(MISSES_COUNTER).unwrap_or(0),
    };
    let par = ParTraffic {
        threads: rayon::current_num_threads(),
        tasks: snap.counter("summit_par_tasks_total").unwrap_or(0),
    };
    Ok(RunOutput {
        reports,
        traffic,
        par,
        obs: snap,
    })
}

/// Renders the post-run scenario-cache summary line.
pub fn render_traffic(t: &CacheTraffic) -> String {
    format!(
        "[scenario-cache] {} artifacts built ({} misses), {} reused (hits)",
        t.artifacts, t.misses, t.hits
    )
}

/// Renders the post-run thread-pool summary line.
pub fn render_par(p: &ParTraffic) -> String {
    format!(
        "[par] {} worker thread{} over {} parallel tasks (SUMMIT_THREADS to change)",
        p.threads,
        if p.threads == 1 { "" } else { "s" },
        p.tasks
    )
}

/// The multi-kernel trajectory `--bench` reports: every pipeline stage
/// timed in both legs, keyed by the label used in `BENCH_perf.json`
/// and the `_seconds` histogram the stage records into.
pub const BENCH_STAGES: &[(&str, &str)] = &[
    ("engine_tick", "summit_core_engine_tick_seconds"),
    ("frame_generation", "summit_core_frame_generation_seconds"),
    ("coarsen", "summit_telemetry_coarsen_seconds"),
    ("jobjoin", "summit_telemetry_jobjoin_seconds"),
    ("fan_in", "summit_telemetry_fan_in_seconds"),
    ("fft", "summit_analysis_fft_seconds"),
    ("kde_fit", "summit_analysis_kde_fit_seconds"),
    ("kde2_fit", "summit_analysis_kde2_fit_seconds"),
    ("cdf_build", "summit_analysis_cdf_build_seconds"),
    ("correlation", "summit_analysis_correlation_seconds"),
];

/// One pipeline stage's seconds in each `--bench` leg (histogram sums
/// over every call of that stage across the selected studies), plus the
/// work it processed so the artifact carries real throughput numbers.
#[derive(Debug, Clone, Copy)]
pub struct StageTiming {
    /// Stage label (first column of [`BENCH_STAGES`]).
    pub name: &'static str,
    /// Total seconds in the one-thread leg.
    pub sequential_s: f64,
    /// Total seconds in the default-pool leg.
    pub parallel_s: f64,
    /// Elements the stage processed in one leg, kernel repetitions
    /// included (0 when the stage's work is untracked).
    pub elements: u64,
    /// Bytes the stage read in one leg (0 when untracked).
    pub bytes: u64,
}

impl StageTiming {
    /// `sequential_s / parallel_s` (0 when the stage never ran).
    pub fn speedup(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.sequential_s / self.parallel_s
        } else {
            0.0
        }
    }

    /// Parallel-leg throughput in elements per second (0 when the
    /// stage never ran or its work is untracked).
    pub fn elements_per_s(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.elements as f64 / self.parallel_s
        } else {
            0.0
        }
    }

    /// Parallel-leg throughput in bytes per second.
    pub fn bytes_per_s(&self) -> f64 {
        if self.parallel_s > 0.0 {
            self.bytes as f64 / self.parallel_s
        } else {
            0.0
        }
    }

    /// True when the timing is strong enough for the per-kernel gate
    /// to judge: the stage ran in both legs and its sequential time is
    /// above the noise floor.
    pub fn gated(&self) -> bool {
        self.sequential_s >= STAGE_NOISE_FLOOR_S && self.parallel_s > 0.0
    }
}

/// Work one trajectory stage processed, computed from the leg's actual
/// data shapes (frame counts, window counts, series lengths) so the
/// per-stage throughput in the artifact is a measurement, not a guess.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageWork {
    /// Stage label (matches [`BENCH_STAGES`]).
    pub name: &'static str,
    /// Elements processed (kernel repetitions included).
    pub elements: u64,
    /// Bytes read (kernel repetitions included).
    pub bytes: u64,
}

/// The AoS-vs-SoA comparison leg: the same fault-free capture coarsened
/// once with the row-structured reference layout and once with the
/// columnar hot path, results cross-checked bit-for-bit before either
/// time is reported.
#[derive(Debug, Clone, Copy)]
pub struct LayoutBench {
    /// Seconds coarsening with [`CoarsenLayout::Rows`] (AoS reference).
    pub rows_s: f64,
    /// Seconds coarsening with [`CoarsenLayout::Columns`] (SoA path).
    pub columns_s: f64,
    /// Windows each layout produced (bitwise-identical by check).
    pub windows: usize,
}

impl LayoutBench {
    /// `rows_s / columns_s`: how much faster the columnar layout
    /// coarsens the identical capture (0 when unmeasured).
    pub fn ratio(&self) -> f64 {
        if self.columns_s > 0.0 {
            self.rows_s / self.columns_s
        } else {
            0.0
        }
    }
}

/// Measurements from the online (streaming) pipeline leg of `--bench`:
/// one smoke-scale [`run_streaming`] pass, cross-checked bit-for-bit
/// against the batch replay before any number is reported.
#[derive(Debug, Clone, Copy)]
pub struct StreamingBench {
    /// Wall-clock seconds of the streaming pass.
    pub wall_s: f64,
    /// Sustained ingest rate: frames offered per wall-clock second.
    pub frames_per_s: f64,
    /// Live frame-to-alert latency, 99th percentile (simulated s).
    pub frame_to_alert_p99_s: f64,
    /// Producer stalls on the full channel (blocking backpressure).
    pub backpressure_stalls: u64,
    /// Peak frames resident in the pipeline (bounded-memory witness).
    pub peak_resident_frames: usize,
}

/// Outcome of a `--bench` run: the same study selection timed twice,
/// once pinned to one thread and once on the default pool, with the
/// per-stage kernel trajectory alongside the end-to-end wall clock,
/// plus one streaming-pipeline leg.
#[derive(Debug, Clone)]
pub struct BenchOutcome {
    /// Wall-clock seconds with the pool pinned to one thread.
    pub sequential_s: f64,
    /// Wall-clock seconds with the default pool.
    pub parallel_s: f64,
    /// Default pool size the parallel leg resolved to.
    pub threads: usize,
    /// CPUs the host reports (`available_parallelism`).
    pub host_cpus: usize,
    /// The raw `SUMMIT_THREADS` value, when set: distinguishes a pool
    /// pinned by configuration from a genuinely single-core host.
    pub summit_threads: Option<String>,
    /// `sequential_s / parallel_s`.
    pub speedup: f64,
    /// [`rayon::pool_generation`] after the timed legs: constant across
    /// CI runs' legs exactly when the persistent pool reused its
    /// workers (warm-pool reuse, provable from the artifact).
    pub pool_generation: u64,
    /// Per-stage kernel timings (stages that ran in either leg).
    pub stages: Vec<StageTiming>,
    /// AoS-vs-SoA coarsening comparison leg.
    pub aos_soa: LayoutBench,
    /// Streaming-pipeline leg measurements.
    pub streaming: StreamingBench,
}

impl BenchOutcome {
    /// The CI gate verdict: `"skip"` on one-core hosts (no parallelism
    /// to measure), else `"pass"` when the end-to-end speedup clears
    /// [`SPEEDUP_THRESHOLD`], every measurable kernel holds
    /// [`PER_KERNEL_FLOOR`], and the columnar layout beats the AoS
    /// reference by [`AOS_SOA_THRESHOLD`]; `"fail"` otherwise.
    pub fn gate(&self) -> &'static str {
        if self.threads <= 1 {
            "skip"
        } else if self.speedup < SPEEDUP_THRESHOLD
            || self
                .stages
                .iter()
                .any(|s| s.gated() && s.speedup() < PER_KERNEL_FLOOR)
            || self.aos_soa.ratio() < AOS_SOA_THRESHOLD
        {
            "fail"
        } else {
            "pass"
        }
    }

    /// Why a `"skip"` gate skipped, for the artifact: a pool pinned by
    /// `SUMMIT_THREADS` or a genuinely single-core host. `None` when
    /// the gate did not skip.
    pub fn skip_reason(&self) -> Option<String> {
        if self.threads > 1 {
            return None;
        }
        Some(match &self.summit_threads {
            Some(v) => format!("SUMMIT_THREADS={v} pins the pool to one thread"),
            None => format!(
                "single-core host ({} CPU): no parallelism to measure",
                self.host_cpus
            ),
        })
    }

    /// Serializes the outcome to the `BENCH_perf.json` document
    /// (schema `summit-perf/3`: adds host provenance, an explicit skip
    /// reason, per-stage throughput and the AoS-vs-SoA leg to
    /// `summit-perf/2`).
    pub fn to_json(&self, scale: f64) -> String {
        let stages = self
            .stages
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("name".into(), Json::from(s.name)),
                    ("sequential_seconds".into(), Json::Num(s.sequential_s)),
                    ("parallel_seconds".into(), Json::Num(s.parallel_s)),
                    ("speedup".into(), Json::Num(s.speedup())),
                    ("elements".into(), Json::Num(s.elements as f64)),
                    ("bytes".into(), Json::Num(s.bytes as f64)),
                    ("elements_per_second".into(), Json::Num(s.elements_per_s())),
                    ("bytes_per_second".into(), Json::Num(s.bytes_per_s())),
                ])
            })
            .collect();
        let doc = Json::Obj(vec![
            ("schema".into(), Json::from("summit-perf/3")),
            ("scale".into(), Json::Num(scale)),
            ("threads".into(), Json::from(self.threads)),
            ("host_cpus".into(), Json::from(self.host_cpus)),
            (
                "summit_threads".into(),
                self.summit_threads
                    .as_ref()
                    .map_or(Json::Null, |v| Json::Str(v.clone())),
            ),
            ("sequential_seconds".into(), Json::Num(self.sequential_s)),
            ("parallel_seconds".into(), Json::Num(self.parallel_s)),
            ("speedup".into(), Json::Num(self.speedup)),
            ("speedup_threshold".into(), Json::Num(SPEEDUP_THRESHOLD)),
            ("per_kernel_floor".into(), Json::Num(PER_KERNEL_FLOOR)),
            (
                "pool_generation".into(),
                Json::Num(self.pool_generation as f64),
            ),
            ("gate".into(), Json::from(self.gate())),
            (
                "skip_reason".into(),
                self.skip_reason().map_or(Json::Null, Json::Str),
            ),
            ("stages".into(), Json::Arr(stages)),
            (
                "aos_soa".into(),
                Json::Obj(vec![
                    ("rows_seconds".into(), Json::Num(self.aos_soa.rows_s)),
                    ("columns_seconds".into(), Json::Num(self.aos_soa.columns_s)),
                    ("ratio".into(), Json::Num(self.aos_soa.ratio())),
                    ("ratio_threshold".into(), Json::Num(AOS_SOA_THRESHOLD)),
                    ("windows".into(), Json::from(self.aos_soa.windows)),
                ]),
            ),
            (
                "streaming".into(),
                Json::Obj(vec![
                    ("wall_seconds".into(), Json::Num(self.streaming.wall_s)),
                    (
                        "frames_per_second".into(),
                        Json::Num(self.streaming.frames_per_s),
                    ),
                    (
                        "frame_to_alert_p99_seconds".into(),
                        Json::Num(self.streaming.frame_to_alert_p99_s),
                    ),
                    (
                        "backpressure_stalls".into(),
                        Json::Num(self.streaming.backpressure_stalls as f64),
                    ),
                    (
                        "peak_resident_frames".into(),
                        Json::from(self.streaming.peak_resident_frames),
                    ),
                ]),
            ),
        ]);
        format!("{doc}\n")
    }
}

/// Sum of the named `_seconds` histogram in a run snapshot (0 when the
/// stage never ran).
fn stage_seconds(snap: &summit_obs::Snapshot, metric: &str) -> f64 {
    snap.histogram(metric).map_or(0.0, |h| h.sum)
}

/// Builds the per-stage table from the two legs' snapshots and the
/// trajectory's work profile, keeping stages that ran in either leg.
fn stage_table(
    seq: &summit_obs::Snapshot,
    par: &summit_obs::Snapshot,
    work: &[StageWork],
) -> Vec<StageTiming> {
    BENCH_STAGES
        .iter()
        .map(|&(name, metric)| {
            let w = work.iter().find(|w| w.name == name);
            StageTiming {
                name,
                sequential_s: stage_seconds(seq, metric),
                parallel_s: stage_seconds(par, metric),
                elements: w.map_or(0, |w| w.elements),
                bytes: w.map_or(0, |w| w.bytes),
            }
        })
        .filter(|s| s.sequential_s > 0.0 || s.parallel_s > 0.0)
        .collect()
}

/// Bench-trajectory shape at `scale`: a cabinet slice of the paper's
/// 257-cabinet machine and a capture long enough that the parallel
/// stages (engine tick map, coarsening, cluster reduction) dominate
/// the wall clock.
fn trajectory_shape(scale: f64) -> (usize, f64) {
    let cabinets = ((257.0 * scale).round() as usize).clamp(2, 257);
    (cabinets, 240.0)
}

/// Synthetic scheduler log for the join stage: the node set carved
/// into 16-node jobs, each node running one job in each half of the
/// capture — every window finds an owner, and the index is exercised
/// across an allocation boundary.
fn synthetic_allocations(node_count: usize, duration_s: f64) -> Vec<NodeAllocation> {
    const JOB_NODES: usize = 16;
    let half = duration_s / 2.0;
    let mut allocations = Vec::new();
    for (k, first_node) in (0..node_count).step_by(JOB_NODES).enumerate() {
        for (phase, (begin, end)) in [(0.0, half), (half, duration_s)].into_iter().enumerate() {
            let id = AllocationId((2 * k + phase + 1) as u64);
            for node in first_node..(first_node + JOB_NODES).min(node_count) {
                allocations.push(NodeAllocation {
                    allocation_id: id,
                    node: NodeId(node as u32),
                    begin_time: begin,
                    end_time: end,
                });
            }
        }
    }
    allocations
}

/// What one trajectory pass returns: the leg's private registry
/// snapshot, a small data fingerprint used to check the two legs
/// processed identical data, and the per-stage work profile.
type TrajectoryLeg = (summit_obs::Snapshot, usize, Vec<StageWork>);

/// One pass of the `--bench` trajectory: the telemetry capture (engine
/// tick map, frame generation, fault injection, fault-tolerant
/// coarsening), the scheduler join, the cluster reduction, then the
/// analysis kernels the paper's figures lean on (FFT, 1-D/2-D KDE,
/// ECDF, correlation matrix), each repeated [`KERNEL_REPS`] times so
/// their histogram sums rise above timer noise. Records into a private
/// registry and returns its snapshot, the fingerprint, and the work
/// profile the throughput columns are computed from.
fn trajectory_leg(scale: f64) -> Result<TrajectoryLeg, String> {
    let obs = summit_obs::registry::Registry::new();
    let guard = obs.install();
    let (cabinets, duration_s) = trajectory_shape(scale);
    let run = run_telemetry(cabinets, duration_s, Some(FaultConfig::light(7)));

    let index = AllocationIndex::build(&synthetic_allocations(
        run.windows_by_node.len(),
        duration_s,
    ));
    let (job_rows, component_rows) = join_jobs(&run.windows_by_node, &index);

    let cluster = cluster_power(&run.windows_by_node);
    let (xs, ys): (Vec<f64>, Vec<f64>) =
        cluster.iter().map(|r| (r.window_start, r.sum_inp)).unzip();
    let means: Vec<f64> = cluster.iter().map(|r| r.mean_inp).collect();
    let maxes: Vec<f64> = cluster.iter().map(|r| r.max_inp).collect();
    let vars = [xs.clone(), ys.clone(), means, maxes];
    // The kernels are deterministic, so every repetition returns the
    // same values; only the per-stage histogram sums accumulate.
    let mut spectrum = Vec::new();
    let (mut kde, mut kde2, mut cdf, mut corr) = (None, None, None, None);
    for _ in 0..KERNEL_REPS {
        spectrum = fft_padded(&ys);
        kde = Kde1d::fit(&ys, Bandwidth::Scott);
        kde2 = Kde2d::fit(&xs, &ys, Bandwidth::Scott);
        cdf = Ecdf::new(&ys);
        corr = Some(CorrelationMatrix::compute(&vars, 0.05));
    }
    drop(guard);

    let Some(corr) = corr else {
        return Err("bench trajectory ran zero kernel repetitions".into());
    };
    if kde.is_none() || kde2.is_none() || cdf.is_none() {
        return Err("bench trajectory produced too few cluster windows for the kernels".into());
    }
    let fingerprint = job_rows.len() + component_rows.len() + spectrum.len() + corr.pairs.len();

    let frame_bytes = (METRIC_COUNT * std::mem::size_of::<f32>()) as u64;
    let frames = run.stats.frames;
    let accepted = run.stats.health.accepted;
    let windows: u64 = run.windows_by_node.iter().map(|w| w.len() as u64).sum();
    let window_bytes = (METRIC_COUNT * std::mem::size_of::<WindowStats>()) as u64;
    let reps = KERNEL_REPS as u64;
    let series = ys.len() as u64;
    let f64s = std::mem::size_of::<f64>() as u64;
    let work = vec![
        StageWork {
            name: "engine_tick",
            elements: frames,
            bytes: frames * frame_bytes,
        },
        StageWork {
            name: "frame_generation",
            elements: frames,
            bytes: frames * frame_bytes,
        },
        StageWork {
            name: "coarsen",
            elements: accepted,
            bytes: accepted * frame_bytes,
        },
        StageWork {
            name: "jobjoin",
            elements: windows,
            bytes: windows * window_bytes,
        },
        StageWork {
            name: "fft",
            elements: spectrum.len() as u64 * reps,
            bytes: spectrum.len() as u64 * reps * 2 * f64s,
        },
        StageWork {
            name: "kde_fit",
            elements: series * reps,
            bytes: series * reps * f64s,
        },
        StageWork {
            name: "kde2_fit",
            elements: 2 * series * reps,
            bytes: 2 * series * reps * f64s,
        },
        StageWork {
            name: "cdf_build",
            elements: series * reps,
            bytes: series * reps * f64s,
        },
        StageWork {
            name: "correlation",
            elements: corr.pairs.len() as u64 * series * reps,
            bytes: corr.pairs.len() as u64 * series * reps * 2 * f64s,
        },
    ];
    Ok((obs.snapshot(), fingerprint, work))
}

/// FNV-1a over every bit of every window — node ids, window starts and
/// the full statistic quintuples (NaN bit patterns included). Two
/// layouts that coarsen identically produce equal digests; any
/// single-bit divergence changes the hash. Digesting instead of
/// holding both outputs keeps the leg's resident set to one window set
/// at a time, so neither layout is timed under the other's heap.
fn windows_digest(windows: &[Vec<NodeWindow>]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut eat = |v: u64| {
        for byte in v.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(PRIME);
        }
    };
    for node in windows {
        eat(node.len() as u64);
        for w in node {
            eat(u64::from(w.node.0));
            eat(w.window_start.to_bits());
            eat(w.stats.len() as u64);
            for s in &w.stats {
                eat(s.count);
                eat(s.min.to_bits());
                eat(s.max.to_bits());
                eat(s.mean.to_bits());
                eat(s.std.to_bits());
            }
        }
    }
    h
}

/// The AoS-vs-SoA leg of `--bench`: generates one fault-free capture
/// with the engine's columnar tick batches, then coarsens the identical
/// per-node frame sequences once with the row-structured reference
/// layout and once with the columnar hot path (best of two passes
/// each). The two outputs are cross-checked to the bit before either
/// time is reported — a columnar layout that wins by computing
/// something different fails the bench instead of shipping the win.
fn layout_leg(scale: f64) -> Result<LayoutBench, String> {
    let obs = summit_obs::registry::Registry::new();
    let _guard = obs.install();
    let (cabinets, duration_s) = trajectory_shape(scale);
    // Long-stream shape: the same frame volume as the trajectory leg,
    // carried by fewer nodes over a proportionally longer capture.
    // Coarsening serves multi-hour per-node streams (the paper's
    // telemetry is a year of 10 s windows per node), so the leg
    // measures the steady-state window cadence rather than the
    // 24-windows-per-node startup transient a 240 s burst would time.
    let shrink = (cabinets / 2).clamp(1, 16);
    let cabinets = cabinets.div_ceil(shrink);
    let duration_s = duration_s * shrink as f64;
    let config = EngineConfig::small(cabinets);
    let dt = config.dt_s;
    let mut engine = Engine::new(config, 0.0);
    let node_count = engine.topology().node_count();
    let n_ticks = (duration_s / dt).ceil() as usize;
    let mut frames_by_node: Vec<Vec<NodeFrame>> = vec![Vec::with_capacity(n_ticks); node_count];
    let opts = StepOptions {
        frames: true,
        ..StepOptions::default()
    };
    let mut tick = FrameBatch::with_capacity(node_count);
    for _ in 0..n_ticks {
        let _ = engine.step_batch(&opts, &mut tick);
        for row in 0..tick.len() {
            let f = tick.read_frame(row);
            if let Some(node) = frames_by_node.get_mut(f.node.index()) {
                node.push(f);
            }
        }
    }

    // Best of four passes per layout, interleaved rows/columns so a
    // slow scheduling epoch lands on both layouts instead of skewing
    // whichever happened to run during it — the A/B ratio gate needs
    // tighter minima than a pass/fail wall-clock check does. Each
    // pass is digested (outside the timed region) and dropped before
    // the next starts, so no layout is ever timed while the other
    // layout's 100+ MB window set is still resident.
    struct LegState {
        layout: CoarsenLayout,
        secs: f64,
        digest: u64,
        health: IngestHealth,
        emitted: usize,
    }
    let mut legs = [CoarsenLayout::Rows, CoarsenLayout::Columns].map(|layout| LegState {
        layout,
        secs: f64::INFINITY,
        digest: 0,
        health: IngestHealth::default(),
        emitted: 0,
    });
    for pass in 0..4 {
        for leg in &mut legs {
            let started = std::time::Instant::now();
            let (windows, pass_health) =
                coarsen_parallel_layout(&frames_by_node, PAPER_WINDOW_S, leg.layout);
            leg.secs = leg.secs.min(started.elapsed().as_secs_f64());
            let pass_digest = windows_digest(&windows);
            if pass == 0 {
                leg.digest = pass_digest;
                leg.health = pass_health;
                leg.emitted = windows.iter().map(Vec::len).sum();
            } else if pass_digest != leg.digest {
                return Err(format!(
                    "AoS-vs-SoA bench leg is nondeterministic: two {:?} passes \
                     over the same capture disagree",
                    leg.layout
                ));
            }
        }
    }
    let [rows, columns] = legs;
    if rows.health != columns.health || rows.digest != columns.digest {
        return Err(
            "AoS-vs-SoA bench leg diverged: the columnar coarsener is not bit-identical \
             to the row-structured reference"
                .into(),
        );
    }
    Ok(LayoutBench {
        rows_s: rows.secs,
        columns_s: columns.secs,
        windows: rows.emitted,
    })
}

/// The streaming leg of `--bench`: one smoke-scale online pass timed
/// end-to-end, reporting the sustained frame rate and the live
/// frame-to-alert p99. Before any number is reported the leg re-runs
/// the same capture through the batch replay and demands bit-identical
/// results — a diverging streaming refactor fails the bench instead of
/// shipping wrong numbers with good latency.
fn streaming_leg() -> Result<StreamingBench, String> {
    let (cabinets, _) = trajectory_shape(SMOKE_SCALE);
    let duration_s = 120.0;
    let faults = Some(FaultConfig::light(7));
    let started = std::time::Instant::now();
    let stream = run_streaming(StreamConfig::new(cabinets, duration_s, faults));
    let wall_s = started.elapsed().as_secs_f64();

    let obs = summit_obs::registry::Registry::new();
    let guard = obs.install();
    let batch = run_telemetry(cabinets, duration_s, faults);
    drop(guard);
    let windows = |w: &[Vec<NodeWindow>]| w.iter().map(Vec::len).sum::<usize>();
    if stream.stats.frames != batch.stats.frames
        || stream.stats.total_delay_s.to_bits() != batch.stats.total_delay_s.to_bits()
        || stream.stats.health != batch.stats.health
        || windows(&stream.windows_by_node) != windows(&batch.windows_by_node)
    {
        return Err(
            "streaming bench leg diverged from the batch replay (bit-identity violated)".into(),
        );
    }

    let offered = stream
        .obs
        .counter("summit_core_frames_offered_total")
        .unwrap_or(0);
    let p99 = stream
        .obs
        .gauge("summit_core_frame_to_alert_p99_seconds")
        .unwrap_or(f64::NAN);
    Ok(StreamingBench {
        wall_s,
        frames_per_s: offered as f64 / wall_s.max(f64::MIN_POSITIVE),
        frame_to_alert_p99_s: p99,
        backpressure_stalls: stream.backpressure_stalls,
        peak_resident_frames: stream.peak_resident_frames,
    })
}

/// Times the bench trajectory twice — pool pinned to one thread, then
/// on the default pool — and assembles the per-stage table from the
/// two legs' registry snapshots.
///
/// An untimed warm-up pass runs first: the initial pass in a process
/// pays one-time costs (heap growth and page faults for the frame
/// buffers, worker spawning) that would otherwise be billed entirely
/// to the sequential leg and inflate the measured speedup.
pub fn run_bench(scale: f64) -> Result<BenchOutcome, String> {
    // Best of two repetitions per leg: the min discards transient
    // noise (residual allocator growth, scheduler hiccups) that a
    // single sample would fold straight into the gate verdict.
    let time_leg =
        |f: &dyn Fn() -> Result<TrajectoryLeg, String>| -> Result<(f64, TrajectoryLeg), String> {
            let started = std::time::Instant::now();
            let mut out = f()?;
            let mut wall = started.elapsed().as_secs_f64();
            let started = std::time::Instant::now();
            let rerun = f()?;
            let rerun_wall = started.elapsed().as_secs_f64();
            if rerun_wall < wall {
                wall = rerun_wall;
                out = rerun;
            }
            Ok((wall, out))
        };
    trajectory_leg(scale)?;
    let (sequential_s, (seq_obs, seq_fp, seq_work)) =
        time_leg(&|| rayon::with_thread_count(1, || trajectory_leg(scale)))?;
    let (parallel_s, (par_obs, par_fp, par_work)) = time_leg(&|| trajectory_leg(scale))?;
    if seq_fp != par_fp || seq_work != par_work {
        return Err(format!(
            "bench legs diverged: sequential fingerprint {seq_fp} != parallel {par_fp} \
             (thread-count determinism violated)"
        ));
    }
    let aos_soa = layout_leg(scale)?;
    let streaming = streaming_leg()?;
    Ok(BenchOutcome {
        sequential_s,
        parallel_s,
        threads: rayon::current_num_threads(),
        host_cpus: std::thread::available_parallelism().map_or(1, |n| n.get()),
        summit_threads: std::env::var("SUMMIT_THREADS").ok(),
        speedup: sequential_s / parallel_s.max(f64::MIN_POSITIVE),
        pool_generation: rayon::pool_generation(),
        stages: stage_table(&seq_obs, &par_obs, &par_work),
        aos_soa,
        streaming,
    })
}

/// True when writing a `"skip"` `BENCH_perf.json` would mask a
/// misconfiguration: nothing pinned the pool (`SUMMIT_THREADS` unset)
/// and the host has cores to parallelize on, so "no parallelism to
/// measure" cannot be the real story. CI requires `"pass"`; refusing
/// to write the artifact turns a silent inconsistency into a loud one.
pub fn refuse_skip(gate: &str, summit_threads_set: bool, cpus: usize) -> bool {
    gate == "skip" && !summit_threads_set && cpus >= 2
}

/// Renders the human-readable `--bench` summary (one line per stage,
/// then the end-to-end verdict).
pub fn render_bench(b: &BenchOutcome) -> String {
    let mut s = String::new();
    for stage in &b.stages {
        s.push_str(&format!(
            "[bench] {:<16} sequential {:>8.3}s, parallel {:>8.3}s -> {:.2}x ({:.2} Melem/s, {:.1} MB/s)\n",
            stage.name,
            stage.sequential_s,
            stage.parallel_s,
            stage.speedup(),
            stage.elements_per_s() / 1e6,
            stage.bytes_per_s() / 1e6,
        ));
    }
    s.push_str(&format!(
        "[bench] aos-vs-soa       rows {:.3}s, columns {:.3}s -> {:.2}x columnar over {} windows (threshold {:.1}x)\n",
        b.aos_soa.rows_s,
        b.aos_soa.columns_s,
        b.aos_soa.ratio(),
        b.aos_soa.windows,
        AOS_SOA_THRESHOLD,
    ));
    if let Some(reason) = b.skip_reason() {
        s.push_str(&format!("[bench] gate skipped: {reason}\n"));
    }
    s.push_str(&format!(
        "[bench] streaming leg    {:.3}s wall, {:.0} frames/s sustained, frame->alert p99 {:.2}s, {} stalls, {} peak resident frames\n",
        b.streaming.wall_s,
        b.streaming.frames_per_s,
        b.streaming.frame_to_alert_p99_s,
        b.streaming.backpressure_stalls,
        b.streaming.peak_resident_frames,
    ));
    s.push_str(&format!(
        "[bench] end-to-end sequential {:.3}s, parallel {:.3}s on {} threads -> {:.2}x speedup (gate: {}, threshold {:.2}x)",
        b.sequential_s,
        b.parallel_s,
        b.threads,
        b.speedup,
        b.gate(),
        SPEEDUP_THRESHOLD
    ));
    s
}

/// Runs the telemetry pipeline at `scale` and writes its coarsened
/// 10 s windows as CSV to `path`, streaming when `stream` is set.
/// Floats print with Rust's shortest round-trip representation, so the
/// file is a deterministic function of the data — CI byte-compares the
/// `--stream` and batch files to prove the online pipeline's output is
/// bit-identical end to end. Returns the summary line to print.
fn export_windows(path: &str, scale: f64, stream: bool) -> Result<String, String> {
    let (cabinets, _) = trajectory_shape(scale);
    let duration_s = 120.0;
    let faults = Some(FaultConfig::light(7));
    let windows_by_node = if stream {
        run_streaming(StreamConfig::new(cabinets, duration_s, faults)).windows_by_node
    } else {
        let obs = summit_obs::registry::Registry::new();
        let _guard = obs.install();
        run_telemetry(cabinets, duration_s, faults).windows_by_node
    };
    let mut csv = String::from("node,window_start,metric,count,min,max,mean,std\n");
    let mut count = 0usize;
    for (node, windows) in windows_by_node.iter().enumerate() {
        for w in windows {
            count += 1;
            for (m, s) in w.stats.iter().enumerate() {
                csv.push_str(&format!(
                    "{node},{},{m},{},{},{},{},{}\n",
                    w.window_start, s.count, s.min, s.max, s.mean, s.std
                ));
            }
        }
    }
    std::fs::write(path, &csv).map_err(|e| format!("failed to write {path}: {e}"))?;
    Ok(format!(
        "[stream-export] {count} windows ({} mode, {} bytes) -> {path}\n",
        if stream { "streaming" } else { "batch" },
        csv.len()
    ))
}

/// Writes a chunk to stdout, reporting whether the consumer is still
/// listening. A closed pipe (e.g. `experiments -- --all | head`) is a normal
/// way to stop reading reports, not an error worth panicking over.
fn emit(text: &str) -> bool {
    use std::io::Write;
    let mut out = std::io::stdout().lock();
    out.write_all(text.as_bytes())
        .and_then(|()| out.flush())
        .is_ok()
}

/// Runs a full driver invocation, printing to stdout.
pub fn run(inv: &Invocation) -> Result<(), String> {
    if inv.help {
        emit(&format!("{USAGE}\n"));
        return Ok(());
    }
    if inv.list {
        emit(&render_list());
        return Ok(());
    }
    let scale = inv.effective_scale();
    if inv.bench && (inv.trace.is_some() || inv.trace_folded.is_some()) {
        return Err(
            "--trace cannot be combined with --bench: trace hooks would \
             perturb the timing legs"
                .into(),
        );
    }
    if inv.bench && (inv.stream || inv.export_windows.is_some()) {
        return Err(
            "--stream/--export-windows cannot be combined with --bench: the \
             bench already times a dedicated streaming leg"
                .into(),
        );
    }
    if inv.bench {
        let outcome = run_bench(scale)?;
        if refuse_skip(
            outcome.gate(),
            outcome.summit_threads.is_some(),
            outcome.host_cpus,
        ) {
            return Err(format!(
                "refusing to write a \"skip\" {BENCH_PERF_PATH}: SUMMIT_THREADS is \
                 unset and {} CPUs are available, so the pool resolving to one \
                 thread is a bug, not a one-core host",
                outcome.host_cpus
            ));
        }
        let json = outcome.to_json(scale);
        std::fs::write(BENCH_PERF_PATH, &json)
            .map_err(|e| format!("failed to write {BENCH_PERF_PATH}: {e}"))?;
        emit(&format!(
            "{}\nwrote {BENCH_PERF_PATH} ({} bytes)\n",
            render_bench(&outcome),
            json.len()
        ));
        return Ok(());
    }
    // A bare `--export-windows` invocation is complete on its own; with
    // study names (or --all) the export rides along after the reports.
    let export_only = inv.export_windows.is_some() && inv.names.is_empty() && !inv.all;
    let selected = if export_only {
        Vec::new()
    } else {
        select(inv)?
    };
    // `--stream` switches every streaming-capable study to online mode
    // by merging over its config; studies without a `stream` key ignore
    // the extra field.
    let overrides = {
        let mut over = inv.overrides.clone();
        if inv.stream {
            let stream_on = Json::obj([("stream", Json::Bool(true))]);
            match &mut over {
                Some(o) => o.merge(&stream_on),
                None => over = Some(stream_on),
            }
        }
        over
    };
    let tracing = inv.trace.is_some() || inv.trace_folded.is_some();
    let collector = tracing
        .then(|| summit_obs::trace::TraceCollector::new(summit_obs::trace::TraceClock::Virtual));
    let output = {
        let _trace_scope = collector.as_ref().map(|tc| tc.install());
        run_selected(&selected, scale, overrides.as_ref())?
    };
    if let Some(tc) = &collector {
        let snap = tc.snapshot();
        if let Some(path) = &inv.trace {
            let mut buf = Vec::new();
            summit_obs::trace::write_chrome_json(&mut buf, &snap)
                .map_err(|e| format!("failed to render trace: {e}"))?;
            std::fs::write(path, &buf).map_err(|e| format!("failed to write {path}: {e}"))?;
            emit(&format!(
                "[trace] {} events ({} dropped) -> {path}\n",
                snap.events_total(),
                snap.dropped_total
            ));
        }
        if let Some(path) = &inv.trace_folded {
            let mut buf = Vec::new();
            summit_obs::trace::write_folded(&mut buf, &snap)
                .map_err(|e| format!("failed to render folded trace: {e}"))?;
            std::fs::write(path, &buf).map_err(|e| format!("failed to write {path}: {e}"))?;
            emit(&format!("[trace] folded stacks -> {path}\n"));
        }
    }
    let RunOutput {
        reports,
        traffic,
        par,
        ..
    } = output;
    for r in &reports {
        let block = if inv.json {
            let envelope = Json::Obj(vec![
                ("experiment".into(), Json::from(r.name)),
                ("scale".into(), Json::Num(scale)),
                ("config".into(), r.config.clone()),
                ("report".into(), Json::Str(r.report.clone())),
            ]);
            format!("{envelope}\n")
        } else {
            format!("== {} - {}\n\n{}\n", r.name, r.summary, r.report)
        };
        if !emit(&block) {
            return Ok(());
        }
    }
    if reports.len() > 1 {
        if inv.json {
            let summary = Json::Obj(vec![
                (
                    "scenario_cache_artifacts".into(),
                    Json::from(traffic.artifacts),
                ),
                ("scenario_cache_hits".into(), Json::Num(traffic.hits as f64)),
                (
                    "scenario_cache_misses".into(),
                    Json::Num(traffic.misses as f64),
                ),
                ("par_threads".into(), Json::from(par.threads)),
                ("par_tasks".into(), Json::Num(par.tasks as f64)),
            ]);
            emit(&format!("{summary}\n"));
        } else {
            emit(&format!(
                "{}\n{}\n",
                render_traffic(&traffic),
                render_par(&par)
            ));
        }
    }
    if let Some(path) = &inv.export_windows {
        emit(&export_windows(path, scale, inv.stream)?);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    fn parse(args: &[&str]) -> Result<Invocation, String> {
        Invocation::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_names_and_scale() {
        let inv = parse(&["--all", "--scale", "0.2", "--json"]).unwrap();
        assert!(inv.all && inv.json && !inv.list);
        assert!((inv.effective_scale() - 0.2).abs() < 1e-12);

        let inv = parse(&["fig08", "table4", "--full"]).unwrap();
        assert_eq!(inv.names, vec!["fig08", "table4"]);
        assert_eq!(inv.effective_scale(), 1.0);

        let inv = parse(&["tables", "--config", r#"{"class": 2}"#]).unwrap();
        assert!(inv.overrides.is_some());
    }

    #[test]
    fn scale_defaults_track_the_mode() {
        // No explicit scale: smoke for normal runs, the heavier bench
        // scale under --bench (where parallelism must matter)...
        assert_eq!(parse(&["--all"]).unwrap().effective_scale(), SMOKE_SCALE);
        assert_eq!(parse(&["--bench"]).unwrap().effective_scale(), BENCH_SCALE);
        // ...but an explicit scale always wins.
        let inv = parse(&["--bench", "--scale", "0.1"]).unwrap();
        assert!((inv.effective_scale() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_arguments() {
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "2.0"]).is_err());
        assert!(parse(&["--scale", "x"]).is_err());
        assert!(parse(&["--config", "[1]"]).is_err());
        assert!(parse(&["--frobnicate"]).is_err());
        assert!(select(&parse(&[]).unwrap()).is_err());
        assert!(select(&parse(&["fig99"]).unwrap()).is_err());
    }

    #[test]
    fn bench_flag_parses_and_selects_everything() {
        let inv = parse(&["--bench"]).unwrap();
        assert!(inv.bench && !inv.all);
        // Bare --bench implies the full suite...
        assert_eq!(select(&inv).unwrap().len(), REGISTRY.len());
        // ...but explicit names narrow it.
        let inv = parse(&["--bench", "table4"]).unwrap();
        assert_eq!(select(&inv).unwrap().len(), 1);
    }

    fn idle_streaming() -> StreamingBench {
        StreamingBench {
            wall_s: 0.5,
            frames_per_s: 4000.0,
            frame_to_alert_p99_s: 12.5,
            backpressure_stalls: 0,
            peak_resident_frames: 1000,
        }
    }

    fn healthy_aos_soa() -> LayoutBench {
        LayoutBench {
            rows_s: 2.0,
            columns_s: 1.0,
            windows: 500,
        }
    }

    fn outcome(threads: usize, seq: f64, par: f64) -> BenchOutcome {
        BenchOutcome {
            sequential_s: seq,
            parallel_s: par,
            threads,
            host_cpus: threads.max(1),
            summit_threads: None,
            speedup: seq / par,
            pool_generation: 1,
            stages: Vec::new(),
            aos_soa: healthy_aos_soa(),
            streaming: idle_streaming(),
        }
    }

    #[test]
    fn bench_gate_verdicts() {
        assert_eq!(outcome(1, 1.0, 1.0).gate(), "skip");
        assert_eq!(outcome(4, 2.0, 1.0).gate(), "pass");
        assert_eq!(outcome(4, 1.0, 2.0).gate(), "fail");
        // The gate now ratchets: merely not-slower is below threshold.
        assert_eq!(outcome(4, 1.0, 1.0).gate(), "fail");
        assert_eq!(outcome(4, SPEEDUP_THRESHOLD, 1.0).gate(), "pass");
    }

    #[test]
    fn gate_fails_on_a_per_kernel_regression() {
        let stage = |seq: f64, par: f64| StageTiming {
            name: "correlation",
            sequential_s: seq,
            parallel_s: par,
            elements: 1000,
            bytes: 16_000,
        };
        // A kernel 2x slower on the pool fails even when the end-to-end
        // speedup passes.
        let mut bad = outcome(4, 2.0, 1.0);
        bad.stages = vec![stage(0.1, 0.2)];
        assert_eq!(bad.gate(), "fail");
        // At or above the floor passes...
        let mut ok = outcome(4, 2.0, 1.0);
        ok.stages = vec![stage(0.095, 0.1)];
        assert_eq!(ok.gate(), "pass");
        // ...and sub-noise-floor timings abstain rather than judge.
        let mut noisy = outcome(4, 2.0, 1.0);
        noisy.stages = vec![stage(STAGE_NOISE_FLOOR_S / 2.0, STAGE_NOISE_FLOOR_S)];
        assert_eq!(noisy.gate(), "pass");
    }

    #[test]
    fn gate_fails_when_the_columnar_layout_stops_winning() {
        let mut slow = outcome(4, 2.0, 1.0);
        slow.aos_soa = LayoutBench {
            rows_s: 1.0,
            columns_s: 1.0,
            windows: 500,
        };
        assert_eq!(slow.gate(), "fail");
        // On a one-core host the layout ratio still reports but the
        // gate stays "skip".
        let mut single = outcome(1, 1.0, 1.0);
        single.aos_soa = slow.aos_soa;
        assert_eq!(single.gate(), "skip");
    }

    #[test]
    fn skip_reason_distinguishes_pin_from_single_core() {
        let mut pinned = outcome(1, 1.0, 1.0);
        pinned.summit_threads = Some("1".into());
        pinned.host_cpus = 8;
        assert!(pinned.skip_reason().unwrap().contains("SUMMIT_THREADS=1"));
        let mut one_core = outcome(1, 1.0, 1.0);
        one_core.host_cpus = 1;
        assert!(one_core.skip_reason().unwrap().contains("single-core"));
        assert!(outcome(4, 2.0, 1.0).skip_reason().is_none());
    }

    #[test]
    fn stage_throughput_is_computed_from_the_parallel_leg() {
        let s = StageTiming {
            name: "coarsen",
            sequential_s: 4.0,
            parallel_s: 2.0,
            elements: 1_000_000,
            bytes: 424_000_000,
        };
        assert_eq!(s.elements_per_s(), 500_000.0);
        assert_eq!(s.bytes_per_s(), 212_000_000.0);
        let never_ran = StageTiming {
            parallel_s: 0.0,
            ..s
        };
        assert_eq!(never_ran.elements_per_s(), 0.0);
        assert_eq!(never_ran.bytes_per_s(), 0.0);
        assert!(!never_ran.gated());
    }

    #[test]
    fn bench_json_round_trips() {
        let mut out = outcome(4, 2.5, 1.25);
        out.pool_generation = 3;
        out.stages = vec![StageTiming {
            name: "engine_tick",
            sequential_s: 1.5,
            parallel_s: 0.5,
            elements: 1000,
            bytes: 424_000,
        }];
        let json = out.to_json(0.05);
        let doc = Json::parse(&json).unwrap();
        let Json::Obj(fields) = &doc else {
            panic!("expected object")
        };
        let get = |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(get("schema"), Some(&Json::from("summit-perf/3")));
        assert_eq!(get("gate"), Some(&Json::from("pass")));
        assert_eq!(get("threads"), Some(&Json::from(4usize)));
        assert_eq!(get("host_cpus"), Some(&Json::from(4usize)));
        // Unpinned pool and a passing gate serialize as explicit nulls.
        assert_eq!(get("summit_threads"), Some(&Json::Null));
        assert_eq!(get("skip_reason"), Some(&Json::Null));
        assert_eq!(
            get("speedup_threshold"),
            Some(&Json::Num(SPEEDUP_THRESHOLD))
        );
        assert_eq!(get("per_kernel_floor"), Some(&Json::Num(PER_KERNEL_FLOOR)));
        assert_eq!(get("pool_generation"), Some(&Json::Num(3.0)));
        let Some(Json::Arr(stages)) = get("stages") else {
            panic!("expected stages array")
        };
        assert_eq!(stages.len(), 1);
        let Json::Obj(stage) = &stages[0] else {
            panic!("expected stage object")
        };
        assert!(stage
            .iter()
            .any(|(k, v)| k == "name" && *v == Json::from("engine_tick")));
        assert!(stage
            .iter()
            .any(|(k, v)| k == "speedup" && *v == Json::Num(3.0)));
        assert!(stage
            .iter()
            .any(|(k, v)| k == "elements" && *v == Json::Num(1000.0)));
        assert!(stage
            .iter()
            .any(|(k, v)| k == "elements_per_second" && *v == Json::Num(2000.0)));
        assert!(stage
            .iter()
            .any(|(k, v)| k == "bytes_per_second" && *v == Json::Num(848_000.0)));
        // The AoS-vs-SoA leg rides in the same schema.
        let Some(Json::Obj(aos)) = get("aos_soa") else {
            panic!("expected aos_soa object")
        };
        let aget = |name: &str| aos.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(aget("rows_seconds"), Some(&Json::Num(2.0)));
        assert_eq!(aget("columns_seconds"), Some(&Json::Num(1.0)));
        assert_eq!(aget("ratio"), Some(&Json::Num(2.0)));
        assert_eq!(aget("ratio_threshold"), Some(&Json::Num(AOS_SOA_THRESHOLD)));
        assert_eq!(aget("windows"), Some(&Json::from(500usize)));
        // The streaming leg rides in the same schema.
        let Some(Json::Obj(streaming)) = get("streaming") else {
            panic!("expected streaming object")
        };
        let sget = |name: &str| streaming.iter().find(|(k, _)| k == name).map(|(_, v)| v);
        assert_eq!(sget("frames_per_second"), Some(&Json::Num(4000.0)));
        assert_eq!(sget("frame_to_alert_p99_seconds"), Some(&Json::Num(12.5)));
        assert_eq!(sget("backpressure_stalls"), Some(&Json::Num(0.0)));
        assert_eq!(sget("peak_resident_frames"), Some(&Json::from(1000usize)));
    }

    #[test]
    fn stream_and_export_flags_parse_and_reject_bench() {
        let inv = parse(&["table2", "--stream"]).unwrap();
        assert!(inv.stream && inv.export_windows.is_none());
        let inv = parse(&["--stream", "--export-windows", "w.csv"]).unwrap();
        assert_eq!(inv.export_windows.as_deref(), Some("w.csv"));
        assert!(parse(&["--export-windows"]).is_err());
        // A bare export needs no study names to be a complete run.
        let inv = parse(&["--export-windows", "w.csv"]).unwrap();
        assert!(inv.names.is_empty() && !inv.all);
        // --bench runs its own streaming leg; mixing modes is an error.
        let inv = parse(&["--bench", "--stream"]).unwrap();
        assert!(run(&inv).unwrap_err().contains("--bench"));
        let inv = parse(&["--bench", "--export-windows", "w.csv"]).unwrap();
        assert!(run(&inv).unwrap_err().contains("--bench"));
    }

    #[test]
    fn stage_table_keeps_stages_that_ran_in_either_leg() {
        let record = |metric: &str, seconds: f64| {
            let r = summit_obs::registry::Registry::new();
            r.histogram(metric).observe(seconds);
            r.snapshot()
        };
        let seq = record("summit_core_engine_tick_seconds", 2.0);
        let par = record("summit_analysis_fft_seconds", 0.5);
        let work = [StageWork {
            name: "fft",
            elements: 100,
            bytes: 1600,
        }];
        let table = stage_table(&seq, &par, &work);
        let names: Vec<&str> = table.iter().map(|s| s.name).collect();
        assert_eq!(names, vec!["engine_tick", "fft"]);
        // engine_tick ran only sequentially, fft only in parallel;
        // stages absent from both legs are dropped.
        assert_eq!(table[0].sequential_s, 2.0);
        assert_eq!(table[0].parallel_s, 0.0);
        assert_eq!(table[1].speedup(), 0.0);
        // Work joins by stage name; untracked stages report zero.
        assert_eq!(table[0].elements, 0);
        assert_eq!(table[1].elements, 100);
        assert_eq!(table[1].elements_per_s(), 200.0);
    }

    #[test]
    fn trace_flags_parse_and_reject_bench() {
        let inv = parse(&["table2", "--trace", "out.trace.json"]).unwrap();
        assert_eq!(inv.trace.as_deref(), Some("out.trace.json"));
        assert!(inv.trace_folded.is_none());
        let inv = parse(&["table2", "--trace-folded", "out.folded"]).unwrap();
        assert_eq!(inv.trace_folded.as_deref(), Some("out.folded"));
        assert!(parse(&["--trace"]).is_err());
        // --bench + --trace is a run()-time error, not a parse error.
        let inv = parse(&["--bench", "--trace", "x.json"]).unwrap();
        assert!(run(&inv).unwrap_err().contains("--bench"));
    }

    #[test]
    fn skip_refusal_requires_unpinned_multicore() {
        // The inconsistency: skip artifact, nothing pinned, cores idle.
        assert!(refuse_skip("skip", false, 2));
        assert!(refuse_skip("skip", false, 48));
        // Legitimate skips: one core, or the user pinned the pool.
        assert!(!refuse_skip("skip", false, 1));
        assert!(!refuse_skip("skip", true, 8));
        // Non-skip gates always write.
        assert!(!refuse_skip("pass", false, 8));
        assert!(!refuse_skip("fail", false, 8));
    }

    #[test]
    fn list_covers_the_registry() {
        let listing = render_list();
        for exp in REGISTRY {
            assert!(listing.contains(exp.name()), "{} missing", exp.name());
        }
    }

    #[test]
    fn selection_preserves_order() {
        let inv = parse(&["table4", "tables"]).unwrap();
        let sel = select(&inv).unwrap();
        let names: Vec<&str> = sel.iter().map(|e| e.name()).collect();
        assert_eq!(names, vec!["table4", "tables"]);
        let all = select(&parse(&["--all"]).unwrap()).unwrap();
        assert_eq!(all.len(), REGISTRY.len());
    }
}
