//! Builds the machine-readable observability baseline (`BENCH_obs.json`).
//!
//! The report runs the default telemetry scenario end to end under a
//! private [`summit_obs`] registry — frame generation, fault injection,
//! coarsening, export — then drives every analysis kernel (FFT, KDE,
//! CDF, correlation) over the resulting cluster power series, so the
//! snapshot covers each instrumented pipeline stage with per-stage
//! durations (p50/p90/p99/max) and deterministic call/volume counters.

use summit_analysis::cdf::Ecdf;
use summit_analysis::correlation::CorrelationMatrix;
use summit_analysis::fft::amplitude_spectrum;
use summit_analysis::kde::{Bandwidth, Kde1d};
use summit_core::pipeline::run_telemetry;
use summit_obs::registry::Registry;
use summit_obs::trace::{span_stats, TraceClock, TraceCollector, TraceStats};
use summit_obs::Snapshot;
use summit_telemetry::cluster::cluster_power;
use summit_telemetry::export::write_cluster_power;
use summit_telemetry::window::PAPER_WINDOW_S;

/// Scenario knobs for the report run.
#[derive(Debug, Clone, Copy)]
pub struct ReportConfig {
    /// Cabinets simulated.
    pub cabinets: usize,
    /// Telemetry window (s).
    pub duration_s: f64,
}

impl Default for ReportConfig {
    fn default() -> Self {
        Self {
            cabinets: 4,
            duration_s: 120.0,
        }
    }
}

/// One observability baseline: the metric snapshot plus the trace
/// summary of the same run (virtual clock, so both are deterministic).
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Every counter, gauge and histogram the run recorded.
    pub snapshot: Snapshot,
    /// Per-stage self/child time and event accounting from the trace.
    pub trace: TraceStats,
}

/// Runs the default telemetry scenario plus the analysis kernels under
/// a fresh registry (and a virtual-clock trace collector) and returns
/// the resulting report.
pub fn build_report(config: &ReportConfig) -> ObsReport {
    let registry = Registry::new();
    let collector = TraceCollector::new(TraceClock::Virtual);
    {
        let _scope = registry.install();
        let _trace = collector.install();
        let run = run_telemetry(config.cabinets, config.duration_s, None);

        // Cluster aggregation + CSV export exercise the export stage.
        let rows = cluster_power(&run.windows_by_node);
        let mut sink = Vec::new();
        let _ = write_cluster_power(&mut sink, &rows);

        // Drive each analysis kernel over the measured power series.
        let values: Vec<f64> = rows.iter().map(|r| r.mean_inp).collect();
        let _ = amplitude_spectrum(&values, 1.0 / PAPER_WINDOW_S);
        let _ = Kde1d::fit(&values, Bandwidth::Silverman);
        let _ = Ecdf::new(&values);
        if values.len() >= 4 {
            let lagged: Vec<f64> = values.iter().skip(1).chain([&0.0]).copied().collect();
            let _ = CorrelationMatrix::compute(&[values.clone(), lagged], 0.05);
        }
    }
    ObsReport {
        snapshot: registry.snapshot(),
        trace: span_stats(&collector.snapshot()),
    }
}

/// Serializes a report to the `BENCH_obs.json` shape (`summit-obs/2`,
/// with the trace section filled in).
pub fn to_json(report: &ObsReport) -> String {
    let mut buf = Vec::new();
    // Writing into a Vec<u8> cannot fail.
    let _ =
        summit_obs::expose::write_json_with_trace(&mut buf, &report.snapshot, Some(&report.trace));
    String::from_utf8_lossy(&buf).into_owned()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn report_covers_every_pipeline_stage() {
        let report = build_report(&ReportConfig {
            cabinets: 1,
            duration_s: 60.0,
        });
        let snap = &report.snapshot;
        for counter in [
            "summit_core_run_telemetry_calls_total",
            "summit_core_frame_generation_calls_total",
            "summit_core_fault_injection_calls_total",
            "summit_telemetry_coarsen_calls_total",
            "summit_telemetry_export_calls_total",
            "summit_analysis_fft_calls_total",
            "summit_analysis_kde_fit_calls_total",
            "summit_analysis_cdf_build_calls_total",
            "summit_analysis_correlation_calls_total",
        ] {
            assert!(
                snap.counter(counter).is_some_and(|v| v > 0),
                "missing stage counter {counter}"
            );
        }
        let json = to_json(&report);
        assert!(json.contains("\"summit_core_run_telemetry_seconds\""));
        assert!(json.contains("\"schema\": \"summit-obs/2\""));
        // The trace section summarizes the same run's stage structure.
        assert!(json.contains("\"trace\": {"));
        assert!(json.contains("\"schema\": \"summit-trace/1\""));
        assert!(report.trace.events_total > 0);
        assert_eq!(report.trace.dropped_total, 0);
        assert!(report
            .trace
            .stages
            .iter()
            .any(|s| s.name == "summit_core_run_telemetry"));
    }
}
