//! Shared plumbing for the experiment driver, the remaining standalone
//! binaries and the Criterion benchmarks.
//!
//! Figure/table regeneration goes through the unified [`driver`] (the
//! `experiments` binary); `--full` selects paper-fidelity runs (full
//! floor, year-scale populations — minutes of runtime) while the
//! default smoke scale regenerates the same rows in seconds.

pub mod driver;
pub mod obs_report;

/// Run fidelity selected on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Reduced scale: seconds of runtime, shapes preserved.
    Quick,
    /// Paper scale: full floor / year-scale populations.
    Full,
}

/// Parses the binary's command line (`--full` selects full fidelity).
pub fn fidelity() -> Fidelity {
    if std::env::args().any(|a| a == "--full") {
        Fidelity::Full
    } else {
        Fidelity::Quick
    }
}

/// Prints the standard header for a regeneration binary.
pub fn header(artifact: &str, fidelity: Fidelity) {
    println!(
        "[summit-repro] regenerating {artifact} ({} fidelity{})\n",
        match fidelity {
            Fidelity::Quick => "quick",
            Fidelity::Full => "paper",
        },
        if fidelity == Fidelity::Quick {
            "; pass --full for paper scale"
        } else {
            ""
        }
    );
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn default_fidelity_is_quick() {
        // The test harness passes no --full flag.
        assert_eq!(fidelity(), Fidelity::Quick);
    }
}
