//! Measures what the shared scenario cache buys: a three-experiment
//! suite (fig05 + fig07 + fig09, all backed by the same year-population
//! scenario) run cold (fresh cache per iteration) vs warm (one cache
//! pre-seeded before measurement, so only the per-study analysis runs).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use summit_core::cache::ScenarioCache;
use summit_core::experiments::registry::run_by_name;

// At scale 0.01 all three studies resolve the identical population
// scenario (fig07's floor is 0.01), so the warm suite shares one artifact.
const SUITE: [&str; 3] = ["fig05", "fig07", "fig09"];
const SCALE: f64 = 0.01;

fn run_suite(cache: &ScenarioCache) {
    for name in SUITE {
        let report = run_by_name(cache, name, SCALE, None).unwrap();
        assert!(!report.is_empty());
    }
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let mut g = c.benchmark_group("registry_cache");
    g.sample_size(10);
    g.bench_function("suite3_cold_cache", |b| {
        b.iter(|| {
            let cache = ScenarioCache::new();
            run_suite(&cache);
        })
    });
    g.bench_function("suite3_warm_cache", |b| {
        let cache = ScenarioCache::new();
        run_suite(&cache); // seed the population artifact once
        b.iter(|| run_suite(&cache))
    });
    g.finish();
}

criterion_group!(benches, bench_cold_vs_warm);
criterion_main!(benches);
