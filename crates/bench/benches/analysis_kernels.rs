//! Criterion benchmarks for the analysis kernels backing the figures:
//! FFT (Fig 10), KDE (Figs 6/9), edge detection (Figs 10/11), Pearson
//! matrix (Fig 13), snapshot superposition (Figs 11/12), CDF (Fig 7).

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use summit_analysis::cdf::Ecdf;
use summit_analysis::correlation::CorrelationMatrix;
use summit_analysis::edges::detect_edges;
use summit_analysis::fft::{amplitude_spectrum, fft_padded};
use summit_analysis::kde::{Bandwidth, Kde1d, Kde2d};
use summit_analysis::series::Series;
use summit_analysis::snapshot::superimpose;

fn signal(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            5e6 + 2e6 * (2.0 * std::f64::consts::PI * t / 20.0).sin() + 5e5 * ((t * 1.7).sin())
        })
        .collect()
}

fn bench_fft(c: &mut Criterion) {
    let data = signal(8640); // one day at 10 s
    c.bench_function("fft_amplitude_spectrum_8640", |b| {
        b.iter(|| amplitude_spectrum(black_box(&data), 0.1))
    });
    c.bench_function("fft_padded_4096", |b| {
        b.iter(|| fft_padded(black_box(&data[..4096])))
    });
}

fn bench_kde(c: &mut Criterion) {
    let xs: Vec<f64> = (0..2000).map(|i| ((i * 7919) % 1000) as f64).collect();
    let ys: Vec<f64> = (0..2000).map(|i| ((i * 104729) % 1000) as f64).collect();
    c.bench_function("kde1d_grid_256", |b| {
        let kde = Kde1d::fit(&xs, Bandwidth::Scott).unwrap();
        b.iter(|| kde.grid(black_box(256), 3.0))
    });
    c.bench_function("kde2d_grid_64x64_n2000", |b| {
        let kde = Kde2d::fit(&xs, &ys, Bandwidth::Scott).unwrap();
        b.iter(|| kde.grid(black_box(64), 64))
    });
}

fn bench_edges(c: &mut Criterion) {
    let s = Series::new(0.0, 10.0, signal(8640));
    c.bench_function("edge_detection_day_series", |b| {
        b.iter(|| detect_edges(black_box(&s), 1e6))
    });
}

fn bench_correlation(c: &mut Criterion) {
    // Figure 13 shape: 16 kinds x 4,626 nodes.
    let vars: Vec<Vec<f64>> = (0..16)
        .map(|k| {
            (0..summit_sim::spec::TOTAL_NODES)
                .map(|n| ((n * (k + 3) * 2654435761_usize) % 100) as f64)
                .collect()
        })
        .collect();
    c.bench_function("pearson_matrix_16x4626_bonferroni", |b| {
        b.iter(|| CorrelationMatrix::compute(black_box(&vars), 0.05))
    });
}

fn bench_snapshot(c: &mut Criterion) {
    let s = Series::new(0.0, 10.0, signal(8640));
    let aligns: Vec<f64> = (1..100).map(|k| k as f64 * 860.0).collect();
    c.bench_function("snapshot_superposition_99_events", |b| {
        b.iter(|| superimpose(black_box(&s), &aligns, 60.0, 240.0, 0.95))
    });
}

fn bench_cdf(c: &mut Criterion) {
    let data = signal(100_000);
    c.bench_function("ecdf_build_100k", |b| {
        b.iter(|| Ecdf::new(black_box(&data)))
    });
    let e = Ecdf::new(&data).unwrap();
    c.bench_function("ecdf_percentile_queries", |b| {
        b.iter(|| {
            for i in 1..100 {
                black_box(e.percentile(i as f64 / 100.0));
            }
        })
    });
}

criterion_group!(
    benches,
    bench_fft,
    bench_kde,
    bench_edges,
    bench_correlation,
    bench_snapshot,
    bench_cdf
);
criterion_main!(benches);
