//! One Criterion benchmark per paper table/figure: measures the cost of
//! regenerating each artifact at reduced scale, so pipeline regressions
//! that would blow up the paper-scale runs are caught early.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{criterion_group, criterion_main, Criterion};
use summit_core::experiments::*;

fn bench_tables(c: &mut Criterion) {
    let mut g = c.benchmark_group("tables");
    g.sample_size(10);
    g.bench_function("table1_3", |b| {
        b.iter(|| (tables::render_table1(), tables::render_table3()))
    });
    g.bench_function("table2_pipeline", |b| {
        let cfg = table2::Config {
            cabinets: 2,
            duration_s: 60,
            producers: 2,
            stream: false,
        };
        b.iter(|| table2::run(&cfg).unwrap())
    });
    g.bench_function("table4_failures", |b| {
        let cfg = table4::Config {
            weeks: 2.0,
            seed: 1,
        };
        b.iter(|| table4::run(&cfg))
    });
    g.finish();
}

fn bench_population_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("population_figures");
    g.sample_size(10);
    g.bench_function("fig05_year_trend", |b| {
        let cfg = fig05::Config {
            population_scale: 0.001,
            dt_s: 7200.0,
            maintenance_days: Some((34.0, 41.0)),
        };
        b.iter(|| fig05::run(&cfg))
    });
    g.bench_function("fig06_kde", |b| {
        let cfg = fig06::Config {
            population_scale: 0.001,
            grid: 32,
            max_samples: 500,
        };
        b.iter(|| fig06::run(&cfg))
    });
    g.bench_function("fig07_cdfs", |b| {
        let cfg = fig07::Config {
            population_scale: 0.005,
        };
        b.iter(|| fig07::run(&cfg))
    });
    g.bench_function("fig08_domains", |b| {
        let cfg = fig08::Config {
            population_scale: 0.01,
            class: 2,
        };
        b.iter(|| fig08::run(&cfg).unwrap())
    });
    g.bench_function("fig09_cpu_gpu", |b| {
        let cfg = fig09::Config {
            population_scale: 0.001,
            max_samples: 500,
        };
        b.iter(|| fig09::run(&cfg))
    });
    g.bench_function("fig10_dynamics", |b| {
        let cfg = fig10::Config {
            population_scale: 0.001,
            dt_s: 10.0,
        };
        b.iter(|| fig10::run(&cfg))
    });
    g.finish();
}

fn bench_dynamics_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("dynamics_figures");
    g.sample_size(10);
    let burst = fig11::Config {
        cabinets: 6,
        amplitudes_mw: vec![0.08],
        repeats: 1,
        burst_duration_s: 100.0,
        spacing_s: 300.0,
    };
    g.bench_function("fig04_msb_validation", |b| {
        let cfg = fig04::Config {
            cabinets: 3,
            duration_s: 60,
            busy_fraction: 1.0,
        };
        b.iter(|| fig04::run(&cfg))
    });
    g.bench_function("fig11_edge_snapshots", |b| b.iter(|| fig11::run(&burst)));
    g.bench_function("fig12_thermal_response", |b| {
        b.iter(|| {
            fig12::run(&fig12::Config {
                burst: burst.clone(),
            })
        })
    });
    g.bench_function("fig17_job_variability", |b| {
        let cfg = fig17::Config {
            cabinets: 6,
            job_duration_s: 180.0,
            stride_s: 20.0,
            missing_cabinet: None,
            seed: 1,
        };
        b.iter(|| fig17::run(&cfg))
    });
    g.finish();
}

fn bench_failure_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("failure_figures");
    g.sample_size(10);
    g.bench_function("fig13_cooccurrence", |b| {
        let cfg = fig13::Config {
            weeks: 2.0,
            alpha: 0.05,
            seed: 1,
        };
        b.iter(|| fig13::run(&cfg))
    });
    g.bench_function("fig14_projects", |b| {
        let cfg = fig14::Config {
            weeks: 2.0,
            top: 15,
            min_node_hours: 500.0,
            seed: 1,
        };
        b.iter(|| fig14::run(&cfg))
    });
    g.bench_function("fig15_thermal_extremity", |b| {
        let cfg = fig15::Config {
            weeks: 2.0,
            seed: 1,
        };
        b.iter(|| fig15::run(&cfg))
    });
    g.bench_function("fig16_slots", |b| {
        let cfg = fig16::Config {
            weeks: 2.0,
            seed: 1,
        };
        b.iter(|| fig16::run(&cfg))
    });
    g.finish();
}

fn bench_extensions(c: &mut Criterion) {
    let mut g = c.benchmark_group("extensions");
    g.sample_size(10);
    g.bench_function("fingerprint_evaluate_300_jobs", |b| {
        use rand::SeedableRng;
        let scenario = summit_core::pipeline::PopulationScenario::paper_year(0.0004);
        let jobs = scenario.generate();
        let pm = summit_sim::power::PowerModel::new(scenario.seed);
        b.iter(|| {
            let mut rng = rand::rngs::StdRng::seed_from_u64(1);
            summit_core::fingerprint::evaluate(&mut rng, &jobs, &pm, 4)
        })
    });
    g.bench_function("power_aware_cap_sweep", |b| {
        let cfg = power_aware::Config {
            population_scale: 0.002,
            caps_w: vec![f64::INFINITY, 8.0e6],
            dt_s: 3600.0,
        };
        b.iter(|| power_aware::run(&cfg))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_tables,
    bench_population_figures,
    bench_dynamics_figures,
    bench_failure_figures,
    bench_extensions
);
criterion_main!(benches);
