//! Criterion benchmarks for the telemetry pipeline and the simulation
//! engine: codec throughput (Table 2), window coarsening, fan-in ingest,
//! cluster aggregation (Datasets 0-1), and the per-tick engine cost that
//! bounds every dynamics figure.

#![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use summit_sim::engine::{Engine, EngineConfig, StepOptions};
use summit_telemetry::cluster::cluster_power;
use summit_telemetry::codec::{decode_column, encode_column, ColumnBlock};
use summit_telemetry::ids::NodeId;
use summit_telemetry::records::NodeFrame;
use summit_telemetry::window::{coarsen_parallel, WindowAggregator};

fn frames_for(nodes: usize, seconds: usize) -> Vec<Vec<NodeFrame>> {
    let mut engine = Engine::new(EngineConfig::small(nodes.div_ceil(18).max(1)), 0.0);
    let n = engine.topology().node_count();
    let mut out = vec![Vec::with_capacity(seconds); n];
    for _ in 0..seconds {
        let tick = engine.step_opts(&StepOptions {
            frames: true,
            ..Default::default()
        });
        for f in tick.frames.unwrap() {
            out[f.node.index()].push(f);
        }
    }
    out
}

fn bench_codec(c: &mut Criterion) {
    // A realistic sensor column: slow-moving integer watts.
    let col: Vec<i64> = (0..86_400)
        .map(|i| 1500 + ((i / 37) % 40) as i64 - ((i / 113) % 17) as i64)
        .collect();
    let mut g = c.benchmark_group("codec");
    g.throughput(Throughput::Bytes((col.len() * 8) as u64));
    g.bench_function("encode_day_column", |b| {
        b.iter(|| {
            let mut buf = bytes::BytesMut::new();
            encode_column(black_box(&col), &mut buf);
            buf
        })
    });
    let mut buf = bytes::BytesMut::new();
    encode_column(&col, &mut buf);
    let encoded = buf.freeze();
    g.bench_function("decode_day_column", |b| {
        b.iter(|| {
            let mut bytes = encoded.clone();
            decode_column(black_box(&mut bytes))
        })
    });
    let block = ColumnBlock {
        columns: (0..106).map(|_| col[..600].to_vec()).collect(),
    };
    g.bench_function("encode_node_10min_block", |b| b.iter(|| block.encode()));
    g.finish();
}

fn bench_window(c: &mut Criterion) {
    let frames = frames_for(54, 60);
    let mut g = c.benchmark_group("window");
    g.throughput(Throughput::Elements((54 * 60) as u64));
    g.bench_function("coarsen_54_nodes_60s_parallel", |b| {
        b.iter(|| coarsen_parallel(black_box(&frames), 10.0))
    });
    g.bench_function("coarsen_single_node_60s", |b| {
        b.iter(|| {
            let mut agg = WindowAggregator::paper(NodeId(0));
            for f in &frames[0] {
                let _ = agg.push(f);
            }
            agg.finish()
        })
    });
    g.finish();
}

fn bench_cluster(c: &mut Criterion) {
    let frames = frames_for(180, 60);
    let windows = coarsen_parallel(&frames, 10.0);
    c.bench_function("cluster_power_180_nodes", |b| {
        b.iter(|| cluster_power(black_box(&windows)))
    });
}

fn bench_engine(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine");
    g.sample_size(20);
    for cabinets in [10usize, 60] {
        g.bench_function(&format!("tick_{}_nodes", cabinets * 18), |b| {
            let mut engine = Engine::new(EngineConfig::small(cabinets), 0.0);
            b.iter(|| black_box(engine.step()))
        });
    }
    g.bench_function("tick_full_floor_4626", |b| {
        let mut engine = Engine::new(EngineConfig::default(), 0.0);
        b.iter(|| black_box(engine.step()))
    });
    g.finish();
}

fn bench_obs(c: &mut Criterion) {
    // The observability layer rides every hot path; these baselines
    // bound the overhead a span or counter adds per stage.
    let registry = summit_obs::registry::Registry::new();
    let _scope = registry.install();
    let mut g = c.benchmark_group("obs");
    g.bench_function("counter_inc_interned", |b| {
        let counter = registry.counter("summit_bench_overhead_total");
        b.iter(|| counter.inc())
    });
    g.bench_function("counter_lookup_and_inc", |b| {
        b.iter(|| summit_obs::counter(black_box("summit_bench_overhead_total")).inc())
    });
    g.bench_function("histogram_observe", |b| {
        let h = registry.histogram("summit_bench_overhead_seconds");
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(1);
            h.observe(black_box(x as f64 * 1e-6));
        })
    });
    g.bench_function("span_guard_roundtrip", |b| {
        b.iter(|| summit_obs::span(black_box("summit_bench_span")))
    });
    g.bench_function("snapshot_small_registry", |b| {
        b.iter(|| registry.snapshot())
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_codec,
    bench_window,
    bench_cluster,
    bench_engine,
    bench_obs
);
criterion_main!(benches);
