//! Incremental per-node delivery through the faulty fabric.
//!
//! [`FaultInjector::deliver`](crate::stream::FaultInjector::deliver)
//! takes a node's *complete* frame batch, applies fate draws, sorts the
//! survivors into arrival order with a stable sort and runs an adjacent
//! swap pass. The streaming pipeline cannot wait for the complete
//! batch, so [`NodeDelivery`] reproduces that exact output one source
//! frame at a time:
//!
//! 1. **Fate** — each frame's drop/duplicate/delay draw is the pure
//!    order-independent hash [`FaultConfig::fate`], so the incremental
//!    path classifies every frame exactly as the batch path does.
//! 2. **Reorder release** — arrivals wait in a min-heap keyed by
//!    `(t_ingest, insertion sequence)`. Insertion order matches the
//!    batch push order (a duplicate's +0.25 s copy is inserted before
//!    its original), so the heap order *is* the batch's stable sort.
//!    An arrival is released once the node's production clock (the
//!    newest `t_sample` offered) passes its `t_ingest`: any future
//!    frame has `t_ingest ≥ t_sample > clock`, so nothing can still
//!    arrive ahead of it. This bounds the heap at the fabric's maximum
//!    delivery delay regardless of run length.
//! 3. **Swap hold** — the batch swap pass examines the *originally
//!    sorted* element at each position (a swap at `i` only moves
//!    elements at `i-1`/`i`, never a later probe target), so one held
//!    frame suffices: a frame that draws a swap is emitted ahead of the
//!    held frame; one that doesn't replaces it.
//!
//! The result: delivered frame sequence, injected-fault counts, and
//! every downstream statistic are bit-identical to the batch injector
//! run over the same per-node sequence.

use crate::records::NodeFrame;
use crate::stream::{propagation_delay_s, FaultConfig, FrameFate, InjectedFaults};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One frame waiting in the reorder-release heap.
#[derive(Debug)]
struct Arrival {
    t_ingest: f64,
    seq: u64,
    frame: NodeFrame,
}

impl PartialEq for Arrival {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Arrival {}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Arrival {
    /// Reversed (min-heap through `BinaryHeap`): earliest ingest time
    /// first, ties broken by insertion sequence — exactly the batch
    /// stable sort on `t_ingest`.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .t_ingest
            .total_cmp(&self.t_ingest)
            .then(other.seq.cmp(&self.seq))
    }
}

/// Incremental replacement for one node's
/// [`FaultInjector::deliver`](crate::stream::FaultInjector::deliver)
/// call: offer source frames in sample order, collect delivered frames
/// as they become safe to release. See the module docs for the
/// equivalence argument.
#[derive(Debug)]
pub struct NodeDelivery {
    cfg: FaultConfig,
    seq: u64,
    heap: BinaryHeap<Arrival>,
    hold: Option<NodeFrame>,
    counts: InjectedFaults,
}

impl NodeDelivery {
    /// Creates a delivery stage for one node under the given fault
    /// profile.
    pub fn new(cfg: FaultConfig) -> Self {
        Self {
            cfg,
            seq: 0,
            heap: BinaryHeap::new(),
            hold: None,
            counts: InjectedFaults::default(),
        }
    }

    /// Counts of every fault injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.counts
    }

    /// Frames currently resident (reorder heap plus the swap hold) —
    /// bounded by the fabric's maximum delivery delay at 1 Hz.
    pub fn resident(&self) -> usize {
        self.heap.len() + usize::from(self.hold.is_some())
    }

    fn push_arrival(&mut self, t_ingest: f64, frame: NodeFrame) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Arrival {
            t_ingest,
            seq,
            frame,
        });
    }

    /// Runs one released (sorted-order) frame through the swap-hold
    /// stage, appending whatever it emits.
    fn emit(&mut self, frame: NodeFrame, out: &mut Vec<NodeFrame>) {
        match self.hold.take() {
            None => self.hold = Some(frame),
            Some(held) => {
                if self.cfg.draws_reorder(frame.node.0, frame.t_sample) {
                    self.counts.reordered += 1;
                    out.push(frame);
                    self.hold = Some(held);
                } else {
                    out.push(held);
                    self.hold = Some(frame);
                }
            }
        }
    }

    /// Offers one source frame (frames must come in `t_sample` order,
    /// the order the engine produces them) and appends every frame that
    /// became safe to deliver.
    pub fn offer(&mut self, mut frame: NodeFrame, out: &mut Vec<NodeFrame>) {
        let node = frame.node.0;
        let t = frame.t_sample;
        frame.t_ingest = t + propagation_delay_s(node, t);
        match self.cfg.fate(node, t) {
            FrameFate::Drop => self.counts.dropped += 1,
            FrameFate::Duplicate => {
                self.counts.duplicated += 1;
                // Copy before original: matches the batch push order so
                // the stable tie-break is preserved.
                let t_ingest = frame.t_ingest;
                self.push_arrival(t_ingest + 0.25, frame.clone());
                self.push_arrival(t_ingest, frame);
            }
            FrameFate::Delay { extra_s } => {
                self.counts.delayed += 1;
                frame.t_ingest += extra_s;
                let t_ingest = frame.t_ingest;
                self.push_arrival(t_ingest, frame);
            }
            FrameFate::Deliver => {
                let t_ingest = frame.t_ingest;
                self.push_arrival(t_ingest, frame);
            }
        }
        // Release everything no future frame can precede: future
        // samples arrive at t_ingest ≥ t_sample > t.
        while self.heap.peek().is_some_and(|head| head.t_ingest <= t) {
            if let Some(arrival) = self.heap.pop() {
                self.emit(arrival.frame, out);
            }
        }
    }

    /// Drains the reorder heap and the swap hold once the source is
    /// exhausted, appending the tail of the delivered sequence.
    pub fn finish(mut self, out: &mut Vec<NodeFrame>) -> InjectedFaults {
        while let Some(arrival) = self.heap.pop() {
            self.emit(arrival.frame, out);
        }
        if let Some(held) = self.hold.take() {
            out.push(held);
        }
        self.counts
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ids::NodeId;
    use crate::stream::FaultInjector;

    fn batch(node: u32, n: usize) -> Vec<NodeFrame> {
        (0..n)
            .map(|t| NodeFrame::empty(NodeId(node), t as f64))
            .collect()
    }

    fn run_streaming(cfg: FaultConfig, frames: Vec<NodeFrame>) -> (Vec<NodeFrame>, InjectedFaults) {
        let mut stage = NodeDelivery::new(cfg);
        let mut out = Vec::new();
        let mut peak = 0usize;
        for f in frames {
            stage.offer(f, &mut out);
            peak = peak.max(stage.resident());
        }
        // Residency stays bounded by the fabric delay, not the run.
        assert!(peak <= 64, "resident {peak} should be O(max delay)");
        let counts = stage.finish(&mut out);
        (out, counts)
    }

    fn assert_same_delivery(cfg: FaultConfig, n: usize) {
        let mut inj = FaultInjector::new(cfg);
        let reference = inj.deliver(batch(5, n));
        let (streamed, counts) = run_streaming(cfg, batch(5, n));
        assert_eq!(counts, inj.injected(), "fault accounting must match");
        assert_eq!(streamed.len(), reference.len());
        for (s, r) in streamed.iter().zip(&reference) {
            assert_eq!(s.t_sample.to_bits(), r.t_sample.to_bits());
            assert_eq!(s.t_ingest.to_bits(), r.t_ingest.to_bits());
        }
    }

    #[test]
    fn clean_stream_matches_batch_delivery() {
        assert_same_delivery(FaultConfig::default(), 300);
    }

    #[test]
    fn light_faults_match_batch_delivery() {
        assert_same_delivery(FaultConfig::light(42), 500);
    }

    #[test]
    fn heavy_faults_match_batch_delivery() {
        assert_same_delivery(
            FaultConfig {
                drop_p: 0.10,
                duplicate_p: 0.10,
                delay_p: 0.15,
                reorder_p: 0.05,
                seed: 42,
                ..FaultConfig::default()
            },
            500,
        );
    }

    #[test]
    fn duplicate_and_reorder_heavy_match_batch_delivery() {
        assert_same_delivery(
            FaultConfig {
                drop_p: 0.0,
                duplicate_p: 0.30,
                delay_p: 0.0,
                reorder_p: 0.25,
                seed: 7,
                ..FaultConfig::default()
            },
            500,
        );
    }

    #[test]
    fn empty_source_delivers_nothing() {
        let stage = NodeDelivery::new(FaultConfig::light(1));
        let mut out = Vec::new();
        let counts = stage.finish(&mut out);
        assert!(out.is_empty());
        assert_eq!(counts, InjectedFaults::default());
    }
}
