//! Checked narrowing conversions for the data path.
//!
//! The `lossy-cast` lint bans bare narrowing `as` casts in this crate:
//! `as` silently wraps (`u64 as u32`) or rounds (`f64 as f32`), and a
//! corrupted count or metric offset propagates into derived tables
//! without any runtime signal. These helpers make the narrowing policy
//! explicit at the call site instead.

/// Narrows a sample count to the `u32` row fields. Counts in this
/// workspace are bounded by samples-per-window times nodes (far below
/// `u32::MAX`); the saturating policy means a pathological overflow
/// shows up as a pinned maximum instead of a silently wrapped small
/// number.
pub fn count_u32(n: u64) -> u32 {
    u32::try_from(n).unwrap_or(u32::MAX)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn count_narrowing_saturates() {
        assert_eq!(count_u32(0), 0);
        assert_eq!(count_u32(4_000_000), 4_000_000);
        assert_eq!(count_u32(u64::from(u32::MAX)), u32::MAX);
        assert_eq!(count_u32(u64::from(u32::MAX) + 1), u32::MAX);
        assert_eq!(count_u32(u64::MAX), u32::MAX);
    }
}
