//! Lossless telemetry compression.
//!
//! The paper: "By leveraging several lossless data compression methods
//! throughout the telemetry data pipeline, the footprint of an aggregated
//! 460k metrics per second data stream from Summit resulted in a
//! manageable 1MB/s data stream" (Section 2), accumulating to 8.5 TB/year.
//!
//! BMC sensors emit integer readings (watts, tenths of a degree, RPM), so
//! the codec operates on integer columns: per-metric time columns are
//! delta-encoded, zigzag-mapped, varint-packed, and zero-runs (the "push
//! at metric value change" property — most sensors are unchanged between
//! consecutive seconds) are run-length encoded. The result is exactly
//! invertible.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// Maps a signed integer to an unsigned one with small absolute values
/// staying small (zigzag encoding).
#[inline]
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag_encode`].
#[inline]
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Appends a LEB128 varint.
pub fn write_varint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads a LEB128 varint; `None` on truncated input.
pub fn read_varint(buf: &mut Bytes) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() || shift >= 64 {
            return None;
        }
        let byte = buf.get_u8();
        v |= ((byte & 0x7f) as u64) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
    }
}

// Column-stream token packing: one varint per event.
//   token == 0                  -> escape; a full zigzag delta follows
//   token even (>= 2)           -> zero-run of length token >> 1
//   token odd                   -> non-zero delta, zigzag = token >> 1
// Packing the kind bit into the token halves the per-change overhead
// versus a separate tag varint (see the `ablations` binary).
const ESCAPE: u64 = 0;
/// Largest zigzag delta representable inline (one bit reserved).
const MAX_INLINE_ZIGZAG: u64 = (u64::MAX >> 1) - 1;

fn write_zero_run(out: &mut BytesMut, mut run: u64) {
    // Run lengths share the even token space; split huge runs.
    const MAX_RUN: u64 = u64::MAX >> 1;
    while run > 0 {
        let chunk = run.min(MAX_RUN);
        write_varint(out, chunk << 1);
        run -= chunk;
    }
}

/// Encodes one integer column (a metric's consecutive readings) into a
/// delta/zigzag/varint/RLE byte stream.
///
/// ```
/// use summit_telemetry::codec::{decode_column, encode_column};
/// let column = vec![650, 650, 650, 655, 655, 650];
/// let mut buf = bytes::BytesMut::new();
/// encode_column(&column, &mut buf);
/// assert!(buf.len() < column.len() * 8);
/// let mut bytes = buf.freeze();
/// assert_eq!(decode_column(&mut bytes), Some(column));
/// ```
pub fn encode_column(values: &[i64], out: &mut BytesMut) {
    write_varint(out, values.len() as u64);
    if values.is_empty() {
        return;
    }
    // First value raw (zigzag-varint).
    write_varint(out, zigzag_encode(values[0]));
    let mut zero_run: u64 = 0;
    for w in values.windows(2) {
        let delta = w[1].wrapping_sub(w[0]);
        if delta == 0 {
            zero_run += 1;
            continue;
        }
        if zero_run > 0 {
            write_zero_run(out, zero_run);
            zero_run = 0;
        }
        let zz = zigzag_encode(delta);
        if zz <= MAX_INLINE_ZIGZAG {
            write_varint(out, (zz << 1) | 1);
        } else {
            write_varint(out, ESCAPE);
            write_varint(out, zz);
        }
    }
    if zero_run > 0 {
        write_zero_run(out, zero_run);
    }
}

/// Ablation variant: zigzag+varint of the *raw* values, no delta and no
/// run-length encoding. Used by the compression ablation study to isolate
/// what the delta/RLE stages buy on telemetry-shaped data.
pub fn encode_column_raw_varint(values: &[i64], out: &mut BytesMut) {
    write_varint(out, values.len() as u64);
    for &v in values {
        write_varint(out, zigzag_encode(v));
    }
}

/// Ablation variant: delta + zigzag + varint but no zero-run RLE.
pub fn encode_column_delta_only(values: &[i64], out: &mut BytesMut) {
    write_varint(out, values.len() as u64);
    if values.is_empty() {
        return;
    }
    write_varint(out, zigzag_encode(values[0]));
    for w in values.windows(2) {
        write_varint(out, zigzag_encode(w[1].wrapping_sub(w[0])));
    }
}

/// Decodes a column produced by [`encode_column`]; `None` on corrupt input.
pub fn decode_column(buf: &mut Bytes) -> Option<Vec<i64>> {
    let n = read_varint(buf)? as usize;
    if n == 0 {
        return Some(Vec::new());
    }
    let mut out = Vec::with_capacity(n);
    let mut current = zigzag_decode(read_varint(buf)?);
    out.push(current);
    while out.len() < n {
        let token = read_varint(buf)?;
        if token == ESCAPE {
            let delta = zigzag_decode(read_varint(buf)?);
            current = current.wrapping_add(delta);
            out.push(current);
        } else if token & 1 == 1 {
            let delta = zigzag_decode(token >> 1);
            current = current.wrapping_add(delta);
            out.push(current);
        } else {
            let run = (token >> 1) as usize;
            if run == 0 || out.len() + run > n {
                return None;
            }
            for _ in 0..run {
                out.push(current);
            }
        }
    }
    Some(out)
}

/// A block of integer columns (one per metric) sharing a time axis —
/// the unit of archival.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnBlock {
    /// Per-column integer readings; all columns must share one length.
    pub columns: Vec<Vec<i64>>,
}

impl ColumnBlock {
    /// Encodes all columns into one buffer.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        write_varint(&mut out, self.columns.len() as u64);
        for col in &self.columns {
            encode_column(col, &mut out);
        }
        out.freeze()
    }

    /// Decodes a buffer from [`ColumnBlock::encode`].
    pub fn decode(mut buf: Bytes) -> Option<Self> {
        let n_cols = read_varint(&mut buf)? as usize;
        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            columns.push(decode_column(&mut buf)?);
        }
        Some(Self { columns })
    }

    /// Raw (uncompressed) footprint assuming 8-byte integers.
    pub fn raw_bytes(&self) -> usize {
        self.columns.iter().map(|c| c.len() * 8).sum()
    }
}

/// Compression accounting across the pipeline — used by the Table 2
/// footprint reproduction.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CompressionStats {
    /// Uncompressed bytes (8 B per reading).
    pub raw_bytes: u64,
    /// Encoded bytes produced.
    pub encoded_bytes: u64,
    /// Number of readings encoded.
    pub readings: u64,
}

impl CompressionStats {
    /// Records one encoded block.
    pub fn record(&mut self, block: &ColumnBlock, encoded_len: usize) {
        self.raw_bytes += block.raw_bytes() as u64;
        self.encoded_bytes += encoded_len as u64;
        self.readings += block.columns.iter().map(|c| c.len() as u64).sum::<u64>();
    }

    /// Compression ratio (raw/encoded); NaN if nothing encoded.
    pub fn ratio(&self) -> f64 {
        if self.encoded_bytes == 0 {
            f64::NAN
        } else {
            self.raw_bytes as f64 / self.encoded_bytes as f64
        }
    }

    /// Bytes per reading after compression.
    pub fn bytes_per_reading(&self) -> f64 {
        if self.readings == 0 {
            f64::NAN
        } else {
            self.encoded_bytes as f64 / self.readings as f64
        }
    }

    /// Merges stats from another accounting window.
    pub fn merge(&mut self, other: &CompressionStats) {
        self.raw_bytes += other.raw_bytes;
        self.encoded_bytes += other.encoded_bytes;
        self.readings += other.readings;
    }
}

/// Fixed-point quantization scales per unit, matching what real BMC
/// sensors emit: integer watts, tenths of a degree, integer RPM.
pub mod quant {
    use crate::catalog::Unit;

    /// Readings per physical unit.
    pub fn scale(unit: Unit) -> f64 {
        match unit {
            Unit::Watts => 1.0,
            Unit::Celsius => 10.0,
            Unit::Rpm => 1.0,
        }
    }

    /// Physical value -> integer reading. NaN maps to the sentinel.
    pub fn to_fixed(unit: Unit, value: f64) -> i64 {
        if !value.is_finite() {
            return MISSING;
        }
        (value * scale(unit)).round() as i64
    }

    /// Integer reading -> physical value; the sentinel maps back to NaN.
    pub fn from_fixed(unit: Unit, reading: i64) -> f64 {
        if reading == MISSING {
            return f64::NAN;
        }
        reading as f64 / scale(unit)
    }

    /// Sentinel for missing readings (far outside any physical range).
    pub const MISSING: i64 = i64::MIN / 2;
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn zigzag_roundtrip() {
        for v in [
            -1_000_000i64,
            -3,
            -1,
            0,
            1,
            2,
            7,
            i64::MAX / 2,
            i64::MIN / 2,
        ] {
            assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }
        // Small magnitudes stay small.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = BytesMut::new();
        let values = [0u64, 1, 127, 128, 300, 16_383, 16_384, u64::MAX];
        for &v in &values {
            write_varint(&mut buf, v);
        }
        let mut bytes = buf.freeze();
        for &v in &values {
            assert_eq!(read_varint(&mut bytes), Some(v));
        }
        assert!(!bytes.has_remaining());
    }

    #[test]
    fn varint_truncated_is_none() {
        let mut buf = BytesMut::new();
        buf.put_u8(0x80); // continuation bit set, nothing follows
        let mut bytes = buf.freeze();
        assert_eq!(read_varint(&mut bytes), None);
    }

    #[test]
    fn column_roundtrip_mixed() {
        let col = vec![100, 100, 100, 105, 105, 90, 90, 90, 90, 200];
        let mut buf = BytesMut::new();
        encode_column(&col, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_column(&mut bytes), Some(col));
    }

    #[test]
    fn column_roundtrip_empty_and_single() {
        for col in [vec![], vec![42i64]] {
            let mut buf = BytesMut::new();
            encode_column(&col, &mut buf);
            let mut bytes = buf.freeze();
            assert_eq!(decode_column(&mut bytes), Some(col));
        }
    }

    #[test]
    fn constant_column_compresses_heavily() {
        // "Push at metric value change": an idle sensor costs almost nothing.
        let col = vec![650i64; 86_400]; // one day of 1 Hz idle power
        let mut buf = BytesMut::new();
        encode_column(&col, &mut buf);
        assert!(
            buf.len() < 16,
            "constant day should encode to a few bytes, got {}",
            buf.len()
        );
    }

    #[test]
    fn noisy_column_still_roundtrips() {
        let col: Vec<i64> = (0..10_000)
            .map(|i| ((i * 2654435761_usize) % 2000) as i64 - 1000)
            .collect();
        let mut buf = BytesMut::new();
        encode_column(&col, &mut buf);
        let mut bytes = buf.freeze();
        assert_eq!(decode_column(&mut bytes), Some(col));
    }

    #[test]
    fn block_roundtrip() {
        let block = ColumnBlock {
            columns: vec![vec![1, 2, 3], vec![10, 10, 10], vec![]],
        };
        let enc = block.encode();
        assert_eq!(ColumnBlock::decode(enc), Some(block));
    }

    #[test]
    fn block_decode_rejects_garbage() {
        let garbage = Bytes::from_static(&[0xff, 0xff, 0xff, 0xff, 0xff]);
        assert_eq!(ColumnBlock::decode(garbage), None);
    }

    #[test]
    fn compression_stats_accounting() {
        let block = ColumnBlock {
            columns: vec![vec![5i64; 1000]],
        };
        let enc = block.encode();
        let mut stats = CompressionStats::default();
        stats.record(&block, enc.len());
        assert_eq!(stats.raw_bytes, 8000);
        assert_eq!(stats.readings, 1000);
        assert!(stats.ratio() > 100.0, "ratio {}", stats.ratio());
        assert!(stats.bytes_per_reading() < 0.1);
    }

    #[test]
    fn ablation_variants_order_as_expected() {
        // Telemetry-shaped data: slow-moving values with long flat runs.
        let col: Vec<i64> = (0..10_000).map(|i| 1500 + ((i / 500) % 5) as i64).collect();
        let size = |f: &dyn Fn(&[i64], &mut BytesMut)| {
            let mut buf = BytesMut::new();
            f(&col, &mut buf);
            buf.len()
        };
        let full = size(&|c, b| encode_column(c, b));
        let delta = size(&encode_column_delta_only);
        let raw = size(&encode_column_raw_varint);
        assert!(
            full < delta,
            "RLE must help on flat runs: {full} vs {delta}"
        );
        assert!(
            delta < raw,
            "delta must help on slow values: {delta} vs {raw}"
        );
    }

    #[test]
    fn quantization_roundtrip() {
        use crate::catalog::Unit;
        let temp = 43.7;
        let r = quant::to_fixed(Unit::Celsius, temp);
        assert_eq!(r, 437);
        assert!((quant::from_fixed(Unit::Celsius, r) - temp).abs() < 1e-9);
        assert_eq!(quant::to_fixed(Unit::Watts, 315.4), 315);
        assert!(quant::from_fixed(Unit::Watts, quant::to_fixed(Unit::Watts, f64::NAN)).is_nan());
    }
}
