//! Fault-tolerant ingestion policy, errors and health accounting.
//!
//! The paper's collection fabric delivers 1 Hz frames with real
//! propagation delay (2.5 s average, 5 s max), sensor dropout, and
//! whole-cabinet outages (the Section 3 "bright green cabinet"); its
//! Dataset 0 coarsening is explicitly designed to survive missing
//! samples. This module is the contract that makes our ingest path
//! equally tolerant: a typed [`IngestError`] instead of panics, a
//! configurable [`IngestPolicy`] (lateness horizon, gap-window
//! emission), and [`IngestHealth`] counters that account for every
//! frame the pipeline tolerated rather than processed.

use crate::ids::NodeId;
use serde::{Deserialize, Serialize};

/// Why the ingest path rejected a frame. Every variant is handled by
/// counting and dropping — nothing in the pipeline panics on bad input.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IngestError {
    /// Frame routed to an aggregator owned by a different node.
    WrongNode {
        /// Node the aggregator coarsens.
        expected: NodeId,
        /// Node the frame reports for.
        got: NodeId,
    },
    /// Frame arrived later than the lateness horizon allows: its sample
    /// time is more than `horizon_s` behind the newest accepted sample.
    Late {
        /// Sample timestamp of the rejected frame (s).
        t_sample: f64,
        /// Newest accepted sample timestamp (the watermark, s).
        watermark: f64,
        /// Configured lateness horizon (s).
        horizon_s: f64,
    },
    /// A frame with the same sample timestamp was already accepted
    /// (duplicate delivery; timestamps compare at millisecond grain).
    Duplicate {
        /// Sample timestamp of the duplicate (s).
        t_sample: f64,
    },
    /// The frame's sample timestamp is NaN or infinite.
    NonFiniteTimestamp,
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::WrongNode { expected, got } => {
                write!(f, "frame for node {} routed to node {}", got.0, expected.0)
            }
            IngestError::Late {
                t_sample,
                watermark,
                horizon_s,
            } => write!(
                f,
                "frame at t={t_sample} is beyond the {horizon_s} s lateness \
                 horizon (watermark {watermark})"
            ),
            IngestError::Duplicate { t_sample } => {
                write!(f, "duplicate frame at t={t_sample}")
            }
            IngestError::NonFiniteTimestamp => write!(f, "non-finite sample timestamp"),
        }
    }
}

impl std::error::Error for IngestError {}

/// Ingest tolerance policy.
///
/// The default horizon equals the delay model's 5 s maximum
/// ([`crate::stream::propagation_delay_s`]): any frame the simulated
/// fabric can deliver in order of sampling is buffered and re-ordered;
/// anything later is counted and dropped.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IngestPolicy {
    /// How far behind the newest accepted sample a frame may arrive and
    /// still be buffered/re-ordered instead of dropped (seconds).
    pub lateness_horizon_s: f64,
    /// Emit NaN-filled windows for whole-window gaps so downstream
    /// series stay uniform (cluster aggregation skips zero-count
    /// windows either way).
    pub emit_gap_windows: bool,
    /// Upper bound of NaN windows emitted per gap, so a pathological
    /// timestamp jump cannot allocate unbounded output. Longer gaps are
    /// truncated to this many windows.
    pub max_gap_windows: usize,
}

impl Default for IngestPolicy {
    fn default() -> Self {
        Self {
            lateness_horizon_s: crate::stream::MAX_PROPAGATION_DELAY_S,
            emit_gap_windows: true,
            max_gap_windows: 1_000,
        }
    }
}

impl IngestPolicy {
    /// The paper-faithful policy (5 s horizon, gap windows on).
    pub fn paper() -> Self {
        Self::default()
    }

    /// A strict policy that refuses any reordering (horizon zero).
    pub fn zero_horizon() -> Self {
        Self {
            lateness_horizon_s: 0.0,
            ..Self::default()
        }
    }
}

/// Ingest-health counters: every frame offered to the tolerant path is
/// accounted for exactly once as accepted or as one fault kind, plus
/// the gap windows synthesized on the output side.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestHealth {
    /// Frames accepted into a window (includes reordered frames).
    pub accepted: u64,
    /// Accepted frames that arrived out of sample order (older than the
    /// watermark but within the lateness horizon).
    pub reordered: u64,
    /// Frames dropped as exact-timestamp duplicates.
    pub duplicates: u64,
    /// Frames dropped for arriving beyond the lateness horizon.
    pub late_dropped: u64,
    /// Frames dropped for reaching an aggregator of another node.
    pub wrong_node: u64,
    /// Frames dropped for a NaN/infinite sample timestamp.
    pub invalid: u64,
    /// NaN-filled windows emitted for whole-window gaps.
    pub gap_windows: u64,
}

impl IngestHealth {
    /// Folds another counter set into this one.
    pub fn merge(&mut self, other: &IngestHealth) {
        self.accepted += other.accepted;
        self.reordered += other.reordered;
        self.duplicates += other.duplicates;
        self.late_dropped += other.late_dropped;
        self.wrong_node += other.wrong_node;
        self.invalid += other.invalid;
        self.gap_windows += other.gap_windows;
    }

    /// Total frames dropped (everything offered but not accepted).
    pub fn dropped(&self) -> u64 {
        self.duplicates + self.late_dropped + self.wrong_node + self.invalid
    }

    /// Total frames offered to the ingest path.
    pub fn offered(&self) -> u64 {
        self.accepted + self.dropped()
    }

    /// Fraction of offered frames that were dropped (0 when nothing was
    /// offered).
    pub fn drop_fraction(&self) -> f64 {
        let offered = self.offered();
        if offered == 0 {
            0.0
        } else {
            self.dropped() as f64 / offered as f64
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn default_policy_matches_delay_model() {
        let p = IngestPolicy::default();
        assert_eq!(p.lateness_horizon_s, 5.0);
        assert!(p.emit_gap_windows);
        assert_eq!(IngestPolicy::paper(), p);
        assert_eq!(IngestPolicy::zero_horizon().lateness_horizon_s, 0.0);
    }

    #[test]
    fn health_merges_and_accounts() {
        let mut a = IngestHealth {
            accepted: 10,
            reordered: 2,
            duplicates: 1,
            late_dropped: 3,
            wrong_node: 0,
            invalid: 0,
            gap_windows: 4,
        };
        let b = IngestHealth {
            accepted: 5,
            duplicates: 2,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.accepted, 15);
        assert_eq!(a.duplicates, 3);
        assert_eq!(a.dropped(), 6);
        assert_eq!(a.offered(), 21);
        assert!((a.drop_fraction() - 6.0 / 21.0).abs() < 1e-12);
        assert_eq!(IngestHealth::default().drop_fraction(), 0.0);
    }

    #[test]
    fn errors_render_for_operators() {
        use crate::ids::NodeId;
        let e = IngestError::Late {
            t_sample: 1.0,
            watermark: 9.0,
            horizon_s: 5.0,
        };
        assert!(e.to_string().contains("lateness"));
        let w = IngestError::WrongNode {
            expected: NodeId(1),
            got: NodeId(2),
        };
        assert!(w.to_string().contains("routed"));
        assert!(IngestError::Duplicate { t_sample: 3.0 }
            .to_string()
            .contains("duplicate"));
        assert!(IngestError::NonFiniteTimestamp
            .to_string()
            .contains("non-finite"));
    }
}
