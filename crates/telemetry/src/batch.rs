//! Columnar (struct-of-arrays) tick-batch of telemetry frames.
//!
//! [`FrameBatch`] is the hot-path counterpart of [`NodeFrame`]: one tick
//! worth of frames stored as one contiguous column per catalog metric
//! plus a node-id/timestamp index. The engine fills a batch in place
//! every tick (the buffer is reset, never reallocated, in steady state)
//! and both the batch and streaming pipelines read rows back out of it
//! for routing. Column storage keeps per-metric sweeps — coarsening
//! scratch fills, cluster reductions, Welford folds — as unit-stride
//! loops the compiler can vectorize, while [`FrameBatch::read_frame`]
//! reproduces the exact row-structured [`NodeFrame`] for every consumer
//! that still wants rows, bit for bit.

use crate::catalog::{MetricId, METRIC_COUNT};
use crate::ids::NodeId;
use crate::records::NodeFrame;

/// One tick batch of frames in struct-of-arrays layout: a node/time
/// index plus a `values` buffer holding [`METRIC_COUNT`] columns, each
/// `stride` elements long (`values[m * stride + row]`).
///
/// ```
/// use summit_telemetry::batch::FrameBatch;
/// use summit_telemetry::{catalog, ids::NodeId};
/// let mut batch = FrameBatch::new();
/// batch.reset(2);
/// let r = batch.push_row(NodeId(7), 42.0);
/// batch.set(r, catalog::input_power(), 600.0);
/// assert_eq!(batch.len(), 1);
/// let frame = batch.read_frame(r);
/// assert_eq!(frame.node, NodeId(7));
/// assert_eq!(frame.get(catalog::input_power()), 600.0);
/// assert!(frame.get(catalog::cpu_power(summit_telemetry::ids::Socket::P0)).is_nan());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FrameBatch {
    /// Column stride: row capacity declared by the last `reset`.
    stride: usize,
    /// Rows filled so far (≤ `stride`).
    len: usize,
    nodes: Vec<NodeId>,
    t_sample: Vec<f64>,
    /// Column-major metric values, `METRIC_COUNT * stride` elements,
    /// NaN-filled on reset (NaN = missing sensor, as in [`NodeFrame`]).
    values: Vec<f32>,
}

impl FrameBatch {
    /// Creates an empty batch; call [`FrameBatch::reset`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a batch pre-sized for `rows` rows per tick.
    pub fn with_capacity(rows: usize) -> Self {
        let mut b = Self::default();
        b.reset(rows);
        b
    }

    /// Clears the batch and lays out columns for up to `rows` rows.
    /// Keeps (and at most grows) the allocation: resetting to the same
    /// row count every tick touches no allocator after the first tick.
    pub fn reset(&mut self, rows: usize) {
        self.stride = rows;
        self.len = 0;
        self.nodes.clear();
        self.t_sample.clear();
        self.nodes.reserve(rows);
        self.t_sample.reserve(rows);
        self.values.clear();
        self.values.resize(METRIC_COUNT * rows, f32::NAN);
    }

    /// Number of rows filled.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends a row with every metric missing (NaN) and returns its
    /// index. Panics in debug builds if the declared capacity is full.
    pub fn push_row(&mut self, node: NodeId, t_sample: f64) -> usize {
        debug_assert!(self.len < self.stride, "FrameBatch capacity exhausted");
        let row = self.len;
        self.len += 1;
        self.nodes.push(node);
        self.t_sample.push(t_sample);
        row
    }

    /// Sets one metric of one row (mirrors [`NodeFrame::set`]).
    #[inline]
    pub fn set(&mut self, row: usize, metric: MetricId, value: f64) {
        self.values[metric.index() * self.stride + row] = crate::records::frame_value(value);
    }

    /// Value of one metric of one row as f64 (NaN if missing).
    #[inline]
    pub fn get(&self, row: usize, metric: MetricId) -> f64 {
        f64::from(self.values[metric.index() * self.stride + row])
    }

    /// The node of a row.
    #[inline]
    pub fn node(&self, row: usize) -> NodeId {
        self.nodes[row]
    }

    /// The sample timestamp of a row.
    #[inline]
    pub fn t_sample(&self, row: usize) -> f64 {
        self.t_sample[row]
    }

    /// One metric's column over the filled rows — contiguous, unit
    /// stride, ready for a vectorized per-column sweep.
    pub fn column(&self, metric: MetricId) -> &[f32] {
        let at = metric.index() * self.stride;
        &self.values[at..at + self.len]
    }

    /// Materializes one row as the exact [`NodeFrame`] the row path
    /// would have produced: same node, timestamps and bit-identical
    /// values (`t_ingest` starts at `t_sample`, as in
    /// [`NodeFrame::empty`]; the delivery layer stamps it later).
    pub fn read_frame(&self, row: usize) -> NodeFrame {
        let mut f = NodeFrame::empty(self.nodes[row], self.t_sample[row]);
        for (m, v) in f.values.iter_mut().enumerate() {
            *v = self.values[m * self.stride + row];
        }
        f
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::catalog;
    use crate::ids::{GpuSlot, Socket};

    #[test]
    fn round_trips_rows_bitwise() {
        let mut batch = FrameBatch::with_capacity(3);
        let mut reference = Vec::new();
        for i in 0..3u32 {
            let row = batch.push_row(NodeId(i), i as f64 * 0.5);
            let mut f = NodeFrame::empty(NodeId(i), i as f64 * 0.5);
            for (m, v) in [
                (catalog::input_power(), 600.0 + i as f64),
                (catalog::cpu_power(Socket::P1), 190.0),
                (catalog::gpu_core_temp(GpuSlot(4)), 33.25),
            ] {
                batch.set(row, m, v);
                f.set(m, v);
            }
            reference.push(f);
        }
        for (row, f) in reference.iter().enumerate() {
            let got = batch.read_frame(row);
            assert_eq!(got.node, f.node);
            assert_eq!(got.t_sample.to_bits(), f.t_sample.to_bits());
            assert_eq!(got.t_ingest.to_bits(), f.t_ingest.to_bits());
            for (a, b) in got.values.iter().zip(&f.values) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn columns_are_contiguous_per_metric() {
        let mut batch = FrameBatch::with_capacity(4);
        for i in 0..4u32 {
            let row = batch.push_row(NodeId(i), 0.0);
            batch.set(row, catalog::input_power(), 100.0 * (i + 1) as f64);
        }
        assert_eq!(
            batch.column(catalog::input_power()),
            &[100.0, 200.0, 300.0, 400.0]
        );
        // Untouched metrics are NaN across the column.
        assert!(batch
            .column(catalog::gpu_power(GpuSlot(0)))
            .iter()
            .all(|v| v.is_nan()));
    }

    #[test]
    fn reset_reuses_the_allocation() {
        let mut batch = FrameBatch::with_capacity(8);
        for i in 0..8u32 {
            batch.push_row(NodeId(i), 1.0);
        }
        let ptr = batch.values.as_ptr();
        let cap = batch.values.capacity();
        batch.reset(8);
        assert_eq!(batch.len(), 0);
        assert_eq!(batch.values.as_ptr(), ptr, "reset must not reallocate");
        assert_eq!(batch.values.capacity(), cap);
        // A partial fill exposes only the filled prefix per column.
        let row = batch.push_row(NodeId(0), 2.0);
        batch.set(row, catalog::input_power(), 7.0);
        assert_eq!(batch.column(catalog::input_power()), &[7.0]);
    }
}
