//! The per-node metric catalog.
//!
//! Summit's OpenBMC stream carries "over 100 metrics at 1Hz frequency"
//! per node covering per-component power and temperature (paper abstract,
//! Table 2-(a)). This module defines a dense catalog of 106 metrics per
//! node with the same structure as the paper's Dataset 0 key columns
//! (`input_power`, `p[0,1]_power`, `p[0,1]_gpu[0,1,2]_power`,
//! `gpu[0..5]_[core,mem]_temp`, ...), plus the long tail of DIMM, fan,
//! VRM and per-core sensors that make up the real payload volume.

use crate::ids::{GpuSlot, Socket};
use serde::{Deserialize, Serialize};

/// Number of CPU cores per Power9 socket (22C parts on Summit).
pub const CORES_PER_SOCKET: usize = 22;
/// DIMMs per node (16 x 32 GB = 512 GB DDR4).
pub const DIMMS_PER_NODE: usize = 16;
/// Chassis fans per node.
pub const FANS_PER_NODE: usize = 4;
/// Total metrics per node in the catalog.
pub const METRIC_COUNT: usize = 106;

/// Physical quantity a metric reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Unit {
    /// Watts.
    Watts,
    /// Degrees Celsius.
    Celsius,
    /// Revolutions per minute.
    Rpm,
}

/// Dense per-node metric identifier (0..[`METRIC_COUNT`]).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct MetricId(pub u16);

impl MetricId {
    /// Dense index for columnar storage.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Offsets a layout base by a bounded element index. Every caller
/// asserts or type-bounds `idx`, so the checked conversion never
/// saturates in practice; it exists so no bare narrowing cast can
/// silently wrap if a bound and an offset ever drift apart
/// (`lossy-cast` lint).
fn at(base: u16, idx: usize) -> MetricId {
    MetricId(base.saturating_add(u16::try_from(idx).unwrap_or(u16::MAX)))
}

// --- Dense layout offsets -------------------------------------------------
const OFF_INPUT_POWER: u16 = 0;
const OFF_PS_INPUT_POWER: u16 = 1; // +2
const OFF_CPU_POWER: u16 = 3; // +2
const OFF_GPU_POWER: u16 = 5; // +6
const OFF_GPU_CORE_TEMP: u16 = 11; // +6
const OFF_GPU_MEM_TEMP: u16 = 17; // +6
const OFF_CPU_PKG_TEMP: u16 = 23; // +2
const OFF_CPU_CORE_TEMP: u16 = 25; // +44
const OFF_DIMM_TEMP: u16 = 69; // +16
const OFF_FAN_SPEED: u16 = 85; // +4
const OFF_FAN_POWER: u16 = 89; // +1
const OFF_MEM_POWER: u16 = 90; // +2
const OFF_NVME_TEMP: u16 = 92; // +1
const OFF_NVME_POWER: u16 = 93; // +1
const OFF_HCA_TEMP: u16 = 94; // +1
const OFF_BOARD_TEMP: u16 = 95; // +2 (inlet, outlet)
const OFF_CPU_VRM_TEMP: u16 = 97; // +2
const OFF_GPU_VRM_TEMP: u16 = 99; // +6
const OFF_IO_POWER: u16 = 105; // +1

/// Node AC input power (sum of both power supplies), watts.
pub fn input_power() -> MetricId {
    MetricId(OFF_INPUT_POWER)
}

/// Input power of power supply `ps` (0 or 1), watts.
pub fn ps_input_power(ps: usize) -> MetricId {
    assert!(ps < 2, "power supply index must be 0 or 1");
    at(OFF_PS_INPUT_POWER, ps)
}

/// Package power of a CPU socket, watts.
pub fn cpu_power(socket: Socket) -> MetricId {
    at(OFF_CPU_POWER, socket.index())
}

/// Power of the GPU in `slot`, watts.
pub fn gpu_power(slot: GpuSlot) -> MetricId {
    at(OFF_GPU_POWER, slot.index())
}

/// Core temperature of the GPU in `slot`, Celsius.
pub fn gpu_core_temp(slot: GpuSlot) -> MetricId {
    at(OFF_GPU_CORE_TEMP, slot.index())
}

/// HBM2 memory temperature of the GPU in `slot`, Celsius.
pub fn gpu_mem_temp(slot: GpuSlot) -> MetricId {
    at(OFF_GPU_MEM_TEMP, slot.index())
}

/// Package temperature of a CPU socket, Celsius.
pub fn cpu_pkg_temp(socket: Socket) -> MetricId {
    at(OFF_CPU_PKG_TEMP, socket.index())
}

/// Temperature of core `core` (0..22) on `socket`, Celsius.
pub fn cpu_core_temp(socket: Socket, core: usize) -> MetricId {
    assert!(core < CORES_PER_SOCKET, "core index out of range: {core}");
    at(OFF_CPU_CORE_TEMP, socket.index() * CORES_PER_SOCKET + core)
}

/// Temperature of DIMM `dimm` (0..16), Celsius.
pub fn dimm_temp(dimm: usize) -> MetricId {
    assert!(dimm < DIMMS_PER_NODE, "dimm index out of range: {dimm}");
    at(OFF_DIMM_TEMP, dimm)
}

/// Speed of chassis fan `fan` (0..4), RPM.
pub fn fan_speed(fan: usize) -> MetricId {
    assert!(fan < FANS_PER_NODE, "fan index out of range: {fan}");
    at(OFF_FAN_SPEED, fan)
}

/// Aggregate fan power, watts.
pub fn fan_power() -> MetricId {
    MetricId(OFF_FAN_POWER)
}

/// DDR4 memory power for a socket's DIMM group, watts.
pub fn mem_power(socket: Socket) -> MetricId {
    at(OFF_MEM_POWER, socket.index())
}

/// NVMe burst-buffer temperature, Celsius.
pub fn nvme_temp() -> MetricId {
    MetricId(OFF_NVME_TEMP)
}

/// NVMe burst-buffer power, watts.
pub fn nvme_power() -> MetricId {
    MetricId(OFF_NVME_POWER)
}

/// InfiniBand HCA temperature, Celsius.
pub fn hca_temp() -> MetricId {
    MetricId(OFF_HCA_TEMP)
}

/// Board air temperature: `0` = inlet, `1` = outlet, Celsius.
pub fn board_temp(position: usize) -> MetricId {
    assert!(
        position < 2,
        "board temp position must be 0 (inlet) or 1 (outlet)"
    );
    at(OFF_BOARD_TEMP, position)
}

/// CPU voltage-regulator temperature for a socket, Celsius.
pub fn cpu_vrm_temp(socket: Socket) -> MetricId {
    at(OFF_CPU_VRM_TEMP, socket.index())
}

/// GPU voltage-regulator temperature for a slot, Celsius.
pub fn gpu_vrm_temp(slot: GpuSlot) -> MetricId {
    at(OFF_GPU_VRM_TEMP, slot.index())
}

/// I/O subsystem power (HCA + NVMe + planar), watts.
pub fn io_power() -> MetricId {
    MetricId(OFF_IO_POWER)
}

/// Descriptor of one catalog metric.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MetricDef {
    /// Dense id.
    pub id: MetricId,
    /// Column-style name (e.g. `p0_gpu1_power`).
    pub name: String,
    /// Physical unit.
    pub unit: Unit,
}

/// Builds the full ordered catalog of all [`METRIC_COUNT`] metrics.
pub fn full_catalog() -> Vec<MetricDef> {
    let mut defs: Vec<MetricDef> = Vec::with_capacity(METRIC_COUNT);
    let mut push = |id: MetricId, name: String, unit: Unit| {
        defs.push(MetricDef { id, name, unit });
    };

    push(input_power(), "input_power".into(), Unit::Watts);
    for ps in 0..2 {
        push(
            ps_input_power(ps),
            format!("ps{ps}_input_power"),
            Unit::Watts,
        );
    }
    for s in Socket::ALL {
        push(cpu_power(s), format!("p{}_power", s.index()), Unit::Watts);
    }
    for g in GpuSlot::ALL {
        let socket = g.socket().index();
        let local = g.loop_position();
        push(
            gpu_power(g),
            format!("p{socket}_gpu{local}_power"),
            Unit::Watts,
        );
    }
    for g in GpuSlot::ALL {
        push(
            gpu_core_temp(g),
            format!("gpu{}_core_temp", g.index()),
            Unit::Celsius,
        );
    }
    for g in GpuSlot::ALL {
        push(
            gpu_mem_temp(g),
            format!("gpu{}_mem_temp", g.index()),
            Unit::Celsius,
        );
    }
    for s in Socket::ALL {
        push(
            cpu_pkg_temp(s),
            format!("p{}_temp", s.index()),
            Unit::Celsius,
        );
    }
    for s in Socket::ALL {
        for c in 0..CORES_PER_SOCKET {
            push(
                cpu_core_temp(s, c),
                format!("p{}_core{c}_temp", s.index()),
                Unit::Celsius,
            );
        }
    }
    for d in 0..DIMMS_PER_NODE {
        push(dimm_temp(d), format!("dimm{d}_temp"), Unit::Celsius);
    }
    for f in 0..FANS_PER_NODE {
        push(fan_speed(f), format!("fan{f}_speed"), Unit::Rpm);
    }
    push(fan_power(), "fan_power".into(), Unit::Watts);
    for s in Socket::ALL {
        push(
            mem_power(s),
            format!("p{}_mem_power", s.index()),
            Unit::Watts,
        );
    }
    push(nvme_temp(), "nvme_temp".into(), Unit::Celsius);
    push(nvme_power(), "nvme_power".into(), Unit::Watts);
    push(hca_temp(), "hca_temp".into(), Unit::Celsius);
    push(board_temp(0), "board_inlet_temp".into(), Unit::Celsius);
    push(board_temp(1), "board_outlet_temp".into(), Unit::Celsius);
    for s in Socket::ALL {
        push(
            cpu_vrm_temp(s),
            format!("p{}_vrm_temp", s.index()),
            Unit::Celsius,
        );
    }
    for g in GpuSlot::ALL {
        push(
            gpu_vrm_temp(g),
            format!("gpu{}_vrm_temp", g.index()),
            Unit::Celsius,
        );
    }
    push(io_power(), "io_power".into(), Unit::Watts);

    defs
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn catalog_has_over_100_metrics() {
        let cat = full_catalog();
        assert_eq!(cat.len(), METRIC_COUNT);
        assert!(cat.len() > 100, "paper: over 100 metrics per node");
    }

    #[test]
    fn catalog_ids_are_dense_and_ordered() {
        let cat = full_catalog();
        for (i, def) in cat.iter().enumerate() {
            assert_eq!(def.id.index(), i, "metric {} out of order", def.name);
        }
    }

    #[test]
    fn catalog_names_unique() {
        let cat = full_catalog();
        let mut names: Vec<&str> = cat.iter().map(|d| d.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), METRIC_COUNT);
    }

    #[test]
    fn accessors_agree_with_catalog_names() {
        let cat = full_catalog();
        assert_eq!(cat[input_power().index()].name, "input_power");
        assert_eq!(
            cat[gpu_power(GpuSlot(4)).index()].name,
            "p1_gpu1_power",
            "slot 4 is the second GPU on socket 1"
        );
        assert_eq!(
            cat[gpu_core_temp(GpuSlot(5)).index()].name,
            "gpu5_core_temp"
        );
        assert_eq!(cat[cpu_power(Socket::P1).index()].name, "p1_power");
        assert_eq!(dimm_temp(15).index() - dimm_temp(0).index(), 15);
        assert_eq!(cat[io_power().index()].name, "io_power");
        assert_eq!(io_power().index(), METRIC_COUNT - 1);
    }

    #[test]
    fn units_are_sensible() {
        let cat = full_catalog();
        assert_eq!(cat[input_power().index()].unit, Unit::Watts);
        assert_eq!(cat[gpu_core_temp(GpuSlot(0)).index()].unit, Unit::Celsius);
        assert_eq!(cat[fan_speed(0).index()].unit, Unit::Rpm);
    }

    #[test]
    #[should_panic(expected = "core index out of range")]
    fn core_temp_bounds_checked() {
        cpu_core_temp(Socket::P0, 22);
    }
}
