//! # summit-telemetry
//!
//! The out-of-band telemetry pipeline of the SC '21 Summit power study,
//! rebuilt as a library: per-node metric catalog (106 metrics, mirroring
//! the paper's "over 100 metrics at 1 Hz"), 1 Hz frame records with the
//! 2.5 s-average propagation-delay model, a thread-free deterministic
//! fan-in collector, lossless delta/varint/RLE compression of the archived
//! stream, the 10-second `count/min/max/mean/std` window coarsening, and
//! the cluster-level and job-aware aggregations that produce the paper's
//! derived Datasets 0-7.
//!
//! Data flows exactly as in the paper's Figure 3:
//!
//! ```text
//! node models (summit-sim) --1 Hz frames--> [stream::Collector]
//!     --> [store::TelemetryStore] (lossless archive, codec)
//!     --> [window::WindowAggregator] (10 s coarsening)
//!     --> [cluster] / [jobjoin] collapses --> analysis datasets
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod batch;
pub mod catalog;
pub mod cluster;
pub mod codec;
pub mod convert;
pub mod datasets;
pub mod delivery;
pub mod export;
pub mod ids;
pub mod ingest;
pub mod jobjoin;
pub mod records;
pub mod store;
pub mod stream;
pub mod window;

/// Convenient re-exports of the most-used types.
pub mod prelude {
    pub use crate::batch::FrameBatch;
    pub use crate::catalog::{self, MetricDef, MetricId, Unit, METRIC_COUNT};
    pub use crate::cluster::{cluster_component_power, cluster_power, cluster_power_series};
    pub use crate::codec::{ColumnBlock, CompressionStats};
    pub use crate::datasets::{thermal_cluster, thermal_per_job, ThermalRow};
    pub use crate::delivery::NodeDelivery;
    pub use crate::ids::{AllocationId, CabinetId, GpuId, GpuSlot, Msb, NodeId, Socket};
    pub use crate::ingest::{IngestError, IngestHealth, IngestPolicy};
    pub use crate::jobjoin::{job_level_power, job_power_series, join_jobs, AllocationIndex};
    pub use crate::records::{
        CepRecord, JobRecord, NodeAllocation, NodeFrame, ScienceDomain, XidErrorKind, XidEvent,
    };
    pub use crate::store::TelemetryStore;
    pub use crate::stream::{
        Collector, FaultConfig, FaultInjector, FrameFate, FrameSender, IngestStats, InjectedFaults,
    };
    pub use crate::window::{
        CoarsenLayout, NodeWindow, StreamingCoarsener, WindowAggregator, PAPER_WINDOW_S,
    };
}
