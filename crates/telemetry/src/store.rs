//! In-memory columnar telemetry store.
//!
//! The paper archives the 1 Hz stream losslessly ("we have decided to
//! store the high-frequency datasets in their original form") and serves
//! coarsened views for analysis. This store mirrors that split: raw
//! frames are archived as compressed column blocks per (node, partition),
//! while coarsened windows are kept queryable by time range. Writers and
//! readers synchronize through `parking_lot` locks.

use crate::catalog::{full_catalog, MetricDef, METRIC_COUNT};
use crate::codec::{quant, ColumnBlock, CompressionStats};
use crate::ids::NodeId;
use crate::records::NodeFrame;
use crate::window::NodeWindow;
use parking_lot::RwLock;
use std::collections::BTreeMap;

/// Length of one archive partition in seconds (the artifact appendix
/// partitions daily files by the minute; we default to one minute).
pub const PARTITION_S: f64 = 60.0;

/// A compressed archive partition for one node.
#[derive(Debug, Clone)]
pub struct ArchivedPartition {
    /// Compute node identifier.
    pub node: NodeId,
    /// Partition start time (multiple of [`PARTITION_S`]).
    pub partition_start: f64,
    /// Sample timestamps offsets (seconds, delta from partition start)
    /// stored as the first column; metric columns follow in catalog order.
    pub encoded: bytes::Bytes,
    /// Frames contained.
    pub frames: usize,
}

/// The telemetry store.
pub struct TelemetryStore {
    catalog: Vec<MetricDef>,
    raw: RwLock<BTreeMap<(u32, i64), ArchivedPartition>>,
    windows: RwLock<BTreeMap<(i64, u32), NodeWindow>>,
    compression: RwLock<CompressionStats>,
}

impl Default for TelemetryStore {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self {
            catalog: full_catalog(),
            raw: RwLock::new(BTreeMap::new()),
            windows: RwLock::new(BTreeMap::new()),
            compression: RwLock::new(CompressionStats::default()),
        }
    }

    /// The metric catalog this store indexes by.
    pub fn catalog(&self) -> &[MetricDef] {
        &self.catalog
    }

    /// Archives a batch of frames from one node. Frames may arrive in
    /// any order and span multiple partitions: they are sorted and split
    /// on [`PARTITION_S`] boundaries internally. Frames for other nodes
    /// or with non-finite timestamps are skipped (the fault-tolerant
    /// ingest path counts them upstream). Re-archiving a partition
    /// replaces it.
    pub fn archive_partition(&self, node: NodeId, frames: &[NodeFrame]) {
        let mut mine: Vec<&NodeFrame> = frames
            .iter()
            .filter(|f| f.node == node && f.t_sample.is_finite())
            .collect();
        mine.sort_by(|a, b| a.t_sample.total_cmp(&b.t_sample));
        let mut rest = mine.as_slice();
        while let Some(first) = rest.first() {
            let pstart = (first.t_sample / PARTITION_S).floor() * PARTITION_S;
            let n = rest.partition_point(|f| f.t_sample < pstart + PARTITION_S);
            let (part, tail) = rest.split_at(n);
            self.archive_one_partition(node, pstart, part);
            rest = tail;
        }
    }

    /// Encodes one sorted, single-partition slice of frames.
    fn archive_one_partition(&self, node: NodeId, pstart: f64, frames: &[&NodeFrame]) {
        // Column 0: integer sample offsets in milliseconds.
        let mut columns: Vec<Vec<i64>> = Vec::with_capacity(METRIC_COUNT + 1);
        columns.push(
            frames
                .iter()
                .map(|f| ((f.t_sample - pstart) * 1000.0).round() as i64)
                .collect(),
        );
        for (m, def) in self.catalog.iter().enumerate() {
            let unit = def.unit;
            columns.push(
                frames
                    .iter()
                    .map(|f| quant::to_fixed(unit, f.values[m] as f64))
                    .collect(),
            );
        }
        let block = ColumnBlock { columns };
        let encoded = block.encode();
        self.compression.write().record(&block, encoded.len());
        self.raw.write().insert(
            (node.0, pstart.round() as i64),
            ArchivedPartition {
                node,
                partition_start: pstart,
                encoded,
                frames: frames.len(),
            },
        );
    }

    /// Restores the frames of one archived partition (exact roundtrip of
    /// the quantized readings). `None` if the partition is absent or the
    /// archive is corrupt.
    pub fn load_partition(&self, node: NodeId, partition_start: f64) -> Option<Vec<NodeFrame>> {
        let key = (node.0, partition_start.round() as i64);
        let encoded = {
            let raw = self.raw.read();
            raw.get(&key)?.encoded.clone()
        };
        let block = ColumnBlock::decode(encoded)?;
        if block.columns.len() != METRIC_COUNT + 1 {
            return None;
        }
        let times = &block.columns[0];
        let mut frames = Vec::with_capacity(times.len());
        for (i, &t_ms) in times.iter().enumerate() {
            let mut f = NodeFrame::empty(node, partition_start + t_ms as f64 / 1000.0);
            for m in 0..METRIC_COUNT {
                let unit = self.catalog[m].unit;
                f.values[m] = quant::from_fixed(unit, block.columns[m + 1][i]) as f32;
            }
            frames.push(f);
        }
        Some(frames)
    }

    /// Inserts coarsened windows.
    pub fn insert_windows(&self, windows: Vec<NodeWindow>) {
        let mut map = self.windows.write();
        for w in windows {
            map.insert((w.window_start.round() as i64, w.node.0), w);
        }
    }

    /// Queries coarsened windows with `t_start <= window_start < t_end`,
    /// in (time, node) order.
    pub fn query_windows(&self, t_start: f64, t_end: f64) -> Vec<NodeWindow> {
        let map = self.windows.read();
        map.range((t_start.round() as i64, 0)..(t_end.round() as i64, 0))
            .map(|(_, w)| w.clone())
            .collect()
    }

    /// Current compression accounting.
    pub fn compression_stats(&self) -> CompressionStats {
        *self.compression.read()
    }

    /// Total archived raw partitions.
    pub fn partition_count(&self) -> usize {
        self.raw.read().len()
    }

    /// Total coarsened windows held.
    pub fn window_count(&self) -> usize {
        self.windows.read().len()
    }

    /// Total encoded archive bytes.
    pub fn archive_bytes(&self) -> u64 {
        self.raw
            .read()
            .values()
            .map(|p| p.encoded.len() as u64)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::catalog;
    use crate::window::WindowAggregator;

    fn make_frames(node: u32, t0: f64, n: usize) -> Vec<NodeFrame> {
        (0..n)
            .map(|i| {
                let mut f = NodeFrame::empty(NodeId(node), t0 + i as f64);
                f.set(catalog::input_power(), 600.0 + (i % 5) as f64 * 10.0);
                f.set(
                    catalog::gpu_core_temp(crate::ids::GpuSlot(0)),
                    35.5 + (i % 3) as f64 * 0.1,
                );
                f
            })
            .collect()
    }

    #[test]
    fn archive_roundtrip_is_lossless() {
        let store = TelemetryStore::new();
        let frames = make_frames(3, 120.0, 60);
        store.archive_partition(NodeId(3), &frames);
        let restored = store.load_partition(NodeId(3), 120.0).unwrap();
        assert_eq!(restored.len(), 60);
        for (orig, rest) in frames.iter().zip(&restored) {
            assert_eq!(orig.t_sample, rest.t_sample);
            let p_orig = orig.get(catalog::input_power());
            let p_rest = rest.get(catalog::input_power());
            assert!((p_orig - p_rest).abs() < 1e-6);
            // Temperatures are quantized to 0.1 degC — exact at that grid.
            let t_orig = orig.get(catalog::gpu_core_temp(crate::ids::GpuSlot(0)));
            let t_rest = rest.get(catalog::gpu_core_temp(crate::ids::GpuSlot(0)));
            assert!((t_orig - t_rest).abs() < 0.05 + 1e-9);
            // Missing metrics stay missing.
            assert!(rest.get(catalog::nvme_temp()).is_nan());
        }
    }

    #[test]
    fn missing_partition_is_none() {
        let store = TelemetryStore::new();
        assert!(store.load_partition(NodeId(0), 0.0).is_none());
    }

    #[test]
    fn compression_beats_raw_on_stable_sensors() {
        let store = TelemetryStore::new();
        // Near-constant sensors: compression must be dramatic.
        let frames = make_frames(0, 0.0, 60);
        store.archive_partition(NodeId(0), &frames);
        let stats = store.compression_stats();
        assert!(
            stats.ratio() > 20.0,
            "expected >20x on stable sensors, got {:.1}x",
            stats.ratio()
        );
        assert!(store.archive_bytes() > 0);
    }

    #[test]
    fn archive_splits_sorts_and_filters() {
        let store = TelemetryStore::new();
        // Two partitions' worth, shuffled, plus a stray wrong-node frame
        // and a NaN timestamp: the store sorts, splits, and skips.
        let mut frames = make_frames(2, 0.0, 120);
        frames.reverse();
        frames.push(NodeFrame::empty(NodeId(9), 30.0));
        frames.push(NodeFrame::empty(NodeId(2), f64::NAN));
        store.archive_partition(NodeId(2), &frames);
        assert_eq!(store.partition_count(), 2);
        let p0 = store.load_partition(NodeId(2), 0.0).unwrap();
        let p1 = store.load_partition(NodeId(2), 60.0).unwrap();
        assert_eq!(p0.len(), 60);
        assert_eq!(p1.len(), 60);
        assert!(p0.windows(2).all(|w| w[0].t_sample < w[1].t_sample));
        assert!(store.load_partition(NodeId(9), 0.0).is_none());
    }

    #[test]
    fn window_insert_and_range_query() {
        let store = TelemetryStore::new();
        let mut agg = WindowAggregator::paper(NodeId(1));
        for f in make_frames(1, 0.0, 30) {
            agg.push(&f).unwrap();
        }
        store.insert_windows(agg.finish());
        assert_eq!(store.window_count(), 3);
        let q = store.query_windows(0.0, 20.0);
        assert_eq!(q.len(), 2);
        assert_eq!(q[0].window_start, 0.0);
        assert_eq!(q[1].window_start, 10.0);
    }

    #[test]
    fn concurrent_archive_and_query() {
        let store = std::sync::Arc::new(TelemetryStore::new());
        std::thread::scope(|scope| {
            for n in 0..8u32 {
                let store = std::sync::Arc::clone(&store);
                scope.spawn(move || {
                    let frames = make_frames(n, 60.0 * n as f64, 60);
                    store.archive_partition(NodeId(n), &frames);
                });
            }
        });
        assert_eq!(store.partition_count(), 8);
        for n in 0..8u32 {
            assert!(store.load_partition(NodeId(n), 60.0 * n as f64).is_some());
        }
    }
}
