//! Strongly-typed identifiers for nodes, cabinets, components and metrics.
//!
//! Summit addresses hardware hierarchically: 257 water-cooled cabinets of
//! 18 nodes each (4,626 nodes), every node carrying two Power9 sockets and
//! six V100 GPUs (three per socket). The failure and thermal analyses of
//! the paper (Figures 16, 17) depend on this addressing, so it is encoded
//! in newtypes rather than bare integers.

use serde::{Deserialize, Serialize};

/// Index of a compute node within the cluster (0-based, dense).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The dense index as usize for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Summit hostnames look like a01n03 etc.; we keep a flat rendering.
        write!(f, "node{:04}", self.0)
    }
}

/// Index of a cabinet (rack) on the compute floor.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct CabinetId(pub u16);

impl CabinetId {
    /// The dense index as usize.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One of the main switchboards (MSB A-E) feeding the compute floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Msb {
    /// Switchboard A.
    A,
    /// Switchboard B.
    B,
    /// Switchboard C.
    C,
    /// Switchboard D.
    D,
    /// Switchboard E.
    E,
}

impl Msb {
    /// All five switchboards in order.
    pub const ALL: [Msb; 5] = [Msb::A, Msb::B, Msb::C, Msb::D, Msb::E];

    /// Dense index 0..5.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Msb::A => 0,
            Msb::B => 1,
            Msb::C => 2,
            Msb::D => 3,
            Msb::E => 4,
        }
    }

    /// Letter name.
    pub fn name(self) -> &'static str {
        match self {
            Msb::A => "MSB A",
            Msb::B => "MSB B",
            Msb::C => "MSB C",
            Msb::D => "MSB D",
            Msb::E => "MSB E",
        }
    }
}

/// CPU socket within a node (AC922 has two Power9 sockets).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Socket {
    /// First Power9 socket.
    P0,
    /// Second Power9 socket.
    P1,
}

impl Socket {
    /// Both sockets in order.
    pub const ALL: [Socket; 2] = [Socket::P0, Socket::P1];

    /// Dense index 0..2.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Socket::P0 => 0,
            Socket::P1 => 1,
        }
    }
}

/// GPU slot within a node (0..6). Slots 0-2 share the CPU0 water loop,
/// slots 3-5 the CPU1 loop; within a loop, cooling water flows through the
/// cold plates serially in slot order (Figure 1-(a) of the paper).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct GpuSlot(pub u8);

impl GpuSlot {
    /// All six slots.
    pub const ALL: [GpuSlot; 6] = [
        GpuSlot(0),
        GpuSlot(1),
        GpuSlot(2),
        GpuSlot(3),
        GpuSlot(4),
        GpuSlot(5),
    ];

    /// Creates a slot, panicking outside 0..6.
    pub fn new(slot: u8) -> Self {
        assert!(slot < 6, "GPU slot must be 0..6, got {slot}");
        GpuSlot(slot)
    }

    /// Dense index 0..6.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The socket whose water loop cools this GPU.
    pub fn socket(self) -> Socket {
        if self.0 < 3 {
            Socket::P0
        } else {
            Socket::P1
        }
    }

    /// Position along the serial water loop (0 = first / coldest water,
    /// 2 = last / warmest water).
    pub fn loop_position(self) -> u8 {
        self.0 % 3
    }
}

/// A job allocation identifier from the scheduler.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AllocationId(pub u64);

impl std::fmt::Display for AllocationId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "alloc{}", self.0)
    }
}

/// GPU identity across the whole machine: node + slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GpuId {
    /// Compute node identifier.
    pub node: NodeId,
    /// GPU slot within the node (0..6).
    pub slot: GpuSlot,
}

impl GpuId {
    /// Dense index across the cluster (node*6 + slot).
    pub fn index(self) -> usize {
        self.node.index() * 6 + self.slot.index()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;

    #[test]
    fn gpu_slot_water_loops() {
        assert_eq!(GpuSlot(0).socket(), Socket::P0);
        assert_eq!(GpuSlot(2).socket(), Socket::P0);
        assert_eq!(GpuSlot(3).socket(), Socket::P1);
        assert_eq!(GpuSlot(5).socket(), Socket::P1);
        assert_eq!(GpuSlot(0).loop_position(), 0);
        assert_eq!(GpuSlot(2).loop_position(), 2);
        assert_eq!(GpuSlot(4).loop_position(), 1);
    }

    #[test]
    #[should_panic(expected = "GPU slot must be 0..6")]
    fn gpu_slot_rejects_out_of_range() {
        GpuSlot::new(6);
    }

    #[test]
    fn gpu_id_dense_index() {
        let g = GpuId {
            node: NodeId(10),
            slot: GpuSlot(4),
        };
        assert_eq!(g.index(), 64);
    }

    #[test]
    fn msb_indexing() {
        for (i, m) in Msb::ALL.iter().enumerate() {
            assert_eq!(m.index(), i);
        }
        assert_eq!(Msb::C.name(), "MSB C");
    }

    #[test]
    fn display_formats() {
        assert_eq!(NodeId(7).to_string(), "node0007");
        assert_eq!(AllocationId(42).to_string(), "alloc42");
    }
}
