//! 10-second window coarsening (paper Section 3, Dataset 0).
//!
//! "We have coarsened the data to a 10-second window, but we have avoided
//! information loss by storing statistical information such as min., max.,
//! mean, and standard deviation values of the samples in each window per
//! time-series from each node."
//!
//! The coarsener is fault-tolerant by construction: the fan-in fabric it
//! sits behind delivers frames with up-to-5 s propagation delay, so
//! frames are buffered and re-ordered within a configurable lateness
//! horizon ([`IngestPolicy`]), duplicates are deduped, late or misrouted
//! frames are counted and dropped via a typed [`IngestError`] — never a
//! panic — and whole-window gaps emit the NaN-filled windows the cluster
//! aggregation already treats as missing.

use crate::catalog::METRIC_COUNT;
use crate::ids::NodeId;
use crate::ingest::{IngestError, IngestHealth, IngestPolicy};
use crate::records::NodeFrame;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use summit_analysis::stats::{Welford, WelfordColumns, WindowStats};

/// The paper's coarsening window in seconds.
pub const PAPER_WINDOW_S: f64 = 10.0;

/// One coarsened window for one node: the `count/min/max/mean/std`
/// quintuple for every catalog metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeWindow {
    /// Compute node identifier.
    pub node: NodeId,
    /// Window start (seconds since epoch, multiple of the window length).
    pub window_start: f64,
    /// Per-metric statistics in catalog order.
    pub stats: Vec<WindowStats>,
}

impl NodeWindow {
    /// Statistics for one metric.
    #[inline]
    pub fn metric(&self, id: crate::catalog::MetricId) -> &WindowStats {
        &self.stats[id.index()]
    }
}

/// Streaming coarsener for a single node's frame sequence, tolerant of
/// the delivery faults the stream layer models.
///
/// Frames may arrive out of `t_sample` order: anything within the
/// [`IngestPolicy::lateness_horizon_s`] of the newest accepted sample is
/// buffered and re-ordered before it reaches a window; frames beyond the
/// horizon are counted in [`IngestHealth::late_dropped`] and dropped;
/// exact-timestamp duplicates are deduped. A window only closes once the
/// watermark has moved a full horizon past its end, so every in-horizon
/// frame lands in its correct window. Whole-window gaps emit NaN-filled
/// windows (count 0) when [`IngestPolicy::emit_gap_windows`] is set.
///
/// ```
/// use summit_telemetry::{catalog, ids::NodeId, records::NodeFrame};
/// use summit_telemetry::window::WindowAggregator;
/// let mut agg = WindowAggregator::paper(NodeId(0));
/// for i in 0..20 {
///     let t = (i ^ 1) as f64; // adjacent frames swapped in flight
///     let mut frame = NodeFrame::empty(NodeId(0), t);
///     frame.set(catalog::input_power(), 600.0 + t);
///     assert!(agg.push(&frame).is_ok());
/// }
/// let (windows, health) = agg.finish_with_health();
/// assert_eq!(windows.len(), 2);
/// assert_eq!(windows[0].metric(catalog::input_power()).count, 10);
/// assert_eq!(health.accepted, 20);
/// assert_eq!(health.reordered, 10); // every swapped-back frame
/// ```
#[derive(Debug)]
pub struct WindowAggregator {
    node: NodeId,
    window_s: f64,
    policy: IngestPolicy,
    layout: CoarsenLayout,
    health: IngestHealth,
    /// Newest accepted sample timestamp.
    watermark: Option<f64>,
    /// Reorder buffer: sample time (ms grain) -> metric values. Holds at
    /// most one horizon plus one window of frames at 1 Hz.
    pending: PendingStore,
    current_start: Option<f64>,
    /// Start of the most recently closed window, for gap emission when
    /// the next frame opens a non-adjacent window.
    last_closed: Option<f64>,
    acc: Accum,
    out: Vec<NodeWindow>,
}

/// Memory layout of the coarsener's accumulation path.
///
/// Both layouts share every admission decision (lateness, dedup,
/// watermark, window and gap arithmetic) and produce bit-identical
/// statistics: every lane of the columnar bank replays the exact
/// per-sample update sequence of the row path's [`Welford::push`].
/// [`CoarsenLayout::Columns`] is the default hot path;
/// [`CoarsenLayout::Rows`] is the row-structured reference kept for the
/// bench AoS leg and the bit-identity tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoarsenLayout {
    /// Row-structured reference: one boxed value row per buffered frame
    /// and [`METRIC_COUNT`] branchy Welford pushes per accumulated
    /// frame (the pre-columnar layout).
    Rows,
    /// Columnar hot path: buffered rows live in a recycled slab arena
    /// and the open window accumulates in a structure-of-arrays
    /// [`WelfordColumns`] bank — one vectorizable pass across the
    /// metric lanes per frame — so steady-state ingest performs no
    /// heap allocation.
    #[default]
    Columns,
}

/// Reorder-buffer storage, chosen by [`CoarsenLayout`].
#[derive(Debug)]
enum PendingStore {
    /// One heap allocation per buffered frame (reference layout).
    Boxes(BTreeMap<i64, Box<[f32]>>),
    /// Slab arena: value rows live in one contiguous `Vec<f32>` and
    /// freed rows are recycled through a free list, so the buffer
    /// reaches a steady state with zero allocation per frame. The key
    /// order lives in a sorted ring: frames almost always arrive in
    /// time order, so insertion is an O(1) `push_back` (binary
    /// insertion for the rare out-of-order frame) and dedup lookup is
    /// a binary search over contiguous memory — far cheaper than
    /// B-tree node hops at reorder-buffer sizes.
    Slab {
        order: VecDeque<(i64, u32)>,
        slab: Vec<f32>,
        free: Vec<u32>,
    },
}

impl Default for PendingStore {
    /// An empty store — the placeholder left behind while
    /// [`WindowAggregator::flush_ready`] borrows the real one.
    fn default() -> Self {
        Self::Boxes(BTreeMap::new())
    }
}

impl PendingStore {
    fn for_layout(layout: CoarsenLayout) -> Self {
        match layout {
            CoarsenLayout::Rows => Self::Boxes(BTreeMap::new()),
            CoarsenLayout::Columns => Self::Slab {
                order: VecDeque::new(),
                slab: Vec::new(),
                free: Vec::new(),
            },
        }
    }

    fn contains_key(&self, key: i64) -> bool {
        match self {
            Self::Boxes(map) => map.contains_key(&key),
            Self::Slab { order, .. } => match order.back() {
                // In-order streams land past the newest buffered key,
                // so the common case never searches the ring.
                Some(&(back, _)) if key > back => false,
                Some(_) => order.binary_search_by_key(&key, |&(k, _)| k).is_ok(),
                None => false,
            },
        }
    }

    /// Inserts a new entry. The caller has already rejected duplicate
    /// keys via [`PendingStore::contains_key`].
    fn insert(&mut self, key: i64, values: &[f32; METRIC_COUNT]) {
        match self {
            Self::Boxes(map) => {
                map.insert(key, Box::from(&values[..]));
            }
            Self::Slab { order, slab, free } => {
                let row = match free.pop() {
                    Some(row) => {
                        let at = row as usize * METRIC_COUNT;
                        slab[at..at + METRIC_COUNT].copy_from_slice(values);
                        row
                    }
                    None => {
                        let row = crate::convert::count_u32((slab.len() / METRIC_COUNT) as u64);
                        slab.extend_from_slice(values);
                        row
                    }
                };
                match order.back() {
                    Some(&(back, _)) if back < key => order.push_back((key, row)),
                    _ => {
                        let pos = order.partition_point(|&(k, _)| k < key);
                        order.insert(pos, (key, row));
                    }
                }
            }
        }
    }

    /// Removes the oldest entry, copying its values into `row`.
    fn pop_first_into(&mut self, row: &mut [f32; METRIC_COUNT]) -> Option<i64> {
        match self {
            Self::Boxes(map) => {
                let (k, values) = map.pop_first()?;
                row.copy_from_slice(&values);
                Some(k)
            }
            Self::Slab { order, slab, free } => {
                let (k, idx) = order.pop_front()?;
                let at = idx as usize * METRIC_COUNT;
                row.copy_from_slice(&slab[at..at + METRIC_COUNT]);
                free.push(idx);
                Some(k)
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Self::Boxes(map) => map.len(),
            Self::Slab { order, .. } => order.len(),
        }
    }
}

/// Open-window accumulator, chosen by [`CoarsenLayout`].
#[derive(Debug)]
enum Accum {
    /// Per-metric Welford states updated on every accumulated frame.
    Rows(Vec<Welford>),
    /// Structure-of-arrays Welford bank: count/mean/m2/min/max live in
    /// parallel `f64` arrays and every frame updates all 106 lanes in
    /// one branch-free, vectorizable pass ([`WelfordColumns`]). Reset
    /// keeps the allocations, so a steady-state window touches no
    /// allocator at all.
    Columns(WelfordColumns),
}

impl Accum {
    fn for_layout(layout: CoarsenLayout) -> Self {
        match layout {
            CoarsenLayout::Rows => Self::Rows(vec![Welford::new(); METRIC_COUNT]),
            CoarsenLayout::Columns => Self::Columns(WelfordColumns::new(METRIC_COUNT)),
        }
    }
}

/// Sample timestamps are compared at millisecond grain for dedup and
/// ordering — far below the 1 Hz sample cadence.
fn time_key(t: f64) -> i64 {
    (t * 1000.0).round() as i64
}

impl WindowAggregator {
    /// Creates a coarsener with the given window length (seconds) and
    /// the default (paper) ingest policy. A non-finite or non-positive
    /// window length falls back to [`PAPER_WINDOW_S`].
    pub fn new(node: NodeId, window_s: f64) -> Self {
        Self::with_policy(node, window_s, IngestPolicy::default())
    }

    /// Creates a coarsener with an explicit ingest policy.
    pub fn with_policy(node: NodeId, window_s: f64, policy: IngestPolicy) -> Self {
        Self::with_layout(node, window_s, policy, CoarsenLayout::default())
    }

    /// Creates a coarsener with an explicit ingest policy and
    /// accumulation layout. The layout only changes memory layout and
    /// instruction scheduling, never results: both layouts are
    /// bit-identical on every input.
    pub fn with_layout(
        node: NodeId,
        window_s: f64,
        policy: IngestPolicy,
        layout: CoarsenLayout,
    ) -> Self {
        debug_assert!(
            window_s.is_finite() && window_s > 0.0,
            "window length must be positive"
        );
        let window_s = if window_s.is_finite() && window_s > 0.0 {
            window_s
        } else {
            PAPER_WINDOW_S
        };
        let mut policy = policy;
        if !(policy.lateness_horizon_s.is_finite() && policy.lateness_horizon_s >= 0.0) {
            policy.lateness_horizon_s = 0.0;
        }
        Self {
            node,
            window_s,
            policy,
            layout,
            health: IngestHealth::default(),
            watermark: None,
            pending: PendingStore::for_layout(layout),
            current_start: None,
            last_closed: None,
            acc: Accum::for_layout(layout),
            out: Vec::new(),
        }
    }

    /// Creates a coarsener with the paper's 10-second window.
    pub fn paper(node: NodeId) -> Self {
        Self::new(node, PAPER_WINDOW_S)
    }

    /// The node this aggregator coarsens.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The active ingest policy.
    pub fn policy(&self) -> &IngestPolicy {
        &self.policy
    }

    /// The accumulation layout this aggregator runs.
    pub fn layout(&self) -> CoarsenLayout {
        self.layout
    }

    /// Ingest-health counters accumulated so far.
    pub fn health(&self) -> IngestHealth {
        self.health
    }

    fn window_start_of(&self, t: f64) -> f64 {
        (t / self.window_s).floor() * self.window_s
    }

    fn flush_current(&mut self) {
        if let Some(start) = self.current_start.take() {
            let stats: Vec<WindowStats> = match &mut self.acc {
                Accum::Rows(acc) => {
                    let stats = acc.iter().map(Welford::finish).collect();
                    for a in acc.iter_mut() {
                        *a = Welford::new();
                    }
                    stats
                }
                Accum::Columns(bank) => {
                    // Each lane replayed the row path's per-frame
                    // pushes exactly, so the columnar freeze finishes
                    // to the same bits as per-lane Welford reads.
                    let mut stats = Vec::new();
                    bank.finish_reset_into(&mut stats);
                    stats
                }
            };
            self.out.push(NodeWindow {
                node: self.node,
                window_start: start,
                stats,
            });
            self.last_closed = Some(start);
        }
    }

    /// Emits NaN-filled windows covering `(closed, next)` exclusive on
    /// both ends, truncated to the policy's gap cap.
    fn emit_gap_windows(&mut self, closed: f64, next: f64) {
        let gaps = ((next - closed) / self.window_s).round() as i64 - 1;
        if gaps <= 0 {
            return;
        }
        let emit = (gaps as usize).min(self.policy.max_gap_windows);
        for k in 1..=emit as i64 {
            let stats: Vec<WindowStats> =
                (0..METRIC_COUNT).map(|_| Welford::new().finish()).collect();
            self.out.push(NodeWindow {
                node: self.node,
                window_start: closed + k as f64 * self.window_s,
                stats,
            });
        }
        self.health.gap_windows += emit as u64;
    }

    /// Folds one buffered frame (already in time order) into the
    /// current window, closing windows and emitting gaps on crossings.
    fn accumulate(&mut self, t: f64, values: &[f32]) {
        let ws = self.window_start_of(t);
        if let Some(cur) = self.current_start {
            if ws > cur {
                self.flush_current();
            }
        }
        if self.current_start.is_none() {
            if self.policy.emit_gap_windows {
                if let Some(last) = self.last_closed {
                    self.emit_gap_windows(last, ws);
                }
            }
            self.current_start = Some(ws);
        }
        match &mut self.acc {
            Accum::Rows(acc) => {
                for (a, &v) in acc.iter_mut().zip(values) {
                    a.push(v as f64); // Welford ignores NaN (missing sensors)
                }
            }
            // One vectorized pass over the 106 lanes; NaN handling is
            // branch-free (masked selects) inside the bank.
            Accum::Columns(bank) => bank.push_row(values),
        }
    }

    /// Moves every buffered frame whose window is complete — its end is
    /// a full lateness horizon behind the watermark — into the output,
    /// and closes the current window once the watermark passes its end.
    fn flush_ready(&mut self) {
        let Some(wm) = self.watermark else { return };
        let cutoff_start = self.window_start_of(wm - self.policy.lateness_horizon_s);
        let cutoff = time_key(cutoff_start);
        // Accumulate straight out of the reorder buffer: the store is
        // moved aside so its rows can be borrowed across the
        // `accumulate` call without a per-frame row copy. Nothing on
        // the accumulate path touches `self.pending`.
        let mut pending = std::mem::take(&mut self.pending);
        match &mut pending {
            PendingStore::Boxes(map) => {
                while map.first_key_value().is_some_and(|(&k, _)| k < cutoff) {
                    if let Some((k, values)) = map.pop_first() {
                        self.accumulate(k as f64 / 1000.0, &values);
                    }
                }
            }
            PendingStore::Slab { order, slab, free } => {
                while let Some(&(k, idx)) = order.front() {
                    if k >= cutoff {
                        break;
                    }
                    order.pop_front();
                    let at = idx as usize * METRIC_COUNT;
                    self.accumulate(k as f64 / 1000.0, &slab[at..at + METRIC_COUNT]);
                    free.push(idx);
                }
            }
        }
        self.pending = pending;
        if let Some(cur) = self.current_start {
            // No frame at or before the cutoff can arrive any more, so a
            // current window entirely behind it is complete.
            if cutoff_start > cur {
                self.flush_current();
            }
        }
    }

    /// Offers one frame to the coarsener. Faulty frames (wrong node,
    /// beyond the lateness horizon, duplicate, non-finite timestamp) are
    /// counted in [`WindowAggregator::health`] and reported as a typed
    /// [`IngestError`]; the aggregator never panics on input.
    pub fn push(&mut self, frame: &NodeFrame) -> Result<(), IngestError> {
        if frame.node != self.node {
            self.health.wrong_node += 1;
            return Err(IngestError::WrongNode {
                expected: self.node,
                got: frame.node,
            });
        }
        let t = frame.t_sample;
        if !t.is_finite() {
            self.health.invalid += 1;
            return Err(IngestError::NonFiniteTimestamp);
        }
        let wm = self.watermark.unwrap_or(t);
        if t < wm - self.policy.lateness_horizon_s {
            self.health.late_dropped += 1;
            return Err(IngestError::Late {
                t_sample: t,
                watermark: wm,
                horizon_s: self.policy.lateness_horizon_s,
            });
        }
        let key = time_key(t);
        if self.pending.contains_key(key) {
            self.health.duplicates += 1;
            return Err(IngestError::Duplicate { t_sample: t });
        }
        if t < wm {
            self.health.reordered += 1;
        }
        self.pending.insert(key, &frame.values);
        self.health.accepted += 1;
        self.watermark = Some(wm.max(t));
        self.flush_ready();
        Ok(())
    }

    fn drain_pending(&mut self) {
        let mut row = [0.0f32; METRIC_COUNT];
        while let Some(k) = self.pending.pop_first_into(&mut row) {
            self.accumulate(k as f64 / 1000.0, &row);
        }
    }

    /// Closes every remaining window (buffered frames included) and
    /// returns all coarsened windows.
    pub fn finish(mut self) -> Vec<NodeWindow> {
        self.drain_pending();
        self.flush_current();
        self.out
    }

    /// Like [`WindowAggregator::finish`], also returning the final
    /// ingest-health counters.
    pub fn finish_with_health(mut self) -> (Vec<NodeWindow>, IngestHealth) {
        self.drain_pending();
        self.flush_current();
        (self.out, self.health)
    }

    /// Drains completed windows without closing the current one
    /// (streaming consumption). A window completes once the watermark
    /// passes its end by the full lateness horizon.
    pub fn drain_completed(&mut self) -> Vec<NodeWindow> {
        std::mem::take(&mut self.out)
    }

    /// Number of frames currently resident in the reorder buffer. At a
    /// 1 Hz cadence this is bounded by one lateness horizon plus one
    /// window regardless of how long the stream runs — the quantity the
    /// streaming pipeline's bounded-memory assertion samples.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

/// Incremental multi-node coarsener for the streaming pipeline.
///
/// One [`WindowAggregator`] per node slot, created lazily from the
/// first frame routed to that slot. Frames are offered in delivery
/// order as they arrive; completed windows are drained continuously via
/// [`StreamingCoarsener::drain_completed`], so resident state stays
/// bounded by the reorder buffers (one lateness horizon plus one open
/// window per node) independent of run length. Because each node's
/// frames pass through the identical `WindowAggregator` admission logic
/// in the identical per-node order, the concatenation of every drained
/// window with the [`StreamingCoarsener::finish_with_health`] tail is
/// bit-identical to the batch [`coarsen_parallel_with_health`] over the
/// same per-node sequences.
#[derive(Debug)]
pub struct StreamingCoarsener {
    window_s: f64,
    policy: IngestPolicy,
    layout: CoarsenLayout,
    slots: Vec<Option<WindowAggregator>>,
}

impl StreamingCoarsener {
    /// Creates a coarsener with `slots` node slots (more are grown on
    /// demand) and the default ingest policy.
    pub fn new(slots: usize, window_s: f64) -> Self {
        Self::with_policy(slots, window_s, IngestPolicy::default())
    }

    /// Creates a coarsener with an explicit ingest policy.
    pub fn with_policy(slots: usize, window_s: f64, policy: IngestPolicy) -> Self {
        Self::with_layout(slots, window_s, policy, CoarsenLayout::default())
    }

    /// Creates a coarsener with an explicit ingest policy and
    /// per-slot accumulation layout.
    pub fn with_layout(
        slots: usize,
        window_s: f64,
        policy: IngestPolicy,
        layout: CoarsenLayout,
    ) -> Self {
        let mut v = Vec::new();
        v.resize_with(slots, || None);
        Self {
            window_s,
            policy,
            layout,
            slots: v,
        }
    }

    /// Offers one frame to the given node slot, lazily creating that
    /// slot's aggregator keyed to the frame's node id. Fault outcomes
    /// are typed [`IngestError`]s, counted in the slot's health.
    pub fn push(&mut self, slot: usize, frame: &NodeFrame) -> Result<(), IngestError> {
        if slot >= self.slots.len() {
            self.slots.resize_with(slot + 1, || None);
        }
        let agg = self.slots[slot].get_or_insert_with(|| {
            WindowAggregator::with_layout(frame.node, self.window_s, self.policy, self.layout)
        });
        agg.push(frame)
    }

    /// Drains every window completed since the last drain, in slot
    /// order (each window carries its node id for routing).
    pub fn drain_completed(&mut self) -> Vec<NodeWindow> {
        let mut out = Vec::new();
        for slot in self.slots.iter_mut().flatten() {
            out.append(&mut slot.drain_completed());
        }
        out
    }

    /// Frames currently resident in the reorder buffers across all
    /// nodes — the streaming pipeline's peak-memory metric.
    pub fn resident_frames(&self) -> usize {
        self.slots
            .iter()
            .flatten()
            .map(WindowAggregator::pending_len)
            .sum()
    }

    /// Merged ingest-health counters accumulated so far (live view).
    pub fn health(&self) -> IngestHealth {
        let mut health = IngestHealth::default();
        for slot in self.slots.iter().flatten() {
            health.merge(&slot.health());
        }
        health
    }

    /// Closes every remaining window and returns the per-slot tail
    /// windows (those not yet drained) plus the merged health, merging
    /// per-slot health in slot order exactly like the batch path.
    pub fn finish_with_health(self) -> (Vec<Vec<NodeWindow>>, IngestHealth) {
        let mut windows = Vec::with_capacity(self.slots.len());
        let mut health = IngestHealth::default();
        for slot in self.slots {
            match slot {
                Some(agg) => {
                    let (w, h) = agg.finish_with_health();
                    health.merge(&h);
                    windows.push(w);
                }
                None => windows.push(Vec::new()),
            }
        }
        (windows, health)
    }
}

/// Coarsens per-node frame batches in parallel: `frames_by_node[i]` is
/// one node's frame sequence (any delivery order the fault model allows).
/// Returns the coarsened windows per node (same outer order).
pub fn coarsen_parallel(frames_by_node: &[Vec<NodeFrame>], window_s: f64) -> Vec<Vec<NodeWindow>> {
    coarsen_parallel_with_health(frames_by_node, window_s).0
}

/// Like [`coarsen_parallel`], also returning the merged ingest-health
/// counters across all nodes.
pub fn coarsen_parallel_with_health(
    frames_by_node: &[Vec<NodeFrame>],
    window_s: f64,
) -> (Vec<Vec<NodeWindow>>, IngestHealth) {
    coarsen_parallel_layout(frames_by_node, window_s, CoarsenLayout::default())
}

/// Like [`coarsen_parallel_with_health`] with an explicit accumulation
/// layout — the bench AoS-vs-SoA leg and the bit-identity tests call
/// this with [`CoarsenLayout::Rows`] to compare the row-structured
/// reference against the columnar default.
pub fn coarsen_parallel_layout(
    frames_by_node: &[Vec<NodeFrame>],
    window_s: f64,
    layout: CoarsenLayout,
) -> (Vec<Vec<NodeWindow>>, IngestHealth) {
    let _obs = summit_obs::span("summit_telemetry_coarsen");
    // Fold each worker chunk into (windows, health) directly and merge
    // the per-chunk accumulators in chunk order: no barrier collect of
    // per-node pairs, and — since IngestHealth is integer counters —
    // a merge tree that is exactly the sequential one.
    let (windows, health): (Vec<Vec<NodeWindow>>, IngestHealth) = frames_by_node
        .par_iter()
        .map(|frames| {
            let Some(first) = frames.first() else {
                return (Vec::new(), IngestHealth::default());
            };
            let mut agg = WindowAggregator::with_layout(
                first.node,
                window_s,
                IngestPolicy::default(),
                layout,
            );
            for f in frames {
                let _ = agg.push(f); // faults are counted in health
            }
            agg.finish_with_health()
        })
        .fold(
            || (Vec::new(), IngestHealth::default()),
            |(mut windows, mut health), (w, h)| {
                health.merge(&h);
                windows.push(w);
                (windows, health)
            },
        )
        .reduce(
            || (Vec::new(), IngestHealth::default()),
            |(mut windows, mut health), (chunk_windows, chunk_health)| {
                health.merge(&chunk_health);
                windows.extend(chunk_windows);
                (windows, health)
            },
        );
    let emitted: usize = windows.iter().map(Vec::len).sum();
    summit_obs::counter("summit_telemetry_windows_total").inc_by(emitted as u64);
    summit_obs::counter("summit_telemetry_frames_accepted_total").inc_by(health.accepted);
    summit_obs::counter("summit_telemetry_frames_dropped_total").inc_by(health.dropped());
    (windows, health)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::catalog;

    fn frame(node: u32, t: f64, power: f64) -> NodeFrame {
        let mut f = NodeFrame::empty(NodeId(node), t);
        f.set(catalog::input_power(), power);
        f
    }

    #[test]
    fn ten_second_windows_close_correctly() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        for i in 0..25 {
            agg.push(&frame(0, i as f64, 100.0 + i as f64)).unwrap();
        }
        let windows = agg.finish();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].window_start, 0.0);
        assert_eq!(windows[1].window_start, 10.0);
        assert_eq!(windows[2].window_start, 20.0);

        let w0 = windows[0].metric(catalog::input_power());
        assert_eq!(w0.count, 10);
        assert_eq!(w0.min, 100.0);
        assert_eq!(w0.max, 109.0);
        assert!((w0.mean - 104.5).abs() < 1e-9);

        let w2 = windows[2].metric(catalog::input_power());
        assert_eq!(w2.count, 5);
    }

    #[test]
    fn missing_metrics_have_zero_count() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 0.0, 500.0)).unwrap();
        let windows = agg.finish();
        let gpu = windows[0].metric(catalog::gpu_power(crate::ids::GpuSlot(0)));
        assert_eq!(gpu.count, 0);
        assert!(gpu.mean.is_nan());
    }

    #[test]
    fn window_gaps_emit_nan_windows() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 5.0, 1.0)).unwrap();
        agg.push(&frame(0, 95.0, 2.0)).unwrap(); // 80-second gap
        let (windows, health) = agg.finish_with_health();
        assert_eq!(windows.len(), 10, "0..90 inclusive at 10 s");
        assert_eq!(windows[0].window_start, 0.0);
        assert_eq!(windows[9].window_start, 90.0);
        assert_eq!(health.gap_windows, 8);
        for w in &windows[1..9] {
            let s = w.metric(catalog::input_power());
            assert_eq!(s.count, 0, "gap window must be empty");
            assert!(s.mean.is_nan());
        }
    }

    #[test]
    fn gap_windows_can_be_disabled() {
        let policy = IngestPolicy {
            emit_gap_windows: false,
            ..IngestPolicy::default()
        };
        let mut agg = WindowAggregator::with_policy(NodeId(0), PAPER_WINDOW_S, policy);
        agg.push(&frame(0, 5.0, 1.0)).unwrap();
        agg.push(&frame(0, 95.0, 2.0)).unwrap();
        let (windows, health) = agg.finish_with_health();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].window_start, 0.0);
        assert_eq!(windows[1].window_start, 90.0);
        assert_eq!(health.gap_windows, 0);
    }

    #[test]
    fn pathological_gap_is_capped() {
        let policy = IngestPolicy {
            max_gap_windows: 10,
            ..IngestPolicy::default()
        };
        let mut agg = WindowAggregator::with_policy(NodeId(0), PAPER_WINDOW_S, policy);
        agg.push(&frame(0, 0.0, 1.0)).unwrap();
        agg.push(&frame(0, 1.0e9, 2.0)).unwrap();
        let (windows, health) = agg.finish_with_health();
        assert_eq!(windows.len(), 12, "two data windows + capped gap");
        assert_eq!(health.gap_windows, 10);
    }

    #[test]
    fn out_of_order_within_horizon_is_reordered() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 3.0, 30.0)).unwrap();
        agg.push(&frame(0, 0.0, 10.0)).unwrap(); // 3 s late: buffered
        agg.push(&frame(0, 1.0, 20.0)).unwrap();
        let (windows, health) = agg.finish_with_health();
        assert_eq!(windows.len(), 1);
        let s = windows[0].metric(catalog::input_power());
        assert_eq!(s.count, 3);
        assert_eq!(s.min, 10.0);
        assert_eq!(s.max, 30.0);
        assert_eq!(health.reordered, 2);
        assert_eq!(health.accepted, 3);
    }

    #[test]
    fn beyond_horizon_is_counted_and_dropped() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 50.0, 1.0)).unwrap();
        let err = agg.push(&frame(0, 10.0, 1.0)).unwrap_err();
        assert!(matches!(err, IngestError::Late { .. }));
        let (windows, health) = agg.finish_with_health();
        assert_eq!(health.late_dropped, 1);
        assert_eq!(health.accepted, 1);
        assert_eq!(windows.len(), 1, "late frame contributes nothing");
        assert_eq!(windows[0].window_start, 50.0);
    }

    #[test]
    fn frame_exactly_at_horizon_is_accepted() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 10.0, 1.0)).unwrap();
        // Exactly watermark - horizon: the boundary is inclusive.
        agg.push(&frame(0, 5.0, 2.0)).unwrap();
        let (_, health) = agg.finish_with_health();
        assert_eq!(health.accepted, 2);
        assert_eq!(health.late_dropped, 0);
        assert_eq!(health.reordered, 1);
    }

    #[test]
    fn duplicates_are_deduped() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 4.0, 100.0)).unwrap();
        let err = agg.push(&frame(0, 4.0, 999.0)).unwrap_err();
        assert!(matches!(err, IngestError::Duplicate { .. }));
        let (windows, health) = agg.finish_with_health();
        assert_eq!(health.duplicates, 1);
        assert_eq!(health.accepted, 1);
        let s = windows[0].metric(catalog::input_power());
        assert_eq!(s.count, 1, "first copy wins");
        assert_eq!(s.max, 100.0);
    }

    #[test]
    fn duplicate_timestamp_on_window_boundary() {
        // Satellite edge case: t = 10.0 sits exactly on a 10 s boundary;
        // the duplicate must dedup, not double-count into either window.
        let mut agg = WindowAggregator::paper(NodeId(0));
        for t in [8.0, 9.0, 10.0] {
            agg.push(&frame(0, t, t)).unwrap();
        }
        assert!(agg.push(&frame(0, 10.0, 999.0)).is_err());
        let (windows, health) = agg.finish_with_health();
        assert_eq!(health.duplicates, 1);
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].metric(catalog::input_power()).count, 2);
        let w1 = windows[1].metric(catalog::input_power());
        assert_eq!(w1.count, 1);
        assert_eq!(w1.max, 10.0);
    }

    #[test]
    fn wrong_node_is_counted_and_dropped() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        let err = agg.push(&frame(1, 0.0, 1.0)).unwrap_err();
        assert!(matches!(
            err,
            IngestError::WrongNode {
                expected: NodeId(0),
                got: NodeId(1)
            }
        ));
        let (windows, health) = agg.finish_with_health();
        assert!(windows.is_empty());
        assert_eq!(health.wrong_node, 1);
        assert_eq!(health.accepted, 0);
    }

    #[test]
    fn negative_timestamps_coarsen_fine() {
        // Satellite edge case: t_sample < 0 must floor into negative
        // window starts, not panic or alias onto window 0.
        let mut agg = WindowAggregator::paper(NodeId(0));
        for t in [-15.0, -12.0, -5.0, -1.0] {
            agg.push(&frame(0, t, 1.0)).unwrap();
        }
        let windows = agg.finish();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].window_start, -20.0);
        assert_eq!(windows[1].window_start, -10.0);
        assert_eq!(windows[1].metric(catalog::input_power()).count, 2);
    }

    #[test]
    fn non_finite_timestamp_rejected() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        assert!(matches!(
            agg.push(&frame(0, f64::NAN, 1.0)),
            Err(IngestError::NonFiniteTimestamp)
        ));
        assert!(agg.push(&frame(0, f64::INFINITY, 1.0)).is_err());
        let (windows, health) = agg.finish_with_health();
        assert!(windows.is_empty());
        assert_eq!(health.invalid, 2);
    }

    #[test]
    fn all_nan_outage_frames_flow_to_cluster_series() {
        // Satellite edge case: a dark cabinet emits all-NaN frames; they
        // must flow through coarsening and cluster_power_series without
        // panicking and register as missing.
        let mut agg = WindowAggregator::paper(NodeId(0));
        for t in 0..30 {
            agg.push(&NodeFrame::empty(NodeId(0), t as f64)).unwrap();
        }
        let windows = agg.finish();
        assert_eq!(windows.len(), 3);
        for w in &windows {
            assert_eq!(w.metric(catalog::input_power()).count, 0);
        }
        let rows = crate::cluster::cluster_power(std::slice::from_ref(&windows));
        assert!(rows.is_empty(), "no reporting node, no cluster rows");
        assert!(crate::cluster::cluster_power_series(&rows, PAPER_WINDOW_S).is_none());
    }

    #[test]
    fn drain_supports_streaming() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        for i in 0..21 {
            agg.push(&frame(0, i as f64, 1.0)).unwrap();
        }
        // Watermark 20; the horizon (5 s) has passed window [0, 10).
        let drained = agg.drain_completed();
        assert_eq!(drained.len(), 1);
        let rest = agg.finish();
        assert_eq!(rest.len(), 2); // [10, 20) and the trailing [20, 30)
    }

    #[test]
    fn parallel_matches_sequential() {
        let mk_frames = |node: u32| -> Vec<NodeFrame> {
            (0..100)
                .map(|i| frame(node, i as f64, (node * 100 + i) as f64))
                .collect()
        };
        let batches: Vec<Vec<NodeFrame>> = (0..8).map(mk_frames).collect();
        let par = coarsen_parallel(&batches, 10.0);
        let nan_eq = |a: f64, b: f64| (a.is_nan() && b.is_nan()) || a == b;
        for (node, frames) in batches.iter().enumerate() {
            let mut agg = WindowAggregator::new(NodeId(node as u32), 10.0);
            for f in frames {
                agg.push(f).unwrap();
            }
            let seq = agg.finish();
            assert_eq!(par[node].len(), seq.len());
            for (p, s) in par[node].iter().zip(&seq) {
                assert_eq!(p.window_start, s.window_start);
                for (ps, ss) in p.stats.iter().zip(&s.stats) {
                    assert_eq!(ps.count, ss.count);
                    assert!(nan_eq(ps.mean, ss.mean));
                    assert!(nan_eq(ps.min, ss.min));
                    assert!(nan_eq(ps.max, ss.max));
                }
            }
        }
    }

    #[test]
    fn parallel_health_merges_across_nodes() {
        let mut batches: Vec<Vec<NodeFrame>> = vec![
            (0..20).map(|i| frame(0, i as f64, 1.0)).collect(),
            (0..20).map(|i| frame(1, i as f64, 1.0)).collect(),
        ];
        batches[0].push(frame(0, 17.0, 9.0)); // in-horizon duplicate
        batches[1].push(frame(0, 3.0, 9.0)); // wrong node in batch 1
        let (windows, health) = coarsen_parallel_with_health(&batches, 10.0);
        assert_eq!(windows.len(), 2);
        assert_eq!(health.accepted, 40);
        assert_eq!(health.duplicates, 1);
        assert_eq!(health.wrong_node, 1);
    }

    #[test]
    fn streaming_coarsener_matches_batch_bitwise_with_bounded_residency() {
        // Interleave 4 nodes' frames tick by tick (the streaming arrival
        // shape); drained + tail windows must equal the batch coarsener
        // on the same per-node sequences to the bit, and the reorder
        // buffers must never hold more than horizon + window per node.
        let nodes = 4u32;
        let seconds = 120usize;
        let batches: Vec<Vec<NodeFrame>> = (0..nodes)
            .map(|n| {
                (0..seconds)
                    .map(|i| frame(n, i as f64, (n as usize * 1000 + i) as f64))
                    .collect()
            })
            .collect();
        let (batch_windows, batch_health) = coarsen_parallel_with_health(&batches, 10.0);

        let mut sc = StreamingCoarsener::new(nodes as usize, 10.0);
        let mut drained: Vec<Vec<NodeWindow>> = vec![Vec::new(); nodes as usize];
        let mut peak_resident = 0usize;
        for i in 0..seconds {
            for (n, node_frames) in batches.iter().enumerate() {
                sc.push(n, &node_frames[i]).unwrap();
            }
            peak_resident = peak_resident.max(sc.resident_frames());
            for w in sc.drain_completed() {
                drained[w.node.index()].push(w);
            }
        }
        let (tail, stream_health) = sc.finish_with_health();
        for (n, t) in tail.into_iter().enumerate() {
            drained[n].extend(t);
        }

        assert_eq!(stream_health, batch_health);
        assert!(
            peak_resident <= nodes as usize * 16,
            "reorder residency must stay bounded, got {peak_resident}"
        );
        assert_eq!(drained.len(), batch_windows.len());
        for (s, b) in drained.iter().zip(&batch_windows) {
            assert_eq!(s.len(), b.len());
            for (sw, bw) in s.iter().zip(b) {
                assert_eq!(sw.node, bw.node);
                assert_eq!(sw.window_start.to_bits(), bw.window_start.to_bits());
                for (ss, bs) in sw.stats.iter().zip(&bw.stats) {
                    assert_eq!(ss.count, bs.count);
                    assert_eq!(ss.mean.to_bits(), bs.mean.to_bits());
                    assert_eq!(ss.min.to_bits(), bs.min.to_bits());
                    assert_eq!(ss.max.to_bits(), bs.max.to_bits());
                    assert_eq!(ss.std.to_bits(), bs.std.to_bits());
                }
            }
        }
    }

    #[test]
    fn streaming_coarsener_grows_slots_and_reports_empty_tail() {
        let mut sc = StreamingCoarsener::new(1, 10.0);
        sc.push(3, &frame(3, 0.0, 1.0)).unwrap();
        assert_eq!(sc.health().accepted, 1);
        let (windows, health) = sc.finish_with_health();
        assert_eq!(windows.len(), 4);
        assert!(windows[0].is_empty() && windows[1].is_empty() && windows[2].is_empty());
        assert_eq!(windows[3].len(), 1);
        assert_eq!(health.accepted, 1);
    }

    fn assert_windows_bitwise_eq(a: &[Vec<NodeWindow>], b: &[Vec<NodeWindow>]) {
        assert_eq!(a.len(), b.len());
        for (wa, wb) in a.iter().zip(b) {
            assert_eq!(wa.len(), wb.len());
            for (x, y) in wa.iter().zip(wb) {
                assert_eq!(x.node, y.node);
                assert_eq!(x.window_start.to_bits(), y.window_start.to_bits());
                for (sx, sy) in x.stats.iter().zip(&y.stats) {
                    assert_eq!(sx.count, sy.count);
                    assert_eq!(sx.mean.to_bits(), sy.mean.to_bits());
                    assert_eq!(sx.min.to_bits(), sy.min.to_bits());
                    assert_eq!(sx.max.to_bits(), sy.max.to_bits());
                    assert_eq!(sx.std.to_bits(), sy.std.to_bits());
                }
            }
        }
    }

    /// Adversarial per-node sequences: mixed magnitudes, missing
    /// sensors (NaN), reordering, duplicates, late frames and gaps.
    fn adversarial_batches(nodes: u32) -> Vec<Vec<NodeFrame>> {
        (0..nodes)
            .map(|n| {
                let mut frames: Vec<NodeFrame> = (0..90)
                    .map(|i| {
                        let mut f = frame(n, i as f64, (n as usize * 977 + i * 31) as f64 * 0.37);
                        if i % 7 == 0 {
                            f.set(catalog::input_power(), f64::NAN); // dark sensor
                        }
                        f.set(
                            catalog::cpu_power(crate::ids::Socket::P0),
                            ((i * 13) % 29) as f64 * 1e6,
                        );
                        f
                    })
                    .collect();
                // Swap adjacent frames (in-horizon reorder), inject a
                // duplicate and a beyond-horizon straggler.
                for i in (0..frames.len() - 1).step_by(5) {
                    frames.swap(i, i + 1);
                }
                frames.push(frame(n, 42.0, 1.0)); // duplicate of t=42
                frames.push(frame(n, 3.0, 1.0)); // far beyond horizon: dropped
                frames
            })
            .collect()
    }

    #[test]
    fn columns_layout_matches_rows_reference_bitwise() {
        let batches = adversarial_batches(5);
        let (rows, rows_health) = coarsen_parallel_layout(&batches, 10.0, CoarsenLayout::Rows);
        let (cols, cols_health) = coarsen_parallel_layout(&batches, 10.0, CoarsenLayout::Columns);
        assert_eq!(rows_health, cols_health);
        assert_windows_bitwise_eq(&rows, &cols);
    }

    #[test]
    fn streaming_layouts_match_bitwise() {
        let batches = adversarial_batches(3);
        let run = |layout: CoarsenLayout| {
            let mut sc = StreamingCoarsener::with_layout(3, 10.0, IngestPolicy::default(), layout);
            let mut drained: Vec<Vec<NodeWindow>> = vec![Vec::new(); 3];
            for i in 0..batches[0].len() {
                for (n, node_frames) in batches.iter().enumerate() {
                    let _ = sc.push(n, &node_frames[i]);
                }
                for w in sc.drain_completed() {
                    drained[w.node.index()].push(w);
                }
            }
            let (tail, health) = sc.finish_with_health();
            for (n, t) in tail.into_iter().enumerate() {
                drained[n].extend(t);
            }
            (drained, health)
        };
        let (rows, rows_health) = run(CoarsenLayout::Rows);
        let (cols, cols_health) = run(CoarsenLayout::Columns);
        assert_eq!(rows_health, cols_health);
        assert_windows_bitwise_eq(&rows, &cols);
    }

    #[test]
    fn slab_reorder_buffer_recycles_rows() {
        // After the first horizon fills, the slab must stop growing:
        // freed rows are recycled instead of re-allocated.
        let mut agg = WindowAggregator::paper(NodeId(0));
        for i in 0..200 {
            agg.push(&frame(0, i as f64, i as f64)).unwrap();
        }
        let PendingStore::Slab { slab, .. } = &agg.pending else {
            panic!("columns layout must use the slab store");
        };
        assert!(
            slab.len() / METRIC_COUNT <= 32,
            "slab rows must stay bounded by horizon + window, got {}",
            slab.len() / METRIC_COUNT
        );
    }

    #[test]
    fn std_matches_two_pass_within_window() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for (i, &v) in vals.iter().enumerate() {
            agg.push(&frame(0, i as f64, v)).unwrap();
        }
        let windows = agg.finish();
        let s = windows[0].metric(catalog::input_power());
        let expect = (32.0f64 / 7.0).sqrt();
        assert!((s.std - expect).abs() < 1e-6);
    }

    #[test]
    fn degenerate_window_length_falls_back() {
        // Release builds sanitize instead of panicking.
        let agg = WindowAggregator::with_policy(
            NodeId(0),
            PAPER_WINDOW_S,
            IngestPolicy {
                lateness_horizon_s: f64::NAN,
                ..IngestPolicy::default()
            },
        );
        assert_eq!(agg.policy().lateness_horizon_s, 0.0);
    }
}
