//! 10-second window coarsening (paper Section 3, Dataset 0).
//!
//! "We have coarsened the data to a 10-second window, but we have avoided
//! information loss by storing statistical information such as min., max.,
//! mean, and standard deviation values of the samples in each window per
//! time-series from each node."

use crate::catalog::METRIC_COUNT;
use crate::ids::NodeId;
use crate::records::NodeFrame;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use summit_analysis::stats::{Welford, WindowStats};

/// The paper's coarsening window in seconds.
pub const PAPER_WINDOW_S: f64 = 10.0;

/// One coarsened window for one node: the `count/min/max/mean/std`
/// quintuple for every catalog metric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeWindow {
    /// Compute node identifier.
    pub node: NodeId,
    /// Window start (seconds since epoch, multiple of the window length).
    pub window_start: f64,
    /// Per-metric statistics in catalog order.
    pub stats: Vec<WindowStats>,
}

impl NodeWindow {
    /// Statistics for one metric.
    #[inline]
    pub fn metric(&self, id: crate::catalog::MetricId) -> &WindowStats {
        &self.stats[id.index()]
    }
}

/// Streaming coarsener for a single node's frame sequence.
///
/// Frames must arrive in non-decreasing `t_sample` order; the aggregator
/// closes a window whenever a frame beyond its end arrives, and
/// [`WindowAggregator::finish`] closes the trailing window.
///
/// ```
/// use summit_telemetry::{catalog, ids::NodeId, records::NodeFrame};
/// use summit_telemetry::window::WindowAggregator;
/// let mut agg = WindowAggregator::paper(NodeId(0));
/// for t in 0..20 {
///     let mut frame = NodeFrame::empty(NodeId(0), t as f64);
///     frame.set(catalog::input_power(), 600.0 + t as f64);
///     agg.push(&frame);
/// }
/// let windows = agg.finish();
/// assert_eq!(windows.len(), 2);
/// assert_eq!(windows[0].metric(catalog::input_power()).count, 10);
/// ```
#[derive(Debug)]
pub struct WindowAggregator {
    node: NodeId,
    window_s: f64,
    current_start: Option<f64>,
    acc: Vec<Welford>,
    out: Vec<NodeWindow>,
}

impl WindowAggregator {
    /// Creates a coarsener with the given window length (seconds).
    pub fn new(node: NodeId, window_s: f64) -> Self {
        assert!(window_s > 0.0, "window length must be positive");
        Self {
            node,
            window_s,
            current_start: None,
            acc: vec![Welford::new(); METRIC_COUNT],
            out: Vec::new(),
        }
    }

    /// Creates a coarsener with the paper's 10-second window.
    pub fn paper(node: NodeId) -> Self {
        Self::new(node, PAPER_WINDOW_S)
    }

    fn window_start_of(&self, t: f64) -> f64 {
        (t / self.window_s).floor() * self.window_s
    }

    fn flush_current(&mut self) {
        if let Some(start) = self.current_start.take() {
            let stats: Vec<WindowStats> = self.acc.iter().map(Welford::finish).collect();
            for a in &mut self.acc {
                *a = Welford::new();
            }
            self.out.push(NodeWindow {
                node: self.node,
                window_start: start,
                stats,
            });
        }
    }

    /// Feeds one frame.
    ///
    /// # Panics
    /// If the frame belongs to a different node or arrives out of order
    /// (before the current window).
    pub fn push(&mut self, frame: &NodeFrame) {
        assert_eq!(frame.node, self.node, "frame routed to wrong aggregator");
        let ws = self.window_start_of(frame.t_sample);
        match self.current_start {
            None => self.current_start = Some(ws),
            Some(cur) => {
                assert!(
                    ws >= cur,
                    "out-of-order frame: t_sample {} before window start {}",
                    frame.t_sample,
                    cur
                );
                if ws > cur {
                    self.flush_current();
                    self.current_start = Some(ws);
                }
            }
        }
        for (a, &v) in self.acc.iter_mut().zip(frame.values.iter()) {
            a.push(v as f64); // Welford ignores NaN (missing sensors)
        }
    }

    /// Closes the trailing window and returns all coarsened windows.
    pub fn finish(mut self) -> Vec<NodeWindow> {
        self.flush_current();
        self.out
    }

    /// Drains completed windows without closing the current one
    /// (streaming consumption).
    pub fn drain_completed(&mut self) -> Vec<NodeWindow> {
        std::mem::take(&mut self.out)
    }
}

/// Coarsens per-node frame batches in parallel: `frames_by_node[i]` is the
/// time-ordered frame sequence of one node. Returns the coarsened windows
/// per node (same outer order).
pub fn coarsen_parallel(frames_by_node: &[Vec<NodeFrame>], window_s: f64) -> Vec<Vec<NodeWindow>> {
    frames_by_node
        .par_iter()
        .map(|frames| {
            let Some(first) = frames.first() else {
                return Vec::new();
            };
            let mut agg = WindowAggregator::new(first.node, window_s);
            for f in frames {
                agg.push(f);
            }
            agg.finish()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::catalog;

    fn frame(node: u32, t: f64, power: f64) -> NodeFrame {
        let mut f = NodeFrame::empty(NodeId(node), t);
        f.set(catalog::input_power(), power);
        f
    }

    #[test]
    fn ten_second_windows_close_correctly() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        for i in 0..25 {
            agg.push(&frame(0, i as f64, 100.0 + i as f64));
        }
        let windows = agg.finish();
        assert_eq!(windows.len(), 3);
        assert_eq!(windows[0].window_start, 0.0);
        assert_eq!(windows[1].window_start, 10.0);
        assert_eq!(windows[2].window_start, 20.0);

        let w0 = windows[0].metric(catalog::input_power());
        assert_eq!(w0.count, 10);
        assert_eq!(w0.min, 100.0);
        assert_eq!(w0.max, 109.0);
        assert!((w0.mean - 104.5).abs() < 1e-9);

        let w2 = windows[2].metric(catalog::input_power());
        assert_eq!(w2.count, 5);
    }

    #[test]
    fn missing_metrics_have_zero_count() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 0.0, 500.0));
        let windows = agg.finish();
        let gpu = windows[0].metric(catalog::gpu_power(crate::ids::GpuSlot(0)));
        assert_eq!(gpu.count, 0);
        assert!(gpu.mean.is_nan());
    }

    #[test]
    fn window_gaps_skip_empty_windows() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 5.0, 1.0));
        agg.push(&frame(0, 95.0, 2.0)); // 80-second gap
        let windows = agg.finish();
        assert_eq!(windows.len(), 2);
        assert_eq!(windows[0].window_start, 0.0);
        assert_eq!(windows[1].window_start, 90.0);
    }

    #[test]
    #[should_panic(expected = "out-of-order frame")]
    fn out_of_order_rejected() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(0, 50.0, 1.0));
        agg.push(&frame(0, 10.0, 1.0));
    }

    #[test]
    #[should_panic(expected = "wrong aggregator")]
    fn wrong_node_rejected() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        agg.push(&frame(1, 0.0, 1.0));
    }

    #[test]
    fn drain_supports_streaming() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        for i in 0..15 {
            agg.push(&frame(0, i as f64, 1.0));
        }
        let drained = agg.drain_completed();
        assert_eq!(drained.len(), 1); // first window complete
        let rest = agg.finish();
        assert_eq!(rest.len(), 1); // trailing window
    }

    #[test]
    fn parallel_matches_sequential() {
        let mk_frames = |node: u32| -> Vec<NodeFrame> {
            (0..100)
                .map(|i| frame(node, i as f64, (node * 100 + i) as f64))
                .collect()
        };
        let batches: Vec<Vec<NodeFrame>> = (0..8).map(mk_frames).collect();
        let par = coarsen_parallel(&batches, 10.0);
        let nan_eq = |a: f64, b: f64| (a.is_nan() && b.is_nan()) || a == b;
        for (node, frames) in batches.iter().enumerate() {
            let mut agg = WindowAggregator::new(NodeId(node as u32), 10.0);
            for f in frames {
                agg.push(f);
            }
            let seq = agg.finish();
            assert_eq!(par[node].len(), seq.len());
            for (p, s) in par[node].iter().zip(&seq) {
                assert_eq!(p.window_start, s.window_start);
                for (ps, ss) in p.stats.iter().zip(&s.stats) {
                    assert_eq!(ps.count, ss.count);
                    assert!(nan_eq(ps.mean, ss.mean));
                    assert!(nan_eq(ps.min, ss.min));
                    assert!(nan_eq(ps.max, ss.max));
                }
            }
        }
    }

    #[test]
    fn std_matches_two_pass_within_window() {
        let mut agg = WindowAggregator::paper(NodeId(0));
        let vals = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        for (i, &v) in vals.iter().enumerate() {
            agg.push(&frame(0, i as f64, v));
        }
        let windows = agg.finish();
        let s = windows[0].metric(catalog::input_power());
        let expect = (32.0f64 / 7.0).sqrt();
        assert!((s.std - expect).abs() < 1e-6);
    }
}
