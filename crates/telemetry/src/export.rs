//! CSV export of the derived datasets.
//!
//! The paper's artifact appendix ships every derived dataset as daily
//! CSV/parquet files; this module writes the same row shapes as CSV so
//! downstream tooling (pandas, DuckDB, gnuplot) can consume the
//! reproduction's outputs. Writers are plain [`std::io::Write`] sinks —
//! files, buffers, or pipes.

use crate::cluster::ClusterPowerRow;
use crate::datasets::ThermalRow;
use crate::jobjoin::{JobLevelPower, JobPowerRow};
use crate::records::{JobRecord, XidEvent};
use crate::stream::IngestStats;
use std::io::{self, Write};

/// Escapes a CSV field (quotes when needed).
fn field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

fn fmt(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        String::new() // empty cell = missing, the pandas convention
    }
}

/// Starts the shared export span and counts `rows` into the registry;
/// every writer below times itself under `summit_telemetry_export`.
fn obs_export(rows: usize) -> summit_obs::SpanGuard {
    summit_obs::counter("summit_telemetry_export_rows_total").inc_by(rows as u64);
    summit_obs::span("summit_telemetry_export")
}

/// Writes Dataset-1-shaped cluster power rows.
pub fn write_cluster_power<W: Write>(out: &mut W, rows: &[ClusterPowerRow]) -> io::Result<()> {
    let _obs = obs_export(rows.len());
    writeln!(out, "timestamp,count_inp,sum_inp,mean_inp,max_inp")?;
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{}",
            r.window_start,
            r.count_inp,
            fmt(r.sum_inp),
            fmt(r.mean_inp),
            fmt(r.max_inp)
        )?;
    }
    Ok(())
}

/// Writes Dataset-3-shaped per-job power rows.
pub fn write_job_power<W: Write>(out: &mut W, rows: &[JobPowerRow]) -> io::Result<()> {
    let _obs = obs_export(rows.len());
    writeln!(
        out,
        "allocation_id,timestamp,count_hostname,sum_inp,mean_inp,max_inp"
    )?;
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            r.allocation_id.0,
            r.window_start,
            r.count_hostname,
            fmt(r.sum_inp),
            fmt(r.mean_inp),
            fmt(r.max_inp)
        )?;
    }
    Ok(())
}

/// Writes Dataset-5-shaped job-level power rows.
pub fn write_job_level<W: Write>(out: &mut W, rows: &[JobLevelPower]) -> io::Result<()> {
    let _obs = obs_export(rows.len());
    writeln!(
        out,
        "allocation_id,max_sum_inp,mean_sum_inp,begin_time,end_time,energy_j"
    )?;
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{},{}",
            r.allocation_id.0,
            fmt(r.max_sum_inp),
            fmt(r.mean_sum_inp),
            r.begin_time,
            r.end_time,
            fmt(r.energy_j)
        )?;
    }
    Ok(())
}

/// Writes Dataset-C-shaped scheduler allocation history.
pub fn write_job_records<W: Write>(out: &mut W, rows: &[JobRecord]) -> io::Result<()> {
    let _obs = obs_export(rows.len());
    writeln!(
        out,
        "allocation_id,class,node_count,project,domain,begin_time,end_time"
    )?;
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.allocation_id.0,
            r.class,
            r.node_count,
            field(&r.project),
            field(r.domain.name()),
            r.begin_time,
            r.end_time
        )?;
    }
    Ok(())
}

/// Writes Dataset-E-shaped XID events.
pub fn write_xid_events<W: Write>(out: &mut W, rows: &[XidEvent]) -> io::Result<()> {
    let _obs = obs_export(rows.len());
    writeln!(
        out,
        "time,kind,node,slot,allocation_id,gpu_core_temp,temp_zscore"
    )?;
    for r in rows {
        writeln!(
            out,
            "{},{},{},{},{},{},{}",
            r.time,
            field(r.kind.name()),
            r.node.0,
            r.slot.0,
            r.allocation_id.map(|a| a.0.to_string()).unwrap_or_default(),
            fmt(r.gpu_core_temp),
            fmt(r.temp_zscore)
        )?;
    }
    Ok(())
}

/// Writes Dataset-8-shaped thermal rows (band counts flattened).
pub fn write_thermal<W: Write>(out: &mut W, rows: &[ThermalRow]) -> io::Result<()> {
    let _obs = obs_export(rows.len());
    writeln!(
        out,
        "timestamp,allocation_id,nodes_reporting,band0,band1,band2,band3,band4,\
         hot_gpus,gpu_core_mean,gpu_core_max,cpu_mean,mtw_return_c,tower_tons,chiller_tons"
    )?;
    for r in rows {
        let b = &r.gpu_band_counts;
        writeln!(
            out,
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{}",
            r.window_start,
            r.allocation_id.map(|a| a.0.to_string()).unwrap_or_default(),
            r.nodes_reporting,
            b[0],
            b[1],
            b[2],
            b[3],
            b[4],
            r.hot_gpus.len(),
            fmt(r.gpu_core_mean),
            fmt(r.gpu_core_max),
            fmt(r.cpu_mean),
            fmt(r.cep.map(|c| c.mtw_return_c).unwrap_or(f64::NAN)),
            fmt(r.cep.map(|c| c.tower_tons).unwrap_or(f64::NAN)),
            fmt(r.cep.map(|c| c.chiller_tons).unwrap_or(f64::NAN)),
        )?;
    }
    Ok(())
}

/// Writes a one-row ingest-health report: throughput, delay, and the
/// fault-tolerance counters of the run.
pub fn write_ingest_health<W: Write>(out: &mut W, stats: &IngestStats) -> io::Result<()> {
    let _obs = obs_export(1);
    writeln!(
        out,
        "frames,metrics,mean_delay_s,max_delay_s,metrics_per_s,\
         accepted,reordered,duplicates,late_dropped,wrong_node,invalid,gap_windows"
    )?;
    let h = &stats.health;
    writeln!(
        out,
        "{},{},{},{},{},{},{},{},{},{},{},{}",
        stats.frames,
        stats.metrics,
        fmt(stats.mean_delay_s()),
        fmt(stats.max_delay_s),
        fmt(stats.metrics_per_second()),
        h.accepted,
        h.reordered,
        h.duplicates,
        h.late_dropped,
        h.wrong_node,
        h.invalid,
        h.gap_windows,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ids::{AllocationId, GpuSlot, NodeId};
    use crate::records::{ScienceDomain, XidErrorKind};

    #[test]
    fn cluster_power_csv_shape() {
        let rows = vec![ClusterPowerRow {
            window_start: 10.0,
            count_inp: 2,
            sum_inp: 3000.0,
            mean_inp: 1500.0,
            max_inp: 2000.0,
        }];
        let mut buf = Vec::new();
        write_cluster_power(&mut buf, &rows).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0], "timestamp,count_inp,sum_inp,mean_inp,max_inp");
        assert_eq!(lines[1], "10,2,3000,1500,2000");
    }

    #[test]
    fn nan_becomes_empty_cell() {
        let rows = vec![ClusterPowerRow {
            window_start: 0.0,
            count_inp: 0,
            sum_inp: f64::NAN,
            mean_inp: f64::NAN,
            max_inp: f64::NAN,
        }];
        let mut buf = Vec::new();
        write_cluster_power(&mut buf, &rows).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.lines().nth(1).unwrap().ends_with("0,,,"));
    }

    #[test]
    fn job_records_escape_fields() {
        let rows = vec![JobRecord {
            allocation_id: AllocationId(7),
            class: 5,
            node_count: 4,
            project: "ODD,\"NAME\"".into(),
            domain: ScienceDomain::AiMl,
            begin_time: 1.0,
            end_time: 2.0,
        }];
        let mut buf = Vec::new();
        write_job_records(&mut buf, &rows).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.contains("\"ODD,\"\"NAME\"\"\""), "csv quoting: {s}");
        assert!(s.contains("AI/ML"));
    }

    #[test]
    fn xid_event_optional_allocation() {
        let rows = vec![XidEvent {
            kind: XidErrorKind::DoubleBitError,
            node: NodeId(3),
            slot: GpuSlot(4),
            time: 99.0,
            allocation_id: None,
            gpu_core_temp: 40.5,
            temp_zscore: -0.5,
        }];
        let mut buf = Vec::new();
        write_xid_events(&mut buf, &rows).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s
            .lines()
            .nth(1)
            .unwrap()
            .contains("99,Double-bit error,3,4,,40.5,-0.5"));
    }

    #[test]
    fn ingest_health_csv_shape() {
        use crate::ingest::IngestHealth;
        let stats = IngestStats {
            frames: 4,
            metrics: 8,
            total_delay_s: 4.0,
            max_delay_s: 2.0,
            t_first: 0.0,
            t_last: 2.0,
            health: IngestHealth {
                accepted: 3,
                reordered: 1,
                duplicates: 1,
                late_dropped: 0,
                wrong_node: 0,
                invalid: 0,
                gap_windows: 2,
            },
        };
        let mut buf = Vec::new();
        write_ingest_health(&mut buf, &stats).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("frames,metrics,"));
        assert!(lines[0].ends_with("gap_windows"));
        assert_eq!(lines[1], "4,8,1,2,4,3,1,1,0,0,0,2");
    }

    #[test]
    fn thermal_row_with_and_without_cep() {
        use crate::records::CepRecord;
        let base = ThermalRow {
            window_start: 0.0,
            allocation_id: Some(AllocationId(1)),
            nodes_reporting: 2,
            gpu_band_counts: [1, 2, 3, 4, 5],
            hot_gpus: vec![(NodeId(0), GpuSlot(0))],
            gpu_core_mean: 40.0,
            gpu_core_max: 61.0,
            cpu_mean: 33.0,
            cpu_max: 35.0,
            cep: Some(CepRecord {
                time: 0.0,
                mtw_supply_c: 21.0,
                mtw_return_c: 29.0,
                tower_tons: 100.0,
                chiller_tons: 5.0,
                wet_bulb_c: 15.0,
                facility_power_w: 1.0,
                it_power_w: 1.0,
            }),
        };
        let mut no_cep = base.clone();
        no_cep.cep = None;
        let mut buf = Vec::new();
        write_thermal(&mut buf, &[base, no_cep]).unwrap();
        let s = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[1].contains("1,2,3,4,5"));
        assert!(lines[1].ends_with("29,100,5"));
        assert!(lines[2].ends_with(",,,"), "missing CEP = empty cells");
    }
}
