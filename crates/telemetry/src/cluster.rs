//! Cluster-level collapse of per-node windows (Datasets 1 and 2 of the
//! paper's artifact appendix).
//!
//! Dataset 1: "cluster-level aggregated power values at every 10 seconds
//! ... the sum of input power from all the nodes at that instance"
//! (`timestamp, count_inp, sum_inp, mean_inp, max_inp`).
//! Dataset 2: the same collapse for CPU and GPU component power
//! (`mean_cpu_power, std_cpu_power, ..., max_gpu_power`).

use crate::catalog;
use crate::convert;
use crate::ids::{GpuSlot, Socket};
use crate::window::NodeWindow;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use summit_analysis::series::Series;
use summit_analysis::stats::Welford;

/// One Dataset-1 row: cluster-level input power at one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterPowerRow {
    /// Start of the 10-second window (seconds since epoch).
    pub window_start: f64,
    /// Nodes reporting in this window.
    pub count_inp: u32,
    /// Sum of per-node mean input power (W) — the cluster power estimate.
    pub sum_inp: f64,
    /// Mean per-node input power (W).
    pub mean_inp: f64,
    /// Max per-node input power (W).
    pub max_inp: f64,
}

/// One Dataset-2 row: cluster-level component power at one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentPowerRow {
    /// Start of the 10-second window (seconds since epoch).
    pub window_start: f64,
    /// Per-CPU-socket power stats across the cluster (W).
    pub mean_cpu_power: f64,
    /// Std of per-socket CPU power (W).
    pub std_cpu_power: f64,
    /// Minimum per-socket CPU power (W).
    pub min_cpu_power: f64,
    /// Maximum per-socket CPU power (W).
    pub max_cpu_power: f64,
    /// Per-GPU power stats across the cluster (W).
    pub mean_gpu_power: f64,
    /// Std of per-GPU power (W).
    pub std_gpu_power: f64,
    /// Maximum per-GPU power (W).
    pub max_gpu_power: f64,
    /// Sum of all CPU power (W).
    pub sum_cpu_power: f64,
    /// Sum of all GPU power (W).
    pub sum_gpu_power: f64,
}

#[derive(Clone, Default)]
struct InputAcc {
    w: Welford,
}

/// Collapses per-node windows into the Dataset-1 cluster input-power
/// time-series, sorted by window start. Node batches are reduced in
/// parallel.
pub fn cluster_power(windows_by_node: &[Vec<NodeWindow>]) -> Vec<ClusterPowerRow> {
    // Per-node maps merge pairwise inside each worker chunk, and the
    // chunk accumulators merge in chunk order — no barrier collect of
    // all per-node maps. The merge grouping is fixed by the chunk
    // layout, so results are identical for every thread count; the
    // BTreeMap keys make the final drain window-ordered by
    // construction (hash-order lint).
    let merged: BTreeMap<i64, InputAcc> = windows_by_node
        .par_iter()
        .map(|windows| {
            let mut map: BTreeMap<i64, InputAcc> = BTreeMap::new();
            for w in windows {
                let s = w.metric(catalog::input_power());
                if s.count == 0 {
                    continue;
                }
                let key = w.window_start.round() as i64;
                map.entry(key).or_default().w.push(s.mean);
            }
            map
        })
        .reduce(BTreeMap::new, |mut into, from| {
            for (k, acc) in from {
                into.entry(k).or_default().w.merge(&acc.w);
            }
            into
        });

    // BTreeMap drain order is ascending window start already.
    merged
        .into_iter()
        .map(|(k, acc)| ClusterPowerRow {
            window_start: k as f64,
            count_inp: convert::count_u32(acc.w.count()),
            sum_inp: acc.w.sum(),
            mean_inp: acc.w.mean(),
            max_inp: acc.w.max(),
        })
        .collect()
}

#[derive(Clone, Default)]
struct ComponentAcc {
    cpu: Welford,
    gpu: Welford,
}

/// Collapses per-node windows into the Dataset-2 component time-series.
pub fn cluster_component_power(windows_by_node: &[Vec<NodeWindow>]) -> Vec<ComponentPowerRow> {
    let merged: BTreeMap<i64, ComponentAcc> = windows_by_node
        .par_iter()
        .map(|windows| {
            let mut map: BTreeMap<i64, ComponentAcc> = BTreeMap::new();
            for w in windows {
                let key = w.window_start.round() as i64;
                let acc = map.entry(key).or_default();
                for s in Socket::ALL {
                    let st = w.metric(catalog::cpu_power(s));
                    if st.count > 0 {
                        acc.cpu.push(st.mean);
                    }
                }
                for g in GpuSlot::ALL {
                    let st = w.metric(catalog::gpu_power(g));
                    if st.count > 0 {
                        acc.gpu.push(st.mean);
                    }
                }
            }
            map
        })
        .reduce(BTreeMap::new, |mut into, from| {
            for (k, acc) in from {
                let m = into.entry(k).or_default();
                m.cpu.merge(&acc.cpu);
                m.gpu.merge(&acc.gpu);
            }
            into
        });

    merged
        .into_iter()
        .map(|(k, acc)| ComponentPowerRow {
            window_start: k as f64,
            mean_cpu_power: acc.cpu.mean(),
            std_cpu_power: acc.cpu.std(),
            min_cpu_power: acc.cpu.min(),
            max_cpu_power: acc.cpu.max(),
            mean_gpu_power: acc.gpu.mean(),
            std_gpu_power: acc.gpu.std(),
            max_gpu_power: acc.gpu.max(),
            sum_cpu_power: acc.cpu.sum(),
            sum_gpu_power: acc.gpu.sum(),
        })
        .collect()
}

/// Converts Dataset-1 rows into a uniform [`Series`] of cluster power
/// (`sum_inp`), filling missing windows with NaN.
pub fn cluster_power_series(rows: &[ClusterPowerRow], window_s: f64) -> Option<Series> {
    let first = rows.first()?;
    let last = rows.last()?;
    let n = ((last.window_start - first.window_start) / window_s).round() as usize + 1;
    let mut values = vec![f64::NAN; n];
    for r in rows {
        let idx = ((r.window_start - first.window_start) / window_s).round() as usize;
        if idx < n {
            values[idx] = r.sum_inp;
        }
    }
    Some(Series::new(first.window_start, window_s, values))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ids::NodeId;
    use crate::records::NodeFrame;
    use crate::window::WindowAggregator;

    fn windows_for(node: u32, powers: &[(f64, f64, f64)]) -> Vec<NodeWindow> {
        // (t, input_power, gpu0_power)
        let mut agg = WindowAggregator::paper(NodeId(node));
        for &(t, inp, gpu) in powers {
            let mut f = NodeFrame::empty(NodeId(node), t);
            f.set(catalog::input_power(), inp);
            f.set(catalog::gpu_power(GpuSlot(0)), gpu);
            f.set(catalog::cpu_power(Socket::P0), inp / 10.0);
            agg.push(&f).unwrap();
        }
        agg.finish()
    }

    #[test]
    fn cluster_power_sums_nodes() {
        let n0 = windows_for(0, &[(0.0, 1000.0, 200.0), (10.0, 1100.0, 200.0)]);
        let n1 = windows_for(1, &[(0.0, 2000.0, 300.0), (10.0, 2200.0, 300.0)]);
        let rows = cluster_power(&[n0, n1]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].window_start, 0.0);
        assert_eq!(rows[0].count_inp, 2);
        assert!((rows[0].sum_inp - 3000.0).abs() < 0.01);
        assert!((rows[0].mean_inp - 1500.0).abs() < 0.01);
        assert!((rows[0].max_inp - 2000.0).abs() < 0.01);
        assert!((rows[1].sum_inp - 3300.0).abs() < 0.01);
    }

    #[test]
    fn cluster_power_skips_missing_nodes() {
        let n0 = windows_for(0, &[(0.0, 1000.0, 0.0)]);
        let n1 = windows_for(1, &[(10.0, 2000.0, 0.0)]); // different window
        let rows = cluster_power(&[n0, n1]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].count_inp, 1);
        assert_eq!(rows[1].count_inp, 1);
    }

    #[test]
    fn component_power_aggregates_both_kinds() {
        let n0 = windows_for(0, &[(0.0, 1000.0, 250.0)]);
        let n1 = windows_for(1, &[(0.0, 2000.0, 150.0)]);
        let rows = cluster_component_power(&[n0, n1]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // Two GPU samples: 250, 150.
        assert!((r.mean_gpu_power - 200.0).abs() < 0.01);
        assert!((r.max_gpu_power - 250.0).abs() < 0.01);
        assert!((r.sum_gpu_power - 400.0).abs() < 0.01);
        // Two CPU samples: 100, 200.
        assert!((r.mean_cpu_power - 150.0).abs() < 0.01);
        assert!((r.sum_cpu_power - 300.0).abs() < 0.01);
    }

    #[test]
    fn power_series_fills_gaps_with_nan() {
        let rows = vec![
            ClusterPowerRow {
                window_start: 0.0,
                count_inp: 1,
                sum_inp: 100.0,
                mean_inp: 100.0,
                max_inp: 100.0,
            },
            ClusterPowerRow {
                window_start: 30.0,
                count_inp: 1,
                sum_inp: 200.0,
                mean_inp: 200.0,
                max_inp: 200.0,
            },
        ];
        let s = cluster_power_series(&rows, 10.0).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.values()[0], 100.0);
        assert!(s.values()[1].is_nan());
        assert!(s.values()[2].is_nan());
        assert_eq!(s.values()[3], 200.0);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(cluster_power(&[]).is_empty());
        assert!(cluster_component_power(&[]).is_empty());
        assert!(cluster_power_series(&[], 10.0).is_none());
    }
}
