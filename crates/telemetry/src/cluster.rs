//! Cluster-level collapse of per-node windows (Datasets 1 and 2 of the
//! paper's artifact appendix).
//!
//! Dataset 1: "cluster-level aggregated power values at every 10 seconds
//! ... the sum of input power from all the nodes at that instance"
//! (`timestamp, count_inp, sum_inp, mean_inp, max_inp`).
//! Dataset 2: the same collapse for CPU and GPU component power
//! (`mean_cpu_power, std_cpu_power, ..., max_gpu_power`).

use crate::catalog;
use crate::convert;
use crate::ids::{GpuSlot, Socket};
use crate::window::NodeWindow;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use summit_analysis::series::Series;
use summit_analysis::stats::Welford;

/// One Dataset-1 row: cluster-level input power at one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterPowerRow {
    /// Start of the 10-second window (seconds since epoch).
    pub window_start: f64,
    /// Nodes reporting in this window.
    pub count_inp: u32,
    /// Sum of per-node mean input power (W) — the cluster power estimate.
    pub sum_inp: f64,
    /// Mean per-node input power (W).
    pub mean_inp: f64,
    /// Max per-node input power (W).
    pub max_inp: f64,
}

/// One Dataset-2 row: cluster-level component power at one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentPowerRow {
    /// Start of the 10-second window (seconds since epoch).
    pub window_start: f64,
    /// Per-CPU-socket power stats across the cluster (W).
    pub mean_cpu_power: f64,
    /// Std of per-socket CPU power (W).
    pub std_cpu_power: f64,
    /// Minimum per-socket CPU power (W).
    pub min_cpu_power: f64,
    /// Maximum per-socket CPU power (W).
    pub max_cpu_power: f64,
    /// Per-GPU power stats across the cluster (W).
    pub mean_gpu_power: f64,
    /// Std of per-GPU power (W).
    pub std_gpu_power: f64,
    /// Maximum per-GPU power (W).
    pub max_gpu_power: f64,
    /// Sum of all CPU power (W).
    pub sum_cpu_power: f64,
    /// Sum of all GPU power (W).
    pub sum_gpu_power: f64,
}

/// Window-keyed accumulator table kept sorted by window key.
///
/// Per-node windows arrive in ascending window order, so the hot
/// admission path is a tail hit or a tail append — no tree walk and no
/// per-window node allocation — and the parallel reduce is one linear
/// two-way merge per chunk pair. Same-key accumulators combine with
/// exactly the grouping the previous `BTreeMap` formulation used
/// (per-node push order, then chunk-order merges), so the collapse is
/// bit-identical to that reference for every thread count, and the
/// drain is window-ordered by construction (hash-order lint).
struct WindowTable<T> {
    rows: Vec<(i64, T)>,
}

impl<T: Default> WindowTable<T> {
    fn new() -> Self {
        Self { rows: Vec::new() }
    }

    /// Accumulator slot for `key`, created default if absent. O(1) for
    /// the in-order case (key at or past the tail); a late
    /// out-of-order window falls back to a binary-search insert.
    fn slot(&mut self, key: i64) -> &mut T {
        let at = match self.rows.last() {
            Some(&(last, _)) if last == key => self.rows.len() - 1,
            Some(&(last, _)) if last < key => {
                self.rows.push((key, T::default()));
                self.rows.len() - 1
            }
            _ => {
                let at = self.rows.partition_point(|&(k, _)| k < key);
                if self.rows.get(at).map(|&(k, _)| k) != Some(key) {
                    self.rows.insert(at, (key, T::default()));
                }
                at
            }
        };
        &mut self.rows[at].1
    }

    /// Merges `from` into `self` with a linear two-way merge on window
    /// key; same-key accumulators combine via `combine(into, from)`.
    /// A key present on one side only moves its accumulator across
    /// unchanged — bitwise the same as merging it into a default
    /// accumulator, because [`Welford::merge`] copies `other` wholesale
    /// when `self` is empty.
    fn merge(&mut self, from: Self, mut combine: impl FnMut(&mut T, T)) {
        if self.rows.is_empty() {
            self.rows = from.rows;
            return;
        }
        if from.rows.is_empty() {
            return;
        }
        let mut merged = Vec::with_capacity(self.rows.len().max(from.rows.len()));
        let mut a = std::mem::take(&mut self.rows).into_iter();
        let mut b = from.rows.into_iter();
        let (mut na, mut nb) = (a.next(), b.next());
        loop {
            match (na, nb) {
                (Some((ka, xa)), Some((kb, xb))) => match ka.cmp(&kb) {
                    std::cmp::Ordering::Less => {
                        merged.push((ka, xa));
                        (na, nb) = (a.next(), Some((kb, xb)));
                    }
                    std::cmp::Ordering::Greater => {
                        merged.push((kb, xb));
                        (na, nb) = (Some((ka, xa)), b.next());
                    }
                    std::cmp::Ordering::Equal => {
                        let mut x = xa;
                        combine(&mut x, xb);
                        merged.push((ka, x));
                        (na, nb) = (a.next(), b.next());
                    }
                },
                (Some(row), None) => {
                    merged.push(row);
                    merged.extend(a);
                    break;
                }
                (None, Some(row)) => {
                    merged.push(row);
                    merged.extend(b);
                    break;
                }
                (None, None) => break,
            }
        }
        self.rows = merged;
    }
}

/// Collapses per-node windows into the Dataset-1 cluster input-power
/// time-series, sorted by window start. Node batches are reduced in
/// parallel.
pub fn cluster_power(windows_by_node: &[Vec<NodeWindow>]) -> Vec<ClusterPowerRow> {
    // Per-node tables merge pairwise inside each worker chunk, and the
    // chunk accumulators merge in chunk order — no barrier collect of
    // all per-node tables. The merge grouping is fixed by the chunk
    // layout, so results are identical for every thread count.
    let merged: WindowTable<Welford> = windows_by_node
        .par_iter()
        .map(|windows| {
            let mut table: WindowTable<Welford> = WindowTable::new();
            for w in windows {
                let s = w.metric(catalog::input_power());
                if s.count == 0 {
                    continue;
                }
                let key = w.window_start.round() as i64;
                table.slot(key).push(s.mean);
            }
            table
        })
        .reduce(WindowTable::new, |mut into, from| {
            into.merge(from, |w: &mut Welford, other| w.merge(&other));
            into
        });

    // Table rows are ascending window start already.
    merged
        .rows
        .into_iter()
        .map(|(k, w)| ClusterPowerRow {
            window_start: k as f64,
            count_inp: convert::count_u32(w.count()),
            sum_inp: w.sum(),
            mean_inp: w.mean(),
            max_inp: w.max(),
        })
        .collect()
}

#[derive(Clone, Default)]
struct ComponentAcc {
    cpu: Welford,
    gpu: Welford,
}

/// Collapses per-node windows into the Dataset-2 component time-series.
pub fn cluster_component_power(windows_by_node: &[Vec<NodeWindow>]) -> Vec<ComponentPowerRow> {
    let merged: WindowTable<ComponentAcc> = windows_by_node
        .par_iter()
        .map(|windows| {
            let mut table: WindowTable<ComponentAcc> = WindowTable::new();
            for w in windows {
                let key = w.window_start.round() as i64;
                let acc = table.slot(key);
                for s in Socket::ALL {
                    let st = w.metric(catalog::cpu_power(s));
                    if st.count > 0 {
                        acc.cpu.push(st.mean);
                    }
                }
                for g in GpuSlot::ALL {
                    let st = w.metric(catalog::gpu_power(g));
                    if st.count > 0 {
                        acc.gpu.push(st.mean);
                    }
                }
            }
            table
        })
        .reduce(WindowTable::new, |mut into, from| {
            into.merge(from, |m: &mut ComponentAcc, acc| {
                m.cpu.merge(&acc.cpu);
                m.gpu.merge(&acc.gpu);
            });
            into
        });

    merged
        .rows
        .into_iter()
        .map(|(k, acc)| ComponentPowerRow {
            window_start: k as f64,
            mean_cpu_power: acc.cpu.mean(),
            std_cpu_power: acc.cpu.std(),
            min_cpu_power: acc.cpu.min(),
            max_cpu_power: acc.cpu.max(),
            mean_gpu_power: acc.gpu.mean(),
            std_gpu_power: acc.gpu.std(),
            max_gpu_power: acc.gpu.max(),
            sum_cpu_power: acc.cpu.sum(),
            sum_gpu_power: acc.gpu.sum(),
        })
        .collect()
}

/// Converts Dataset-1 rows into a uniform [`Series`] of cluster power
/// (`sum_inp`), filling missing windows with NaN.
pub fn cluster_power_series(rows: &[ClusterPowerRow], window_s: f64) -> Option<Series> {
    let first = rows.first()?;
    let last = rows.last()?;
    let n = ((last.window_start - first.window_start) / window_s).round() as usize + 1;
    let mut values = vec![f64::NAN; n];
    for r in rows {
        let idx = ((r.window_start - first.window_start) / window_s).round() as usize;
        if idx < n {
            values[idx] = r.sum_inp;
        }
    }
    Some(Series::new(first.window_start, window_s, values))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ids::NodeId;
    use crate::records::NodeFrame;
    use crate::window::WindowAggregator;

    fn windows_for(node: u32, powers: &[(f64, f64, f64)]) -> Vec<NodeWindow> {
        // (t, input_power, gpu0_power)
        let mut agg = WindowAggregator::paper(NodeId(node));
        for &(t, inp, gpu) in powers {
            let mut f = NodeFrame::empty(NodeId(node), t);
            f.set(catalog::input_power(), inp);
            f.set(catalog::gpu_power(GpuSlot(0)), gpu);
            f.set(catalog::cpu_power(Socket::P0), inp / 10.0);
            agg.push(&f).unwrap();
        }
        agg.finish()
    }

    #[test]
    fn cluster_power_sums_nodes() {
        let n0 = windows_for(0, &[(0.0, 1000.0, 200.0), (10.0, 1100.0, 200.0)]);
        let n1 = windows_for(1, &[(0.0, 2000.0, 300.0), (10.0, 2200.0, 300.0)]);
        let rows = cluster_power(&[n0, n1]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].window_start, 0.0);
        assert_eq!(rows[0].count_inp, 2);
        assert!((rows[0].sum_inp - 3000.0).abs() < 0.01);
        assert!((rows[0].mean_inp - 1500.0).abs() < 0.01);
        assert!((rows[0].max_inp - 2000.0).abs() < 0.01);
        assert!((rows[1].sum_inp - 3300.0).abs() < 0.01);
    }

    #[test]
    fn cluster_power_skips_missing_nodes() {
        let n0 = windows_for(0, &[(0.0, 1000.0, 0.0)]);
        let n1 = windows_for(1, &[(10.0, 2000.0, 0.0)]); // different window
        let rows = cluster_power(&[n0, n1]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].count_inp, 1);
        assert_eq!(rows[1].count_inp, 1);
    }

    #[test]
    fn component_power_aggregates_both_kinds() {
        let n0 = windows_for(0, &[(0.0, 1000.0, 250.0)]);
        let n1 = windows_for(1, &[(0.0, 2000.0, 150.0)]);
        let rows = cluster_component_power(&[n0, n1]);
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        // Two GPU samples: 250, 150.
        assert!((r.mean_gpu_power - 200.0).abs() < 0.01);
        assert!((r.max_gpu_power - 250.0).abs() < 0.01);
        assert!((r.sum_gpu_power - 400.0).abs() < 0.01);
        // Two CPU samples: 100, 200.
        assert!((r.mean_cpu_power - 150.0).abs() < 0.01);
        assert!((r.sum_cpu_power - 300.0).abs() < 0.01);
    }

    #[test]
    fn power_series_fills_gaps_with_nan() {
        let rows = vec![
            ClusterPowerRow {
                window_start: 0.0,
                count_inp: 1,
                sum_inp: 100.0,
                mean_inp: 100.0,
                max_inp: 100.0,
            },
            ClusterPowerRow {
                window_start: 30.0,
                count_inp: 1,
                sum_inp: 200.0,
                mean_inp: 200.0,
                max_inp: 200.0,
            },
        ];
        let s = cluster_power_series(&rows, 10.0).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.values()[0], 100.0);
        assert!(s.values()[1].is_nan());
        assert!(s.values()[2].is_nan());
        assert_eq!(s.values()[3], 200.0);
    }

    #[test]
    fn empty_input_empty_output() {
        assert!(cluster_power(&[]).is_empty());
        assert!(cluster_component_power(&[]).is_empty());
        assert!(cluster_power_series(&[], 10.0).is_none());
    }

    /// Row-based reference: the exact `BTreeMap` formulation the sorted
    /// [`WindowTable`] replaced — same `par_iter().map().reduce()`
    /// shape, so the merge tree (per-node push order, chunk-order
    /// combines) is identical and any table divergence shows up as a
    /// bit difference.
    fn cluster_power_reference(windows_by_node: &[Vec<NodeWindow>]) -> Vec<ClusterPowerRow> {
        use std::collections::BTreeMap;
        let merged: BTreeMap<i64, Welford> = windows_by_node
            .par_iter()
            .map(|windows| {
                let mut map: BTreeMap<i64, Welford> = BTreeMap::new();
                for w in windows {
                    let s = w.metric(catalog::input_power());
                    if s.count == 0 {
                        continue;
                    }
                    let key = w.window_start.round() as i64;
                    map.entry(key).or_default().push(s.mean);
                }
                map
            })
            .reduce(BTreeMap::new, |mut into, from| {
                for (k, acc) in from {
                    into.entry(k).or_default().merge(&acc);
                }
                into
            });
        merged
            .into_iter()
            .map(|(k, w)| ClusterPowerRow {
                window_start: k as f64,
                count_inp: convert::count_u32(w.count()),
                sum_inp: w.sum(),
                mean_inp: w.mean(),
                max_inp: w.max(),
            })
            .collect()
    }

    fn cluster_component_reference(windows_by_node: &[Vec<NodeWindow>]) -> Vec<ComponentPowerRow> {
        use std::collections::BTreeMap;
        let merged: BTreeMap<i64, ComponentAcc> = windows_by_node
            .par_iter()
            .map(|windows| {
                let mut map: BTreeMap<i64, ComponentAcc> = BTreeMap::new();
                for w in windows {
                    let key = w.window_start.round() as i64;
                    let acc = map.entry(key).or_default();
                    for s in Socket::ALL {
                        let st = w.metric(catalog::cpu_power(s));
                        if st.count > 0 {
                            acc.cpu.push(st.mean);
                        }
                    }
                    for g in GpuSlot::ALL {
                        let st = w.metric(catalog::gpu_power(g));
                        if st.count > 0 {
                            acc.gpu.push(st.mean);
                        }
                    }
                }
                map
            })
            .reduce(BTreeMap::new, |mut into, from| {
                for (k, acc) in from {
                    let m = into.entry(k).or_default();
                    m.cpu.merge(&acc.cpu);
                    m.gpu.merge(&acc.gpu);
                }
                into
            });
        merged
            .into_iter()
            .map(|(k, acc)| ComponentPowerRow {
                window_start: k as f64,
                mean_cpu_power: acc.cpu.mean(),
                std_cpu_power: acc.cpu.std(),
                min_cpu_power: acc.cpu.min(),
                max_cpu_power: acc.cpu.max(),
                mean_gpu_power: acc.gpu.mean(),
                std_gpu_power: acc.gpu.std(),
                max_gpu_power: acc.gpu.max(),
                sum_cpu_power: acc.cpu.sum(),
                sum_gpu_power: acc.gpu.sum(),
            })
            .collect()
    }

    /// Many nodes with irregular, partially-disjoint window coverage
    /// and missing metrics — enough structure to catch any divergence
    /// in push order or merge grouping.
    fn adversarial_windows(nodes: u32) -> Vec<Vec<NodeWindow>> {
        (0..nodes)
            .map(|n| {
                let mut agg = WindowAggregator::paper(NodeId(n));
                // Each node starts at a different window and skips
                // frames on its own stride; every 5th node never
                // reports input power (count_inp == 0 windows).
                let start = (n as i64 % 7) * 10;
                for i in 0..120i64 {
                    let t = (start + i) as f64;
                    if (i + n as i64) % 11 == 0 {
                        continue; // dropped frame
                    }
                    let mut f = NodeFrame::empty(NodeId(n), t);
                    if n % 5 != 0 {
                        f.set(
                            catalog::input_power(),
                            500.0 + f64::from(n) * 3.5 + (i % 13) as f64 * 0.01,
                        );
                    }
                    if n % 3 != 2 {
                        f.set(catalog::cpu_power(Socket::P0), 150.0 + (i % 7) as f64);
                        f.set(catalog::cpu_power(Socket::P1), 140.0 - (i % 5) as f64);
                    }
                    f.set(
                        catalog::gpu_power(GpuSlot((n % 6) as u8)),
                        200.0 + f64::from(n % 4) * 25.0,
                    );
                    agg.push(&f).unwrap();
                }
                agg.finish()
            })
            .collect()
    }

    #[test]
    fn sorted_table_matches_btreemap_reference_bitwise() {
        let windows = adversarial_windows(23);
        let want_power = cluster_power_reference(&windows);
        let want_comp = cluster_component_reference(&windows);
        for threads in [1usize, 2, 4] {
            let (got_power, got_comp) = rayon::with_thread_count(threads, || {
                (cluster_power(&windows), cluster_component_power(&windows))
            });
            assert_eq!(got_power.len(), want_power.len(), "threads={threads}");
            for (g, w) in got_power.iter().zip(&want_power) {
                assert_eq!(g.window_start.to_bits(), w.window_start.to_bits());
                assert_eq!(g.count_inp, w.count_inp);
                assert_eq!(
                    g.sum_inp.to_bits(),
                    w.sum_inp.to_bits(),
                    "threads={threads}"
                );
                assert_eq!(g.mean_inp.to_bits(), w.mean_inp.to_bits());
                assert_eq!(g.max_inp.to_bits(), w.max_inp.to_bits());
            }
            assert_eq!(got_comp.len(), want_comp.len(), "threads={threads}");
            for (g, w) in got_comp.iter().zip(&want_comp) {
                for (a, b) in [
                    (g.window_start, w.window_start),
                    (g.mean_cpu_power, w.mean_cpu_power),
                    (g.std_cpu_power, w.std_cpu_power),
                    (g.min_cpu_power, w.min_cpu_power),
                    (g.max_cpu_power, w.max_cpu_power),
                    (g.mean_gpu_power, w.mean_gpu_power),
                    (g.std_gpu_power, w.std_gpu_power),
                    (g.max_gpu_power, w.max_gpu_power),
                    (g.sum_cpu_power, w.sum_cpu_power),
                    (g.sum_gpu_power, w.sum_gpu_power),
                ] {
                    assert_eq!(a.to_bits(), b.to_bits(), "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn window_table_slot_handles_out_of_order_keys() {
        let mut table: WindowTable<Welford> = WindowTable::new();
        for key in [10i64, 20, 20, 5, 15, 30, 5] {
            table.slot(key).push(key as f64);
        }
        let keys: Vec<i64> = table.rows.iter().map(|&(k, _)| k).collect();
        assert_eq!(keys, vec![5, 10, 15, 20, 30]);
        let at_20 = &table.rows[3].1;
        assert_eq!(at_20.count(), 2);
        let at_5 = &table.rows[0].1;
        assert_eq!(at_5.count(), 2);
    }
}
