//! Job-aware aggregation: joining per-node telemetry with scheduler
//! allocation history (Datasets 3-7 of the artifact appendix).
//!
//! "For studies that require job context, we performed the collapse after
//! joining the time series with job scheduler allocation logs"
//! (Section 3). The join key is (node, time-window) -> allocation_id.

use crate::catalog;
use crate::convert;
use crate::ids::{AllocationId, GpuSlot, Socket};
use crate::records::NodeAllocation;
use crate::window::NodeWindow;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use summit_analysis::series::Series;
use summit_analysis::stats::Welford;

/// One Dataset-3 row: per-job per-window power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobPowerRow {
    /// Scheduler allocation identifier.
    pub allocation_id: AllocationId,
    /// Start of the 10-second window (seconds since epoch).
    pub window_start: f64,
    /// Nodes of the job reporting in this window.
    pub count_hostname: u32,
    /// Sum of per-node mean input power over the job's nodes (W).
    pub sum_inp: f64,
    /// Mean per-node input power (W).
    pub mean_inp: f64,
    /// Maximum per-node input power (W).
    pub max_inp: f64,
}

/// One Dataset-4 row: per-job per-window component power.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobComponentRow {
    /// Scheduler allocation identifier.
    pub allocation_id: AllocationId,
    /// Start of the 10-second window (seconds since epoch).
    pub window_start: f64,
    /// Nodes of the job reporting in this window.
    pub count_hostname: u32,
    /// Mean per-socket CPU power (W).
    pub mean_cpu_power: f64,
    /// Maximum per-socket CPU power (W).
    pub max_cpu_power: f64,
    /// Mean per-GPU power (W).
    pub mean_gpu_power: f64,
    /// Maximum per-GPU power (W).
    pub max_gpu_power: f64,
    /// Windows with missing CPU/GPU readings (the `cpu_nans`/`gpu_nans`
    /// columns of the artifact appendix).
    pub cpu_nans: u32,
    /// Windows with missing GPU readings.
    pub gpu_nans: u32,
}

/// Dataset-5 row: whole-job power aggregate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobLevelPower {
    /// Scheduler allocation identifier.
    pub allocation_id: AllocationId,
    /// Max over windows of the job's summed input power (W).
    pub max_sum_inp: f64,
    /// Mean over windows of the job's summed input power (W).
    pub mean_sum_inp: f64,
    /// Start time (seconds since epoch).
    pub begin_time: f64,
    /// End time (seconds since epoch).
    pub end_time: f64,
    /// Total energy consumed (J), integrating `sum_inp` over windows.
    pub energy_j: f64,
}

/// An index from (node, time) to the allocation occupying it. Keyed by
/// a `BTreeMap` so any iteration over it is in node order — hash-order
/// nondeterminism cannot leak out of the index.
pub struct AllocationIndex {
    /// Per node: (begin, end, allocation), sorted by begin.
    by_node: BTreeMap<u32, Vec<(f64, f64, AllocationId)>>,
}

impl AllocationIndex {
    /// Builds the index from per-node allocation records.
    pub fn build(allocations: &[NodeAllocation]) -> Self {
        let mut by_node: BTreeMap<u32, Vec<(f64, f64, AllocationId)>> = BTreeMap::new();
        for a in allocations {
            by_node
                .entry(a.node.0)
                .or_default()
                .push((a.begin_time, a.end_time, a.allocation_id));
        }
        for list in by_node.values_mut() {
            list.sort_by(|a, b| a.0.total_cmp(&b.0));
        }
        Self { by_node }
    }

    /// The allocation running on `node` at time `t`, if any.
    pub fn lookup(&self, node: u32, t: f64) -> Option<AllocationId> {
        let list = self.by_node.get(&node)?;
        // Binary search for the last interval starting at or before t.
        let idx = list.partition_point(|&(begin, _, _)| begin <= t);
        if idx == 0 {
            return None;
        }
        let (begin, end, alloc) = list[idx - 1];
        (t >= begin && t < end).then_some(alloc)
    }

    /// Number of indexed intervals.
    pub fn len(&self) -> usize {
        self.by_node.values().map(Vec::len).sum()
    }

    /// True if the index holds no intervals.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[derive(Default, Clone)]
struct JoinAcc {
    inp: Welford,
    cpu: Welford,
    gpu: Welford,
    cpu_nans: u32,
    gpu_nans: u32,
}

/// Joins per-node windows with the allocation index and collapses them to
/// per-job per-window rows (Datasets 3 and 4 together).
pub fn join_jobs(
    windows_by_node: &[Vec<NodeWindow>],
    index: &AllocationIndex,
) -> (Vec<JobPowerRow>, Vec<JobComponentRow>) {
    let _obs = summit_obs::span("summit_telemetry_jobjoin");
    // Keyed (allocation, window): draining the BTreeMap yields rows
    // already in the output order, no post-sort required.
    let mut map: BTreeMap<(u64, i64), JoinAcc> = BTreeMap::new();
    for windows in windows_by_node {
        for w in windows {
            // Gap windows synthesized for ingest outages carry no
            // samples at all; they must not count as a reporting node.
            if w.stats.iter().all(|s| s.count == 0) {
                continue;
            }
            let t_mid = w.window_start + 5.0;
            let Some(alloc) = index.lookup(w.node.0, t_mid) else {
                continue;
            };
            let key = (alloc.0, w.window_start.round() as i64);
            let acc = map.entry(key).or_default();
            let inp = w.metric(catalog::input_power());
            if inp.count > 0 {
                acc.inp.push(inp.mean);
            }
            let mut cpu_seen = false;
            for s in Socket::ALL {
                let st = w.metric(catalog::cpu_power(s));
                if st.count > 0 {
                    acc.cpu.push(st.mean);
                    cpu_seen = true;
                }
            }
            if !cpu_seen {
                acc.cpu_nans += 1;
            }
            let mut gpu_seen = false;
            for g in GpuSlot::ALL {
                let st = w.metric(catalog::gpu_power(g));
                if st.count > 0 {
                    acc.gpu.push(st.mean);
                    gpu_seen = true;
                }
            }
            if !gpu_seen {
                acc.gpu_nans += 1;
            }
        }
    }

    let mut power_rows = Vec::with_capacity(map.len());
    let mut comp_rows = Vec::with_capacity(map.len());
    for ((alloc, ws), acc) in map {
        let allocation_id = AllocationId(alloc);
        let window_start = ws as f64;
        power_rows.push(JobPowerRow {
            allocation_id,
            window_start,
            count_hostname: convert::count_u32(acc.inp.count()),
            sum_inp: acc.inp.sum(),
            mean_inp: acc.inp.mean(),
            max_inp: acc.inp.max(),
        });
        comp_rows.push(JobComponentRow {
            allocation_id,
            window_start,
            count_hostname: convert::count_u32(acc.inp.count()),
            mean_cpu_power: acc.cpu.mean(),
            max_cpu_power: acc.cpu.max(),
            mean_gpu_power: acc.gpu.mean(),
            max_gpu_power: acc.gpu.max(),
            cpu_nans: acc.cpu_nans,
            gpu_nans: acc.gpu_nans,
        });
    }
    (power_rows, comp_rows)
}

/// Collapses Dataset-3 rows into whole-job aggregates (Dataset 5 + the
/// Dataset-7 energy integral), one row per allocation.
pub fn job_level_power(rows: &[JobPowerRow], window_s: f64) -> Vec<JobLevelPower> {
    let _obs = summit_obs::span("summit_telemetry_job_level_power");
    let mut map: BTreeMap<u64, (f64, f64, f64, f64, u64)> = BTreeMap::new();
    // (max_sum, sum_of_sums, begin, end, n_windows)
    for r in rows {
        let e = map.entry(r.allocation_id.0).or_insert((
            f64::NEG_INFINITY,
            0.0,
            f64::INFINITY,
            f64::NEG_INFINITY,
            0,
        ));
        e.0 = e.0.max(r.sum_inp);
        e.1 += r.sum_inp;
        e.2 = e.2.min(r.window_start);
        e.3 = e.3.max(r.window_start + window_s);
        e.4 += 1;
    }
    // BTreeMap drain order is allocation order — the output order.
    map.into_iter()
        .map(|(alloc, (max, sum, begin, end, n))| JobLevelPower {
            allocation_id: AllocationId(alloc),
            max_sum_inp: max,
            mean_sum_inp: sum / n as f64,
            begin_time: begin,
            end_time: end,
            energy_j: sum * window_s,
        })
        .collect()
}

/// Extracts one job's power time-series (`sum_inp` per window) as a
/// uniform [`Series`], filling missing windows with NaN. Rows from
/// other allocations are ignored (the series follows the first row's
/// allocation), so a mixed slice degrades gracefully instead of
/// producing a chimera series.
pub fn job_power_series(rows: &[JobPowerRow], window_s: f64) -> Option<Series> {
    let first = rows.first()?;
    let rows = rows
        .iter()
        .filter(|r| r.allocation_id == first.allocation_id);
    let mut t0 = f64::INFINITY;
    let mut t1 = f64::NEG_INFINITY;
    for r in rows.clone() {
        t0 = t0.min(r.window_start);
        t1 = t1.max(r.window_start);
    }
    let n = ((t1 - t0) / window_s).round() as usize + 1;
    let mut values = vec![f64::NAN; n];
    for r in rows {
        let idx = ((r.window_start - t0) / window_s).round() as usize;
        if let Some(slot) = values.get_mut(idx) {
            *slot = r.sum_inp;
        }
    }
    Some(Series::new(t0, window_s, values))
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::expect_used, clippy::panic)]
    use super::*;
    use crate::ids::NodeId;
    use crate::records::NodeFrame;
    use crate::window::WindowAggregator;

    fn alloc(node: u32, id: u64, begin: f64, end: f64) -> NodeAllocation {
        NodeAllocation {
            allocation_id: AllocationId(id),
            node: NodeId(node),
            begin_time: begin,
            end_time: end,
        }
    }

    fn windows(node: u32, samples: &[(f64, f64)]) -> Vec<NodeWindow> {
        let mut agg = WindowAggregator::paper(NodeId(node));
        for &(t, inp) in samples {
            let mut f = NodeFrame::empty(NodeId(node), t);
            f.set(catalog::input_power(), inp);
            f.set(catalog::cpu_power(Socket::P0), inp * 0.1);
            f.set(catalog::gpu_power(GpuSlot(0)), inp * 0.3);
            agg.push(&f).unwrap();
        }
        agg.finish()
    }

    #[test]
    fn allocation_index_lookup() {
        let idx = AllocationIndex::build(&[
            alloc(0, 1, 0.0, 100.0),
            alloc(0, 2, 100.0, 200.0),
            alloc(1, 1, 0.0, 100.0),
        ]);
        assert_eq!(idx.lookup(0, 50.0), Some(AllocationId(1)));
        assert_eq!(idx.lookup(0, 100.0), Some(AllocationId(2)));
        assert_eq!(idx.lookup(0, 199.0), Some(AllocationId(2)));
        assert_eq!(idx.lookup(0, 200.0), None);
        assert_eq!(idx.lookup(1, 10.0), Some(AllocationId(1)));
        assert_eq!(idx.lookup(2, 10.0), None);
        assert_eq!(idx.len(), 3);
    }

    #[test]
    fn join_attributes_windows_to_jobs() {
        let w0 = windows(0, &[(0.0, 1000.0), (10.0, 1200.0)]);
        let w1 = windows(1, &[(0.0, 2000.0), (10.0, 2400.0)]);
        let idx = AllocationIndex::build(&[alloc(0, 7, 0.0, 1000.0), alloc(1, 7, 0.0, 1000.0)]);
        let (power, comp) = join_jobs(&[w0, w1], &idx);
        assert_eq!(power.len(), 2);
        assert_eq!(power[0].count_hostname, 2);
        assert!((power[0].sum_inp - 3000.0).abs() < 0.01);
        assert!((power[1].sum_inp - 3600.0).abs() < 0.01);
        assert_eq!(comp.len(), 2);
        // GPU mean: (300 + 600)/2 at window 0.
        assert!((comp[0].mean_gpu_power - 450.0).abs() < 0.1);
    }

    #[test]
    fn join_ignores_unallocated_windows() {
        let w0 = windows(0, &[(0.0, 1000.0), (500.0, 900.0)]);
        let idx = AllocationIndex::build(&[alloc(0, 7, 0.0, 100.0)]);
        let (power, _) = join_jobs(&[w0], &idx);
        assert_eq!(power.len(), 1, "second window falls outside the job");
    }

    #[test]
    fn job_level_aggregation_and_energy() {
        let rows = vec![
            JobPowerRow {
                allocation_id: AllocationId(1),
                window_start: 0.0,
                count_hostname: 2,
                sum_inp: 1000.0,
                mean_inp: 500.0,
                max_inp: 600.0,
            },
            JobPowerRow {
                allocation_id: AllocationId(1),
                window_start: 10.0,
                count_hostname: 2,
                sum_inp: 3000.0,
                mean_inp: 1500.0,
                max_inp: 1600.0,
            },
        ];
        let jobs = job_level_power(&rows, 10.0);
        assert_eq!(jobs.len(), 1);
        let j = &jobs[0];
        assert_eq!(j.max_sum_inp, 3000.0);
        assert_eq!(j.mean_sum_inp, 2000.0);
        assert_eq!(j.begin_time, 0.0);
        assert_eq!(j.end_time, 20.0);
        assert!((j.energy_j - 40_000.0).abs() < 1e-9);
    }

    #[test]
    fn job_series_fills_gaps() {
        let mk = |ws: f64, p: f64| JobPowerRow {
            allocation_id: AllocationId(1),
            window_start: ws,
            count_hostname: 1,
            sum_inp: p,
            mean_inp: p,
            max_inp: p,
        };
        let rows = vec![mk(0.0, 100.0), mk(30.0, 400.0)];
        let s = job_power_series(&rows, 10.0).unwrap();
        assert_eq!(s.len(), 4);
        assert!(s.values()[1].is_nan());
        assert_eq!(s.values()[3], 400.0);
    }

    #[test]
    fn series_ignores_foreign_allocations() {
        let mk = |id: u64, ws: f64, p: f64| JobPowerRow {
            allocation_id: AllocationId(id),
            window_start: ws,
            count_hostname: 1,
            sum_inp: p,
            mean_inp: p,
            max_inp: p,
        };
        // A stray row from another job neither panics nor skews t0/t1.
        let rows = vec![mk(1, 10.0, 100.0), mk(2, 500.0, 9.0), mk(1, 20.0, 200.0)];
        let s = job_power_series(&rows, 10.0).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.values()[0], 100.0);
        assert_eq!(s.values()[1], 200.0);
    }

    #[test]
    fn empty_inputs() {
        let idx = AllocationIndex::build(&[]);
        assert!(idx.is_empty());
        let (p, c) = join_jobs(&[], &idx);
        assert!(p.is_empty() && c.is_empty());
        assert!(job_level_power(&[], 10.0).is_empty());
        assert!(job_power_series(&[], 10.0).is_none());
    }
}
